"""Detailed microarchitecture models (TaskSim substitute)."""

from .batch import (
    ContentionBatch,
    KernelTimingBatch,
    NodeBatch,
    resolve_contention_batch,
    time_kernel_batch,
)
from .cache import CacheHierarchySim, CacheStats, SetAssociativeCache
from .core_model import KernelTiming, time_kernel
from .cpu import ContentionResult, dram_efficiency, resolve_contention
from .explain import CpiStack, explain_kernel
from .hierarchy import (
    MissProfile,
    hierarchy_miss_profile,
    hierarchy_miss_profile_batch,
)
from .roofline import RooflinePoint, render_roofline, roofline_point
from .validation import KernelValidation, validate_kernel
from .vector import VectorizationResult, fusion_factor, vectorize, vectorize_batch

__all__ = [
    "CacheHierarchySim",
    "CacheStats",
    "ContentionBatch",
    "ContentionResult",
    "CpiStack",
    "KernelTiming",
    "KernelTimingBatch",
    "KernelValidation",
    "MissProfile",
    "NodeBatch",
    "RooflinePoint",
    "SetAssociativeCache",
    "VectorizationResult",
    "dram_efficiency",
    "explain_kernel",
    "fusion_factor",
    "hierarchy_miss_profile",
    "hierarchy_miss_profile_batch",
    "render_roofline",
    "resolve_contention",
    "resolve_contention_batch",
    "roofline_point",
    "time_kernel",
    "time_kernel_batch",
    "validate_kernel",
    "vectorize",
    "vectorize_batch",
]
