"""Detailed microarchitecture models (TaskSim substitute)."""

from .cache import CacheHierarchySim, CacheStats, SetAssociativeCache
from .core_model import KernelTiming, time_kernel
from .cpu import ContentionResult, dram_efficiency, resolve_contention
from .explain import CpiStack, explain_kernel
from .hierarchy import MissProfile, hierarchy_miss_profile
from .roofline import RooflinePoint, render_roofline, roofline_point
from .validation import KernelValidation, validate_kernel
from .vector import VectorizationResult, fusion_factor, vectorize

__all__ = [
    "CacheHierarchySim",
    "CacheStats",
    "ContentionResult",
    "CpiStack",
    "KernelTiming",
    "KernelValidation",
    "MissProfile",
    "RooflinePoint",
    "SetAssociativeCache",
    "VectorizationResult",
    "dram_efficiency",
    "explain_kernel",
    "fusion_factor",
    "hierarchy_miss_profile",
    "render_roofline",
    "resolve_contention",
    "roofline_point",
    "time_kernel",
    "validate_kernel",
    "vectorize",
]
