"""Exact set-associative LRU cache simulator.

This is the reference ("slow but exact") cache path: it replays raw
address streams through a configurable multi-level hierarchy.  The
design-space sweep itself uses the analytic stack-distance model in
:mod:`repro.uarch.hierarchy`; this simulator exists to *validate* that
model (see ``benchmarks/bench_ablations.py`` and the uarch tests) and to
feed the event-level DRAM controller with realistic miss streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..config.cache import LINE_BYTES, CacheHierarchy, CacheLevelConfig

__all__ = ["CacheStats", "SetAssociativeCache", "CacheHierarchySim"]


@dataclass
class CacheStats:
    """Hit/miss counters for one cache level."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: float) -> float:
        """Misses per kilo-instruction given an instruction count."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.misses / instructions


class SetAssociativeCache:
    """One set-associative LRU cache level.

    Tag store: ``tags[set, way]`` holds line numbers (-1 = invalid);
    ``stamp[set, way]`` holds a logical clock for LRU ordering.  The
    per-access loop is Python, but each access touches only one set's
    small way-arrays, so even multi-million-access validation streams
    run in seconds.
    """

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self.n_sets = config.n_sets
        self.assoc = config.associativity
        self._tags = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        self._stamp = np.zeros((self.n_sets, self.assoc), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        self._tags.fill(-1)
        self._stamp.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    def access(self, line: int) -> bool:
        """Access one cache line; returns True on hit.

        On a miss the LRU way of the set is replaced (allocate-on-miss,
        both loads and stores, as in TaskSim's write-allocate model).
        """
        self._clock += 1
        s = line % self.n_sets
        tags = self._tags[s]
        self.stats.accesses += 1
        hit = np.nonzero(tags == line)[0]
        if hit.size:
            self._stamp[s, hit[0]] = self._clock
            return True
        self.stats.misses += 1
        victim = int(np.argmin(self._stamp[s]))
        tags[victim] = line
        self._stamp[s, victim] = self._clock
        return False

    def access_stream(self, lines: Sequence[int]) -> np.ndarray:
        """Access many lines; returns a boolean hit mask."""
        out = np.empty(len(lines), dtype=bool)
        for i, line in enumerate(lines):
            out[i] = self.access(int(line))
        return out


class CacheHierarchySim:
    """Three-level exact hierarchy: L1 -> L2 -> L3 (all LRU, inclusive
    allocation: a miss allocates in every level on the refill path).

    ``l3_shards`` models the shared L3 being divided among concurrent
    cores: the effective L3 seen by this stream has ``size / l3_shards``
    capacity (set-sampled), matching the analytic model's fair-share
    assumption.
    """

    def __init__(self, hierarchy: CacheHierarchy, l3_shards: int = 1) -> None:
        if l3_shards <= 0:
            raise ValueError("l3_shards must be positive")
        self.hierarchy = hierarchy
        l3cfg = hierarchy.l3
        if l3_shards > 1:
            shard_size = max(
                l3cfg.associativity * LINE_BYTES,
                (l3cfg.size_bytes // l3_shards)
                // (l3cfg.associativity * LINE_BYTES)
                * (l3cfg.associativity * LINE_BYTES),
            )
            l3cfg = CacheLevelConfig(
                name="L3shard", size_bytes=shard_size,
                associativity=l3cfg.associativity,
                latency_cycles=l3cfg.latency_cycles,
            )
        self.l1 = SetAssociativeCache(hierarchy.l1)
        self.l2 = SetAssociativeCache(hierarchy.l2)
        self.l3 = SetAssociativeCache(l3cfg)

    def access(self, address: int) -> int:
        """Access a byte address; returns the level that hit (1, 2, 3)
        or 4 for main memory."""
        line = address // LINE_BYTES
        if self.l1.access(line):
            return 1
        if self.l2.access(line):
            return 2
        if self.l3.access(line):
            return 3
        return 4

    def run(self, addresses: Sequence[int]) -> Tuple[CacheStats, CacheStats, CacheStats]:
        """Replay a byte-address stream; returns per-level stats."""
        for a in addresses:
            self.access(int(a))
        return self.l1.stats, self.l2.stats, self.l3.stats

    def miss_lines(self, addresses: Sequence[int]) -> np.ndarray:
        """Replay a stream and return the line numbers that missed all
        levels, in order — the DRAM request stream."""
        out: List[int] = []
        for a in addresses:
            if self.access(int(a)) == 4:
                out.append(int(a) // LINE_BYTES)
        return np.asarray(out, dtype=np.int64)
