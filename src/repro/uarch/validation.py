"""End-to-end validation of the analytic pipeline against the
event-level substrates.

The design-space sweep runs entirely on analytic models (stack-distance
caches, closed-form DRAM envelopes).  This module cross-checks one
kernel at a time against the slow, exact machinery:

1. synthesize an address stream from the kernel's reuse profile;
2. replay it through the exact set-associative hierarchy;
3. drive the FR-FCFS DRAM controller with the resulting miss stream;
4. compare miss ratios and sustained bandwidth with the analytic values.

This is the reproduction's stand-in for the paper's own validation
section (TaskSim/Dimemas <10% error, Ramulator validated upstream,
McPAT <20%): the fast path must stay anchored to the detailed one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..config.cache import CacheHierarchy
from ..dram.analytic import efficiency as dram_envelope
from ..dram.controller import DramSystem
from ..dram.timing import DramTiming, dram_standard
from ..trace.kernel import KernelSignature
from ..trace.synthesize import synthesize_calibrated
from .cache import CacheHierarchySim
from .cpu import dram_efficiency

__all__ = ["KernelValidation", "validate_kernel"]


@dataclass(frozen=True)
class KernelValidation:
    """Analytic-vs-exact comparison for one kernel."""

    kernel: str
    # per-level global miss ratios
    analytic_miss: Tuple[float, float, float]
    exact_miss: Tuple[float, float, float]
    # DRAM efficiency (fraction of channel peak) at the miss stream's
    # *measured* row locality: closed-form envelope vs FR-FCFS controller
    analytic_efficiency: Optional[float]
    measured_efficiency: Optional[float]
    #: the sweep's conservative node-level derating for this kernel
    node_model_efficiency: float = 0.0
    #: capacities beyond this are outside the synthesized stream's horizon
    representable_lines: float = 0.0

    @property
    def miss_errors(self) -> Tuple[float, float, float]:
        return tuple(abs(a - e) for a, e
                     in zip(self.analytic_miss, self.exact_miss))

    @property
    def max_miss_error(self) -> float:
        return max(self.miss_errors)

    @property
    def efficiency_error(self) -> Optional[float]:
        if self.measured_efficiency is None or self.analytic_efficiency is None:
            return None
        return abs(self.analytic_efficiency - self.measured_efficiency)

    def passed(self, miss_tol: float = 0.08,
               efficiency_tol: float = 0.25) -> bool:
        """True when the analytic path stays within tolerance."""
        if self.max_miss_error > miss_tol:
            return False
        err = self.efficiency_error
        return err is None or err <= efficiency_tol


def validate_kernel(
    sig: KernelSignature,
    hierarchy: CacheHierarchy,
    l3_share_cores: int = 32,
    n_accesses: int = 60_000,
    dram_timing: Optional[DramTiming] = None,
    seed: int = 0,
) -> KernelValidation:
    """Cross-check one kernel's analytic cache/DRAM behaviour.

    Levels whose capacity exceeds the synthesized stream's representable
    horizon are compared as-folded (both paths see the deep reuse as
    cold), which keeps the comparison apples-to-apples.
    """
    if l3_share_cores <= 0:
        raise ValueError("l3_share_cores must be positive")
    dram_timing = dram_timing or dram_standard("DDR4-2400")

    report = synthesize_calibrated(sig.reuse, n_accesses=n_accesses,
                                   seed=seed)
    # Analytic path — computed from the *measured* profile of the
    # synthesized stream so both sides describe the same traffic.
    measured_profile = report.measured
    analytic = []
    for level, share in ((hierarchy.l1, 1), (hierarchy.l2, 1),
                         (hierarchy.l3, l3_share_cores)):
        lines = max(1.0, level.n_lines / share)
        sets = max(1, level.n_sets // share)
        analytic.append(measured_profile.miss_ratio(
            lines, associativity=level.associativity, n_sets=sets))
    # Enforce inclusion like the hierarchy model does.
    analytic[1] = min(analytic[1], analytic[0])
    analytic[2] = min(analytic[2], analytic[1])

    # Exact path.
    sim = CacheHierarchySim(hierarchy, l3_shards=l3_share_cores)
    miss_lines = sim.miss_lines(report.stream)
    n = len(report.stream)
    exact = (
        sim.l1.stats.miss_ratio,
        sim.l2.stats.misses / n,
        sim.l3.stats.misses / n,
    )
    # Express analytic L2/L3 as global ratios too (they already are).

    measured_eff = None
    envelope_eff = None
    if len(miss_lines) >= 500:
        res = DramSystem(dram_timing, n_channels=1).run(
            miss_lines, write_fraction=sig.mix.store / max(sig.mix.mem, 1e-9))
        measured_eff = res.achieved_bw_gbs / dram_timing.peak_bw_gbs
        envelope_eff = dram_envelope(dram_timing,
                                     res.counts.row_hit_rate())

    return KernelValidation(
        kernel=sig.name,
        analytic_miss=tuple(analytic),
        exact_miss=exact,
        analytic_efficiency=envelope_eff,
        measured_efficiency=measured_eff,
        node_model_efficiency=dram_efficiency(sig.row_hit_rate),
        representable_lines=report.representable_lines,
    )
