"""SIMD fusion model (Sec. III, "Support for vectorization").

MUSA's tracer scalarizes every vector instruction with a marker; at
simulation time, marked scalar instructions are *fused* back together up
to the requested vector width.  Fusion of ``L`` lanes requires the same
static instruction to execute ``L`` times in a row, so the innermost
loop trip count caps the achievable width:

* a loop with trip count ``T`` and lane target ``L`` fuses
  ``floor(T / L)`` full groups; the ``T mod L`` leftover iterations run
  scalar, giving an instruction-reduction factor
  ``R = T / (floor(T/L) + T mod L)``;
* for ``T >> L`` this approaches ``L``; for ``T < L`` it is 1 — no
  benefit, which is exactly what the paper observes for LULESH's short
  loops (Sec. V-B1);
* fused memory operations move ``R x 8`` bytes each: the number of cache
  *accesses* drops but the byte traffic (and thus DRAM bandwidth demand)
  is conserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..trace.kernel import KernelSignature

__all__ = ["VectorizationResult", "fusion_factor", "vectorize",
           "vectorize_batch"]

_LANE_BITS = 64  # double-precision lane


@dataclass(frozen=True)
class VectorizationResult:
    """Effect of SIMD fusion on a kernel's dynamic instruction stream.

    All scales are multipliers on the scalarized (trace) counts.
    """

    lanes: int                  # lanes the hardware offers
    effective_lanes: float      # achieved reduction on fusable work
    instr_scale: float          # total dynamic instructions multiplier
    fp_scale: float             # fp instruction multiplier
    mem_scale: float            # memory instruction multiplier
    bytes_per_access_scale: float  # growth of per-access payload

    def __post_init__(self) -> None:
        if not 0 < self.instr_scale <= 1.0 + 1e-9:
            raise ValueError("instr_scale must be in (0, 1]")


#: Fusion at L lanes requires at least this many consecutive repetitions
#: of the static instruction per group, i.e. trip_count >= GATE * L
#: ("we require a basic block to be executed several times in a row").
_REPEAT_GATE = 2


def _fusion_at(trip_count: float, lanes: int) -> float:
    """Reduction factor fusing at exactly ``lanes`` lanes (gated)."""
    if lanes <= 1:
        return 1.0
    t = float(trip_count)
    if t < _REPEAT_GATE * lanes:
        return 1.0
    full_groups = math.floor(t / lanes)
    remainder = t - full_groups * lanes
    fused_instrs = full_groups + remainder
    if fused_instrs <= 0:
        return float(lanes)
    return max(1.0, t / fused_instrs)


def fusion_factor(trip_count: float, lanes: int) -> float:
    """Instruction-reduction factor for one loop nest on a unit with
    ``lanes`` lanes.

    A wide unit can always execute narrower fused operations, so the
    model takes the best gated reduction over power-of-two widths up to
    ``lanes``: short loops (LULESH) fuse at 128-bit on every machine but
    never profit from wider units, while long loops approach ``lanes``.
    """
    if trip_count < 1:
        raise ValueError("trip_count must be >= 1")
    if lanes <= 1:
        return 1.0
    best = 1.0
    width = 2
    while width <= lanes:
        best = max(best, _fusion_at(trip_count, width))
        width *= 2
    return best


def vectorize(sig: KernelSignature, vector_bits: int) -> VectorizationResult:
    """Apply the fusion model to a kernel for a target vector width.

    The trace is scalar-equivalent, so 64-bit width means no fusion at
    all (MEM+ configurations of Table II use 64-bit FPUs).
    """
    if vector_bits < _LANE_BITS:
        raise ValueError(f"vector width must be >= {_LANE_BITS} bits")
    lanes = vector_bits // _LANE_BITS
    r = fusion_factor(sig.trip_count, lanes)

    # Only the vectorizable fraction of fp and memory instructions fuses;
    # integer/branch/other bookkeeping stays scalar (loop control actually
    # shrinks a little with fusion, but MUSA's model keeps it, and so do we).
    vf = sig.vec_fraction
    fp_scale = (1.0 - vf) + vf / r
    mem_scale = (1.0 - vf) + vf / r

    m = sig.mix
    instr_scale = (
        m.fp * fp_scale
        + (m.load + m.store) * mem_scale
        + m.int_alu + m.branch + m.other
    )
    # Bytes per access grow exactly as accesses shrink: traffic conserved.
    bytes_scale = 1.0 / mem_scale

    return VectorizationResult(
        lanes=lanes,
        effective_lanes=r,
        instr_scale=instr_scale,
        fp_scale=fp_scale,
        mem_scale=mem_scale,
        bytes_per_access_scale=bytes_scale,
    )


def vectorize_batch(
    sig: KernelSignature,
    vector_bits: Sequence[int],
    memo: Optional[Dict[Tuple[str, int], VectorizationResult]] = None,
) -> List[VectorizationResult]:
    """:func:`vectorize` over a configuration axis.

    The vector-width axis takes only a handful of distinct values per
    sweep, so the batch collapses to one exact scalar evaluation per
    distinct width, scattered back per configuration — results are
    bitwise-identical to per-config :func:`vectorize` calls.  ``memo``
    (keyed ``(kernel, width)``) lets a caller share the distinct-width
    evaluations across batches.
    """
    by_width: Dict[int, VectorizationResult] = {}
    for w in set(vector_bits):
        if memo is not None:
            key = (sig.name, w)
            if key not in memo:
                memo[key] = vectorize(sig, w)
            by_width[w] = memo[key]
        else:
            by_width[w] = vectorize(sig, w)
    return [by_width[w] for w in vector_bits]
