"""Roofline analysis of kernels on node configurations.

The roofline model is the standard first-order lens on HPC kernels:
attainable GFLOP/s = min(peak compute, operational intensity x peak
bandwidth).  It complements the interval-analysis CPI stack with the
architect's favourite picture, computed from the same kernel
signatures and node configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..config.node import NodeConfig
from ..trace.kernel import KernelSignature
from .core_model import time_kernel
from .cpu import dram_efficiency, resolve_contention
from .vector import vectorize

__all__ = ["RooflinePoint", "roofline_point", "render_roofline"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position under a node's rooflines (per core)."""

    kernel: str
    node_label: str
    #: flops per DRAM byte (line-granular traffic)
    operational_intensity: float
    #: peak double-precision GFLOP/s of one core (fused width included)
    peak_gflops: float
    #: this core's fair share of sustainable DRAM bandwidth (GB/s)
    bandwidth_gbs: float
    #: model-predicted achieved GFLOP/s (from interval analysis)
    achieved_gflops: float

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the compute and memory roofs meet."""
        return self.peak_gflops / self.bandwidth_gbs

    @property
    def roof_gflops(self) -> float:
        """The roofline bound at this kernel's intensity."""
        return min(self.peak_gflops,
                   self.operational_intensity * self.bandwidth_gbs)

    @property
    def memory_bound(self) -> bool:
        return self.operational_intensity < self.ridge_intensity

    @property
    def roof_fraction(self) -> float:
        """Achieved performance as a fraction of the roofline bound."""
        roof = self.roof_gflops
        return self.achieved_gflops / roof if roof > 0 else 0.0


def roofline_point(sig: KernelSignature, node: NodeConfig,
                   l3_share_cores: Optional[int] = None) -> RooflinePoint:
    """Place one kernel under one node's per-core rooflines.

    ``l3_share_cores`` defaults to the node's core count (a fully
    occupied socket — the roofline's usual assumption).
    """
    share = l3_share_cores if l3_share_cores is not None else node.n_cores
    # The roofline assumes a fully occupied socket: time the kernel with
    # `share` concurrent cores contending for the channels, so achieved
    # performance respects the bandwidth roof.
    timing = resolve_contention(
        time_kernel(sig, node, l3_share_cores=share), share,
        node.memory).timing

    flops = timing.scalar_flops
    bytes_ = max(timing.dram_bytes, 1e-12)
    intensity = flops / bytes_

    # Peak compute: FPUs x effective lanes x frequency (FMA not modeled,
    # matching the timing model's one-flop-per-op accounting).
    vec = vectorize(sig, node.vector_bits)
    peak = node.core.n_fpu * vec.effective_lanes * node.frequency_ghz

    bw_share = (node.memory.peak_bw_gbs * dram_efficiency(sig.row_hit_rate)
                / share)

    achieved = flops / timing.duration_ns  # flop/ns == GFLOP/s
    return RooflinePoint(
        kernel=sig.name,
        node_label=node.label,
        operational_intensity=intensity,
        peak_gflops=peak,
        bandwidth_gbs=bw_share,
        achieved_gflops=achieved,
    )


def render_roofline(points: Sequence[RooflinePoint], width: int = 64,
                    height: int = 16) -> str:
    """ASCII log-log roofline with the kernels placed on it.

    All points must share a node (one roof); kernels are labelled by
    their first letter.
    """
    if not points:
        raise ValueError("need at least one point")
    labels = {p.node_label for p in points}
    if len(labels) != 1:
        raise ValueError("all points must share one node configuration")
    p0 = points[0]

    xs = [p.operational_intensity for p in points] + [p0.ridge_intensity]
    x_min = min(xs) / 4
    x_max = max(xs) * 4
    y_max = p0.peak_gflops * 2
    y_min = min(min(p.achieved_gflops for p in points),
                x_min * p0.bandwidth_gbs) / 2

    def col(x: float) -> int:
        return int((math.log10(x) - math.log10(x_min))
                   / (math.log10(x_max) - math.log10(x_min))
                   * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - int(
            (math.log10(max(y, y_min)) - math.log10(y_min))
            / (math.log10(y_max) - math.log10(y_min)) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # Roof: memory slope then compute flat.
    for c in range(width):
        x = 10 ** (math.log10(x_min)
                   + c / (width - 1) * (math.log10(x_max)
                                        - math.log10(x_min)))
        y = min(p0.peak_gflops, x * p0.bandwidth_gbs)
        r = min(max(row(y), 0), height - 1)
        grid[r][c] = "-" if y >= p0.peak_gflops else "/"
    for p in points:
        r = min(max(row(p.achieved_gflops), 0), height - 1)
        c = min(max(col(p.operational_intensity), 0), width - 1)
        grid[r][c] = p.kernel[0].upper()

    lines = [f"Roofline — {p0.node_label} "
             f"(peak {p0.peak_gflops:.1f} GF/s, "
             f"BW share {p0.bandwidth_gbs:.1f} GB/s)"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width + "-> operational intensity (flop/byte)")
    for p in points:
        kind = "memory-bound" if p.memory_bound else "compute-bound"
        lines.append(
            f"  {p.kernel[0].upper()} = {p.kernel}: OI "
            f"{p.operational_intensity:.2f}, {p.achieved_gflops:.2f} GF/s "
            f"({p.roof_fraction:.0%} of roof, {kind})")
    return "\n".join(lines)
