"""Analytic cache-hierarchy model from reuse-distance profiles.

The fast path of the sweep: per-level global miss ratios are computed
directly from a kernel's :class:`~repro.trace.kernel.ReuseProfile`
(Mattson stack distances + Hill/Smith set-associative correction)
instead of replaying addresses.  The shared L3 is fair-shared among the
cores concurrently running tasks, which is how the paper's per-core L3
capacity argument ("1MB of LLC per core", Sec. V-B2) enters the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.cache import CacheHierarchy
from ..obs import get_metrics
from ..trace.kernel import KernelSignature

__all__ = ["MissProfile", "hierarchy_miss_profile",
           "hierarchy_miss_profile_batch"]


@dataclass(frozen=True)
class MissProfile:
    """Global (per memory access) miss ratios of the three levels.

    ``miss_lX`` is the probability that an access misses level X (and
    therefore accesses level X+1); the hierarchy is inclusive so the
    ratios are monotonically non-increasing.
    """

    miss_l1: float
    miss_l2: float
    miss_l3: float

    def __post_init__(self) -> None:
        for name, v in (("miss_l1", self.miss_l1), ("miss_l2", self.miss_l2),
                        ("miss_l3", self.miss_l3)):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")
        if not self.miss_l1 >= self.miss_l2 >= self.miss_l3:
            raise ValueError("miss ratios must be non-increasing across levels")

    def mpki(self, mem_per_instr: float) -> tuple:
        """(L1, L2, L3) misses-per-kilo-instruction for a given memory
        instruction density (after any SIMD fusion)."""
        if mem_per_instr < 0:
            raise ValueError("mem_per_instr must be non-negative")
        return (
            1000.0 * mem_per_instr * self.miss_l1,
            1000.0 * mem_per_instr * self.miss_l2,
            1000.0 * mem_per_instr * self.miss_l3,
        )


def hierarchy_miss_profile(
    sig: KernelSignature,
    hierarchy: CacheHierarchy,
    l3_share_cores: int = 1,
    access_granularity_scale: float = 1.0,
) -> MissProfile:
    """Per-level miss ratios of ``sig``'s access stream on ``hierarchy``.

    Parameters
    ----------
    l3_share_cores:
        Number of cores concurrently competing for the shared L3; the
        profile sees ``L3 / l3_share_cores`` of the capacity.  Use the
        *occupied* core count — idle cores don't pollute the LLC
        (Sec. V-A's underused-shared-resources observation).
    access_granularity_scale:
        SIMD fusion widens each access; a fused access touches adjacent
        lines it would have touched anyway, so line-level reuse distances
        are unchanged — this parameter exists for sensitivity studies
        (ablation: set >1 to model fused accesses spanning lines).
    """
    if l3_share_cores <= 0:
        raise ValueError("l3_share_cores must be positive")
    if access_granularity_scale <= 0:
        raise ValueError("access_granularity_scale must be positive")

    reuse = sig.reuse
    if access_granularity_scale != 1.0:
        reuse = reuse.scaled(access_granularity_scale)

    l1, l2, l3 = hierarchy.l1, hierarchy.l2, hierarchy.l3
    m1 = reuse.miss_ratio(l1.n_lines, associativity=l1.associativity,
                          n_sets=l1.n_sets)
    m2 = reuse.miss_ratio(l2.n_lines, associativity=l2.associativity,
                          n_sets=l2.n_sets)
    l3_lines = max(1.0, l3.n_lines / l3_share_cores)
    l3_sets = max(1, int(l3.n_sets // l3_share_cores))
    m3 = reuse.miss_ratio(l3_lines, associativity=l3.associativity,
                          n_sets=l3_sets)

    # Enforce inclusion monotonicity (the binomial approximation can
    # produce tiny inversions when a lower level is smaller per-set).
    m2 = min(m2, m1)
    m3 = min(m3, m2)
    return MissProfile(miss_l1=m1, miss_l2=m2, miss_l3=m3)


def hierarchy_miss_profile_batch(
    sig: KernelSignature,
    hierarchies: Sequence[CacheHierarchy],
    shares: Sequence[int],
    memo: Optional[Dict[Tuple, MissProfile]] = None,
) -> List[MissProfile]:
    """:func:`hierarchy_miss_profile` over a configuration axis.

    Miss ratios depend only on ``(hierarchy, l3_share_cores)``, and a
    sweep batch contains few distinct pairs (3 cache presets x a handful
    of occupancy values).  The distinct pairs' per-level cache
    geometries are deduplicated (the fixed L1 is shared by every preset)
    and evaluated in **one** :meth:`~repro.trace.kernel.ReuseProfile.\
miss_ratio_batch` pass — bitwise-identical to per-config scalar
    :func:`hierarchy_miss_profile` calls, since the batched miss model
    is bitwise-identical per geometry and the monotonicity clamp is
    applied the same way per pair.  The number of geometry rows actually
    evaluated is counted under ``miss.batch.geometries``.  ``memo`` —
    keyed ``(kernel, hierarchy, share)`` on the full hashable hierarchy,
    never a display label — lets a caller share distinct-pair
    evaluations across batches.
    """
    if len(hierarchies) != len(shares):
        raise ValueError("hierarchies and shares must align")
    local: Dict[Tuple, Optional[MissProfile]] = {}
    keys: List[Tuple] = []
    pending: List[Tuple[CacheHierarchy, int]] = []
    for h, s in zip(hierarchies, shares):
        s = int(s)
        lk = (h, s)
        keys.append(lk)
        if lk in local:
            continue
        prof = memo.get((sig.name, h, s)) if memo is not None else None
        local[lk] = prof
        if prof is None:
            pending.append(lk)

    if pending:
        # Dedup the (capacity, assoc, n_sets) rows across pairs and levels,
        # evaluate them in a single 2-D pass, then gather per pair.
        geom_index: Dict[Tuple[float, int, int], int] = {}
        rows: List[Tuple[float, int, int]] = []

        def _row(cap: float, assoc: int, n_sets: int) -> int:
            g = (cap, assoc, n_sets)
            i = geom_index.get(g)
            if i is None:
                i = geom_index[g] = len(rows)
                rows.append(g)
            return i

        level_idx = []
        for h, s in pending:
            l1, l2, l3 = h.l1, h.l2, h.l3
            l3_lines = max(1.0, l3.n_lines / s)
            l3_sets = max(1, int(l3.n_sets // s))
            level_idx.append((
                _row(float(l1.n_lines), l1.associativity, l1.n_sets),
                _row(float(l2.n_lines), l2.associativity, l2.n_sets),
                _row(l3_lines, l3.associativity, l3_sets),
            ))
        geom = np.asarray(rows, dtype=np.float64)
        miss = sig.reuse.miss_ratio_batch(
            geom[:, 0], geom[:, 1].astype(np.int64),
            geom[:, 2].astype(np.int64))
        get_metrics().inc("miss.batch.geometries", len(rows))

        for (h, s), (i1, i2, i3) in zip(pending, level_idx):
            m1 = float(miss[i1])
            m2 = min(float(miss[i2]), m1)
            m3 = min(float(miss[i3]), m2)
            prof = MissProfile(miss_l1=m1, miss_l2=m2, miss_l3=m3)
            local[(h, s)] = prof
            if memo is not None:
                memo[(sig.name, h, s)] = prof

    return [local[k] for k in keys]
