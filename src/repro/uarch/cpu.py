"""Node-level multicore model: shared-memory bandwidth contention.

Per-core kernel timings from :mod:`.core_model` assume an unloaded
memory system.  When many cores run concurrently their combined DRAM
traffic contends for the channels; this module resolves the resulting
slowdown with a damped fixed-point iteration:

* channel *capacity* is the peak bandwidth derated by a row-locality
  efficiency factor (random streams pay activate/precharge overheads,
  as the event-level :mod:`repro.dram` controller shows);
* queueing delay inflates the DRAM-stall portion of each core's time as
  utilization grows (an M/M/1-flavoured term), with a hard throughput
  floor: a node can never move more bytes per second than the channels
  provide.

Only LULESH (and hypothetically-scaling SPMZ) generates enough demand
to saturate four DDR4 channels at 64 cores, reproducing Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.memory import MemoryConfig
from .core_model import KernelTiming

__all__ = ["ContentionResult", "dram_efficiency", "resolve_contention"]

#: Queueing-term strength and maximum utilization of the smooth region.
_QUEUE_GAIN = 0.8
_U_CLIP = 0.93
_MAX_ITER = 24
_DAMPING = 0.5


def dram_efficiency(row_hit_rate: float) -> float:
    """Achievable fraction of peak channel bandwidth.

    Streaming access (row-hit ~1) sustains ~75% of peak; fully random
    access (~0) pays ACT/PRE plus scheduling overheads on every access
    and sustains ~40%.  Linear in between — the conservative end of what
    the event-level controller measures, matching the paper's implied
    DDR4 efficiency (its 0.5 Grq/s LULESH node saturates four channels).
    """
    if not 0.0 <= row_hit_rate <= 1.0:
        raise ValueError("row_hit_rate must be in [0, 1]")
    return 0.40 + 0.35 * row_hit_rate


@dataclass(frozen=True)
class ContentionResult:
    """Outcome of the node-level bandwidth fixed point."""

    timing: KernelTiming        # per-core timing with inflated DRAM stalls
    utilization: float          # achieved / capacity (post-derating)
    achieved_bw_gbs: float      # aggregate node DRAM bandwidth
    capacity_gbs: float         # derated node capacity
    mem_stall_multiplier: float

    @property
    def saturated(self) -> bool:
        return self.utilization >= _U_CLIP


def resolve_contention(
    timing: KernelTiming,
    n_busy_cores: int,
    memory: MemoryConfig,
) -> ContentionResult:
    """Resolve bandwidth contention for ``n_busy_cores`` cores running
    the given kernel concurrently.

    The phase simulator calls this with the *occupied* core count (from
    the runtime schedule), so poorly-scaling applications never build up
    enough demand to saturate the channels — the Specfem3D-vs-LULESH
    asymmetry of Sec. V-B4.
    """
    if n_busy_cores <= 0:
        raise ValueError("n_busy_cores must be positive")

    capacity = memory.peak_bw_gbs * dram_efficiency(timing.row_hit_rate)
    bytes_per_unit = timing.dram_bytes
    freq = timing.frequency_ghz
    t_fixed = (timing.base_cycles + timing.l2_stall_cycles
               + timing.l3_stall_cycles)
    t_mem0 = timing.mem_stall_cycles

    if bytes_per_unit <= 0 or t_mem0 <= 0:
        return ContentionResult(timing, 0.0, 0.0, capacity, 1.0)

    # Fixed point on per-unit duration d (cycles).
    d = t_fixed + t_mem0
    # Hard floor: this core's bytes cannot beat its fair bandwidth share.
    d_floor = bytes_per_unit / (capacity / n_busy_cores) * freq  # ns->cycles
    for _ in range(_MAX_ITER):
        demand = n_busy_cores * bytes_per_unit / (d / freq)  # B/ns == GB/s
        u = demand / capacity
        uc = min(u, _U_CLIP)
        inflate = 1.0 + _QUEUE_GAIN * uc * uc / (1.0 - uc)
        d_new = max(t_fixed + t_mem0 * inflate, d_floor)
        if abs(d_new - d) < 1e-9 * max(d, 1.0):
            d = d_new
            break
        d = _DAMPING * d + (1.0 - _DAMPING) * d_new
    d = max(d, d_floor, t_fixed + t_mem0)

    # Guard against catastrophic cancellation when t_mem0 is tiny.
    mult = max(1.0, (d - t_fixed) / t_mem0)
    achieved = n_busy_cores * bytes_per_unit / (d / freq)
    return ContentionResult(
        timing=timing.with_mem_stall_scaled(mult),
        utilization=achieved / capacity,
        achieved_bw_gbs=achieved,
        capacity_gbs=capacity,
        mem_stall_multiplier=mult,
    )
