"""CPI-stack explanation of kernel timings.

Architects read interval-analysis results as a "CPI stack": how many
cycles per instruction go to issue limits, dependency stalls, and each
memory level.  This module decomposes a
:class:`~repro.uarch.core_model.KernelTiming` into that stack, names
the binding bottleneck, and renders it for humans — the reproduction's
equivalent of staring at TaskSim statistics dumps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..config.node import NodeConfig
from ..trace.kernel import KernelSignature
from .core_model import KernelTiming, time_kernel
from .vector import vectorize

__all__ = ["CpiStack", "explain_kernel"]


@dataclass(frozen=True)
class CpiStack:
    """Cycles-per-instruction decomposition of one kernel on one node."""

    kernel: str
    node_label: str
    ipc: float
    #: (component name, cycles per fused instruction) in stack order
    components: Tuple[Tuple[str, float], ...]
    bottleneck: str
    base_bound: str        # which throughput bound binds the base term

    @property
    def cpi(self) -> float:
        return sum(c for _, c in self.components)

    def render(self) -> str:
        width = 44
        total = self.cpi
        lines = [
            f"CPI stack — {self.kernel} on {self.node_label}",
            f"  IPC {self.ipc:.2f}   CPI {total:.3f}   "
            f"bottleneck: {self.bottleneck} (base bound: {self.base_bound})",
        ]
        for name, cycles in self.components:
            share = cycles / total if total > 0 else 0.0
            bar = "#" * max(0, int(round(share * width)))
            lines.append(f"  {name:<10s} {cycles:7.3f}  {share:6.1%} |{bar}")
        return "\n".join(lines)


def explain_kernel(sig: KernelSignature, node: NodeConfig,
                   l3_share_cores: int = 1) -> CpiStack:
    """Time a kernel and decompose its cycles into a CPI stack."""
    timing = time_kernel(sig, node, l3_share_cores=l3_share_cores)
    n = timing.instructions
    if n <= 0:
        raise ValueError("kernel executes no instructions")

    components = (
        ("base", timing.base_cycles / n),
        ("L2 stall", timing.l2_stall_cycles / n),
        ("L3 stall", timing.l3_stall_cycles / n),
        ("DRAM stall", timing.mem_stall_cycles / n),
    )
    bottleneck = max(components, key=lambda c: c[1])[0]

    # Recompute which throughput bound binds the base term.
    core = node.core
    vec = vectorize(sig, node.vector_bits)
    n0 = sig.instr_per_unit
    m = sig.mix
    n_instr = n0 * vec.instr_scale
    bounds = {
        "issue width": n_instr / core.issue_width,
        "dependencies (ILP)": n_instr / sig.ilp,
        "FPU throughput": n0 * m.fp * vec.fp_scale / core.n_fpu,
        "L1 ports": n0 * m.mem * vec.mem_scale / core.l1_ports,
        "ALU throughput": n0 * (m.int_alu + m.other + m.branch) / core.n_alu,
    }
    base_bound = max(bounds, key=bounds.get)

    return CpiStack(
        kernel=sig.name,
        node_label=node.label,
        ipc=timing.ipc,
        components=components,
        bottleneck=bottleneck,
        base_bound=base_bound,
    )
