"""Config-major batched kernel timing (vectorized over configurations).

The sweep evaluates every kernel signature against hundreds of node
configurations; the per-config scalar path spends most of its time in
Python call overhead for :func:`~repro.uarch.core_model.time_kernel`
and :func:`~repro.uarch.cpu.resolve_contention`.  This module lays the
configuration axis out as NumPy arrays (struct-of-arrays over
:class:`~repro.config.node.NodeConfig`) and evaluates all configs of a
batch with elementwise array arithmetic.

**Exactness contract** (enforced by the property suite): every batched
result is bitwise-identical to the scalar path, not merely close.

* miss profiles and SIMD fusion take few distinct values per batch, so
  they are computed by the *scalar* model once per distinct value and
  scattered (:func:`~.hierarchy.hierarchy_miss_profile_batch`,
  :func:`~.vector.vectorize_batch`) — trivially exact;
* the interval-analysis formulas and the contention fixed point are
  replicated op-for-op: same operand order, same associativity, same
  float64 intermediates.  IEEE-754 elementwise ops are deterministic,
  so identical operation sequences give identical bits;
* the contention fixed point converges per-config; an *active mask*
  freezes each lane at exactly the iteration where the scalar loop
  would ``break``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.cache import LINE_BYTES, CacheHierarchy
from ..config.memory import MemoryConfig
from ..config.node import NodeConfig
from ..trace.kernel import KernelSignature
from .core_model import _MIN_EXPOSURE, KernelTiming
from .cpu import _DAMPING, _MAX_ITER, _QUEUE_GAIN, _U_CLIP, dram_efficiency
from .hierarchy import MissProfile, hierarchy_miss_profile_batch
from .vector import VectorizationResult, vectorize_batch

__all__ = [
    "ContentionBatch",
    "KernelTimingBatch",
    "NodeBatch",
    "resolve_contention_batch",
    "time_kernel_batch",
]


@dataclass(frozen=True)
class NodeBatch:
    """Struct-of-arrays view of a sequence of node configurations.

    Numeric fields become float64 columns (integer configuration values
    convert to float64 exactly); categorical fields (cache hierarchy,
    memory technology) stay as object lists for the dedupe-and-scatter
    sub-models.
    """

    nodes: Tuple[NodeConfig, ...]
    issue_width: np.ndarray
    n_fpu: np.ndarray
    n_alu: np.ndarray
    l1_ports: np.ndarray
    store_buffer: np.ndarray
    rob_size: np.ndarray
    max_mlp: np.ndarray
    frequency_ghz: np.ndarray
    l2_latency: np.ndarray
    l3_latency: np.ndarray
    idle_latency_ns: np.ndarray
    peak_bw_gbs: np.ndarray
    n_cores: np.ndarray
    vector_bits: Tuple[int, ...]
    hierarchies: Tuple[CacheHierarchy, ...]
    memories: Tuple[MemoryConfig, ...]

    def __len__(self) -> int:
        return len(self.nodes)

    @classmethod
    def from_nodes(cls, nodes: Sequence[NodeConfig]) -> "NodeBatch":
        nodes = tuple(nodes)
        if not nodes:
            raise ValueError("NodeBatch needs at least one node")
        f64 = np.float64
        return cls(
            nodes=nodes,
            issue_width=np.array([n.core.issue_width for n in nodes], f64),
            n_fpu=np.array([n.core.n_fpu for n in nodes], f64),
            n_alu=np.array([n.core.n_alu for n in nodes], f64),
            l1_ports=np.array([n.core.l1_ports for n in nodes], f64),
            store_buffer=np.array([n.core.store_buffer for n in nodes], f64),
            rob_size=np.array([n.core.rob_size for n in nodes], f64),
            max_mlp=np.array([n.core.max_mlp for n in nodes], f64),
            frequency_ghz=np.array([n.frequency_ghz for n in nodes], f64),
            l2_latency=np.array(
                [n.cache.l2.latency_cycles for n in nodes], f64),
            l3_latency=np.array(
                [n.cache.l3.latency_cycles for n in nodes], f64),
            idle_latency_ns=np.array(
                [n.memory.idle_latency_ns for n in nodes], f64),
            peak_bw_gbs=np.array([n.memory.peak_bw_gbs for n in nodes], f64),
            n_cores=np.array([n.n_cores for n in nodes], np.int64),
            vector_bits=tuple(n.vector_bits for n in nodes),
            hierarchies=tuple(n.cache for n in nodes),
            memories=tuple(n.memory for n in nodes),
        )


@dataclass(frozen=True)
class KernelTimingBatch:
    """Column-wise :class:`~repro.uarch.core_model.KernelTiming`.

    Every array has one entry per configuration of the originating
    :class:`NodeBatch`; scalar fields are configuration-invariant.
    """

    kernel: str
    base_cycles: np.ndarray
    l2_stall_cycles: np.ndarray
    l3_stall_cycles: np.ndarray
    mem_stall_cycles: np.ndarray
    instructions: np.ndarray
    scalar_flops: float
    l1_accesses: np.ndarray
    l2_accesses: np.ndarray
    l3_accesses: np.ndarray
    dram_accesses: np.ndarray
    dram_lines: np.ndarray
    frequency_ghz: np.ndarray
    row_hit_rate: float
    miss_profiles: Tuple[MissProfile, ...]
    vectorizations: Tuple[VectorizationResult, ...]

    def __len__(self) -> int:
        return len(self.base_cycles)

    @property
    def cycles(self) -> np.ndarray:
        # Same left-to-right association as KernelTiming.cycles.
        return (self.base_cycles + self.l2_stall_cycles
                + self.l3_stall_cycles + self.mem_stall_cycles)

    @property
    def duration_ns(self) -> np.ndarray:
        return self.cycles / self.frequency_ghz

    @property
    def dram_bytes(self) -> np.ndarray:
        return self.dram_lines * LINE_BYTES

    def with_mem_stall_scaled(self, factors: np.ndarray) -> "KernelTimingBatch":
        return replace(self, mem_stall_cycles=self.mem_stall_cycles * factors)

    def at(self, i: int) -> KernelTiming:
        """Materialize the scalar timing of configuration ``i``."""
        return KernelTiming(
            kernel=self.kernel,
            base_cycles=float(self.base_cycles[i]),
            l2_stall_cycles=float(self.l2_stall_cycles[i]),
            l3_stall_cycles=float(self.l3_stall_cycles[i]),
            mem_stall_cycles=float(self.mem_stall_cycles[i]),
            instructions=float(self.instructions[i]),
            scalar_flops=self.scalar_flops,
            l1_accesses=float(self.l1_accesses[i]),
            l2_accesses=float(self.l2_accesses[i]),
            l3_accesses=float(self.l3_accesses[i]),
            dram_accesses=float(self.dram_accesses[i]),
            dram_lines=float(self.dram_lines[i]),
            frequency_ghz=float(self.frequency_ghz[i]),
            row_hit_rate=self.row_hit_rate,
            miss_profile=self.miss_profiles[i],
            vectorization=self.vectorizations[i],
        )


def time_kernel_batch(
    sig: KernelSignature,
    batch: NodeBatch,
    shares: Sequence[int],
    mem_latency_ns: float = 0.0,
    miss_memo: Optional[Dict[Tuple[str, str, int], MissProfile]] = None,
    vec_memo: Optional[Dict[Tuple[str, int], VectorizationResult]] = None,
) -> KernelTimingBatch:
    """Batched :func:`~repro.uarch.core_model.time_kernel`.

    ``shares[i]`` is ``l3_share_cores`` for configuration ``i``.  The
    arithmetic mirrors the scalar function operation-for-operation (see
    the module docstring for why that yields bitwise equality).
    """
    vecs = vectorize_batch(sig, batch.vector_bits, memo=vec_memo)
    profiles = hierarchy_miss_profile_batch(
        sig, batch.hierarchies, shares, memo=miss_memo)

    f64 = np.float64
    instr_scale = np.array([v.instr_scale for v in vecs], f64)
    fp_scale = np.array([v.fp_scale for v in vecs], f64)
    mem_scale = np.array([v.mem_scale for v in vecs], f64)
    miss_l1 = np.array([p.miss_l1 for p in profiles], f64)
    miss_l2 = np.array([p.miss_l2 for p in profiles], f64)
    miss_l3 = np.array([p.miss_l3 for p in profiles], f64)

    n0 = sig.instr_per_unit
    m = sig.mix
    n_instr = n0 * instr_scale
    n_fp = (n0 * m.fp) * fp_scale       # scalar: (n0 * m.fp) * fp_scale
    n_mem = (n0 * m.mem) * mem_scale
    n_int = n0 * (m.int_alu + m.other)  # config-invariant scalars
    n_br = n0 * m.branch

    # --- base component (same operand order as the scalar model) -------------
    dispatch = n_instr / batch.issue_width
    dependency = n_instr / sig.ilp
    fu_fp = n_fp / batch.n_fpu
    fu_mem = n_mem / batch.l1_ports
    store_ports = np.where(batch.store_buffer < 64, 1.0, 2.0)
    fu_store = ((n0 * m.store) * mem_scale) / store_ports
    fu_int = (n_int + n_br) / batch.n_alu
    base = np.maximum(np.maximum(np.maximum(np.maximum(np.maximum(
        dispatch, dependency), fu_fp), fu_mem), fu_store), fu_int)

    # --- stall components -----------------------------------------------------
    with np.errstate(divide="ignore", invalid="ignore"):
        ipc_base = np.where(base > 0, n_instr / base, batch.issue_width)
    hide_window = batch.rob_size / np.maximum(np.minimum(ipc_base, 4.0), 1e-9)

    l2_acc = n_mem * miss_l1
    l3_acc = n_mem * miss_l2
    dram_acc = n_mem * miss_l3
    dram_lines_traffic = (n0 * m.mem) * miss_l3

    l2_stall = l2_acc * np.maximum(batch.l2_latency - hide_window,
                                   batch.l2_latency * _MIN_EXPOSURE)
    l3_stall = l3_acc * np.maximum(batch.l3_latency - hide_window,
                                   batch.l3_latency * _MIN_EXPOSURE)

    if mem_latency_ns > 0:
        lat_ns = np.full(len(batch), f64(mem_latency_ns))
    else:
        lat_ns = batch.idle_latency_ns
    mem_lat_cycles = lat_ns * batch.frequency_ghz
    with np.errstate(divide="ignore", invalid="ignore"):
        miss_per_instr = np.where(n_instr > 0, dram_acc / n_instr, 0.0)
    window_mlp = np.maximum(1.0, batch.rob_size * miss_per_instr)
    prefetch_mlp = sig.mlp * sig.row_hit_rate
    mlp_eff = np.maximum(1.0, np.minimum(
        np.minimum(sig.mlp, batch.max_mlp),
        np.maximum(window_mlp, prefetch_mlp)))
    mem_exposure = np.maximum(mem_lat_cycles - hide_window,
                              mem_lat_cycles * _MIN_EXPOSURE)
    mem_stall = dram_acc * mem_exposure / mlp_eff

    return KernelTimingBatch(
        kernel=sig.name,
        base_cycles=base,
        l2_stall_cycles=l2_stall,
        l3_stall_cycles=l3_stall,
        mem_stall_cycles=mem_stall,
        instructions=n_instr,
        scalar_flops=n0 * m.fp,
        l1_accesses=n_mem,
        l2_accesses=l2_acc,
        l3_accesses=l3_acc,
        dram_accesses=dram_acc,
        dram_lines=dram_lines_traffic,
        frequency_ghz=batch.frequency_ghz,
        row_hit_rate=sig.row_hit_rate,
        miss_profiles=tuple(profiles),
        vectorizations=tuple(vecs),
    )


@dataclass(frozen=True)
class ContentionBatch:
    """Column-wise :class:`~repro.uarch.cpu.ContentionResult`."""

    timing: KernelTimingBatch
    utilization: np.ndarray
    achieved_bw_gbs: np.ndarray
    capacity_gbs: np.ndarray
    mem_stall_multiplier: np.ndarray


def resolve_contention_batch(
    timing: KernelTimingBatch,
    n_busy_cores: np.ndarray,
    batch: NodeBatch,
) -> ContentionBatch:
    """Batched :func:`~repro.uarch.cpu.resolve_contention`.

    ``n_busy_cores[i]`` is the occupied core count of configuration
    ``i``.  The damped fixed point runs with an *active* mask: a lane
    that satisfies the scalar convergence test is assigned ``d_new``
    and frozen — exactly where the scalar loop breaks — so every lane
    reproduces its scalar iteration sequence bit-for-bit.
    """
    n_busy = np.asarray(n_busy_cores, dtype=np.float64)
    if np.any(n_busy <= 0):
        raise ValueError("n_busy_cores must be positive")

    capacity = batch.peak_bw_gbs * dram_efficiency(timing.row_hit_rate)
    bytes_per_unit = timing.dram_bytes
    freq = timing.frequency_ghz
    t_fixed = (timing.base_cycles + timing.l2_stall_cycles
               + timing.l3_stall_cycles)
    t_mem0 = timing.mem_stall_cycles

    trivial = (bytes_per_unit <= 0) | (t_mem0 <= 0)
    active = ~trivial

    d = t_fixed + t_mem0
    with np.errstate(divide="ignore", invalid="ignore"):
        d_floor = bytes_per_unit / (capacity / n_busy) * freq
        for _ in range(_MAX_ITER):
            if not active.any():
                break
            demand = n_busy * bytes_per_unit / (d / freq)
            u = demand / capacity
            uc = np.minimum(u, _U_CLIP)
            inflate = 1.0 + _QUEUE_GAIN * uc * uc / (1.0 - uc)
            d_new = np.maximum(t_fixed + t_mem0 * inflate, d_floor)
            conv = np.abs(d_new - d) < 1e-9 * np.maximum(d, 1.0)
            d = np.where(
                active,
                np.where(conv, d_new, _DAMPING * d + (1.0 - _DAMPING) * d_new),
                d,
            )
            active = active & ~conv
        d = np.maximum(np.maximum(d, d_floor), t_fixed + t_mem0)

        mult = np.where(
            trivial, 1.0,
            np.maximum(1.0, (d - t_fixed) / np.where(trivial, 1.0, t_mem0)))
        achieved = np.where(
            trivial, 0.0, n_busy * bytes_per_unit / (d / freq))
        utilization = np.where(trivial, 0.0, achieved / capacity)

    return ContentionBatch(
        timing=timing.with_mem_stall_scaled(mult),
        utilization=utilization,
        achieved_bw_gbs=achieved,
        capacity_gbs=capacity,
        mem_stall_multiplier=mult,
    )
