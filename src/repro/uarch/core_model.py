"""Interval-analysis out-of-order core timing model (TaskSim substitute).

Per-kernel cycle counts are composed from first-order bounds, the
standard interval-analysis decomposition:

* a **base** component — the steady-state dispatch rate limited by issue
  width, the kernel's dataflow ILP, and functional-unit throughput
  (ALUs, FPUs, L1 ports, store-buffer drain);
* **short-stall** components for L2/L3 hits, partially hidden by the
  OoO window (a ROB that covers the latency at base IPC hides most of
  it);
* a **long-stall** component for DRAM accesses, divided by the effective
  memory-level parallelism: the minimum of the kernel's inherent MLP,
  the core's MSHR bound, and the number of misses the ROB window can
  hold — this is what makes big windows pay off for latency-bound codes
  (Specfem3D, Sec. V-B3) and not for bandwidth-bound ones.

SIMD fusion rescales the instruction stream first (:mod:`.vector`);
cache miss ratios come from :mod:`.hierarchy`.  All quantities are per
*work unit* so task durations follow from ``TaskRecord.work_units``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config.cache import LINE_BYTES
from ..config.node import NodeConfig
from ..trace.kernel import KernelSignature
from .hierarchy import MissProfile, hierarchy_miss_profile
from .vector import VectorizationResult, vectorize

__all__ = ["KernelTiming", "time_kernel"]

#: Fraction of a stall that can never be hidden even by a huge window
#: (dependent loads, branch mispredict refills at the miss boundary).
_MIN_EXPOSURE = 0.18


@dataclass(frozen=True)
class KernelTiming:
    """Timing and event counts of one kernel, per work unit.

    Event counts feed the McPAT/DRAMPower substitutes; the cycle
    breakdown feeds the bandwidth-contention fixed point (only the
    ``mem_stall_cycles`` component is inflated by queueing).
    """

    kernel: str
    # cycle breakdown (per work unit, at the configured frequency)
    base_cycles: float
    l2_stall_cycles: float
    l3_stall_cycles: float
    mem_stall_cycles: float
    # event counts (per work unit)
    instructions: float        # fused dynamic instructions
    scalar_flops: float        # actual arithmetic work (fusion-invariant)
    l1_accesses: float         # memory instructions after fusion
    l2_accesses: float
    l3_accesses: float
    dram_accesses: float       # DRAM access *events* (fused granularity)
    dram_lines: float          # line-granular DRAM traffic (fusion-invariant)
    frequency_ghz: float
    row_hit_rate: float
    miss_profile: MissProfile
    vectorization: VectorizationResult

    @property
    def cycles(self) -> float:
        return (self.base_cycles + self.l2_stall_cycles
                + self.l3_stall_cycles + self.mem_stall_cycles)

    @property
    def duration_ns(self) -> float:
        return self.cycles / self.frequency_ghz

    @property
    def dram_bytes(self) -> float:
        """Bytes moved from DRAM (conserved under SIMD fusion)."""
        return self.dram_lines * LINE_BYTES

    @property
    def mem_stall_fraction(self) -> float:
        """Share of time sensitive to memory queueing delay."""
        c = self.cycles
        return self.mem_stall_cycles / c if c > 0 else 0.0

    @property
    def ipc(self) -> float:
        c = self.cycles
        return self.instructions / c if c > 0 else 0.0

    def with_mem_stall_scaled(self, factor: float) -> "KernelTiming":
        """Timing with the DRAM-stall component inflated by ``factor``
        (bandwidth-contention queueing)."""
        if factor < 1.0:
            raise ValueError("contention can only slow execution down")
        return replace(self, mem_stall_cycles=self.mem_stall_cycles * factor)

    def mpki(self) -> tuple:
        """(L1, L2, L3) misses per kilo (fused) instruction."""
        n = self.instructions
        if n <= 0:
            return (0.0, 0.0, 0.0)
        return (1000.0 * self.l2_accesses / n,
                1000.0 * self.l3_accesses / n,
                1000.0 * self.dram_accesses / n)


def _exposure(latency_cycles: float, hide_window_cycles: float) -> float:
    """Visible stall of one miss of the given latency.

    A window that can keep ``hide_window_cycles`` of independent work in
    flight hides that much of the latency; a floor models inherently
    serial fractions (pointer chases, dependent uses at the head).
    """
    return max(latency_cycles - hide_window_cycles,
               latency_cycles * _MIN_EXPOSURE)


def time_kernel(
    sig: KernelSignature,
    node: NodeConfig,
    l3_share_cores: int = 1,
    mem_latency_ns: float = 0.0,
) -> KernelTiming:
    """Time one kernel on one core of ``node``.

    ``l3_share_cores`` is the number of cores concurrently sharing the
    L3 (occupied cores).  ``mem_latency_ns`` overrides the unloaded
    memory latency (0 = take it from the node's memory config); the
    node-level model passes a queueing-inflated value on iteration.
    """
    core = node.core
    vec = vectorize(sig, node.vector_bits)
    miss = hierarchy_miss_profile(sig, node.cache, l3_share_cores=l3_share_cores)

    n0 = sig.instr_per_unit
    m = sig.mix
    n_instr = n0 * vec.instr_scale
    n_fp = n0 * m.fp * vec.fp_scale
    n_mem = n0 * m.mem * vec.mem_scale
    n_int = n0 * (m.int_alu + m.other)
    n_br = n0 * m.branch

    # --- base component: throughput bounds -----------------------------------
    dispatch = n_instr / core.issue_width
    dependency = n_instr / sig.ilp
    fu_fp = n_fp / core.n_fpu
    fu_mem = n_mem / core.l1_ports
    # Small store buffers drain stores one per cycle; larger ones two.
    store_ports = 1 if core.store_buffer < 64 else 2
    fu_store = (n0 * m.store * vec.mem_scale) / store_ports
    fu_int = (n_int + n_br) / core.n_alu
    base = max(dispatch, dependency, fu_fp, fu_mem, fu_store, fu_int)

    # --- stall components -----------------------------------------------------
    ipc_base = n_instr / base if base > 0 else core.issue_width
    # The window hides latency for the time it takes to refill the ROB
    # with independent work.  The drain rate is capped at 4/cycle —
    # beyond that, rename/commit and L1 ports bound how fast useful work
    # enters the window — which also keeps hiding (near-)monotone in
    # core class (a raw rob/ipc would make wider cores hide *less*).
    hide_window = core.rob_size / max(min(ipc_base, 4.0), 1e-9)

    # Cache accesses and their latency events scale with the *fused*
    # memory-instruction count — MUSA's fusion model fuses memory
    # operations like arithmetic ones (Sec. III; the authors note this
    # "may overestimate the vectorization impact", and we reproduce that
    # behaviour; see bench_ablations for the traffic-conserving variant).
    l2_acc = n_mem * miss.miss_l1
    l3_acc = n_mem * miss.miss_l2
    dram_acc = n_mem * miss.miss_l3
    # DRAM *bytes* are conserved under fusion ("its size is doubled to
    # account for memory bandwidth"): a fused access moves R x 8 bytes.
    dram_lines_traffic = n0 * m.mem * miss.miss_l3

    l2_stall = l2_acc * _exposure(node.cache.l2.latency_cycles, hide_window)
    l3_stall = l3_acc * _exposure(node.cache.l3.latency_cycles, hide_window)

    lat_ns = mem_latency_ns if mem_latency_ns > 0 else node.memory.idle_latency_ns
    mem_lat_cycles = lat_ns * node.frequency_ghz
    # Effective MLP: kernel dataflow and MSHRs cap it; it is *achieved*
    # either by the ROB window holding several misses (OoO) or by the
    # hardware prefetcher running ahead on spatially-regular streams
    # (row-locality is the proxy for prefetchability) — streaming codes
    # keep high MLP even on small windows (LULESH, Sec. V-B3).
    miss_per_instr = dram_acc / n_instr if n_instr > 0 else 0.0
    window_mlp = max(1.0, core.rob_size * miss_per_instr)
    prefetch_mlp = sig.mlp * sig.row_hit_rate
    mlp_eff = max(1.0, min(sig.mlp, core.max_mlp,
                           max(window_mlp, prefetch_mlp)))
    mem_stall = dram_acc * _exposure(mem_lat_cycles, hide_window) / mlp_eff

    return KernelTiming(
        kernel=sig.name,
        base_cycles=base,
        l2_stall_cycles=l2_stall,
        l3_stall_cycles=l3_stall,
        mem_stall_cycles=mem_stall,
        instructions=n_instr,
        scalar_flops=n0 * m.fp,
        l1_accesses=n_mem,
        l2_accesses=l2_acc,
        l3_accesses=l3_acc,
        dram_accesses=dram_acc,
        dram_lines=dram_lines_traffic,
        frequency_ghz=node.frequency_ghz,
        row_hit_rate=sig.row_hit_rate,
        miss_profile=miss,
        vectorization=vec,
    )
