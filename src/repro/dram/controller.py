"""FR-FCFS memory controller and multi-channel DRAM model.

Request-level event simulation in the spirit of Ramulator: requests are
mapped ``row : bank : channel : column`` (consecutive lines interleave
across channels), each channel schedules with First-Ready FCFS inside a
reorder window (row hits bypass older row misses), and the shared data
bus serializes bursts.  The controller emits the per-command counts
DRAMPower consumes and reports achieved bandwidth/latency, which ground
the analytic efficiency curve used by the sweep (:mod:`.analytic`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config.cache import LINE_BYTES
from .bank import Bank
from .timing import DramTiming

__all__ = ["DramRequest", "CommandCounts", "ChannelResult", "DramSystem"]


@dataclass(frozen=True)
class DramRequest:
    """One line-granularity memory request."""

    line: int
    is_write: bool = False
    arrival_cycle: float = 0.0

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError("line must be non-negative")
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")


@dataclass
class CommandCounts:
    """DRAM command statistics of one channel (DRAMPower input)."""

    n_act: int = 0
    n_pre: int = 0
    n_rd: int = 0
    n_wr: int = 0
    n_ref: int = 0

    @property
    def n_col(self) -> int:
        return self.n_rd + self.n_wr

    def row_hit_rate(self) -> float:
        """Fraction of column commands served from an open row.

        Clamped: refreshes can force re-activations, making ACTs exceed
        column commands on pathological streams.
        """
        if not self.n_col:
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.n_act / self.n_col))

    def __iadd__(self, other: "CommandCounts") -> "CommandCounts":
        self.n_act += other.n_act
        self.n_pre += other.n_pre
        self.n_rd += other.n_rd
        self.n_wr += other.n_wr
        self.n_ref += other.n_ref
        return self


@dataclass(frozen=True)
class ChannelResult:
    """Outcome of draining one channel's request queue."""

    counts: CommandCounts
    finish_cycle: float
    total_latency_cycles: float
    n_requests: int

    @property
    def avg_latency_cycles(self) -> float:
        return self.total_latency_cycles / self.n_requests if self.n_requests else 0.0


class _Channel:
    """One channel: banks + shared data bus + FR-FCFS window."""

    def __init__(self, timing: DramTiming, window: int = 16) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.timing = timing
        self.window = window
        self.banks = [Bank(timing) for _ in range(timing.n_banks)]
        self.bus_free = 0.0
        self.counts = CommandCounts()
        self._next_refresh = float(timing.trefi)

    def _bank_row(self, line: int) -> Tuple[int, int]:
        t = self.timing
        lines_per_row = max(1, t.row_bytes // LINE_BYTES)
        bank = (line // lines_per_row) % t.n_banks
        row = line // (lines_per_row * t.n_banks)
        return bank, row

    def drain(self, requests: Sequence[DramRequest]) -> ChannelResult:
        """Service all requests; FR-FCFS within the reorder window.

        Bank preparation (PRE/ACT) is pipelined: every request inside the
        reorder window issues its row commands as soon as it becomes
        visible and its bank is free, so banks work in parallel while the
        data bus serializes bursts — the behaviour that lets random
        streams exploit bank-level parallelism.
        """
        t = self.timing
        # Each entry: [request, col_ready or None] (None = not prepared).
        entries: List[List] = [[req, None] for req in requests]
        # Banks with a prepared-but-unissued row conflict must not be
        # re-prepared (a second ACT would close the pending row).
        bank_pending = [0] * t.n_banks
        now = 0.0
        total_latency = 0.0
        n_done = 0
        head = 0
        n = len(entries)
        while head < n:
            window = entries[head: head + self.window]
            # 1) Issue row commands for newly visible requests.
            for e in window:
                req = e[0]
                if e[1] is not None or req.arrival_cycle > now:
                    continue
                bank_idx, row = self._bank_row(req.line)
                bank = self.banks[bank_idx]
                if bank.is_row_hit(row) or bank_pending[bank_idx] == 0:
                    acts_before = bank.n_acts
                    e[1] = bank.prepare(row, max(now, req.arrival_cycle))
                    self.counts.n_act += bank.n_acts - acts_before
                    bank_pending[bank_idx] += 1
            # 2) Pick the prepared request whose column can issue first
            #    (row hits are ready sooner: first-ready FCFS).
            best = None
            for e in window:
                if e[1] is None:
                    continue
                if best is None or e[1] < best[1]:
                    best = e
            if best is None:
                # Nothing visible yet: jump to the next arrival.
                now = min(e[0].arrival_cycle for e in window)
                continue
            req, col_ready = best
            bank_idx, _ = self._bank_row(req.line)
            issue = max(col_ready, self.bus_free)
            # All-bank refresh: when the issue time crosses tREFI, the
            # whole channel stalls for tRFC (rows stay closed after).
            while issue >= self._next_refresh:
                ref_end = self._next_refresh + t.trfc
                for b in self.banks:
                    b.open_row = None
                    b.next_act = max(b.next_act, ref_end)
                    b.next_col = max(b.next_col, ref_end + t.trcd)
                    b.next_pre = max(b.next_pre, ref_end)
                self.counts.n_ref += 1
                self._next_refresh += t.trefi
                # Every prepared-but-unissued request lost its open row:
                # invalidate so it re-activates after the refresh.
                for e in window:
                    if e is not best and e[1] is not None:
                        e[1] = None
                bank_pending = [0] * t.n_banks
                bank_pending[bank_idx] = 1
                # The picked request re-activates its row immediately.
                bank = self.banks[bank_idx]
                acts_before = bank.n_acts
                _, row = self._bank_row(req.line)
                col_ready = bank.prepare(row, ref_end)
                self.counts.n_act += bank.n_acts - acts_before
                issue = max(col_ready, self.bus_free)
            self.banks[bank_idx].column_issued(issue)
            bank_pending[bank_idx] -= 1
            self.bus_free = issue + t.burst_cycles
            data_done = issue + t.cl + t.burst_cycles
            if req.is_write:
                self.counts.n_wr += 1
            else:
                self.counts.n_rd += 1
            total_latency += data_done - req.arrival_cycle
            n_done += 1
            now = max(now, issue)
            # Compact: swap the issued entry to the head and advance.
            idx = entries.index(best, head, head + self.window)
            entries[idx], entries[head] = entries[head], entries[idx]
            head += 1
        self.counts.n_pre = sum(b.n_pres for b in self.banks)
        return ChannelResult(
            counts=self.counts,
            finish_cycle=self.bus_free + t.cl,
            total_latency_cycles=total_latency,
            n_requests=n_done,
        )


@dataclass(frozen=True)
class DramSystemResult:
    """Aggregate outcome across channels."""

    per_channel: Tuple[ChannelResult, ...]
    elapsed_ns: float
    bytes_moved: int

    @property
    def achieved_bw_gbs(self) -> float:
        return self.bytes_moved / self.elapsed_ns if self.elapsed_ns > 0 else 0.0

    @property
    def counts(self) -> CommandCounts:
        total = CommandCounts()
        for ch in self.per_channel:
            total += ch.counts
        return total

    @property
    def avg_latency_ns(self) -> float:
        n = sum(c.n_requests for c in self.per_channel)
        if n == 0:
            return 0.0
        lat_cy = sum(c.total_latency_cycles for c in self.per_channel)
        return lat_cy / n  # caller multiplies by tck if needed per channel


class DramSystem:
    """A multi-channel DRAM subsystem fed with a line-address stream."""

    def __init__(self, timing: DramTiming, n_channels: int,
                 window: int = 16) -> None:
        if n_channels <= 0:
            raise ValueError("n_channels must be positive")
        self.timing = timing
        self.n_channels = n_channels
        self.window = window

    def map_channel(self, line: int) -> int:
        """Consecutive lines interleave across channels."""
        return line % self.n_channels

    def run(self, lines: Sequence[int],
            write_fraction: float = 0.3,
            arrival_bw_gbs: Optional[float] = None) -> DramSystemResult:
        """Service a line-address stream.

        ``arrival_bw_gbs`` spaces request arrivals at the given offered
        load (None = all requests available at time 0, i.e. measure the
        sustained-bandwidth limit).
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        lines_arr = np.asarray(lines, dtype=np.int64)
        t = self.timing
        if arrival_bw_gbs is not None and arrival_bw_gbs > 0:
            spacing_ns = LINE_BYTES / arrival_bw_gbs
            arrivals = np.arange(len(lines_arr)) * (spacing_ns / t.tck_ns)
        else:
            arrivals = np.zeros(len(lines_arr))
        rng = np.random.default_rng(12345)
        writes = rng.random(len(lines_arr)) < write_fraction

        per_ch: List[List[DramRequest]] = [[] for _ in range(self.n_channels)]
        for line, arr, wr in zip(lines_arr, arrivals, writes):
            per_ch[self.map_channel(int(line))].append(
                DramRequest(line=int(line), is_write=bool(wr),
                            arrival_cycle=float(arr))
            )
        results = []
        finish = 0.0
        for reqs in per_ch:
            ch = _Channel(t, window=self.window)
            res = ch.drain(reqs)
            results.append(res)
            finish = max(finish, res.finish_cycle)
        elapsed_ns = finish * t.tck_ns
        return DramSystemResult(
            per_channel=tuple(results),
            elapsed_ns=elapsed_ns,
            bytes_moved=int(len(lines_arr)) * LINE_BYTES,
        )
