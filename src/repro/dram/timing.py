"""DRAM device timing parameter sets (Ramulator-style standards).

Timings are in device clock cycles unless suffixed ``_ns``.  The two
presets used by the paper's experiments are DDR4-2400 (the DDR4-2333 of
Table I rounded to the nearest JEDEC speed bin) and an HBM2-class stack
for the MEM++ configuration of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["DramTiming", "DRAM_STANDARDS", "dram_standard"]


@dataclass(frozen=True)
class DramTiming:
    """JEDEC-style timing and geometry of one DRAM channel."""

    name: str
    tck_ns: float          # clock period
    cl: int                # CAS latency (cycles)
    trcd: int              # RAS-to-CAS delay
    trp: int               # row precharge
    tras: int              # row active time
    burst_cycles: int      # data-bus cycles per burst (BL/2 for DDR)
    n_banks: int
    row_bytes: int         # row-buffer size per bank
    bus_bytes_per_cycle: int  # data moved per bus cycle (both edges)
    trefi: int = 9360      # average refresh interval (7.8 us at 1.2 GHz)
    trfc: int = 420        # refresh cycle time (350 ns for 8 Gb parts)

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise ValueError("tck_ns must be positive")
        for field_name in ("cl", "trcd", "trp", "tras", "burst_cycles",
                           "n_banks", "row_bytes", "bus_bytes_per_cycle",
                           "trefi", "trfc"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    @property
    def trc(self) -> int:
        """Row cycle time: minimum spacing of activations to one bank."""
        return self.tras + self.trp

    @property
    def burst_bytes(self) -> int:
        return self.burst_cycles * self.bus_bytes_per_cycle

    @property
    def peak_bw_gbs(self) -> float:
        """Peak channel bandwidth in GB/s."""
        return self.bus_bytes_per_cycle / self.tck_ns

    def ns(self, cycles: float) -> float:
        return cycles * self.tck_ns


def _standards() -> Dict[str, DramTiming]:
    return {
        # 2400 MT/s x 8 B bus; BL8 -> 4 bus cycles per 64 B line.
        "DDR4-2400": DramTiming(
            name="DDR4-2400", tck_ns=1.0 / 1.2, cl=16, trcd=16, trp=16,
            tras=39, burst_cycles=4, n_banks=16, row_bytes=8192,
            bus_bytes_per_cycle=16,
        ),
        # HBM2-class pseudo-channel: wide slow bus, lower latency, more banks.
        "HBM2": DramTiming(
            name="HBM2", tck_ns=1.0, cl=14, trcd=14, trp=14,
            tras=34, burst_cycles=2, n_banks=32, row_bytes=2048,
            bus_bytes_per_cycle=32, trefi=3900, trfc=260,
        ),
    }


DRAM_STANDARDS: Dict[str, DramTiming] = _standards()


def dram_standard(name: str) -> DramTiming:
    """Look up a DRAM standard by name."""
    try:
        return DRAM_STANDARDS[name]
    except KeyError:
        raise KeyError(
            f"unknown DRAM standard {name!r}; choose from "
            f"{sorted(DRAM_STANDARDS)}"
        ) from None
