"""Closed-form DRAM bandwidth/latency envelopes.

The design-space sweep cannot afford event-level DRAM simulation for
every task of every configuration; it uses these closed forms, which
are derived from the same timing parameters as the event-level
controller and validated against it (``tests/dram/test_analytic.py``).
"""

from __future__ import annotations

from .timing import DramTiming, dram_standard

__all__ = [
    "sustained_bandwidth_gbs",
    "efficiency",
    "loaded_latency_ns",
]


def efficiency(timing: DramTiming, row_hit_rate: float) -> float:
    """Sustainable fraction of peak bandwidth at a given row locality.

    A row hit occupies the data bus for the burst only; a row miss
    additionally consumes bank time tRP+tRCD, which with ``n_banks``
    banks pipelining steals ``(tRP+tRCD)/n_banks`` of bus-equivalent
    time per miss (plus a scheduling-inefficiency factor for the
    controller's finite reorder window).
    """
    if not 0.0 <= row_hit_rate <= 1.0:
        raise ValueError("row_hit_rate must be in [0, 1]")
    burst = timing.burst_cycles
    # Effective extra bus-time per row miss: bank overheads amortized over
    # the bank count, padded 20% for finite-window scheduling imperfection.
    miss_overhead = 1.2 * (timing.trp + timing.trcd) / timing.n_banks
    per_req = burst + (1.0 - row_hit_rate) * miss_overhead
    return burst / per_req


def sustained_bandwidth_gbs(timing: DramTiming, n_channels: int,
                            row_hit_rate: float) -> float:
    """Aggregate sustainable bandwidth of ``n_channels`` channels."""
    if n_channels <= 0:
        raise ValueError("n_channels must be positive")
    return n_channels * timing.peak_bw_gbs * efficiency(timing, row_hit_rate)


def loaded_latency_ns(timing: DramTiming, utilization: float,
                      row_hit_rate: float) -> float:
    """Average request latency as queueing builds up.

    Idle latency is tRCD+CL+burst for a row miss and CL+burst for a hit;
    the M/M/1-style term grows it toward saturation (capped at 95%
    utilization to stay finite, as in the node model).
    """
    if not 0.0 <= row_hit_rate <= 1.0:
        raise ValueError("row_hit_rate must be in [0, 1]")
    if utilization < 0:
        raise ValueError("utilization must be non-negative")
    hit_lat = timing.cl + timing.burst_cycles
    miss_lat = timing.trp + timing.trcd + timing.cl + timing.burst_cycles
    idle = row_hit_rate * hit_lat + (1.0 - row_hit_rate) * miss_lat
    u = min(utilization, 0.95)
    queue = idle * 0.5 * u / (1.0 - u)
    return timing.ns(idle + queue)
