"""DRAM bank state machine.

Each bank tracks its open row and the earliest times the next command
of each kind may issue, honouring tRCD/tRP/tRAS/tRC.  The controller
composes banks with the shared data bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .timing import DramTiming

__all__ = ["Bank"]


@dataclass
class Bank:
    """One DRAM bank: open-row state plus command-issue constraints.

    All times are in device cycles (floats to allow fractional bus
    alignment).
    """

    timing: DramTiming
    open_row: Optional[int] = None
    #: earliest cycle an ACTIVATE may issue (tRC from previous ACT,
    #: tRP from the closing precharge)
    next_act: float = 0.0
    #: earliest cycle a column command (RD/WR) may issue (tRCD after ACT)
    next_col: float = 0.0
    #: earliest cycle a PRECHARGE may issue (tRAS after ACT)
    next_pre: float = 0.0
    #: statistics
    n_acts: int = 0
    n_pres: int = 0

    def is_row_hit(self, row: int) -> bool:
        return self.open_row == row

    def prepare(self, row: int, now: float) -> float:
        """Make ``row`` the open row; returns the cycle at which a column
        command to it may issue.  Issues PRE/ACT as needed and updates
        command statistics."""
        if row < 0:
            raise ValueError("row must be non-negative")
        t = self.timing
        if self.open_row == row:
            return max(now, self.next_col)
        if self.open_row is not None:
            # Close the current row first.
            pre_at = max(now, self.next_pre)
            self.n_pres += 1
            act_ready = max(pre_at + t.trp, self.next_act)
        else:
            act_ready = max(now, self.next_act)
        act_at = act_ready
        self.n_acts += 1
        self.open_row = row
        self.next_act = act_at + t.trc
        self.next_col = act_at + t.trcd
        self.next_pre = act_at + t.tras
        return self.next_col

    def column_issued(self, at: float) -> None:
        """Record a column command issuing at cycle ``at`` (back-to-back
        column commands to the same open row are spaced by the burst)."""
        self.next_col = max(self.next_col, at + self.timing.burst_cycles)
