"""DRAM subsystem models (Ramulator substitute)."""

from .analytic import efficiency, loaded_latency_ns, sustained_bandwidth_gbs
from .bank import Bank
from .controller import (
    ChannelResult,
    CommandCounts,
    DramRequest,
    DramSystem,
    DramSystemResult,
)
from .timing import DRAM_STANDARDS, DramTiming, dram_standard

__all__ = [
    "Bank",
    "ChannelResult",
    "CommandCounts",
    "DRAM_STANDARDS",
    "DramRequest",
    "DramSystem",
    "DramSystemResult",
    "DramTiming",
    "dram_standard",
    "efficiency",
    "loaded_latency_ns",
    "sustained_bandwidth_gbs",
]
