"""BT-MZ: NAS multi-zone block-tridiagonal solver.

Characteristics encoded from the paper:

* compute-intensive diagonal solver: high L1 MPKI (~24) but small
  L2/L3 MPKI — block data fits on-chip once past the L1 (Fig. 1);
* zones of *uneven* size (BT-MZ's defining feature): strong intra-rank
  task imbalance plus serialized segments limit scaling (Sec. V-A);
* good vectorization potential on the dense 5x5 block kernels (mid-pack
  512-bit speedup, Fig. 5a), with a higher relative gain on small-cache
  low-end configurations (Sec. V-B1's BTMZ remark);
* compute-bound: per-core power is on the high side (Fig. 5b), and
  memory channels are irrelevant to it (Fig. 8a).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..runtime.openmp import task_phase
from ..trace.events import ComputePhase
from ..trace.kernel import InstructionMix, KernelSignature, ReuseProfile
from .base import AppModel

__all__ = ["BtMz"]

_REF_NS_PER_INSTR = 0.5
_INSTR_PER_ZONE_TASK = 2_800_000.0


class BtMz(AppModel):
    """BT-MZ application model."""

    name = "btmz"
    traced_threads = 48
    halo_bytes = 3200 * 1024
    allreduce_per_iter = 1
    rank_imbalance = 0.45
    default_iterations = 4
    n_zones = 40

    def kernels(self) -> Dict[str, KernelSignature]:
        # Dense block solves: plenty of L1 traffic (5x5 blocks thrash the
        # tiny L1) but strong L2 residency.
        solve_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.885),       # block-register reuse
                (160.0, 0.033),     # within-L1 block reuse
                (1_500.0, 0.0658),  # L1 miss, L2 hit (both sizes)
                (5_200.0, 0.0200),  # ~330 KB: misses a 256 kB L2
                (12_000.0, 0.0060), # ~768 KB: L2 miss, L3 hit
                (1.2e6, 0.0010),    # zone-boundary cold sweeps
            ],
            cold_fraction=0.0008,
        )
        rhs_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.90),
                (1_500.0, 0.09),
                (12_000.0, 0.006),
                (1.2e6, 0.002),
            ],
            cold_fraction=0.001,
        )
        return {
            "bt_solve": KernelSignature(
                name="bt_solve",
                instr_per_unit=_INSTR_PER_ZONE_TASK,
                mix=InstructionMix(fp=0.40, int_alu=0.13, load=0.25,
                                   store=0.09, branch=0.10, other=0.03),
                ilp=3.2,
                vec_fraction=0.75,
                trip_count=256,
                mlp=4.0,
                reuse=solve_reuse,
                row_hit_rate=0.70,
            ),
            "bt_rhs": KernelSignature(
                name="bt_rhs",
                instr_per_unit=_INSTR_PER_ZONE_TASK * 0.4,
                mix=InstructionMix(fp=0.36, int_alu=0.15, load=0.25,
                                   store=0.09, branch=0.11, other=0.04),
                ilp=3.0,
                vec_fraction=0.70,
                trip_count=256,
                mlp=4.0,
                reuse=rhs_reuse,
                row_hit_rate=0.75,
            ),
        }

    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        rng = self._rng("phases")
        solve_ns = _INSTR_PER_ZONE_TASK * _REF_NS_PER_INSTR
        phases = []
        # Uneven zones: strong imbalance; serialized boundary-copy code
        # between sweeps shows up as serial_ns.
        for i in range(3):
            phases.append(task_phase(
                phase_id=i, kernel="bt_solve", n_tasks=self.n_zones,
                task_ns=solve_ns, imbalance=0.50, creation_ns=350.0,
                serial_task_ns=solve_ns * 0.25, rng=rng,
            ))
        phases.append(task_phase(
            phase_id=3, kernel="bt_rhs", n_tasks=self.n_zones,
            task_ns=solve_ns * 0.4, imbalance=0.50, creation_ns=350.0,
            serial_task_ns=solve_ns * 0.15, rng=rng,
        ))
        return tuple(phases)
