"""Application models: the five paper workloads as trace generators."""

from .base import AppModel, grid_neighbors, rank_grid_dims
from .btmz import BtMz
from .hydro import Hydro
from .lulesh import Lulesh
from .registry import APP_CLASSES, APP_NAMES, all_apps, get_app
from .specfem3d import Specfem3D
from .synthetic import SyntheticApp, make_app
from .spmz import SpMz

__all__ = [
    "APP_CLASSES",
    "APP_NAMES",
    "AppModel",
    "BtMz",
    "Hydro",
    "Lulesh",
    "SpMz",
    "SyntheticApp",
    "Specfem3D",
    "all_apps",
    "get_app",
    "grid_neighbors",
    "make_app",
    "rank_grid_dims",
]
