"""HYDRO: simplified RAMSES — compressible Euler equations (Godunov).

Characteristics encoded from the paper:

* structured-grid stencil kernels with strong cache locality — the
  smallest MPKI of the five apps (Fig. 1: L1 ~6, L2 ~1.8, L3 ~0.2);
* the main working-set slice per thread is ~350 KB, so upgrading the L2
  from 256 kB to 512 kB collapses L2 misses by ~4x (Sec. V-B2);
* the only application that keeps >75% parallel efficiency at 64 cores
  (Fig. 2a): many fine-grained, well-balanced loop chunks — whose small
  size makes task *creation* the bottleneck above 2.5 GHz (Sec. V-B5);
* moderate auto-vectorization: ~20% speedup at 512-bit (Fig. 5a);
* negligible rank-level imbalance (Fig. 2b keeps scaling).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..runtime.openmp import parallel_for
from ..trace.events import ComputePhase
from ..trace.kernel import InstructionMix, KernelSignature, ReuseProfile
from .base import AppModel

__all__ = ["Hydro"]

#: reference-trace task execution rate: 1 instruction per ns (IPC 2 @ 2 GHz)
_REF_NS_PER_INSTR = 0.5

_INSTR_PER_TASK = 120_000.0        # godunov loop chunks (~60 us reference)
_INSTR_PER_TRACE_TASK = 72_000.0   # trace/update chunks (~36 us reference)


class Hydro(AppModel):
    """HYDRO application model."""

    name = "hydro"
    traced_threads = 48
    halo_bytes = 128 * 1024
    allreduce_per_iter = 1
    rank_imbalance = 0.08
    default_iterations = 4
    n_tasks_per_phase = 512

    def kernels(self) -> Dict[str, KernelSignature]:
        # Stencil sweep with row-level and slab-level reuse: a small tail
        # of accesses reuses at ~350 KB (misses a 256 kB L2, fits 512 kB),
        # a smaller one at ~750 KB (fits the L3 share even at 64 cores),
        # and a whisper of truly cold traffic.
        godunov_reuse = ReuseProfile.from_components(
            [
                (6.0, 0.9465),       # register/line-level reuse
                (150.0, 0.0310),     # row reuse within L1
                (5_500.0, 0.0157),   # ~350 KB slab: the L2 256->512 knee
                (12_000.0, 0.0061),  # ~768 KB: L3 resident
                (2.0e6, 0.0003),     # cold-ish sweep traffic
            ],
            cold_fraction=0.0004,
        )
        trace_reuse = ReuseProfile.from_components(
            [
                (6.0, 0.962),
                (2_000.0, 0.030),
                (12_000.0, 0.0070),
                (2.0e6, 0.0004),
            ],
            cold_fraction=0.0006,
        )
        return {
            "godunov": KernelSignature(
                name="godunov",
                instr_per_unit=_INSTR_PER_TASK,
                mix=InstructionMix(fp=0.36, int_alu=0.14, load=0.21,
                                   store=0.09, branch=0.12, other=0.08),
                ilp=3.4,
                vec_fraction=0.72,
                trip_count=512,
                mlp=4.0,
                reuse=godunov_reuse,
                row_hit_rate=0.85,
            ),
            "trace_update": KernelSignature(
                name="trace_update",
                instr_per_unit=_INSTR_PER_TRACE_TASK,
                mix=InstructionMix(fp=0.30, int_alu=0.18, load=0.22,
                                   store=0.08, branch=0.14, other=0.08),
                ilp=3.0,
                vec_fraction=0.55,
                trip_count=512,
                mlp=4.0,
                reuse=trace_reuse,
                row_hit_rate=0.85,
            ),
        }

    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        rng = self._rng("phases")
        godunov = parallel_for(
            phase_id=0, kernel="godunov",
            n_iterations=self.n_tasks_per_phase,
            iter_ns=_INSTR_PER_TASK * _REF_NS_PER_INSTR,
            chunk=1, imbalance=0.05, creation_ns=200.0,
            serial_ns=4_000.0, rng=rng,
        )
        trace = parallel_for(
            phase_id=1, kernel="trace_update",
            n_iterations=self.n_tasks_per_phase,
            iter_ns=_INSTR_PER_TRACE_TASK * _REF_NS_PER_INSTR,
            chunk=1, imbalance=0.05, creation_ns=200.0,
            serial_ns=4_000.0, rng=rng,
        )
        return (godunov, trace)
