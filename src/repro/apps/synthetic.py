"""Declarative synthetic applications.

The five paper applications are hand-written subclasses; downstream
co-design studies usually start from a *characteristics sheet* (mix,
working sets, task structure) rather than code.
:func:`make_app` builds a full :class:`~repro.apps.base.AppModel` from
such a sheet, so a new workload joins every analysis — sweeps, scaling,
timelines, recommendations — with zero subclassing.

Example::

    app = make_app(
        name="fft",
        kernels={
            "transpose": dict(instr_per_task=400_000, fp=0.15, load=0.4,
                              store=0.3, ilp=2.2, vec_fraction=0.6,
                              trip_count=64, mlp=8, row_hit_rate=0.3,
                              reuse=[(8, 0.7), (50_000, 0.3)]),
        },
        phases=[dict(kernel="transpose", n_tasks=128, imbalance=0.1)],
        halo_bytes=512 * 1024,
    )
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..runtime.openmp import task_phase
from ..trace.events import ComputePhase
from ..trace.kernel import InstructionMix, KernelSignature, ReuseProfile
from .base import AppModel

__all__ = ["SyntheticApp", "make_app"]

_REF_NS_PER_INSTR = 0.5


def _kernel_from_spec(name: str, spec: Dict) -> KernelSignature:
    spec = dict(spec)
    instr = float(spec.pop("instr_per_task"))
    fp = spec.pop("fp", 0.3)
    load = spec.pop("load", 0.25)
    store = spec.pop("store", 0.1)
    branch = spec.pop("branch", 0.1)
    int_alu = spec.pop("int_alu", None)
    other = spec.pop("other", 0.0)
    if int_alu is None:
        int_alu = 1.0 - fp - load - store - branch - other
    reuse_spec = spec.pop("reuse")
    cold = spec.pop("cold_fraction", 0.002)
    sig = KernelSignature(
        name=name,
        instr_per_unit=instr,
        mix=InstructionMix(fp=fp, int_alu=int_alu, load=load, store=store,
                           branch=branch, other=other),
        ilp=spec.pop("ilp", 3.0),
        vec_fraction=spec.pop("vec_fraction", 0.5),
        trip_count=spec.pop("trip_count", 128),
        mlp=spec.pop("mlp", 4.0),
        reuse=ReuseProfile.from_components(reuse_spec, cold_fraction=cold),
        row_hit_rate=spec.pop("row_hit_rate", 0.6),
    )
    if spec:
        raise TypeError(f"kernel {name!r}: unknown fields {sorted(spec)}")
    return sig


class SyntheticApp(AppModel):
    """An application assembled from a characteristics sheet."""

    def __init__(self, name: str, kernel_specs: Dict[str, Dict],
                 phase_specs: Sequence[Dict], **overrides) -> None:
        if not name:
            raise ValueError("synthetic app needs a name")
        if not kernel_specs:
            raise ValueError("need at least one kernel")
        if not phase_specs:
            raise ValueError("need at least one phase")
        super().__init__(**overrides)
        self.name = name
        self._kernels = {k: _kernel_from_spec(k, s)
                         for k, s in kernel_specs.items()}
        allowed = {"kernel", "n_tasks", "imbalance", "creation_ns",
                   "serial_task_ns", "serial_ns"}
        for i, ph in enumerate(phase_specs):
            if ph.get("kernel") not in self._kernels:
                raise ValueError(
                    f"phase {i} references unknown kernel "
                    f"{ph.get('kernel')!r}")
            extra = set(ph) - allowed
            if extra:
                raise TypeError(f"phase {i}: unknown fields {sorted(extra)}")
        self._phase_specs = [dict(p) for p in phase_specs]

    def kernels(self) -> Dict[str, KernelSignature]:
        return dict(self._kernels)

    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        rng = self._rng("phases")
        phases: List[ComputePhase] = []
        for i, spec in enumerate(self._phase_specs):
            spec = dict(spec)
            kernel = spec.pop("kernel")
            sig = self._kernels[kernel]
            phases.append(task_phase(
                phase_id=i,
                kernel=kernel,
                n_tasks=spec.pop("n_tasks", 64),
                task_ns=sig.instr_per_unit * _REF_NS_PER_INSTR,
                imbalance=spec.pop("imbalance", 0.1),
                creation_ns=spec.pop("creation_ns", 250.0),
                serial_task_ns=spec.pop("serial_task_ns", 0.0),
                serial_ns=spec.pop("serial_ns", 0.0),
                rng=rng,
            ))
            if spec:
                raise TypeError(f"phase {i}: unknown fields {sorted(spec)}")
        return tuple(phases)


def make_app(name: str, kernels: Dict[str, Dict], phases: Sequence[Dict],
             **characteristics) -> SyntheticApp:
    """Build a synthetic application from a characteristics sheet.

    ``kernels`` maps kernel names to field dicts (see module docstring);
    ``phases`` lists per-phase dicts (``kernel`` required; ``n_tasks``,
    ``imbalance``, ``serial_task_ns``... optional).  Extra keyword
    arguments override app-level characteristics (``halo_bytes``,
    ``rank_imbalance``, ``allreduce_per_iter``, ...).
    """
    return SyntheticApp(name, kernels, phases, **characteristics)
