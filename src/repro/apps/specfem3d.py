"""Specfem3D: continuous Galerkin spectral-element seismic wave solver.

Characteristics encoded from the paper:

* unstructured hexahedral meshes: indirect (gather/scatter) access with
  poor spatial locality — high L1/L2/L3 MPKI (Fig. 1) and a DRAM stream
  with very low row-buffer locality;
* the most *latency*-sensitive application: dependent indirection keeps
  inherent MLP low, so low-end OoO configurations are ~60% slower than
  aggressive ones (Fig. 7a) while extra memory *bandwidth* buys nothing
  (Fig. 8a) — its cores are starved, not the channels;
* the canonical Fig. 3 victim: few coarse element-block tasks with
  serialized assembly segments leave most of a 64-core CPU idle;
* cache-size insensitive: locality gains from bigger caches are offset
  by their extra latency (Sec. V-B2).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..runtime.openmp import task_phase
from ..trace.events import ComputePhase
from ..trace.kernel import InstructionMix, KernelSignature, ReuseProfile
from .base import AppModel

__all__ = ["Specfem3D"]

_REF_NS_PER_INSTR = 0.5
_INSTR_PER_BLOCK_TASK = 3_200_000.0


class Specfem3D(AppModel):
    """Specfem3D application model."""

    name = "spec3d"
    traced_threads = 48
    halo_bytes = 2600 * 1024
    allreduce_per_iter = 1
    rank_imbalance = 0.50
    default_iterations = 4
    #: element blocks per rank in the traced mesh partition
    n_blocks = 36

    def kernels(self) -> Dict[str, KernelSignature]:
        # Gather/scatter over an unstructured mesh: mediocre short-range
        # locality, a broad medium-distance shoulder, and a heavy far
        # tail that no realistic cache captures (hence the paper's
        # cache-size insensitivity: the capacity knee sits far out).
        element_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.815),
                (90.0, 0.064),       # element-local reuse inside L1
                (2_200.0, 0.0800),   # assembled-field slab: L2 resident
                (25_000.0, 0.0065),  # ~1.6 MB: L2 miss, L3-share hit
                (9.0e5, 0.0046),     # global gather: misses everything
            ],
            cold_fraction=0.0008,
        )
        assembly_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.82),
                (2_200.0, 0.100),
                (25_000.0, 0.013),
                (9.0e5, 0.0085),
            ],
            cold_fraction=0.0012,
        )
        return {
            "element_kernel": KernelSignature(
                name="element_kernel",
                instr_per_unit=_INSTR_PER_BLOCK_TASK,
                mix=InstructionMix(fp=0.30, int_alu=0.14, load=0.31,
                                   store=0.09, branch=0.12, other=0.04),
                ilp=2.8,
                vec_fraction=0.70,
                trip_count=125,      # 5x5x5 GLL points per element
                mlp=1.8,             # dependent indirection
                reuse=element_reuse,
                row_hit_rate=0.20,
            ),
            "assembly": KernelSignature(
                name="assembly",
                instr_per_unit=_INSTR_PER_BLOCK_TASK * 0.45,
                mix=InstructionMix(fp=0.22, int_alu=0.18, load=0.32,
                                   store=0.12, branch=0.12, other=0.04),
                ilp=2.4,
                vec_fraction=0.25,   # scatter with conflicts
                trip_count=125,
                mlp=1.5,
                reuse=assembly_reuse,
                row_hit_rate=0.15,
            ),
        }

    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        rng = self._rng("phases")
        elem_ns = _INSTR_PER_BLOCK_TASK * _REF_NS_PER_INSTR
        # Element-block tasks: few and uneven; long serial assembly
        # sections between them (the gray idle expanse of Fig. 3).
        forces = task_phase(
            phase_id=0, kernel="element_kernel", n_tasks=self.n_blocks,
            task_ns=elem_ns, imbalance=0.40, creation_ns=400.0,
            serial_task_ns=elem_ns * 0.6, rng=rng,
        )
        assembly = task_phase(
            phase_id=1, kernel="assembly", n_tasks=self.n_blocks // 2,
            task_ns=elem_ns * 0.45, imbalance=0.40, creation_ns=400.0,
            serial_task_ns=elem_ns * 0.5, rng=rng,
        )
        update = task_phase(
            phase_id=2, kernel="assembly", n_tasks=self.n_blocks,
            task_ns=elem_ns * 0.2, imbalance=0.30, creation_ns=400.0,
            serial_task_ns=elem_ns * 0.2, rng=rng,
        )
        return (forces, assembly, update)
