"""SP-MZ: NAS multi-zone scalar-pentadiagonal solver.

Characteristics encoded from the paper:

* the most cache-hostile access pattern of the five: line-implicit
  solver sweeps along non-unit strides give an enormous L1 MPKI (~97)
  and large L2/L3 MPKI (Fig. 1);
* the biggest SIMD winner — ~75% speedup at 512-bit (Fig. 5a), the
  motivation for the Table II Vector+/Vector++ study: long regular
  inner loops, nearly fully vectorizable;
* zone-level task parallelism only (~1 task per zone, no nested
  parallelism in the trace), so 64-core nodes starve: parallel
  efficiency drops hard between 32 and 64 cores (Fig. 2a) — and the
  resulting idle cores keep its bandwidth demand low (Sec. V-B4's
  "if SPMZ was able to scale..." remark);
* no serialized segments (the only app without them, Sec. V-A).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..runtime.openmp import task_phase
from ..trace.events import ComputePhase
from ..trace.kernel import InstructionMix, KernelSignature, ReuseProfile
from .base import AppModel

__all__ = ["SpMz"]

_REF_NS_PER_INSTR = 0.5
_INSTR_PER_ZONE_TASK = 2_400_000.0  # one solver sweep over one zone


class SpMz(AppModel):
    """SP-MZ application model."""

    name = "spmz"
    traced_threads = 48
    halo_bytes = 2600 * 1024
    allreduce_per_iter = 1
    rank_imbalance = 0.35
    default_iterations = 4
    #: zones per rank in the traced input (caps task parallelism)
    n_zones = 40

    def kernels(self) -> Dict[str, KernelSignature]:
        # Strided solver sweeps: one third of accesses leave the L1
        # (stride > line), most land in a ~2k-line slab (L2-resident),
        # and a large tail sweeps zone planes far beyond any cache.
        solve_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.645),       # within-line / register reuse
                (120.0, 0.033),     # short-range reuse inside L1
                (2_000.0, 0.248),   # plane slab: L1 miss, L2 hit
                (10_500.0, 0.060),  # ~670 KB: L2 miss, L3 hit in every config
                (1.0e6, 0.0065),    # zone sweep: misses everything
            ],
            cold_fraction=0.0015,
        )
        rhs_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.80),
                (2_000.0, 0.15),
                (10_500.0, 0.040),
                (1.0e6, 0.0045),
            ],
            cold_fraction=0.0012,
        )
        return {
            "sp_solve": KernelSignature(
                name="sp_solve",
                instr_per_unit=_INSTR_PER_ZONE_TASK,
                mix=InstructionMix(fp=0.33, int_alu=0.13, load=0.28,
                                   store=0.10, branch=0.10, other=0.06),
                ilp=1.7,
                vec_fraction=0.93,
                trip_count=1024,
                mlp=6.0,
                reuse=solve_reuse,
                row_hit_rate=0.85,
            ),
            "sp_rhs": KernelSignature(
                name="sp_rhs",
                instr_per_unit=_INSTR_PER_ZONE_TASK * 0.5,
                mix=InstructionMix(fp=0.35, int_alu=0.13, load=0.26,
                                   store=0.10, branch=0.10, other=0.06),
                ilp=1.9,
                vec_fraction=0.91,
                trip_count=1024,
                mlp=6.0,
                reuse=rhs_reuse,
                row_hit_rate=0.88,
            ),
        }

    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        rng = self._rng("phases")
        solve_ns = _INSTR_PER_ZONE_TASK * _REF_NS_PER_INSTR
        phases = []
        # x/y/z solver sweeps: one task per zone, modest imbalance
        # (SP-MZ zones are equally sized), no serial segments.
        for i, axis in enumerate("xyz"):
            phases.append(task_phase(
                phase_id=i, kernel="sp_solve", n_tasks=self.n_zones,
                task_ns=solve_ns, imbalance=0.15, creation_ns=350.0,
                serial_ns=0.0, rng=rng,
            ))
        phases.append(task_phase(
            phase_id=3, kernel="sp_rhs", n_tasks=self.n_zones,
            task_ns=solve_ns * 0.5, imbalance=0.15, creation_ns=350.0,
            serial_ns=0.0, rng=rng,
        ))
        return tuple(phases)
