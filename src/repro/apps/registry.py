"""Application registry: name -> model instance."""

from __future__ import annotations

from typing import Dict, List, Type

from .base import AppModel
from .btmz import BtMz
from .hydro import Hydro
from .lulesh import Lulesh
from .specfem3d import Specfem3D
from .spmz import SpMz

__all__ = ["APP_CLASSES", "APP_NAMES", "get_app", "all_apps"]

APP_CLASSES: Dict[str, Type[AppModel]] = {
    cls.name: cls for cls in (Hydro, SpMz, BtMz, Specfem3D, Lulesh)
}

#: Paper ordering (figure x-axes).
APP_NAMES = ("hydro", "spmz", "btmz", "spec3d", "lulesh")


def get_app(name: str) -> AppModel:
    """Instantiate an application model by its paper name."""
    try:
        return APP_CLASSES[name]()
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {APP_NAMES}"
        ) from None


def all_apps() -> List[AppModel]:
    """All five paper applications, in figure order."""
    return [get_app(name) for name in APP_NAMES]
