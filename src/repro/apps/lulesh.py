"""LULESH: unstructured Lagrangian shock hydrodynamics proxy app.

Characteristics encoded from the paper:

* heavily *bandwidth*-bound: dozens of coupled field arrays streamed
  per element update — working sets far beyond any cache, the highest
  DRAM request rate of the five (Fig. 1) and the only app that profits
  (up to ~60% at 64 cores) from doubling memory channels (Fig. 8a);
* very short inner loops (corners/faces of an element) — SIMD fusion
  never exceeds 128-bit groups, so wider FPUs buy nothing (Fig. 5a),
  motivating the Table II MEM+/MEM++ narrow-FPU configurations;
* thread-level load imbalance is its scaling limiter at 64 cores
  (Sec. V-A) and rank-level imbalance fills MPI barriers with idle
  time (Fig. 4) — it performs several reductions per step (dt control);
* core OoO capability matters little once channels saturate: medium
  cores give almost-free energy savings (Fig. 7c).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..runtime.openmp import task_phase
from ..trace.events import ComputePhase
from ..trace.kernel import InstructionMix, KernelSignature, ReuseProfile
from .base import AppModel

__all__ = ["Lulesh"]

_REF_NS_PER_INSTR = 0.5
_INSTR_PER_TASK = 900_000.0


class Lulesh(AppModel):
    """LULESH application model."""

    name = "lulesh"
    traced_threads = 48
    halo_bytes = 1500 * 1024
    allreduce_per_iter = 3   # dt + energy + volume checks per step
    rank_imbalance = 0.55
    default_iterations = 4
    n_tasks_per_phase = 80

    def kernels(self) -> Dict[str, KernelSignature]:
        # Multi-array element streams: good within-line locality, a thin
        # L2-resident slab of connectivity data, and a dominant far tail
        # (the ~25 field arrays never fit; every sweep re-streams them).
        stress_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.9480),
                (4_500.0, 0.0170),   # ~290 KB slab: misses a 256 kB L2
                (12_000.0, 0.0012),
                (2.5e6, 0.0190),     # field-array streaming: DRAM
            ],
            cold_fraction=0.0025,
        )
        hourglass_reuse = ReuseProfile.from_components(
            [
                (4.0, 0.952),
                (4_500.0, 0.019),
                (2.5e6, 0.0180),
            ],
            cold_fraction=0.0030,
        )
        return {
            "stress": KernelSignature(
                name="stress",
                instr_per_unit=_INSTR_PER_TASK,
                mix=InstructionMix(fp=0.32, int_alu=0.13, load=0.28,
                                   store=0.12, branch=0.11, other=0.04),
                ilp=2.6,
                vec_fraction=0.30,
                trip_count=4,        # 8 corners, unrolled pairs
                mlp=12.0,            # independent streaming misses
                reuse=stress_reuse,
                row_hit_rate=0.55,
            ),
            "hourglass": KernelSignature(
                name="hourglass",
                instr_per_unit=_INSTR_PER_TASK * 0.8,
                mix=InstructionMix(fp=0.34, int_alu=0.13, load=0.27,
                                   store=0.11, branch=0.11, other=0.04),
                ilp=2.6,
                vec_fraction=0.30,
                trip_count=4,
                mlp=12.0,
                reuse=hourglass_reuse,
                row_hit_rate=0.55,
            ),
        }

    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        rng = self._rng("phases")
        task_ns = _INSTR_PER_TASK * _REF_NS_PER_INSTR
        # Three big sweeps per timestep; pronounced task imbalance (the
        # paper's 64-core limiter) and a little serial glue.
        stress = task_phase(
            phase_id=0, kernel="stress", n_tasks=self.n_tasks_per_phase,
            task_ns=task_ns, imbalance=0.45, creation_ns=250.0,
            serial_task_ns=task_ns * 0.15, rng=rng,
        )
        hourglass = task_phase(
            phase_id=1, kernel="hourglass", n_tasks=self.n_tasks_per_phase,
            task_ns=task_ns * 0.8, imbalance=0.45, creation_ns=250.0,
            serial_task_ns=task_ns * 0.10, rng=rng,
        )
        update = task_phase(
            phase_id=2, kernel="hourglass", n_tasks=self.n_tasks_per_phase,
            task_ns=task_ns * 0.4, imbalance=0.35, creation_ns=250.0,
            serial_task_ns=task_ns * 0.05, rng=rng,
        )
        return (stress, hourglass, update)
