"""Application-model base class.

The five paper applications (HYDRO, SP-MZ, BT-MZ, Specfem3D, LULESH)
are represented as *trace generators*: each model emits the same
two-level traces the MUSA toolchain records from the real codes —

* a **burst trace**: per-rank streams of compute phases (with runtime
  task events) and MPI calls (3-D halo exchanges + collectives);
* a **detailed trace**: per-kernel instruction-level signatures
  (mix, ILP, vectorization structure, reuse profile).

Model parameters are calibrated against the paper's published runtime
statistics (Fig. 1 MPKI/bandwidth, Fig. 2 scaling, Figs. 5-9 axis
sensitivities); the calibration tests in ``tests/apps`` pin them.

Each model builds ONE canonical iteration's phase list and reuses the
same (frozen) phase objects across ranks and iterations; rank-to-rank
load imbalance is expressed through :meth:`rank_scales`, exactly how
MUSA replays a single detailed sample per rank class.  Downstream
caches key on phase object identity, which this sharing makes effective.
"""

from __future__ import annotations

import math
import zlib
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..trace.burst import BurstTrace, RankTrace
from ..trace.detailed import DetailedTrace
from ..trace.events import ComputePhase, MpiCall
from ..trace.kernel import KernelSignature

__all__ = ["AppModel", "rank_grid_dims", "grid_neighbors"]


def rank_grid_dims(n_ranks: int) -> Tuple[int, int, int]:
    """Factor ``n_ranks`` into a near-cubic 3-D process grid.

    256 -> (8, 8, 4), matching the paper's 256-rank decompositions.
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    best = (n_ranks, 1, 1)
    best_score = float("inf")
    for x in range(1, int(round(n_ranks ** (1 / 3))) + 2):
        if n_ranks % x:
            continue
        rem = n_ranks // x
        for y in range(x, int(math.isqrt(rem)) + 1):
            if rem % y:
                continue
            z = rem // y
            dims = tuple(sorted((x, y, z), reverse=True))
            score = max(dims) / min(dims)
            if score < best_score:
                best_score = score
                best = dims
    return best  # type: ignore[return-value]


def grid_neighbors(rank: int, dims: Tuple[int, int, int]) -> List[int]:
    """Periodic +/- neighbours of ``rank`` along each axis of the grid.

    Returns up to 6 distinct neighbour ranks (fewer when an axis has
    length 1 or 2 and both directions coincide).
    """
    nx, ny, nz = dims
    n = nx * ny * nz
    if not 0 <= rank < n:
        raise ValueError("rank out of range for grid")
    x = rank % nx
    y = (rank // nx) % ny
    z = rank // (nx * ny)
    out: List[int] = []
    for axis, (size, coord) in enumerate(((nx, x), (ny, y), (nz, z))):
        if size == 1:
            continue
        for step in (-1, +1):
            c = (coord + step) % size
            if axis == 0:
                nb = c + nx * (y + ny * z)
            elif axis == 1:
                nb = x + nx * (c + ny * z)
            else:
                nb = x + nx * (y + ny * c)
            if nb != rank and nb not in out:
                out.append(nb)
    return out


class AppModel(ABC):
    """One hybrid MPI+OpenMP application.

    Subclasses define the kernel signatures, the canonical iteration's
    compute phases, and a handful of application-level characteristics
    (halo message size, collectives per iteration, rank imbalance).
    """

    #: application name as used in the paper's figures
    name: str = ""
    #: thread count of the traced native run (fixes trace parallelism)
    traced_threads: int = 48
    #: halo message payload per neighbour (bytes)
    halo_bytes: int = 256 * 1024
    #: number of 8-byte allreduce operations per iteration
    allreduce_per_iter: int = 1
    #: rank-level load imbalance (max/mean - 1 across ranks)
    rank_imbalance: float = 0.1
    #: iterations in the traced region
    default_iterations: int = 4
    #: random seed namespace for deterministic trace generation
    seed: int = 0

    def __init__(self, **overrides) -> None:
        """Instantiate the model, optionally overriding class-level
        characteristics for what-if studies.

        Example: ``SpMz(n_zones=256)`` models the paper's Sec. V-B4
        hypothetical — an SP-MZ decomposed finely enough to occupy a
        64-core socket (and, consequently, to saturate its memory
        channels).
        """
        for key, value in overrides.items():
            if not hasattr(type(self), key):
                raise TypeError(
                    f"{type(self).__name__} has no characteristic {key!r}")
            if callable(getattr(type(self), key)):
                raise TypeError(f"{key!r} is a method, not a characteristic")
            setattr(self, key, value)

    # -- abstract interface ----------------------------------------------------

    @abstractmethod
    def kernels(self) -> Dict[str, KernelSignature]:
        """Detailed signatures of every kernel this app's tasks use."""

    @abstractmethod
    def iteration_phases(self) -> Tuple[ComputePhase, ...]:
        """Build the compute phases of one iteration (fresh objects)."""

    def canonical_phases(self) -> Tuple[ComputePhase, ...]:
        """The ONE phase tuple shared by every consumer of this model.

        Burst traces embed these exact objects in every rank and
        iteration, so downstream identity-keyed memoization (burst
        schedules, detailed phase results) is effective across the
        whole design-space sweep.
        """
        cached = getattr(self, "_canonical_phases", None)
        if cached is None:
            cached = self.iteration_phases()
            self._canonical_phases = cached
        return cached

    # -- derived trace products -------------------------------------------------

    def detailed_trace(self) -> DetailedTrace:
        """The per-kernel detailed trace (MUSA samples one iteration)."""
        return DetailedTrace(app=self.name, kernels=self.kernels(),
                             sampled_rank=0, sampled_iteration=1)

    def representative_phase(self) -> ComputePhase:
        """The single compute region used for the Fig. 2a scaling study
        (the phase carrying the most work)."""
        return max(self.canonical_phases(), key=lambda p: p.total_task_ns)

    def rank_scales(self, n_ranks: int) -> np.ndarray:
        """Per-rank compute-time multipliers (load imbalance across ranks).

        Mean 1.0; max/mean - 1 equals :attr:`rank_imbalance`.  A fixed
        seed keeps traces deterministic.
        """
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if n_ranks == 1 or self.rank_imbalance == 0:
            return np.ones(n_ranks)
        rng = self._rng("ranks")
        raw = rng.lognormal(0.0, 0.25, size=n_ranks)
        raw /= raw.mean()
        mx = raw.max()
        if mx > 1.0:
            raw = 1.0 + (raw - 1.0) * (self.rank_imbalance / (mx - 1.0))
        raw = np.maximum(raw, 0.05)
        return raw / raw.mean()

    def burst_trace(self, n_ranks: int = 256,
                    n_iterations: Optional[int] = None) -> BurstTrace:
        """Whole-application burst trace for ``n_ranks`` ranks.

        Every iteration is: halo exchange (irecv/isend/waitall with the
        6 grid neighbours), the canonical compute phases, and the
        iteration-closing allreduce(s) — the dominant communication
        skeleton of all five applications (Sec. V-A).
        """
        n_iter = n_iterations or self.default_iterations
        if n_iter <= 0:
            raise ValueError("n_iterations must be positive")
        dims = rank_grid_dims(n_ranks)
        phases = self.canonical_phases()
        ranks = []
        for r in range(n_ranks):
            neighbours = grid_neighbors(r, dims)
            events: List = []
            req = 0
            for _ in range(n_iter):
                for phase in phases:
                    # Boundary exchange feeding this phase.
                    reqs: List[int] = []
                    for nb in neighbours:
                        events.append(MpiCall(kind="irecv", peer=nb,
                                              size_bytes=self.halo_bytes,
                                              tag=0, request=req))
                        reqs.append(req)
                        req += 1
                    for nb in neighbours:
                        events.append(MpiCall(kind="isend", peer=nb,
                                              size_bytes=self.halo_bytes,
                                              tag=0, request=req))
                        reqs.append(req)
                        req += 1
                    for rq in reqs:
                        events.append(MpiCall(kind="wait", request=rq))
                    events.append(phase)
                for _ in range(self.allreduce_per_iter):
                    events.append(MpiCall(kind="allreduce", size_bytes=8))
            ranks.append(RankTrace(rank=r, events=tuple(events)))
        return BurstTrace(app=self.name, ranks=tuple(ranks),
                          n_iterations=n_iter)

    # -- bookkeeping -------------------------------------------------------------

    def work_per_iteration_ns(self) -> float:
        """Reference (native-trace) compute work of one iteration."""
        return sum(p.total_task_ns + p.serial_ns
                   for p in self.canonical_phases())

    def _rng(self, stream: str) -> np.random.Generator:
        """Deterministic per-purpose RNG.

        Seeded with a *stable* hash (CRC32) — Python's built-in ``hash``
        is salted per process and would make traces differ across runs.
        """
        token = f"{self.name}/{stream}/{self.seed}".encode()
        return np.random.default_rng(zlib.crc32(token))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AppModel {self.name}>"
