"""Small shared utilities with no domain dependencies.

Kept import-light (stdlib + :mod:`repro.obs` only) so every layer —
trace models, the runtime scheduler, the MUSA facade — can use it
without cycles.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["LruDict"]


class LruDict(OrderedDict):
    """A memo dict bounded to ``maxsize`` entries.

    Reads refresh recency; an insert past the cap evicts the
    least-recently-used entry and counts it under the obs counter named
    by ``eviction_counter``.  Quacks like the plain dicts it replaces
    (``in`` / ``[]`` / ``[]=`` / ``.get`` / ``clear``), so callers that
    receive the cache as an argument need no changes.

    Unlike a wipe-at-capacity cache, eviction is per-entry: the hot
    working set stays resident and cold entries (and whatever their
    values pin — e.g. phase objects held to guard against recycled
    ``id()`` keys) are released incrementally.
    """

    def __init__(self, maxsize: int,
                 eviction_counter: str = "util.lru.evictions") -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        super().__init__()
        self.maxsize = maxsize
        self.eviction_counter = eviction_counter

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.move_to_end(key)
        return value

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.maxsize:
            self.popitem(last=False)
            # Imported here: repro.obs imports nothing from this module,
            # but keeping util importable before obs avoids any cycle.
            from .obs import get_metrics
            get_metrics().inc(self.eviction_counter)
