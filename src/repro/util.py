"""Small shared utilities with no domain dependencies.

Kept import-light (stdlib + :mod:`repro.obs` only) so every layer —
trace models, the runtime scheduler, the MUSA facade — can use it
without cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["LruDict"]

#: Lazily-resolved :func:`repro.obs.get_metrics`.  The import runs once
#: per process (on the first eviction) instead of once per evicted
#: entry: even a cached ``import`` statement is an import-machinery
#: round-trip (sys.modules lookup, lock, attribute fetch), which used
#: to sit inside the per-entry eviction loop of a hot memo path.
_get_metrics: Optional[Callable] = None


def _metrics():
    global _get_metrics
    if _get_metrics is None:
        # Deferred: repro.obs imports nothing from this module, but
        # keeping util importable before obs avoids any cycle.
        from .obs import get_metrics
        _get_metrics = get_metrics
    return _get_metrics()


class LruDict(OrderedDict):
    """A memo dict bounded to ``maxsize`` entries.

    Reads refresh recency; an insert past the cap evicts the
    least-recently-used entry and counts it under the obs counter named
    by ``eviction_counter``.  Quacks like the plain dicts it replaces
    (``in`` / ``[]`` / ``[]=`` / ``.get`` / ``clear``), so callers that
    receive the cache as an argument need no changes.

    Unlike a wipe-at-capacity cache, eviction is per-entry: the hot
    working set stays resident and cold entries (and whatever their
    values pin — e.g. phase objects held to guard against recycled
    ``id()`` keys) are released incrementally.
    """

    def __init__(self, maxsize: int,
                 eviction_counter: str = "util.lru.evictions") -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        super().__init__()
        self.maxsize = maxsize
        self.eviction_counter = eviction_counter

    def __getitem__(self, key):
        value = super().__getitem__(key)
        self.move_to_end(key)
        return value

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        evicted = 0
        while len(self) > self.maxsize:
            self.popitem(last=False)
            evicted += 1
        if evicted:
            _metrics().inc(self.eviction_counter, evicted)
