"""Lightweight execution metrics: counters and timer spans.

The sweep engine, :class:`~repro.core.musa.Musa` and the detailed-mode
phase simulator all report into one process-local
:class:`MetricsRegistry`.  Worker processes ship snapshot *deltas* back
to the sweep parent, which merges them, so a campaign's metrics are
complete even when the work ran across a process pool.

The registry is deliberately tiny — plain dicts, no locks beyond a
single mutex, no background threads — so instrumentation can stay on
in production sweeps without measurable overhead.
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "inc",
    "observe",
    "span",
    "warn",
    "summarize",
]

logger = logging.getLogger("repro.obs")


class MetricsRegistry:
    """Named counters plus named timers (count / total / max seconds)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, Dict[str, float]] = {}

    # -- recording ----------------------------------------------------------

    def inc(self, name: str, n: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        """Record one timed interval under ``name``."""
        with self._lock:
            t = self._timers.setdefault(
                name, {"count": 0.0, "total_s": 0.0, "max_s": 0.0})
            t["count"] += 1
            t["total_s"] += seconds
            t["max_s"] = max(t["max_s"], seconds)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block as one interval of timer ``name``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - t0)

    # -- reading ------------------------------------------------------------

    def counter(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> Dict[str, Any]:
        """Copy of the current state, suitable for JSON or :meth:`merge`."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {k: dict(v) for k, v in self._timers.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()

    # -- cross-process aggregation ------------------------------------------

    def merge(self, snap: Dict[str, Any]) -> None:
        """Fold a snapshot (or delta) from another registry into this one."""
        with self._lock:
            for name, n in snap.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + n
            for name, t in snap.get("timers", {}).items():
                mine = self._timers.setdefault(
                    name, {"count": 0.0, "total_s": 0.0, "max_s": 0.0})
                mine["count"] += t["count"]
                mine["total_s"] += t["total_s"]
                mine["max_s"] = max(mine["max_s"], t["max_s"])

    @staticmethod
    def delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
        """The snapshot difference ``after - before`` (counters and timers).

        ``max_s`` is the interval's *contribution to the running
        maximum*: the new all-time maximum when one was set during the
        interval (then it is the exact interval max), else ``0.0``.
        Merging every delta from a registry back into a base therefore
        reproduces the true maximum; reporting ``after``'s all-time
        ``max_s`` instead (the old behaviour) inflated intervals that
        merely *followed* a slow span — e.g. parent-merged worker spans
        across resumed sweeps.
        """
        counters = {}
        for name, n in after.get("counters", {}).items():
            d = n - before.get("counters", {}).get(name, 0)
            if d:
                counters[name] = d
        timers = {}
        for name, t in after.get("timers", {}).items():
            b = before.get("timers", {}).get(
                name, {"count": 0.0, "total_s": 0.0, "max_s": 0.0})
            dc = t["count"] - b["count"]
            if dc:
                timers[name] = {
                    "count": dc,
                    "total_s": t["total_s"] - b["total_s"],
                    "max_s": t["max_s"] if t["max_s"] > b["max_s"] else 0.0,
                }
        return {"counters": counters, "timers": timers}


#: Process-local default registry; forked sweep workers inherit a copy
#: and report deltas back to the parent.
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return _GLOBAL


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-local registry (returns the previous one)."""
    global _GLOBAL
    previous, _GLOBAL = _GLOBAL, registry
    return previous


def inc(name: str, n: float = 1) -> None:
    _GLOBAL.inc(name, n)


def observe(name: str, seconds: float) -> None:
    _GLOBAL.observe(name, seconds)


def span(name: str):
    return _GLOBAL.span(name)


def warn(message: str, *args) -> None:
    """Log a warning and count it (counter ``obs.warnings``)."""
    _GLOBAL.inc("obs.warnings")
    logger.warning(message, *args)


def summarize(snap: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Snapshot plus the derived campaign statistics the CLI reports.

    * ``tasks_per_second`` — completed tasks over the sweep wall time;
    * ``memo_hit_rate`` — fraction of memoizable detailed-simulation
      lookups (phase-detail results plus resolved kernel timings)
      served from cache instead of re-simulated;
    * ``phase_memo_hit_rate`` / ``kernel_memo_hit_rate`` — the two
      components: whole-phase results (hit on re-simulation of a
      (phase, node) pair, e.g. retries or repeated points) and kernel
      timings (hit when phases of one app share a kernel at the same
      occupancy);
    * ``retries`` / ``tasks_failed`` / ``tasks_skipped`` — fault and
      resume accounting from the sweep scheduler;
    * ``batched_configs`` / ``batch_fallbacks`` — configs that went
      through the column-wise batched evaluator, and batches that had
      to fall back to scalar per-config simulation;
    * ``replay_events`` / ``replay_wakeups`` / ``replay_messages`` /
      ``replay_bus_waits`` — event-driven MPI replay activity
      (``mode='replay'`` campaigns): trace events processed, blocked
      ranks re-examined after a dependency resolved, point-to-point
      messages matched, and transfers delayed by the finite-bus pool;
    * ``replay_lockstep_events`` / ``replay_forked_groups`` /
      ``replay_peeled_configs`` — config-vectorized finite-bus replay
      accounting: events priced by lockstep groups, child groups
      created when diverging columns forked off, and columns finished
      on the scalar engine (deadlock diagnostics only);
    * ``replay_array_events`` / ``replay_worklist_events`` —
      config-events priced by the level-batched array replay driver
      (structural tape, one NumPy pass per level group instead of one
      Python step per event) and by the event-at-a-time worklist
      fallback driver;
    * ``miss_batch_geometries`` — distinct cache geometries evaluated
      by the batched set-associative miss model (one 2-D pass per
      kernel instead of one scalar call per level per config);
    * ``sched_batch_fast`` / ``sched_batch_fallbacks`` — config
      columns served by the vectorized phase scheduler versus columns
      that fell back to the per-config scalar simulation (e.g.
      ``overhead_scale != duration_scale``);
    * ``memo_evictions`` — entries dropped from ``Musa``'s bounded
      per-process memo caches (burst/detail/trace/kernel-timing);
    * ``batch_memo_evictions`` — entries dropped from the batched
      evaluator's bounded miss-profile/vector memos;
    * ``store_hits`` / ``store_misses`` / ``store_hit_rate`` /
      ``store_puts`` / ``store_invalidated`` — content-addressed
      result-store traffic (the serve layer's cache: a hit answers a
      query point without touching the engine);
    * ``serve_requests`` / ``serve_coalesced`` — queries handled by the
      serve front end, and duplicates that coalesced onto an identical
      in-flight evaluation instead of racing the engine;
    * ``timeout_unavailable`` — tasks that requested a ``timeout_s``
      budget on a platform or thread without ``SIGALRM`` and ran
      unbudgeted instead;
    * ``sweep_shards`` / ``sweep_steals`` / ``sweep_workers_lost`` /
      ``sweep_ctx_spawn`` — shard-scheduler accounting: work shards
      dealt to workers, shards stolen from a busy worker's deque by an
      idle one, worker processes that died mid-sweep (their shards are
      requeued), and pools that fell back to the ``spawn`` start
      method because ``fork`` was unavailable;
    * ``search_evaluated`` / ``search_rounds`` / ``search_front_size``
      / ``search_surrogate_rank_calls`` — active-DSE search loop
      accounting (:mod:`repro.analysis.search`): points acquired,
      proposal rounds, final Pareto-front size, and surrogate ranking
      fits;
    * ``sched_jit_calls`` — general-DAG phases scheduled by the opt-in
      ``REPRO_JIT`` compiled kernel instead of the interpreted heapq
      path.
    """
    snap = snap if snap is not None else _GLOBAL.snapshot()
    c = snap.get("counters", {})
    t = snap.get("timers", {})
    run = t.get("sweep.run", {})
    completed = c.get("sweep.tasks.completed", 0)
    wall_s = run.get("total_s", 0.0)

    def rate(hit_name, miss_name):
        hits = c.get(hit_name, 0)
        total = hits + c.get(miss_name, 0)
        return hits / total if total else None

    phase_hits = c.get("musa.phase_detail.hit", 0)
    phase_misses = c.get("musa.phase_detail.miss", 0)
    kern_hits = c.get("phase_sim.kernel_memo.hit", 0)
    kern_misses = c.get("phase_sim.kernel_memo.miss", 0)
    memo_total = phase_hits + phase_misses + kern_hits + kern_misses
    derived = {
        "tasks_completed": completed,
        "tasks_skipped": c.get("sweep.tasks.skipped", 0),
        "tasks_failed": c.get("sweep.tasks.failed", 0),
        "retries": c.get("sweep.retries", 0),
        "faults": c.get("sweep.faults", 0),
        "duplicates_dropped": c.get("checkpoint.duplicates_dropped", 0),
        "sweep_wall_s": wall_s,
        "tasks_per_second": completed / wall_s if wall_s > 0 else None,
        "memo_hit_rate": ((phase_hits + kern_hits) / memo_total
                          if memo_total else None),
        "phase_memo_hit_rate": rate("musa.phase_detail.hit",
                                    "musa.phase_detail.miss"),
        "kernel_memo_hit_rate": rate("phase_sim.kernel_memo.hit",
                                     "phase_sim.kernel_memo.miss"),
        "batched_configs": c.get("sweep.batch.configs", 0),
        "batch_fallbacks": c.get("sweep.batch.fallback", 0),
        "replay_events": c.get("replay.events", 0),
        "replay_wakeups": c.get("replay.wakeups", 0),
        "replay_messages": c.get("replay.messages", 0),
        "replay_bus_waits": c.get("replay.bus_waits", 0),
        "replay_lockstep_events": c.get("replay.batch.lockstep_events", 0),
        "replay_array_events": c.get("replay.batch.array_events", 0),
        "replay_worklist_events": c.get("replay.batch.worklist_events", 0),
        "replay_forked_groups": c.get("replay.batch.forked_groups", 0),
        "replay_peeled_configs": c.get("replay.batch.peeled_configs", 0),
        "miss_batch_geometries": c.get("miss.batch.geometries", 0),
        "sched_batch_fast": c.get("sched.batch.fast", 0),
        "sched_batch_fallbacks": c.get("sched.batch.fallbacks", 0),
        "memo_evictions": c.get("musa.memo.evictions", 0),
        "batch_memo_evictions": c.get("batch.memo.evictions", 0),
        "store_hits": c.get("store.hit", 0),
        "store_misses": c.get("store.miss", 0),
        "store_hit_rate": rate("store.hit", "store.miss"),
        "store_puts": c.get("store.put", 0),
        "store_invalidated": c.get("store.invalidated", 0),
        "serve_requests": c.get("serve.requests", 0),
        "serve_coalesced": c.get("serve.singleflight.coalesced", 0),
        "timeout_unavailable": c.get("sweep.timeout_unavailable", 0),
        "sweep_shards": c.get("sweep.shards", 0),
        "sweep_steals": c.get("sweep.steals", 0),
        "sweep_workers_lost": c.get("sweep.worker.lost", 0),
        "sweep_ctx_spawn": c.get("sweep.ctx.spawn", 0),
        "search_evaluated": c.get("search.evaluated", 0),
        "search_rounds": c.get("search.rounds", 0),
        "search_front_size": c.get("search.front_size", 0),
        "search_surrogate_rank_calls": c.get("search.surrogate_rank_calls",
                                             0),
        "sched_jit_calls": c.get("sched.jit.calls", 0),
    }
    return {"derived": derived, "counters": c, "timers": t}
