"""Throughput-aware progress reporting for long sweeps."""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["ProgressMeter"]


class ProgressMeter:
    """Prints ``done/total`` lines with a tasks-per-second rate and ETA.

    Throttled by both a count stride and a minimum interval so a fast
    inline sweep does not flood stdout while a slow campaign still
    reports regularly.
    """

    def __init__(self, total: int, label: str = "sweep",
                 every_n: int = 200, min_interval_s: float = 2.0,
                 stream: Optional[TextIO] = None,
                 clock=time.perf_counter) -> None:
        self.total = total
        self.label = label
        self.every_n = max(1, every_n)
        self.min_interval_s = min_interval_s
        self.stream = stream if stream is not None else sys.stdout
        self._clock = clock
        self._t0 = clock()
        self._last_print = self._t0 - min_interval_s
        self.done = 0

    def update(self, n: int = 1) -> None:
        self.done += n
        if self.done % self.every_n and self.done != self.total:
            return
        now = self._clock()
        if now - self._last_print < self.min_interval_s \
                and self.done != self.total:
            return
        self._last_print = now
        print(f"  {self.render()}", file=self.stream, flush=True)

    def render(self) -> str:
        elapsed = max(self._clock() - self._t0, 1e-9)
        rate = self.done / elapsed
        if rate > 0 and self.done < self.total:
            eta_s = (self.total - self.done) / rate
            eta = f", eta {int(eta_s // 60):d}:{int(eta_s % 60):02d}"
        else:
            eta = ""
        return (f"{self.label}: {self.done}/{self.total} "
                f"({rate:.1f} tasks/s{eta})")
