"""Execution observability: counters, timer spans, progress meters.

Everything here is process-local and dependency-free; the sweep engine
merges worker deltas so campaign metrics survive multiprocessing.  See
:func:`summarize` for the derived statistics (tasks/s, memo hit rate)
surfaced by ``repro sweep --metrics-json``.
"""

from .metrics import (
    MetricsRegistry,
    get_metrics,
    inc,
    observe,
    set_metrics,
    span,
    summarize,
    warn,
)
from .progress import ProgressMeter

__all__ = [
    "MetricsRegistry",
    "ProgressMeter",
    "get_metrics",
    "inc",
    "observe",
    "set_metrics",
    "span",
    "summarize",
    "warn",
]
