"""Full compute-node configuration: the unit of the design space.

A :class:`NodeConfig` combines one value for each of the six explored
architectural axes (Table I): core OoO class, cache hierarchy, memory
subsystem, CPU frequency, FPU vector width, and cores per socket.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from .cache import CacheHierarchy, cache_preset
from .core import CoreConfig, core_preset
from .memory import MemoryConfig, memory_preset

__all__ = [
    "NodeConfig",
    "FREQUENCIES_GHZ",
    "VECTOR_WIDTHS_BITS",
    "CORE_COUNTS",
    "baseline_node",
]

#: Frequency axis of Table I (GHz).
FREQUENCIES_GHZ: Tuple[float, ...] = (1.5, 2.0, 2.5, 3.0)

#: Vector-width axis of Table I (bits); Table II extends to 1024/2048.
VECTOR_WIDTHS_BITS: Tuple[int, ...] = (128, 256, 512)

#: Cores-per-socket axis of Table I.
CORE_COUNTS: Tuple[int, ...] = (1, 32, 64)

_VALID_VECTOR_WIDTHS = (64, 128, 256, 512, 1024, 2048)


@dataclass(frozen=True)
class NodeConfig:
    """One point of the architectural design space."""

    core: CoreConfig
    cache: CacheHierarchy
    memory: MemoryConfig
    frequency_ghz: float
    vector_bits: int
    n_cores: int

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        if self.vector_bits not in _VALID_VECTOR_WIDTHS:
            raise ValueError(
                f"vector_bits must be one of {_VALID_VECTOR_WIDTHS}, "
                f"got {self.vector_bits}"
            )
        if self.n_cores <= 0:
            raise ValueError("n_cores must be positive")

    # -- derived quantities -------------------------------------------------

    @property
    def cycle_ns(self) -> float:
        """Duration of one core cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    @property
    def vector_lanes(self) -> int:
        """Number of double-precision (64-bit) SIMD lanes."""
        return max(1, self.vector_bits // 64)

    @property
    def label(self) -> str:
        """Compact human-readable identifier, stable across runs."""
        return (
            f"{self.core.label}|{self.cache.label}|{self.memory.label}"
            f"|{self.frequency_ghz:g}GHz|{self.vector_bits}b|{self.n_cores}c"
        )

    def memory_latency_cycles(self) -> float:
        """Unloaded memory latency expressed in core cycles at this frequency.

        DRAM latency is constant in wall-clock time, so faster cores see
        proportionally more stall cycles per miss (Sec. V-B5).
        """
        return self.memory.idle_latency_ns * self.frequency_ghz

    # -- variation helpers ---------------------------------------------------

    def with_(self, **kwargs) -> "NodeConfig":
        """Return a copy with the given fields replaced.

        String shorthands are accepted for the preset-backed axes, e.g.
        ``cfg.with_(core="medium", memory="8chDDR4")``.
        """
        if isinstance(kwargs.get("core"), str):
            kwargs["core"] = core_preset(kwargs["core"])
        if isinstance(kwargs.get("cache"), str):
            kwargs["cache"] = cache_preset(kwargs["cache"])
        if isinstance(kwargs.get("memory"), str):
            kwargs["memory"] = memory_preset(kwargs["memory"])
        return replace(self, **kwargs)

    def axis_values(self) -> dict:
        """Axis-label mapping used by normalization and reporting."""
        return {
            "core": self.core.label,
            "cache": self.cache.label,
            "memory": self.memory.label,
            "frequency": self.frequency_ghz,
            "vector": self.vector_bits,
            "cores": self.n_cores,
        }


def baseline_node(n_cores: int = 64) -> NodeConfig:
    """The reference configuration used for workload characterization (Fig. 1).

    Medium core, 64M:512K caches, 4-channel DDR4, 2 GHz, 128-bit SIMD.
    """
    return NodeConfig(
        core=core_preset("medium"),
        cache=cache_preset("64M:512K"),
        memory=memory_preset("4chDDR4"),
        frequency_ghz=2.0,
        vector_bits=128,
        n_cores=n_cores,
    )
