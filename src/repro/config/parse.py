"""Compact node-specification strings.

``parse_node("aggressive/96M:1M/8chDDR4/2.0GHz/512b/64c")`` builds the
corresponding :class:`~repro.config.node.NodeConfig`; fields may appear
in any order, and omitted fields fall back to the Fig. 1 baseline.
``format_node`` is the inverse.  Used by the CLI and handy in notebooks.
"""

from __future__ import annotations

import re
from typing import Optional

from .cache import CACHE_PRESETS, cache_preset
from .core import CORE_PRESETS, core_preset
from .memory import MEMORY_PRESETS, memory_preset
from .node import NodeConfig, baseline_node

__all__ = ["parse_node", "format_node"]

_FREQ_RE = re.compile(r"^(\d+(?:\.\d+)?)\s*ghz$", re.IGNORECASE)
_VEC_RE = re.compile(r"^(\d+)\s*b(?:its?)?$", re.IGNORECASE)
_CORES_RE = re.compile(r"^(\d+)\s*c(?:ores?)?$", re.IGNORECASE)


def parse_node(spec: str, base: Optional[NodeConfig] = None) -> NodeConfig:
    """Parse a ``/``-separated node spec into a configuration.

    Recognized field formats (case-insensitive, any order):

    * core class: ``lowend`` / ``medium`` / ``high`` / ``aggressive``
    * cache label: ``32M:256K`` / ``64M:512K`` / ``96M:1M``
    * memory label: ``4chDDR4`` / ``8chDDR4`` / ``16chDDR4`` / ``16chHBM``
    * frequency: ``2.5GHz``
    * vector width: ``512b``
    * core count: ``64c``
    """
    node = base or baseline_node()
    if not spec.strip():
        raise ValueError("empty node spec")
    for raw in spec.split("/"):
        field = raw.strip()
        if not field:
            continue
        low = field.lower()
        if low in CORE_PRESETS:
            node = node.with_(core=core_preset(low))
            continue
        cache_match = next((k for k in CACHE_PRESETS
                            if k.lower() == low), None)
        if cache_match:
            node = node.with_(cache=cache_preset(cache_match))
            continue
        mem_match = next((k for k in MEMORY_PRESETS
                          if k.lower() == low), None)
        if mem_match:
            node = node.with_(memory=memory_preset(mem_match))
            continue
        m = _FREQ_RE.match(field)
        if m:
            node = node.with_(frequency_ghz=float(m.group(1)))
            continue
        m = _VEC_RE.match(field)
        if m:
            node = node.with_(vector_bits=int(m.group(1)))
            continue
        m = _CORES_RE.match(field)
        if m:
            node = node.with_(n_cores=int(m.group(1)))
            continue
        raise ValueError(
            f"unrecognized node-spec field {field!r} "
            "(expected a core/cache/memory label, '<f>GHz', '<n>b', or "
            "'<n>c')"
        )
    return node


def format_node(node: NodeConfig) -> str:
    """Render a node as a spec string ``parse_node`` round-trips."""
    return (f"{node.core.label}/{node.cache.label}/{node.memory.label}/"
            f"{node.frequency_ghz:g}GHz/{node.vector_bits}b/"
            f"{node.n_cores}c")
