"""The 864-point design space (Sec. IV-A) and Table II specials.

The full cartesian product of Table I values:

    4 core classes x 3 cache hierarchies x 2 memory configs
    x 4 frequencies x 3 vector widths x 3 core counts  =  864

Each application is simulated once per point.  The paper's per-axis bar
charts (Figs. 5-9) average *paired* normalizations over this space; the
pairing logic lives in :mod:`repro.core.normalize` and relies on the
stable ordering produced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .cache import CACHE_LABELS, cache_preset
from .core import CORE_LABELS, core_preset
from .memory import MEMORY_LABELS, memory_preset
from .node import CORE_COUNTS, FREQUENCIES_GHZ, VECTOR_WIDTHS_BITS, NodeConfig

__all__ = ["DesignSpace", "axis_linspace", "axis_range",
           "full_design_space", "range_design_space", "smoke_design_space",
           "unconventional_configs"]

#: Axis names in canonical iteration order (outermost first).
AXES: Tuple[str, ...] = ("core", "cache", "memory", "frequency", "vector", "cores")


def axis_range(start, stop, step) -> Tuple:
    """Inclusive arithmetic progression for a numeric axis.

    ``axis_range(8, 128, 8)`` explores cores-per-socket in steps of 8.
    Values stay ints when every operand is an int, so axis values keyed
    into journals/records round-trip exactly.
    """
    if step == 0:
        raise ValueError("step must be non-zero")
    values = []
    v = start
    while (v <= stop) if step > 0 else (v >= stop):
        values.append(v)
        v = v + step
    if not values:
        raise ValueError(f"empty range: start={start} stop={stop} step={step}")
    return tuple(values)


def axis_linspace(start: float, stop: float, num: int) -> Tuple[float, ...]:
    """``num`` evenly spaced floats from ``start`` to ``stop`` inclusive.

    Pure-Python arithmetic (no NumPy dtype round-trip) so the values are
    plain floats that serialize canonically.
    """
    if num < 1:
        raise ValueError("num must be >= 1")
    if num == 1:
        return (float(start),)
    step = (float(stop) - float(start)) / (num - 1)
    values = tuple(float(start) + i * step for i in range(num - 1))
    return values + (float(stop),)


@dataclass(frozen=True)
class DesignSpace:
    """A cartesian design space over the six Table I axes.

    Immutable; iteration order is deterministic (row-major over the axis
    value tuples), which downstream result containers depend on.
    """

    core_labels: Tuple[str, ...] = CORE_LABELS
    cache_labels: Tuple[str, ...] = CACHE_LABELS
    memory_labels: Tuple[str, ...] = MEMORY_LABELS
    frequencies: Tuple[float, ...] = FREQUENCIES_GHZ
    vector_widths: Tuple[int, ...] = VECTOR_WIDTHS_BITS
    core_counts: Tuple[int, ...] = CORE_COUNTS

    def __post_init__(self) -> None:
        for name in AXES:
            if len(self._axis(name)) == 0:
                raise ValueError(f"axis {name!r} must have at least one value")
            if len(set(self._axis(name))) != len(self._axis(name)):
                raise ValueError(f"axis {name!r} has duplicate values")

    def _axis(self, name: str) -> Sequence:
        return {
            "core": self.core_labels,
            "cache": self.cache_labels,
            "memory": self.memory_labels,
            "frequency": self.frequencies,
            "vector": self.vector_widths,
            "cores": self.core_counts,
        }[name]

    def axis_values(self, name: str) -> Tuple:
        """Values explored along one named axis."""
        return tuple(self._axis(name))

    def __len__(self) -> int:
        n = 1
        for name in AXES:
            n *= len(self._axis(name))
        return n

    def __iter__(self) -> Iterator[NodeConfig]:
        for core, cache, mem, freq, vec, ncores in product(
            self.core_labels, self.cache_labels, self.memory_labels,
            self.frequencies, self.vector_widths, self.core_counts,
        ):
            yield NodeConfig(
                core=core_preset(core),
                cache=cache_preset(cache),
                memory=memory_preset(mem),
                frequency_ghz=freq,
                vector_bits=vec,
                n_cores=ncores,
            )

    def configs(self) -> List[NodeConfig]:
        """Materialize the whole space in canonical order."""
        return list(self)

    def axis_lengths(self) -> Tuple[int, ...]:
        """Per-axis value counts in canonical :data:`AXES` order."""
        return tuple(len(self._axis(name)) for name in AXES)

    def coords_at(self, index: int) -> Tuple[int, ...]:
        """Mixed-radix decode of a flat index into per-axis coordinates.

        Row-major over :data:`AXES` (cores fastest-varying), matching
        ``__iter__``'s ``itertools.product`` order exactly.
        """
        n = len(self)
        if not 0 <= index < n:
            raise IndexError(f"index {index} out of range for {n}-point space")
        coords = []
        for length in reversed(self.axis_lengths()):
            index, c = divmod(index, length)
            coords.append(c)
        return tuple(reversed(coords))

    def index_of(self, coords: Sequence[int]) -> int:
        """Inverse of :meth:`coords_at`."""
        lengths = self.axis_lengths()
        if len(coords) != len(lengths):
            raise ValueError(f"expected {len(lengths)} coords, got {coords}")
        index = 0
        for c, length in zip(coords, lengths):
            if not 0 <= c < length:
                raise IndexError(f"coordinate {c} out of range 0..{length - 1}")
            index = index * length + c
        return index

    def config_at(self, index: int) -> NodeConfig:
        """Lazily materialize the ``index``-th config of the space.

        ``space.config_at(i) == list(space)[i]`` for every ``i`` without
        building the list — the entry point that keeps million-point
        range spaces tractable for the sharded sweep and the search
        layer.
        """
        ci, xi, mi, fi, vi, ni = self.coords_at(index)
        return NodeConfig(
            core=core_preset(self.core_labels[ci]),
            cache=cache_preset(self.cache_labels[xi]),
            memory=memory_preset(self.memory_labels[mi]),
            frequency_ghz=self.frequencies[fi],
            vector_bits=self.vector_widths[vi],
            n_cores=self.core_counts[ni],
        )

    def restrict(self, **fixed) -> "DesignSpace":
        """Return a sub-space with some axes pinned to single values.

        Example: ``space.restrict(frequency=2.0, cores=64)`` gives the
        subset used for the PCA study (Sec. V-C).
        """
        kwargs: Dict[str, Tuple] = {}
        mapping = {
            "core": "core_labels", "cache": "cache_labels",
            "memory": "memory_labels", "frequency": "frequencies",
            "vector": "vector_widths", "cores": "core_counts",
        }
        for axis, value in fixed.items():
            if axis not in mapping:
                raise KeyError(f"unknown axis {axis!r}; valid axes: {AXES}")
            values = value if isinstance(value, (tuple, list)) else (value,)
            for v in values:
                if v not in self._axis(axis):
                    raise ValueError(
                        f"value {v!r} not in axis {axis!r} ({self._axis(axis)})"
                    )
            kwargs[mapping[axis]] = tuple(values)
        current = {
            "core_labels": self.core_labels,
            "cache_labels": self.cache_labels,
            "memory_labels": self.memory_labels,
            "frequencies": self.frequencies,
            "vector_widths": self.vector_widths,
            "core_counts": self.core_counts,
        }
        current.update(kwargs)
        return DesignSpace(**current)

    def samples_per_bar(self, axis: str, panel_cores: Optional[int] = None) -> int:
        """Number of paired samples averaged into one figure bar.

        With the full space, one vector-width bar in a 32-core panel
        averages 864 / 3 (vector values) / 3 (core counts) = 96 samples,
        matching the paper's statement in Sec. V-B.
        """
        n = len(self) // len(self._axis(axis))
        if panel_cores is not None:
            if panel_cores not in self.core_counts:
                raise ValueError(f"{panel_cores} not in cores axis")
            if axis != "cores":
                n //= len(self.core_counts)
        return n


def full_design_space() -> DesignSpace:
    """The paper's 864-point space (Table I)."""
    return DesignSpace()


def range_design_space(
    core_labels: Tuple[str, ...] = CORE_LABELS,
    cache_labels: Tuple[str, ...] = CACHE_LABELS,
    memory_labels: Tuple[str, ...] = MEMORY_LABELS,
    frequencies: Optional[Tuple[float, ...]] = None,
    vector_widths: Tuple[int, ...] = VECTOR_WIDTHS_BITS,
    core_counts: Optional[Tuple[int, ...]] = None,
) -> DesignSpace:
    """A range-generated space densifying the two numeric axes.

    Defaults give 4 cores x 3 caches x 2 memories x 31 frequencies x 3
    vectors x 63 core counts = 140,616 points — the >=10^5-point space
    the active-search layer explores without exhaustion.  Pass explicit
    tuples (e.g. from :func:`axis_range` / :func:`axis_linspace`) to
    reshape any axis.
    """
    return DesignSpace(
        core_labels=core_labels,
        cache_labels=cache_labels,
        memory_labels=memory_labels,
        frequencies=frequencies or axis_linspace(1.0, 4.0, 31),
        vector_widths=vector_widths,
        core_counts=core_counts or axis_range(4, 252, 4),
    )


def smoke_design_space() -> DesignSpace:
    """The 8-configuration CI smoke space.

    One definition shared by ``repro sweep --smoke``, the benchmark
    smoke tiers and the CI smoke scripts, so the smoke assertions
    (task counts, batched-config counts) can't drift apart.
    """
    return DesignSpace(core_labels=("medium", "high"),
                       cache_labels=("64M:512K",),
                       memory_labels=("4chDDR4", "8chDDR4"),
                       frequencies=(2.0,), vector_widths=(128, 512),
                       core_counts=(64,))


def unconventional_configs() -> Dict[str, Dict[str, NodeConfig]]:
    """Table II: application-specific configurations, all 64-core / 2 GHz.

    Returns ``{app: {label: NodeConfig}}`` including each app's paper
    ``DSE-Best`` baseline.
    """
    def node(core, vec, cachecfg, mem):
        return NodeConfig(
            core=core_preset(core), cache=cache_preset(cachecfg),
            memory=memory_preset(mem), frequency_ghz=2.0,
            vector_bits=vec, n_cores=64,
        )

    return {
        "spmz": {
            "Best-DSE": node("aggressive", 512, "96M:1M", "8chDDR4"),
            "Vector+": node("high", 1024, "64M:512K", "4chDDR4"),
            "Vector++": node("high", 2048, "64M:512K", "4chDDR4"),
        },
        "lulesh": {
            "Best-DSE": node("high", 512, "96M:1M", "8chDDR4"),
            "MEM+": node("medium", 64, "64M:512K", "16chDDR4"),
            "MEM++": node("medium", 64, "64M:512K", "16chHBM"),
        },
    }
