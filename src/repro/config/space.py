"""The 864-point design space (Sec. IV-A) and Table II specials.

The full cartesian product of Table I values:

    4 core classes x 3 cache hierarchies x 2 memory configs
    x 4 frequencies x 3 vector widths x 3 core counts  =  864

Each application is simulated once per point.  The paper's per-axis bar
charts (Figs. 5-9) average *paired* normalizations over this space; the
pairing logic lives in :mod:`repro.core.normalize` and relies on the
stable ordering produced here.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .cache import CACHE_LABELS, cache_preset
from .core import CORE_LABELS, core_preset
from .memory import MEMORY_LABELS, memory_preset
from .node import CORE_COUNTS, FREQUENCIES_GHZ, VECTOR_WIDTHS_BITS, NodeConfig

__all__ = ["DesignSpace", "full_design_space", "smoke_design_space",
           "unconventional_configs"]

#: Axis names in canonical iteration order (outermost first).
AXES: Tuple[str, ...] = ("core", "cache", "memory", "frequency", "vector", "cores")


@dataclass(frozen=True)
class DesignSpace:
    """A cartesian design space over the six Table I axes.

    Immutable; iteration order is deterministic (row-major over the axis
    value tuples), which downstream result containers depend on.
    """

    core_labels: Tuple[str, ...] = CORE_LABELS
    cache_labels: Tuple[str, ...] = CACHE_LABELS
    memory_labels: Tuple[str, ...] = MEMORY_LABELS
    frequencies: Tuple[float, ...] = FREQUENCIES_GHZ
    vector_widths: Tuple[int, ...] = VECTOR_WIDTHS_BITS
    core_counts: Tuple[int, ...] = CORE_COUNTS

    def __post_init__(self) -> None:
        for name in AXES:
            if len(self._axis(name)) == 0:
                raise ValueError(f"axis {name!r} must have at least one value")
            if len(set(self._axis(name))) != len(self._axis(name)):
                raise ValueError(f"axis {name!r} has duplicate values")

    def _axis(self, name: str) -> Sequence:
        return {
            "core": self.core_labels,
            "cache": self.cache_labels,
            "memory": self.memory_labels,
            "frequency": self.frequencies,
            "vector": self.vector_widths,
            "cores": self.core_counts,
        }[name]

    def axis_values(self, name: str) -> Tuple:
        """Values explored along one named axis."""
        return tuple(self._axis(name))

    def __len__(self) -> int:
        n = 1
        for name in AXES:
            n *= len(self._axis(name))
        return n

    def __iter__(self) -> Iterator[NodeConfig]:
        for core, cache, mem, freq, vec, ncores in product(
            self.core_labels, self.cache_labels, self.memory_labels,
            self.frequencies, self.vector_widths, self.core_counts,
        ):
            yield NodeConfig(
                core=core_preset(core),
                cache=cache_preset(cache),
                memory=memory_preset(mem),
                frequency_ghz=freq,
                vector_bits=vec,
                n_cores=ncores,
            )

    def configs(self) -> List[NodeConfig]:
        """Materialize the whole space in canonical order."""
        return list(self)

    def restrict(self, **fixed) -> "DesignSpace":
        """Return a sub-space with some axes pinned to single values.

        Example: ``space.restrict(frequency=2.0, cores=64)`` gives the
        subset used for the PCA study (Sec. V-C).
        """
        kwargs: Dict[str, Tuple] = {}
        mapping = {
            "core": "core_labels", "cache": "cache_labels",
            "memory": "memory_labels", "frequency": "frequencies",
            "vector": "vector_widths", "cores": "core_counts",
        }
        for axis, value in fixed.items():
            if axis not in mapping:
                raise KeyError(f"unknown axis {axis!r}; valid axes: {AXES}")
            values = value if isinstance(value, (tuple, list)) else (value,)
            for v in values:
                if v not in self._axis(axis):
                    raise ValueError(
                        f"value {v!r} not in axis {axis!r} ({self._axis(axis)})"
                    )
            kwargs[mapping[axis]] = tuple(values)
        current = {
            "core_labels": self.core_labels,
            "cache_labels": self.cache_labels,
            "memory_labels": self.memory_labels,
            "frequencies": self.frequencies,
            "vector_widths": self.vector_widths,
            "core_counts": self.core_counts,
        }
        current.update(kwargs)
        return DesignSpace(**current)

    def samples_per_bar(self, axis: str, panel_cores: Optional[int] = None) -> int:
        """Number of paired samples averaged into one figure bar.

        With the full space, one vector-width bar in a 32-core panel
        averages 864 / 3 (vector values) / 3 (core counts) = 96 samples,
        matching the paper's statement in Sec. V-B.
        """
        n = len(self) // len(self._axis(axis))
        if panel_cores is not None:
            if panel_cores not in self.core_counts:
                raise ValueError(f"{panel_cores} not in cores axis")
            if axis != "cores":
                n //= len(self.core_counts)
        return n


def full_design_space() -> DesignSpace:
    """The paper's 864-point space (Table I)."""
    return DesignSpace()


def smoke_design_space() -> DesignSpace:
    """The 8-configuration CI smoke space.

    One definition shared by ``repro sweep --smoke``, the benchmark
    smoke tiers and the CI smoke scripts, so the smoke assertions
    (task counts, batched-config counts) can't drift apart.
    """
    return DesignSpace(core_labels=("medium", "high"),
                       cache_labels=("64M:512K",),
                       memory_labels=("4chDDR4", "8chDDR4"),
                       frequencies=(2.0,), vector_widths=(128, 512),
                       core_counts=(64,))


def unconventional_configs() -> Dict[str, Dict[str, NodeConfig]]:
    """Table II: application-specific configurations, all 64-core / 2 GHz.

    Returns ``{app: {label: NodeConfig}}`` including each app's paper
    ``DSE-Best`` baseline.
    """
    def node(core, vec, cachecfg, mem):
        return NodeConfig(
            core=core_preset(core), cache=cache_preset(cachecfg),
            memory=memory_preset(mem), frequency_ghz=2.0,
            vector_bits=vec, n_cores=64,
        )

    return {
        "spmz": {
            "Best-DSE": node("aggressive", 512, "96M:1M", "8chDDR4"),
            "Vector+": node("high", 1024, "64M:512K", "4chDDR4"),
            "Vector++": node("high", 2048, "64M:512K", "4chDDR4"),
        },
        "lulesh": {
            "Best-DSE": node("high", 512, "96M:1M", "8chDDR4"),
            "MEM+": node("medium", 64, "64M:512K", "16chDDR4"),
            "MEM++": node("medium", 64, "64M:512K", "16chHBM"),
        },
    }
