"""Main-memory configurations: DDR4 channel counts and HBM (Table I / II).

The base design space uses DDR4-2333 with four or eight channels.  The
"unconventional" configurations of Table II additionally use 16-channel
DDR4 (MEM+) and 16-channel HBM (MEM++).

Channel bandwidth for DDR4-2333 is ``2333 MT/s x 8 B = 18.66 GB/s``.
Each DDR4 channel is populated with two 8 GB single-rank RDIMMs
(4ch -> 8 DIMMs / 64 GB, 8ch -> 16 DIMMs / 128 GB), matching Sec. IV-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "MemoryConfig",
    "MEMORY_PRESETS",
    "memory_preset",
    "MEMORY_LABELS",
    "GB",
]

GB = 10 ** 9


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory subsystem description.

    ``idle_latency_ns`` is the unloaded round-trip latency from the L3 miss
    point to data return; queueing delay on top of it is computed by the
    memory model as channel utilization grows.
    """

    label: str
    technology: str            # "DDR4" or "HBM"
    n_channels: int
    channel_bw_gbs: float      # peak GB/s per channel
    idle_latency_ns: float
    dimms_per_channel: int     # 0 for on-package (HBM) stacks
    dimm_capacity_gb: int
    #: True when the standard lacks public energy data (HBM in the paper).
    energy_data_available: bool = True

    def __post_init__(self) -> None:
        if self.n_channels <= 0:
            raise ValueError("n_channels must be positive")
        if self.channel_bw_gbs <= 0:
            raise ValueError("channel_bw_gbs must be positive")
        if self.idle_latency_ns <= 0:
            raise ValueError("idle_latency_ns must be positive")
        if self.dimms_per_channel < 0 or self.dimm_capacity_gb < 0:
            raise ValueError("DIMM parameters must be non-negative")

    @property
    def peak_bw_gbs(self) -> float:
        """Aggregate peak bandwidth across all channels (GB/s)."""
        return self.n_channels * self.channel_bw_gbs

    @property
    def total_dimms(self) -> int:
        return self.n_channels * self.dimms_per_channel

    @property
    def total_capacity_gb(self) -> int:
        return self.total_dimms * self.dimm_capacity_gb


_DDR4_CH_BW = 2333e6 * 8 / 1e9     # 18.664 GB/s
_HBM_CH_BW = 32.0                  # GB/s per pseudo-channel-pair (HBM2-class)


def _presets() -> Dict[str, MemoryConfig]:
    return {
        "4chDDR4": MemoryConfig(
            label="4chDDR4", technology="DDR4", n_channels=4,
            channel_bw_gbs=_DDR4_CH_BW, idle_latency_ns=60.0,
            dimms_per_channel=2, dimm_capacity_gb=8,
        ),
        "8chDDR4": MemoryConfig(
            label="8chDDR4", technology="DDR4", n_channels=8,
            channel_bw_gbs=_DDR4_CH_BW, idle_latency_ns=60.0,
            dimms_per_channel=2, dimm_capacity_gb=8,
        ),
        # Table II "MEM+": 16-channel DDR4.
        "16chDDR4": MemoryConfig(
            label="16chDDR4", technology="DDR4", n_channels=16,
            channel_bw_gbs=_DDR4_CH_BW, idle_latency_ns=60.0,
            dimms_per_channel=2, dimm_capacity_gb=8,
        ),
        # Table II "MEM++": 16-channel HBM; lower latency, no public
        # energy data (paper reports energy as n/a for this point).
        "16chHBM": MemoryConfig(
            label="16chHBM", technology="HBM", n_channels=16,
            channel_bw_gbs=_HBM_CH_BW, idle_latency_ns=45.0,
            dimms_per_channel=0, dimm_capacity_gb=0,
            energy_data_available=False,
        ),
    }


MEMORY_PRESETS: Dict[str, MemoryConfig] = _presets()

#: The two memory points of the 864-configuration base design space.
MEMORY_LABELS: Tuple[str, ...] = ("4chDDR4", "8chDDR4")


def memory_preset(name: str) -> MemoryConfig:
    """Look up a memory preset by label (includes Table II specials)."""
    try:
        return MEMORY_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown memory preset {name!r}; choose from {sorted(MEMORY_PRESETS)}"
        ) from None
