"""Core microarchitecture configurations (Table I of the paper).

Four out-of-order (OoO) capability classes are explored: ``low-end``,
``medium``, ``high`` and ``aggressive``.  Each class fixes the reorder
buffer (ROB) size, issue/commit width, store buffer depth, the number of
integer ALUs and floating-point units (FPUs), and the integer/floating
register file sizes (IRF/FRF).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

__all__ = ["CoreConfig", "CORE_PRESETS", "core_preset", "CORE_LABELS"]


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core pipeline parameters.

    Attributes mirror Table I of the paper.  ``label`` is the name used
    throughout the paper's figures (``lowend``/``medium``/``high``/
    ``aggressive``).
    """

    label: str
    rob_size: int
    issue_width: int
    store_buffer: int
    n_alu: int
    n_fpu: int
    irf_size: int
    frf_size: int
    #: number of L1 data-cache ports (loads+stores issued per cycle)
    l1_ports: int = 2
    #: maximum outstanding L3->memory misses the core can sustain (MSHR-bound
    #: memory-level parallelism ceiling); scales loosely with ROB class.
    max_mlp: int = 8

    def __post_init__(self) -> None:
        if self.rob_size <= 0:
            raise ValueError(f"rob_size must be positive, got {self.rob_size}")
        if self.issue_width <= 0:
            raise ValueError(f"issue_width must be positive, got {self.issue_width}")
        if self.n_alu <= 0 or self.n_fpu <= 0:
            raise ValueError("functional unit counts must be positive")
        if self.store_buffer <= 0:
            raise ValueError("store_buffer must be positive")
        if self.irf_size <= 0 or self.frf_size <= 0:
            raise ValueError("register file sizes must be positive")

    @property
    def window_capability(self) -> float:
        """Scalar summary of OoO aggressiveness in [0, 1].

        Used by the power model to scale scheduler/rename energy and by the
        PCA study as the 'OoO struct.' variable.  Normalized against the
        aggressive preset.
        """
        ref = CORE_PRESETS["aggressive"]
        terms = (
            self.rob_size / ref.rob_size,
            self.issue_width / ref.issue_width,
            self.store_buffer / ref.store_buffer,
            (self.n_alu + self.n_fpu) / (ref.n_alu + ref.n_fpu),
            (self.irf_size + self.frf_size) / (ref.irf_size + ref.frf_size),
        )
        return sum(terms) / len(terms)

    def scaled(self, factor: float) -> "CoreConfig":
        """Return a copy with every sizing knob scaled by ``factor``.

        Convenience for ablation studies outside the four paper presets.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            label=f"{self.label}x{factor:g}",
            rob_size=max(1, round(self.rob_size * factor)),
            issue_width=max(1, round(self.issue_width * factor)),
            store_buffer=max(1, round(self.store_buffer * factor)),
            n_alu=max(1, round(self.n_alu * factor)),
            n_fpu=max(1, round(self.n_fpu * factor)),
            irf_size=max(1, round(self.irf_size * factor)),
            frf_size=max(1, round(self.frf_size * factor)),
        )


def _presets() -> Dict[str, CoreConfig]:
    # Values straight from Table I.  max_mlp grows with the OoO window: a
    # 40-entry ROB can keep far fewer misses in flight than a 300-entry one.
    return {
        "lowend": CoreConfig(
            label="lowend", rob_size=40, issue_width=2, store_buffer=20,
            n_alu=1, n_fpu=3, irf_size=30, frf_size=50, max_mlp=6,
        ),
        "medium": CoreConfig(
            label="medium", rob_size=180, issue_width=4, store_buffer=100,
            n_alu=3, n_fpu=3, irf_size=130, frf_size=70, max_mlp=10,
        ),
        "high": CoreConfig(
            label="high", rob_size=224, issue_width=6, store_buffer=120,
            n_alu=4, n_fpu=3, irf_size=180, frf_size=100, max_mlp=12,
        ),
        "aggressive": CoreConfig(
            label="aggressive", rob_size=300, issue_width=8, store_buffer=150,
            n_alu=5, n_fpu=4, irf_size=210, frf_size=120, max_mlp=16,
        ),
    }


CORE_PRESETS: Dict[str, CoreConfig] = _presets()

#: Paper ordering used on figure x-axes.
CORE_LABELS: Tuple[str, ...] = ("lowend", "medium", "high", "aggressive")


def core_preset(name: str) -> CoreConfig:
    """Look up one of the four Table I core classes by label."""
    try:
        return CORE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown core preset {name!r}; choose from {sorted(CORE_PRESETS)}"
        ) from None
