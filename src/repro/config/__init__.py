"""Architectural configuration layer (Table I / Table II of the paper)."""

from .cache import (
    CACHE_LABELS,
    CACHE_PRESETS,
    KIB,
    LINE_BYTES,
    MIB,
    CacheHierarchy,
    CacheLevelConfig,
    cache_preset,
)
from .core import CORE_LABELS, CORE_PRESETS, CoreConfig, core_preset
from .memory import (
    GB,
    MEMORY_LABELS,
    MEMORY_PRESETS,
    MemoryConfig,
    memory_preset,
)
from .parse import format_node, parse_node
from .node import (
    CORE_COUNTS,
    FREQUENCIES_GHZ,
    VECTOR_WIDTHS_BITS,
    NodeConfig,
    baseline_node,
)
from .space import (
    AXES,
    DesignSpace,
    axis_linspace,
    axis_range,
    full_design_space,
    range_design_space,
    smoke_design_space,
    unconventional_configs,
)

__all__ = [
    "AXES",
    "CACHE_LABELS",
    "CACHE_PRESETS",
    "CORE_COUNTS",
    "CORE_LABELS",
    "CORE_PRESETS",
    "FREQUENCIES_GHZ",
    "GB",
    "KIB",
    "LINE_BYTES",
    "MEMORY_LABELS",
    "MEMORY_PRESETS",
    "MIB",
    "VECTOR_WIDTHS_BITS",
    "CacheHierarchy",
    "CacheLevelConfig",
    "CoreConfig",
    "DesignSpace",
    "MemoryConfig",
    "NodeConfig",
    "axis_linspace",
    "axis_range",
    "baseline_node",
    "format_node",
    "cache_preset",
    "core_preset",
    "full_design_space",
    "memory_preset",
    "range_design_space",
    "smoke_design_space",
    "parse_node",
    "unconventional_configs",
]
