"""Cache hierarchy configurations (Table I of the paper).

Three L3:L2 sizing points are explored; L1 is fixed at 32 KB.  Sizes,
associativities and load-to-use latencies follow Table I:

=============  ======================  =====================
Label          L3 (shared)             L2 (private)
=============  ======================  =====================
32M:256K       32 MB / 16-way / 68cy   256 kB /  8-way /  9cy
64M:512K       64 MB / 16-way / 70cy   512 kB / 16-way / 11cy
96M:1M         96 MB / 16-way / 72cy   1 MB   / 16-way / 13cy
=============  ======================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "CacheLevelConfig",
    "CacheHierarchy",
    "CACHE_PRESETS",
    "cache_preset",
    "CACHE_LABELS",
    "KIB",
    "MIB",
    "LINE_BYTES",
]

KIB = 1024
MIB = 1024 * KIB

#: Cache line size used throughout the toolchain (bytes).
LINE_BYTES = 64


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level: capacity, associativity and access latency."""

    name: str
    size_bytes: int
    associativity: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"{self.name}: size must be positive")
        if self.associativity <= 0:
            raise ValueError(f"{self.name}: associativity must be positive")
        if self.size_bytes % (self.associativity * LINE_BYTES) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.associativity}*{LINE_BYTES})"
            )
        if self.latency_cycles < 0:
            raise ValueError(f"{self.name}: latency must be non-negative")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // LINE_BYTES

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass(frozen=True)
class CacheHierarchy:
    """Three-level hierarchy: private L1/L2 per core, shared L3."""

    label: str
    l1: CacheLevelConfig
    l2: CacheLevelConfig
    l3: CacheLevelConfig

    def __post_init__(self) -> None:
        if not (self.l1.size_bytes < self.l2.size_bytes < self.l3.size_bytes):
            raise ValueError("hierarchy must satisfy L1 < L2 < L3 capacity")
        if not (
            self.l1.latency_cycles
            <= self.l2.latency_cycles
            <= self.l3.latency_cycles
        ):
            raise ValueError("latencies must be monotonically non-decreasing")

    def l3_per_core_bytes(self, n_cores: int) -> float:
        """Fair-share slice of the shared L3 for one of ``n_cores`` users."""
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        return self.l3.size_bytes / n_cores

    @property
    def levels(self) -> Tuple[CacheLevelConfig, CacheLevelConfig, CacheLevelConfig]:
        return (self.l1, self.l2, self.l3)


def _l1() -> CacheLevelConfig:
    # Fixed across the whole design space ("L1=32K" in Fig. 6 captions).
    return CacheLevelConfig(name="L1", size_bytes=32 * KIB, associativity=8,
                            latency_cycles=4)


def _presets() -> Dict[str, CacheHierarchy]:
    return {
        "32M:256K": CacheHierarchy(
            label="32M:256K",
            l1=_l1(),
            l2=CacheLevelConfig("L2", 256 * KIB, 8, 9),
            l3=CacheLevelConfig("L3", 32 * MIB, 16, 68),
        ),
        "64M:512K": CacheHierarchy(
            label="64M:512K",
            l1=_l1(),
            l2=CacheLevelConfig("L2", 512 * KIB, 16, 11),
            l3=CacheLevelConfig("L3", 64 * MIB, 16, 70),
        ),
        "96M:1M": CacheHierarchy(
            label="96M:1M",
            l1=_l1(),
            l2=CacheLevelConfig("L2", 1 * MIB, 16, 13),
            l3=CacheLevelConfig("L3", 96 * MIB, 16, 72),
        ),
    }


CACHE_PRESETS: Dict[str, CacheHierarchy] = _presets()

#: Paper ordering used on figure x-axes (baseline first).
CACHE_LABELS: Tuple[str, ...] = ("32M:256K", "64M:512K", "96M:1M")


def cache_preset(name: str) -> CacheHierarchy:
    """Look up one of the three Table I cache hierarchies by label."""
    try:
        return CACHE_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown cache preset {name!r}; choose from {sorted(CACHE_PRESETS)}"
        ) from None
