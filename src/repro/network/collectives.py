"""Cost models for MPI collective operations.

Dimemas models collectives as synchronizing phases with a cost that
depends on the communicator size and payload; we use the standard
logarithmic algorithms (binomial trees / recursive doubling), which
match the validated Dimemas collective model shapes [Girona et al.,
EuroPVM/MPI 2000].
"""

from __future__ import annotations

import math

from .model import NetworkConfig

__all__ = ["collective_cost_ns"]


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def collective_cost_ns(kind: str, n_ranks: int, size_bytes: int,
                       net: NetworkConfig) -> float:
    """Wall-clock cost of one collective, entered synchronously.

    The cost is added after all ranks reach the call (the replay engine
    handles the synchronization itself, which is where imbalance hurts).
    """
    if n_ranks <= 0:
        raise ValueError("n_ranks must be positive")
    if size_bytes < 0:
        raise ValueError("size must be non-negative")
    if n_ranks == 1:
        return net.overhead_ns

    steps = _log2_ceil(n_ranks)
    msg = net.transfer_ns(size_bytes) + net.overhead_ns

    if kind == "barrier":
        # Dissemination barrier: log2(P) zero-payload rounds.
        return steps * (net.transfer_ns(0) + net.overhead_ns)
    if kind in ("allreduce", "allgather"):
        # Recursive doubling: log2(P) rounds carrying the payload.
        return steps * msg
    if kind in ("reduce", "bcast"):
        # Binomial tree.
        return steps * msg
    if kind == "alltoall":
        # Pairwise exchange: P-1 rounds of per-pair payload.
        return (n_ranks - 1) * (
            net.transfer_ns(max(1, size_bytes // n_ranks)) + net.overhead_ns
        )
    raise ValueError(f"unknown collective kind {kind!r}")
