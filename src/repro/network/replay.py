"""Event-driven replay of MPI communication traces (Dimemas substitute).

The replay walks every rank's event stream, matching point-to-point
messages (eager vs rendezvous), synchronizing collectives, and charging
compute-phase durations supplied by a callback — burst-mode scheduling
results or detailed-simulation timings, exactly how MUSA splices the
two levels together (Sec. II).

The engine is a fixed-point sweep: ranks advance as far as their local
state allows; blocked ranks (waiting on an unmatched message or an
incomplete collective) are retried once their peers progress.  A full
pass with no progress means a genuine communication deadlock in the
trace and raises.
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..trace.burst import BurstTrace
from ..trace.events import ComputePhase, MpiCall
from .collectives import collective_cost_ns
from .model import NetworkConfig

__all__ = ["ReplayResult", "TimelineSegment", "replay"]

#: Maps (rank, phase) to its simulated duration in ns.
PhaseDurationFn = Callable[[int, ComputePhase], float]


@dataclass(frozen=True)
class TimelineSegment:
    """One activity interval of one rank (Fig. 4-style timelines)."""

    rank: int
    kind: str        # 'compute' | 'p2p' | 'collective' | 'wait'
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a full application trace."""

    total_ns: float
    compute_ns: np.ndarray        # per-rank time inside compute phases
    p2p_ns: np.ndarray            # per-rank time in point-to-point calls
    collective_ns: np.ndarray     # per-rank time in collectives (incl. wait)
    n_messages: int
    bytes_sent: int
    segments: Optional[Tuple[TimelineSegment, ...]] = None

    @property
    def n_ranks(self) -> int:
        return len(self.compute_ns)

    @property
    def mpi_ns(self) -> np.ndarray:
        return self.p2p_ns + self.collective_ns

    @property
    def mpi_fraction(self) -> float:
        """Aggregate share of rank-time spent in MPI."""
        total = self.n_ranks * self.total_ns
        return float(self.mpi_ns.sum() / total) if total > 0 else 0.0


class _BusPool:
    """Dimemas's finite-bus model: at most ``n_buses`` simultaneous
    transfers network-wide; a transfer may start once a bus frees up."""

    def __init__(self, n_buses: int) -> None:
        self.n_buses = n_buses
        self._free: List[float] = [0.0] * n_buses if n_buses > 0 else []

    def acquire(self, ready_ns: float, duration_ns: float) -> float:
        """Returns the transfer start time (>= ready_ns) and occupies a
        bus for ``duration_ns`` from then.  Unlimited pools are free."""
        if self.n_buses <= 0:
            return ready_ns
        earliest = heapq.heappop(self._free)
        start = max(ready_ns, earliest)
        heapq.heappush(self._free, start + duration_ns)
        return start


class _Matcher:
    """Point-to-point message matching (FIFO per (src, dst, tag))."""

    def __init__(self) -> None:
        # (src, dst, tag) -> deque of buffered send records (ready_ns, size)
        self.sends: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
        # (src, dst, tag) -> deque of posted recv records (post_ns, resolver)
        self.recvs: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
        # (src, dst, tag) -> deque of rendezvous sends awaiting their
        # receiver: (ready_ns, size, sender_release_slot)
        self.rdv_sends: Dict[Tuple[int, int, int], deque] = defaultdict(deque)


@dataclass
class _RankState:
    clock: float = 0.0
    cursor: int = 0
    compute_ns: float = 0.0
    p2p_ns: float = 0.0
    collective_ns: float = 0.0
    #: request id -> completion time (ns) for posted isend/irecv
    requests: Dict[int, Optional[float]] = field(default_factory=dict)
    #: release slot of an in-progress blocking rendezvous send/recv
    pending_slot: Optional[List[Optional[float]]] = None
    #: time the rank's outgoing link is busy until (injection serializes)
    link_free: float = 0.0
    done: bool = False


def replay(
    trace: BurstTrace,
    net: NetworkConfig,
    phase_duration: PhaseDurationFn,
    collect_segments: bool = False,
) -> ReplayResult:
    """Replay ``trace`` through the network model.

    ``phase_duration(rank, phase)`` supplies each compute phase's
    duration; pass a burst-mode scheduler hook for hardware-agnostic
    runs or detailed timings for integrated runs.
    """
    n = trace.n_ranks
    states = [_RankState() for _ in range(n)]
    matcher = _Matcher()
    buses = _BusPool(net.n_buses)
    segments: List[TimelineSegment] = []

    # Collectives: per-kind sequence counters per rank; an occurrence
    # completes when all ranks have entered it.
    coll_seq = [defaultdict(int) for _ in range(n)]
    coll_enter: Dict[Tuple[str, int], Dict[int, float]] = defaultdict(dict)
    coll_done: Dict[Tuple[str, int], float] = {}

    n_messages = 0
    bytes_sent = 0

    def try_advance(rank: int) -> bool:
        """Advance one event of ``rank`` if possible; True on progress."""
        nonlocal n_messages, bytes_sent
        st = states[rank]
        events = trace.ranks[rank].events
        if st.cursor >= len(events):
            st.done = True
            return False
        ev = events[st.cursor]

        if isinstance(ev, ComputePhase):
            dur = phase_duration(rank, ev)
            if dur < 0:
                raise ValueError("phase duration must be non-negative")
            if collect_segments and dur > 0:
                segments.append(TimelineSegment(rank, "compute", st.clock,
                                                st.clock + dur))
            st.clock += dur
            st.compute_ns += dur
            st.cursor += 1
            return True

        call: MpiCall = ev
        if call.is_collective:
            key = (call.kind, coll_seq[rank][call.kind])
            enters = coll_enter[key]
            if rank not in enters:
                enters[rank] = st.clock
            if key not in coll_done:
                if len(enters) < n:
                    return False  # blocked until everyone arrives
                cost = collective_cost_ns(call.kind, n, call.size_bytes, net)
                coll_done[key] = max(enters.values()) + cost
            t_done = coll_done[key]
            if collect_segments:
                segments.append(TimelineSegment(rank, "collective",
                                                enters[rank], t_done))
            st.collective_ns += t_done - enters[rank]
            st.clock = t_done
            coll_seq[rank][call.kind] += 1
            st.cursor += 1
            return True

        if call.kind in ("send", "isend"):
            key = (rank, call.peer, call.tag)
            eager = net.is_eager(call.size_bytes)
            transfer = net.transfer_ns(call.size_bytes)
            if eager or call.kind == "isend":
                # Buffered: the sender proceeds immediately, but its
                # outgoing link serializes transfers (Dimemas node link)
                # and the global bus pool may delay the wire time.
                start = buses.acquire(
                    max(st.clock + net.overhead_ns, st.link_free), transfer)
                st.link_free = start + transfer
                arrival = start + transfer
                rq = matcher.recvs[key]
                if rq:
                    post_ns, resolver = rq.popleft()
                    resolver(max(arrival, post_ns + transfer))
                else:
                    matcher.sends[key].append(
                        (st.clock + net.overhead_ns, call.size_bytes))
                t0 = st.clock
                st.clock += net.overhead_ns
                st.p2p_ns += net.overhead_ns
                if call.kind == "isend":
                    st.requests[call.request] = arrival
                if collect_segments:
                    segments.append(TimelineSegment(rank, "p2p", t0, st.clock))
                n_messages += 1
                bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            # Rendezvous blocking send: released once the transfer starts.
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False  # receiver has not matched yet
                release = max(st.pending_slot[0], st.clock)
                if collect_segments and release > st.clock:
                    segments.append(
                        TimelineSegment(rank, "p2p", st.clock, release))
                st.p2p_ns += release - st.clock
                st.clock = release
                st.pending_slot = None
                n_messages += 1
                bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            rq = matcher.recvs[key]
            if rq:
                post_ns, resolver = rq.popleft()
                start = buses.acquire(
                    max(st.clock + net.overhead_ns, post_ns, st.link_free),
                    transfer)
                st.link_free = start + transfer
                resolver(start + transfer)
                if collect_segments and start > st.clock:
                    segments.append(TimelineSegment(rank, "p2p", st.clock, start))
                st.p2p_ns += start - st.clock
                st.clock = start
                n_messages += 1
                bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            # No receiver yet: advertise the rendezvous send and block.
            slot: List[Optional[float]] = [None]
            matcher.rdv_sends[key].append(
                (st.clock + net.overhead_ns, call.size_bytes, slot))
            st.pending_slot = slot
            return False

        if call.kind in ("recv", "irecv"):
            key = (call.peer, rank, call.tag)

            def match_source() -> Optional[float]:
                """Try to match a buffered or rendezvous send; returns the
                receive completion time or None."""
                sq = matcher.sends[key]
                if sq:
                    ready_ns, size = sq.popleft()
                    return max(ready_ns, st.clock) + net.transfer_ns(size)
                dq = matcher.rdv_sends[key]
                if dq:
                    ready_ns, size, sender_slot = dq.popleft()
                    start = max(ready_ns, st.clock)
                    sender_slot[0] = start
                    return start + net.transfer_ns(size)
                return None

            if call.kind == "irecv":
                done = match_source()
                if done is not None:
                    st.requests[call.request] = done
                else:
                    completion: List[Optional[float]] = [None]

                    def resolve(t: float, slot=completion) -> None:
                        slot[0] = t

                    matcher.recvs[key].append((st.clock, resolve))
                    st.requests[call.request] = completion  # type: ignore
                st.clock += net.overhead_ns
                st.p2p_ns += net.overhead_ns
                st.cursor += 1
                return True
            # Blocking recv.
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False
                done = max(st.pending_slot[0], st.clock)
                st.pending_slot = None
            else:
                maybe = match_source()
                if maybe is None:
                    completion = [None]

                    def resolve(t: float, slot=completion) -> None:
                        slot[0] = t

                    matcher.recvs[key].append((st.clock, resolve))
                    st.pending_slot = completion
                    return False
                done = maybe
            if collect_segments:
                segments.append(TimelineSegment(rank, "p2p", st.clock, done))
            st.p2p_ns += done - st.clock
            st.clock = done
            st.cursor += 1
            return True

        if call.kind == "wait":
            entry = st.requests.get(call.request)
            if entry is None:
                raise ValueError(
                    f"rank {rank}: wait on unknown request {call.request}")
            if isinstance(entry, list):  # unresolved irecv slot
                if entry[0] is None:
                    return False  # matching send not processed yet
                done = max(entry[0], st.clock)
            else:
                done = max(entry, st.clock)
            if collect_segments and done > st.clock:
                segments.append(TimelineSegment(rank, "wait", st.clock, done))
            st.p2p_ns += done - st.clock
            st.clock = done
            del st.requests[call.request]
            st.cursor += 1
            return True

        raise ValueError(f"unhandled MPI call kind {call.kind!r}")

    # Fixed-point sweep.
    remaining = set(range(n))
    while remaining:
        progressed = False
        finished = []
        for rank in list(remaining):
            while try_advance(rank):
                progressed = True
            if states[rank].cursor >= len(trace.ranks[rank].events):
                finished.append(rank)
        for rank in finished:
            remaining.discard(rank)
        if remaining and not progressed:
            stuck = sorted(remaining)[:8]
            details = [
                f"rank {r}@event{states[r].cursor}:"
                f"{type(trace.ranks[r].events[states[r].cursor]).__name__}"
                for r in stuck
            ]
            raise RuntimeError(f"replay deadlock; stuck: {details}")

    return ReplayResult(
        total_ns=max(st.clock for st in states),
        compute_ns=np.array([st.compute_ns for st in states]),
        p2p_ns=np.array([st.p2p_ns for st in states]),
        collective_ns=np.array([st.collective_ns for st in states]),
        n_messages=n_messages,
        bytes_sent=bytes_sent,
        segments=tuple(segments) if collect_segments else None,
    )
