"""Event-driven replay of MPI communication traces (Dimemas substitute).

The replay walks every rank's event stream, matching point-to-point
messages (eager vs rendezvous), synchronizing collectives, and charging
compute-phase durations supplied by a callback — burst-mode scheduling
results or detailed-simulation timings, exactly how MUSA splices the
two levels together (Sec. II).

Two engines share one event-processing core:

* ``engine='event'`` (default) — a reactive discrete-event simulator in
  the Dimemas tradition (Girona et al., EuroPVM/MPI 2000): runnable
  ranks sit in a ready-heap keyed by virtual time, and a rank blocked
  on an unmatched message, an unresolved request, or an incomplete
  collective is parked on an explicit wake list and re-examined exactly
  once — when its dependency resolves.  O(events x log ranks).
* ``engine='polling'`` — the reference engine: every step re-scans all
  ranks for the runnable one with the smallest virtual clock.
  O(events x ranks); semantically identical (bit-identical results,
  both engines execute the same step sequence), kept as the oracle for
  equivalence tests and benchmarks.

Both engines advance exactly one event at a time, always for the ready
rank with the minimum ``(clock, rank)`` key.  That global virtual-time
ordering is what makes the finite-bus pool — the only *shared* network
resource — deterministic: transfers acquire buses in simulated-time
order, never in rank-scan order, so the replay is provably invariant
to the order ranks are iterated in (see ``rank_order``).

Message costs are order-independent by construction: an eager/isend
transfer's arrival (bus queueing + sender-link serialization) is
computed once, on the sending side, and travels with the buffered
message; a rendezvous transfer is priced by one shared helper whether
the match happens on the sender's or the receiver's side.

An empty ready set with ranks still outstanding is a genuine
communication deadlock in the trace and raises, naming the stuck ranks
and the events they are stuck on.

Design-space sweeps that replay one trace under many node
configurations should use :func:`repro.network.replay_batch.replay_batch`,
which carries a NumPy configuration axis through this core's state and
prices the whole batch in one pass — bit-identically to per-config
scalar replay.  The shared-grant semantics carry over column-wise:
with unlimited buses the ``(clock, rank)`` order is unobservable and
any structurally valid order prices identically, so whole batches share
one pass; with a finite pool the batched driver steps lockstep groups
in this same minimum-``(clock, rank)`` order per configuration and
*forks* a group whenever per-config clocks disagree on the next grant,
so every column still executes exactly this core's step sequence.  Its
``_LockstepCore.step`` transliterates :meth:`_ReplayCore.step` branch
for branch: any change to the stepping logic here must be mirrored
there (the equivalence property tests in
``tests/network/test_replay_batch.py`` will catch a drift).
"""

from __future__ import annotations

import heapq
from collections import defaultdict, deque
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics
from ..trace.burst import BurstTrace
from ..trace.events import ComputePhase, MpiCall
from .collectives import collective_cost_ns
from .model import NetworkConfig

__all__ = ["ReplayResult", "TimelineSegment", "replay", "REPLAY_ENGINES"]

#: Maps (rank, phase) to its simulated duration in ns.
PhaseDurationFn = Callable[[int, ComputePhase], float]

REPLAY_ENGINES = ("event", "polling")


@dataclass(frozen=True)
class TimelineSegment:
    """One activity interval of one rank (Fig. 4-style timelines)."""

    rank: int
    kind: str        # 'compute' | 'p2p' | 'collective' | 'wait'
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying a full application trace."""

    total_ns: float
    compute_ns: np.ndarray        # per-rank time inside compute phases
    p2p_ns: np.ndarray            # per-rank time in point-to-point calls
    collective_ns: np.ndarray     # per-rank time in collectives (incl. wait)
    n_messages: int
    bytes_sent: int
    segments: Optional[Tuple[TimelineSegment, ...]] = None

    @property
    def n_ranks(self) -> int:
        return len(self.compute_ns)

    @property
    def mpi_ns(self) -> np.ndarray:
        return self.p2p_ns + self.collective_ns

    @property
    def mpi_fraction(self) -> float:
        """Aggregate share of rank-time spent in MPI."""
        total = self.n_ranks * self.total_ns
        return float(self.mpi_ns.sum() / total) if total > 0 else 0.0


class _BusPool:
    """Dimemas's finite-bus model: at most ``n_buses`` simultaneous
    transfers network-wide; a transfer may start once a bus frees up.

    Buses are granted in acquisition order, which both engines keep in
    simulated-time order — the pool itself is order-deterministic given
    that discipline.
    """

    def __init__(self, n_buses: int) -> None:
        self.n_buses = n_buses
        self.n_waits = 0
        self._free: List[float] = [0.0] * n_buses if n_buses > 0 else []

    def acquire(self, ready_ns: float, duration_ns: float) -> float:
        """Returns the transfer start time (>= ready_ns) and occupies a
        bus for ``duration_ns`` from then.  Unlimited pools are free."""
        if self.n_buses <= 0:
            return ready_ns
        earliest = heapq.heappop(self._free)
        start = max(ready_ns, earliest)
        if start > ready_ns:
            self.n_waits += 1
        heapq.heappush(self._free, start + duration_ns)
        return start


class _Matcher:
    """Point-to-point message matching (FIFO per (src, dst, tag))."""

    def __init__(self) -> None:
        # (src, dst, tag) -> deque of buffered eager/isend records
        # (arrival_ns, transfer_ns): the arrival already includes bus
        # queueing and sender-link serialization, so a recv matched
        # later prices the message identically to one matched earlier.
        self.sends: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
        # (src, dst, tag) -> deque of posted recv records (post_ns, resolver)
        self.recvs: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
        # (src, dst, tag) -> deque of rendezvous sends awaiting their
        # receiver: (ready_ns, transfer_ns, sender_release_slot, sender)
        self.rdv_sends: Dict[Tuple[int, int, int], deque] = defaultdict(deque)


@dataclass
class _RankState:
    clock: float = 0.0
    cursor: int = 0
    compute_ns: float = 0.0
    p2p_ns: float = 0.0
    collective_ns: float = 0.0
    #: request id -> completion time (ns) for posted isend/irecv
    requests: Dict[int, object] = field(default_factory=dict)
    #: release slot of an in-progress blocking rendezvous send/recv
    pending_slot: Optional[List[Optional[float]]] = None
    #: time the rank's outgoing link is busy until (injection serializes)
    link_free: float = 0.0
    #: parked on a wake list, waiting for a dependency to resolve
    blocked: bool = False
    done: bool = False


class _ReplayCore:
    """Engine-independent replay state plus single-event stepping.

    :meth:`step` processes exactly one event of one rank.  It either
    advances the rank (returns True) or registers the rank on the wake
    list of whatever it is blocked on and returns False; the blocking
    paths are re-entrant, so a spuriously woken rank simply re-blocks
    without duplicating registrations.  Dependency resolution calls
    :meth:`wake`, which hands the rank back to the driving engine.
    """

    def __init__(
        self,
        trace: BurstTrace,
        net: NetworkConfig,
        phase_duration: PhaseDurationFn,
        collect_segments: bool,
    ) -> None:
        self.trace = trace
        self.net = net
        self.phase_duration = phase_duration
        self.collect_segments = collect_segments
        self.n = trace.n_ranks
        self.states = [_RankState() for _ in range(self.n)]
        self.events = [trace.ranks[r].events for r in range(self.n)]
        self.matcher = _Matcher()
        self.buses = _BusPool(net.n_buses)
        self.segments: List[TimelineSegment] = []

        # Collectives: per-kind sequence counters per rank; an
        # occurrence completes when all ranks have entered it.
        self.coll_seq = [defaultdict(int) for _ in range(self.n)]
        self.coll_enter: Dict[Tuple[str, int], Dict[int, float]] = \
            defaultdict(dict)
        self.coll_done: Dict[Tuple[str, int], float] = {}
        self.coll_waiters: Dict[Tuple[str, int], List[int]] = \
            defaultdict(list)

        self.n_steps = 0
        self.n_wakeups = 0
        self.n_messages = 0
        self.bytes_sent = 0

        #: set by the driving engine; receives ranks whose dependency
        #: resolved and who are runnable again
        self.on_wake: Callable[[int], None] = lambda rank: None

    # ------------------------------------------------------------ wake lists

    def wake(self, rank: int) -> None:
        """A dependency of ``rank`` resolved; hand it back to the engine.

        No-op unless the rank is actually parked: resolutions can fire
        while their consumer is still runnable (e.g. an irecv matched
        before its wait is reached).
        """
        st = self.states[rank]
        if st.blocked:
            st.blocked = False
            self.n_wakeups += 1
            self.on_wake(rank)

    def _resolver(self, rank: int):
        """A (slot, resolve) pair: resolving stores the completion time
        and wakes the owning rank."""
        slot: List[Optional[float]] = [None]

        def resolve(t_ns: float) -> None:
            slot[0] = t_ns
            self.wake(rank)

        return slot, resolve

    # --------------------------------------------------------- transfer cost

    def _rdv_transfer(self, send_ready_ns: float, recv_ready_ns: float,
                      transfer_ns: float, sender: int) -> Tuple[float, float]:
        """Price one rendezvous transfer: (start_ns, arrival_ns).

        The single costing path for *both* match directions: the
        transfer starts once sender and receiver are ready, the
        sender's outgoing link is idle, and a bus is granted; it then
        occupies link and bus for the wire time.  Whether the sender or
        the receiver discovers the match, the numbers are identical.
        """
        sst = self.states[sender]
        start = self.buses.acquire(
            max(send_ready_ns, recv_ready_ns, sst.link_free), transfer_ns)
        sst.link_free = start + transfer_ns
        return start, start + transfer_ns

    def _match_source(self, key: Tuple[int, int, int],
                      recv_clock: float) -> Optional[float]:
        """Match a buffered or rendezvous send against a receive posted
        at ``recv_clock``; returns the receive completion time or None.
        """
        sq = self.matcher.sends[key]
        if sq:
            arrival_ns, transfer_ns = sq.popleft()
            return max(arrival_ns, recv_clock + transfer_ns)
        dq = self.matcher.rdv_sends[key]
        if dq:
            ready_ns, transfer_ns, sender_slot, sender = dq.popleft()
            start, arrival = self._rdv_transfer(ready_ns, recv_clock,
                                                transfer_ns, sender)
            sender_slot[0] = start
            self.wake(sender)
            return arrival
        return None

    # ------------------------------------------------------------- stepping

    def step(self, rank: int) -> bool:
        """Process one event of ``rank``; False means it blocked."""
        self.n_steps += 1
        st = self.states[rank]
        ev = self.events[rank][st.cursor]
        net = self.net

        if isinstance(ev, ComputePhase):
            dur = self.phase_duration(rank, ev)
            if dur < 0:
                raise ValueError("phase duration must be non-negative")
            if self.collect_segments and dur > 0:
                self.segments.append(TimelineSegment(
                    rank, "compute", st.clock, st.clock + dur))
            st.clock += dur
            st.compute_ns += dur
            st.cursor += 1
            return True

        call: MpiCall = ev
        if call.is_collective:
            key = (call.kind, self.coll_seq[rank][call.kind])
            if key not in self.coll_done:
                enters = self.coll_enter[key]
                if rank in enters:
                    return False  # spurious wake; completion wakes us
                enters[rank] = st.clock
                if len(enters) < self.n:
                    self.coll_waiters[key].append(rank)
                    return False  # parked until everyone arrives
                # Last arrival: price the collective, wake the others.
                cost = collective_cost_ns(call.kind, self.n,
                                          call.size_bytes, net)
                self.coll_done[key] = max(enters.values()) + cost
                for waiter in self.coll_waiters.pop(key, ()):
                    self.wake(waiter)
            t_done = self.coll_done[key]
            enter_ns = self.coll_enter[key][rank]
            if self.collect_segments:
                self.segments.append(TimelineSegment(
                    rank, "collective", enter_ns, t_done))
            st.collective_ns += t_done - enter_ns
            st.clock = t_done
            self.coll_seq[rank][call.kind] += 1
            st.cursor += 1
            return True

        if call.kind in ("send", "isend"):
            key = (rank, call.peer, call.tag)
            transfer = net.transfer_ns(call.size_bytes)
            if net.is_eager(call.size_bytes) or call.kind == "isend":
                # Buffered: the sender proceeds immediately, but its
                # outgoing link serializes transfers (Dimemas node
                # link) and the global bus pool may delay the wire
                # time.  The resulting arrival is buffered with the
                # message, so a receive matched later charges the same
                # bus and link cost as one matched now.
                start = self.buses.acquire(
                    max(st.clock + net.overhead_ns, st.link_free), transfer)
                st.link_free = start + transfer
                arrival = start + transfer
                rq = self.matcher.recvs[key]
                if rq:
                    post_ns, resolver = rq.popleft()
                    resolver(max(arrival, post_ns + transfer))
                else:
                    self.matcher.sends[key].append((arrival, transfer))
                t0 = st.clock
                st.clock += net.overhead_ns
                st.p2p_ns += net.overhead_ns
                if call.kind == "isend":
                    st.requests[call.request] = arrival
                if self.collect_segments:
                    self.segments.append(
                        TimelineSegment(rank, "p2p", t0, st.clock))
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            # Rendezvous blocking send: released once the transfer starts.
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False  # receiver has not matched yet
                release = max(st.pending_slot[0], st.clock)
                if self.collect_segments and release > st.clock:
                    self.segments.append(
                        TimelineSegment(rank, "p2p", st.clock, release))
                st.p2p_ns += release - st.clock
                st.clock = release
                st.pending_slot = None
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            rq = self.matcher.recvs[key]
            if rq:
                post_ns, resolver = rq.popleft()
                start, arrival = self._rdv_transfer(
                    st.clock + net.overhead_ns, post_ns, transfer, rank)
                resolver(arrival)
                if self.collect_segments and start > st.clock:
                    self.segments.append(
                        TimelineSegment(rank, "p2p", st.clock, start))
                st.p2p_ns += start - st.clock
                st.clock = start
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            # No receiver yet: advertise the rendezvous send and park.
            slot: List[Optional[float]] = [None]
            self.matcher.rdv_sends[key].append(
                (st.clock + net.overhead_ns, transfer, slot, rank))
            st.pending_slot = slot
            return False

        if call.kind in ("recv", "irecv"):
            key = (call.peer, rank, call.tag)
            if call.kind == "irecv":
                done = self._match_source(key, st.clock)
                if done is not None:
                    st.requests[call.request] = done
                else:
                    slot, resolver = self._resolver(rank)
                    self.matcher.recvs[key].append((st.clock, resolver))
                    st.requests[call.request] = slot
                st.clock += net.overhead_ns
                st.p2p_ns += net.overhead_ns
                st.cursor += 1
                return True
            # Blocking recv.
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False  # spurious wake
                done = max(st.pending_slot[0], st.clock)
                st.pending_slot = None
            else:
                maybe = self._match_source(key, st.clock)
                if maybe is None:
                    slot, resolver = self._resolver(rank)
                    self.matcher.recvs[key].append((st.clock, resolver))
                    st.pending_slot = slot
                    return False
                done = maybe
            if self.collect_segments:
                self.segments.append(
                    TimelineSegment(rank, "p2p", st.clock, done))
            st.p2p_ns += done - st.clock
            st.clock = done
            st.cursor += 1
            return True

        if call.kind == "wait":
            entry = st.requests.get(call.request)
            if entry is None:
                raise ValueError(
                    f"rank {rank}: wait on unknown request {call.request}")
            if isinstance(entry, list):  # unresolved irecv slot
                if entry[0] is None:
                    return False  # the resolver wakes us on match
                done = max(entry[0], st.clock)
            else:
                done = max(entry, st.clock)
            if self.collect_segments and done > st.clock:
                self.segments.append(
                    TimelineSegment(rank, "wait", st.clock, done))
            st.p2p_ns += done - st.clock
            st.clock = done
            del st.requests[call.request]
            st.cursor += 1
            return True

        raise ValueError(f"unhandled MPI call kind {call.kind!r}")

    # ------------------------------------------------------------- finishing

    def deadlock_error(self) -> RuntimeError:
        """Diagnostic naming the stuck ranks and their pending events."""
        stuck = [r for r in range(self.n) if not self.states[r].done]
        details = []
        for r in stuck[:8]:
            ev = self.events[r][self.states[r].cursor]
            if isinstance(ev, MpiCall):
                desc = ev.kind
                if ev.peer is not None:
                    desc += f"(peer={ev.peer})"
                elif ev.request is not None:
                    desc += f"(request={ev.request})"
            else:
                desc = type(ev).__name__
            details.append(f"rank {r}@event{self.states[r].cursor}:{desc}")
        return RuntimeError(
            f"replay deadlock; {len(stuck)} rank(s) stuck: {details}")

    def result(self) -> ReplayResult:
        states = self.states
        return ReplayResult(
            total_ns=max(st.clock for st in states),
            compute_ns=np.array([st.compute_ns for st in states]),
            p2p_ns=np.array([st.p2p_ns for st in states]),
            collective_ns=np.array([st.collective_ns for st in states]),
            n_messages=self.n_messages,
            bytes_sent=self.bytes_sent,
            segments=tuple(self.segments) if self.collect_segments else None,
        )


# ----------------------------------------------------------------- engines

def _run_event(core: _ReplayCore, order: Sequence[int]) -> None:
    """Reactive engine: ready-heap keyed by (clock, rank) + wake lists.

    Each pop advances one rank for as long as it stays the globally
    earliest runnable one; a rank that blocks is parked and re-enters
    the heap exactly once, via :meth:`_ReplayCore.wake`, when its
    dependency resolves.
    """
    states = core.states
    events = core.events
    heap: List[Tuple[float, int]] = []
    for r in order:
        if events[r]:
            heappush(heap, (states[r].clock, r))
        else:
            states[r].done = True

    core.on_wake = lambda rank: heappush(heap, (states[rank].clock, rank))

    step = core.step
    while heap:
        _, r = heappop(heap)
        st = states[r]
        n_ev = len(events[r])
        while True:
            if st.cursor >= n_ev:
                st.done = True
                break
            if not step(r):
                st.blocked = True
                break
            if heap and heap[0] < (st.clock, r):
                heappush(heap, (st.clock, r))
                break

    if any(not st.done for st in states):
        raise core.deadlock_error()


def _run_polling(core: _ReplayCore, order: Sequence[int]) -> None:
    """Reference engine: re-scan every unfinished rank per step.

    Selects the same min-(clock, rank) runnable rank as the event
    engine — executing the identical step sequence, hence bit-identical
    results — but pays an O(ranks) scan for every event processed.
    """
    states = core.states
    events = core.events
    active: List[int] = []
    for r in order:
        if events[r]:
            active.append(r)
        else:
            states[r].done = True

    while active:
        best = -1
        best_clock = 0.0
        for r in active:
            st = states[r]
            if st.blocked:
                continue
            if best < 0 or (st.clock, r) < (best_clock, best):
                best, best_clock = r, st.clock
        if best < 0:
            raise core.deadlock_error()
        st = states[best]
        if core.step(best):
            if st.cursor >= len(events[best]):
                st.done = True
                active.remove(best)
        else:
            st.blocked = True


_ENGINES = {"event": _run_event, "polling": _run_polling}


def replay(
    trace: BurstTrace,
    net: NetworkConfig,
    phase_duration: PhaseDurationFn,
    collect_segments: bool = False,
    engine: str = "event",
    rank_order: Optional[Sequence[int]] = None,
) -> ReplayResult:
    """Replay ``trace`` through the network model.

    ``phase_duration(rank, phase)`` supplies each compute phase's
    duration; pass a burst-mode scheduler hook for hardware-agnostic
    runs or detailed timings for integrated runs.

    ``engine`` selects the reactive event-driven simulator
    (``'event'``, the default) or the re-scanning reference engine
    (``'polling'``); both produce bit-identical results.
    ``rank_order`` permutes the order ranks are seeded/scanned in — it
    provably cannot change the outcome (ranks always advance in global
    virtual-time order) and exists so property tests can assert that.

    Counters (``replay.events`` / ``replay.wakeups`` /
    ``replay.messages`` / ``replay.bus_waits``) and a ``replay.run``
    span are reported through :mod:`repro.obs`.
    """
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown replay engine {engine!r}; choose from {REPLAY_ENGINES}")
    order: Sequence[int] = (range(trace.n_ranks) if rank_order is None
                            else list(rank_order))
    if rank_order is not None and sorted(order) != list(range(trace.n_ranks)):
        raise ValueError("rank_order must be a permutation of all ranks")

    core = _ReplayCore(trace, net, phase_duration, collect_segments)
    obs = get_metrics()
    with obs.span("replay.run"):
        _ENGINES[engine](core, order)
    obs.inc("replay.events", core.n_steps)
    obs.inc("replay.wakeups", core.n_wakeups)
    obs.inc("replay.messages", core.n_messages)
    if core.buses.n_waits:
        obs.inc("replay.bus_waits", core.buses.n_waits)
    return core.result()
