"""Config-vectorized MPI trace replay: one event-engine pass per batch.

The scalar replay (:mod:`repro.network.replay`) walks a trace once per
node configuration, even though within one design-space batch the trace
— and therefore almost all of the replay's *control flow* — is shared:
the network is fixed across the space (as in MUSA, where the Dimemas
parameters never change), so message sizes, eager/rendezvous protocol
choices, matching, collective membership and blocking structure are all
configuration-invariant.  Only the compute-phase durations differ per
configuration, which perturbs the virtual clocks but usually not the
global ``(clock, rank)`` step order that both scalar engines follow.

This module exploits that with three drivers, all carrying a NumPy
*configuration axis* through every quantity the scalar ``_ReplayCore``
keeps as a float — rank clocks, outgoing-link ``link_free`` times,
bus-pool free slots, buffered eager arrivals, rendezvous release slots,
request completion times, collective entry times:

**Array driver** (:func:`_run_array_tape`).  On the order-free path
(see below) the event order is not just irrelevant — the whole matching
is *structural*, so :func:`_build_tape` resolves it once in pure Python
(no floats), levels the resulting value DAG by dependency depth, and
the driver executes it level by level with one NumPy pass per
(level, kind) group: all of a level's eager sends price in one
vectorized expression over (events-in-level x configs), and likewise
for receives, rendezvous handshakes, waits and collectives.  Full-rank
groups (the bulk-synchronous common case) run as ``out=``-pipelined
in-place kernels over two reusable workspace matrices, so a level costs
stream passes over the state, not allocator round-trips for chained
temporaries — at paper scale (864 configs x 256 ranks) the temporaries
were the whole difference between losing and decisively beating the
worklist driver.  Every float64 operation along a column stays the
identical scalar operation — see the tape section below for why dropped
clamps are exact no-ops.  Any structural snag (would-deadlock, unknown
wait request, ragged collective) falls back to the worklist driver.

**Worklist driver** (:func:`_run_shared`).  The scalar replay is
*confluent* whenever no shared resource couples ranks: every message
cost is computed from endpoint-local dataflow values (the sender's
clock and ``link_free`` when *it* reaches the send, the receiver's
clock when *it* posts the receive), collective completion is a
commutative max over entry times, and FIFO matching per
``(src, dst, tag)`` pairs the k-th send with the k-th receive under
any interleaving.  The global ``(clock, rank)`` step order exists
solely to serialize the finite-bus pool (see
:mod:`repro.network.replay`'s docstring) — plus one structural corner:
a key carrying both eager-buffered and rendezvous sends, where
matching prefers whichever eager send is outstanding at discovery
time.  :func:`_order_free` checks both conditions (``n_buses == 0``
and protocol-pure keys, one O(events) scan); when they hold — they do
for the paper's MareNostrum4-like network, which has an unlimited bus
pool — *any* structurally valid order yields, per configuration, the
bit-exact scalar result, so one pass with a trivial run-until-blocked
worklist steps all configurations at once with **zero** divergence
checking.  It survives as the fallback for tapeless traces and as the
benchmark reference the array driver is gated against.

**Fork-on-divergence lockstep driver** (:func:`_run_lockstep`).  When
the bus pool is finite (or a key mixes protocols), per-configuration
order *does* matter.  The next rank to step is then chosen exactly like
the scalar engines choose it, per configuration: a dense (rank, config)
key matrix holds each rank's clock column (``+inf`` when blocked or
done) and one ``argmin(axis=0)`` per step yields every column's choice
— NumPy's first-minimum tie-break is the scalar ``(clock, rank)`` tuple
order.
Wherever every configuration in a lockstep group agrees on the choice,
one step serves the whole group.  Where they disagree (a per-config
compute duration flipped the bus-grant order), the group *forks*: its
columns are partitioned by their chosen rank and the full core state —
clocks, queues, bus pool, collective bookkeeping — is column-sliced
into one independent child core per partition, each of which continues
from the divergence point executing exactly its columns' scalar step
sequence.  Forking replaces the old modal-vote *peel* (re-replaying
disagreeing columns from scratch on the scalar engine, which collapsed
to 29/32 scalar re-runs on bus-contended batches); columns now leave
the vectorized path only on a genuine structural deadlock, where the
scalar engine owns the diagnostic.

Either way, every arithmetic operation along a column is the same
IEEE-754 float64 operation the scalar core performs (element-wise
instead of one at a time), so results are **bit-identical** to
per-config scalar replay — deadlocked columns trivially so, because
the scalar engine produces them.  The step outcome itself (advance vs
block, match vs buffer, collective complete vs park) depends only on
*structural* state — queue occupancy, request bookkeeping, collective
membership — which is identical across columns that share a step
history; only the *selection* of which rank steps next reads the
clocks, and only when a shared resource makes that order observable.

Counters: ``replay.batch.array_events`` (config-events priced by the
array driver), ``replay.batch.worklist_events`` (config-events served
by the event-at-a-time worklist pass), ``replay.batch.lockstep_events``
(config-events served by lockstep groups), ``replay.batch.driver.*``
(``array`` / ``worklist`` / ``lockstep`` — which driver a
:func:`replay_batch` call actually ran, so a silent tape bail-out can
never masquerade as an array-driver run), ``replay.batch.array_fallbacks``
(order-free batches whose tape could not be built),
``replay.batch.forked_groups`` (child groups created at divergence
points), ``replay.batch.peeled_configs`` (columns finished on the
scalar engine — deadlock diagnostics only), plus the scalar-equivalent
``replay.events`` / ``replay.messages`` / ``replay.bus_waits`` totals.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics
from ..trace.burst import BurstTrace
from ..trace.events import ComputePhase, MpiCall
from ..util import LruDict
from .collectives import collective_cost_ns
from .model import NetworkConfig
from .replay import ReplayResult, replay

__all__ = ["replay_batch", "BatchPhaseDurationFn"]

#: Maps (rank, phase) to a per-configuration duration column (ns).
BatchPhaseDurationFn = Callable[[int, ComputePhase], np.ndarray]


class _BatchBusPool:
    """Column-wise Dimemas finite-bus pool.

    Semantically the scalar pool is a multiset of per-bus free times
    with pop-min/push; which physical slot serves a transfer is
    unobservable, so an argmin over a dense array reproduces the heap's
    results exactly, column by column.
    """

    def __init__(self, n_buses: int, n_cols: int) -> None:
        self.n_buses = n_buses
        self.n_cols = n_cols
        self.n_waits = np.zeros(n_cols, dtype=np.int64)
        if n_buses > 0:
            self._free = np.zeros((n_buses, n_cols))
            self._cols = np.arange(n_cols)

    def acquire(self, ready: np.ndarray, duration_ns: float) -> np.ndarray:
        if self.n_buses <= 0:
            return ready
        idx = np.argmin(self._free, axis=0)
        earliest = self._free[idx, self._cols]
        start = np.maximum(ready, earliest)
        self.n_waits += start > ready
        self._free[idx, self._cols] = start + duration_ns
        return start

    def fork(self, idx: np.ndarray) -> "_BatchBusPool":
        """Column-slice of the pool (``_free`` is mutated in place, so
        the fancy-index copy is load-bearing, not defensive)."""
        new = _BatchBusPool.__new__(_BatchBusPool)
        new.n_buses = self.n_buses
        new.n_cols = int(idx.size)
        new.n_waits = self.n_waits[idx]
        if self.n_buses > 0:
            new._free = self._free[:, idx]
            new._cols = np.arange(new.n_cols)
        return new


class _ColState:
    """Per-rank state with every float replaced by a config column."""

    __slots__ = ("clock", "cursor", "compute_ns", "p2p_ns", "collective_ns",
                 "requests", "pending_slot", "link_free", "blocked", "done")

    def __init__(self, n_cols: int) -> None:
        self.clock = np.zeros(n_cols)
        self.cursor = 0
        self.compute_ns = np.zeros(n_cols)
        self.p2p_ns = np.zeros(n_cols)
        self.collective_ns = np.zeros(n_cols)
        self.requests: Dict[int, object] = {}
        self.pending_slot: Optional[List[Optional[np.ndarray]]] = None
        self.link_free = np.zeros(n_cols)
        self.blocked = False
        self.done = False


class _LockstepCore:
    """The scalar ``_ReplayCore.step`` transliterated onto columns.

    Every float operation becomes the identical element-wise float64
    operation; every structural decision (queue occupancy, protocol
    choice, collective membership) is taken once for the whole group.
    Arrays are never mutated in place once stored, so buffered values
    (eager arrivals, release slots, request completions) stay frozen at
    their creation-time columns exactly like the scalar floats they
    replace.

    All cross-references between queues and rank state are plain data —
    a pending receive is ``(post_clock, slot, rank)`` where ``slot`` is
    a one-element list shared with the blocked rank's ``requests`` /
    ``pending_slot`` — never a closure, so :func:`_fork_core` can
    column-slice a whole core (preserving slot sharing via an identity
    memo) when a lockstep group diverges.

    ``col_idx`` maps this core's local columns to absolute batch
    columns; the root core covers the whole batch (``None``).  Forked
    cores always index the *original* ``phase_duration`` output with
    their absolute ``col_idx``, so repeated forks never stack slices.
    """

    def __init__(self, trace: BurstTrace, net: NetworkConfig,
                 phase_duration: BatchPhaseDurationFn, n_cols: int,
                 col_idx: Optional[np.ndarray] = None) -> None:
        self.trace = trace
        self.net = net
        self.phase_duration = phase_duration
        self.n_cols = n_cols
        self.col_idx = col_idx
        self.n = trace.n_ranks
        self.states = [_ColState(n_cols) for _ in range(self.n)]
        self.events = [trace.ranks[r].events for r in range(self.n)]
        # FIFO queues per (src, dst, tag), as in the scalar _Matcher.
        self.sends = defaultdict(list)
        self.recvs = defaultdict(list)
        self.rdv_sends = defaultdict(list)
        self.buses = _BatchBusPool(net.n_buses, n_cols)

        self.coll_seq = [defaultdict(int) for _ in range(self.n)]
        self.coll_enter: Dict[Tuple[str, int], Dict[int, np.ndarray]] = \
            defaultdict(dict)
        self.coll_done: Dict[Tuple[str, int], np.ndarray] = {}
        self.coll_waiters: Dict[Tuple[str, int], List[int]] = \
            defaultdict(list)

        self.n_steps = 0
        self.n_wakeups = 0
        self.n_messages = 0
        self.bytes_sent = 0
        self.n_unfinished = self.n
        self.lockstep_events = 0
        self.worklist_events = 0

        #: set by the driver; receives ranks whose dependency resolved
        self.on_wake: Callable[[int], None] = lambda rank: None

    # ------------------------------------------------------------ wake lists

    def wake(self, rank: int) -> None:
        st = self.states[rank]
        if st.blocked:
            st.blocked = False
            self.n_wakeups += 1
            self.on_wake(rank)

    # --------------------------------------------------------- transfer cost

    def _rdv_transfer(self, send_ready, recv_ready, transfer_ns: float,
                      sender: int) -> Tuple[np.ndarray, np.ndarray]:
        sst = self.states[sender]
        start = self.buses.acquire(
            np.maximum(np.maximum(send_ready, recv_ready), sst.link_free),
            transfer_ns)
        sst.link_free = start + transfer_ns
        return start, start + transfer_ns

    def _match_source(self, key, recv_clock) -> Optional[np.ndarray]:
        sq = self.sends[key]
        if sq:
            arrival, transfer_ns = sq.pop(0)
            return np.maximum(arrival, recv_clock + transfer_ns)
        dq = self.rdv_sends[key]
        if dq:
            ready, transfer_ns, sender_slot, sender = dq.pop(0)
            start, arrival = self._rdv_transfer(ready, recv_clock,
                                                transfer_ns, sender)
            sender_slot[0] = start
            self.wake(sender)
            return arrival
        return None

    # ------------------------------------------------------------- stepping

    def step(self, rank: int) -> bool:
        """One event of ``rank`` for the whole group; False = blocked.

        Mirrors ``_ReplayCore.step`` branch for branch; the tree leaf
        for ``rank`` is refreshed by the engine loop, not here.
        """
        self.n_steps += 1
        st = self.states[rank]
        ev = self.events[rank][st.cursor]
        net = self.net

        if isinstance(ev, ComputePhase):
            dur = np.asarray(self.phase_duration(rank, ev), dtype=np.float64)
            if self.col_idx is not None and dur.ndim:
                dur = dur[self.col_idx]
            if (dur < 0).any():
                raise ValueError("phase duration must be non-negative")
            st.clock = st.clock + dur
            st.compute_ns = st.compute_ns + dur
            st.cursor += 1
            return True

        call: MpiCall = ev
        if call.is_collective:
            key = (call.kind, self.coll_seq[rank][call.kind])
            if key not in self.coll_done:
                enters = self.coll_enter[key]
                if rank in enters:
                    return False  # spurious wake; completion wakes us
                enters[rank] = st.clock
                if len(enters) < self.n:
                    self.coll_waiters[key].append(rank)
                    return False
                cost = collective_cost_ns(call.kind, self.n,
                                          call.size_bytes, net)
                latest = None
                for col in enters.values():
                    latest = col if latest is None else np.maximum(latest, col)
                self.coll_done[key] = latest + cost
                for waiter in self.coll_waiters.pop(key, ()):
                    self.wake(waiter)
            t_done = self.coll_done[key]
            enter = self.coll_enter[key][rank]
            st.collective_ns = st.collective_ns + (t_done - enter)
            st.clock = t_done
            self.coll_seq[rank][call.kind] += 1
            st.cursor += 1
            return True

        if call.kind in ("send", "isend"):
            key = (rank, call.peer, call.tag)
            transfer = net.transfer_ns(call.size_bytes)
            if net.is_eager(call.size_bytes) or call.kind == "isend":
                start = self.buses.acquire(
                    np.maximum(st.clock + net.overhead_ns, st.link_free),
                    transfer)
                st.link_free = start + transfer
                arrival = start + transfer
                rq = self.recvs[key]
                if rq:
                    post, slot, waiter = rq.pop(0)
                    slot[0] = np.maximum(arrival, post + transfer)
                    self.wake(waiter)
                else:
                    self.sends[key].append((arrival, transfer))
                st.clock = st.clock + net.overhead_ns
                st.p2p_ns = st.p2p_ns + net.overhead_ns
                if call.kind == "isend":
                    st.requests[call.request] = arrival
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False
                release = np.maximum(st.pending_slot[0], st.clock)
                st.p2p_ns = st.p2p_ns + (release - st.clock)
                st.clock = release
                st.pending_slot = None
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            rq = self.recvs[key]
            if rq:
                post, slot, waiter = rq.pop(0)
                start, arrival = self._rdv_transfer(
                    st.clock + net.overhead_ns, post, transfer, rank)
                slot[0] = arrival
                self.wake(waiter)
                st.p2p_ns = st.p2p_ns + (start - st.clock)
                st.clock = start
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            slot: List[Optional[np.ndarray]] = [None]
            self.rdv_sends[key].append(
                (st.clock + net.overhead_ns, transfer, slot, rank))
            st.pending_slot = slot
            return False

        if call.kind in ("recv", "irecv"):
            key = (call.peer, rank, call.tag)
            if call.kind == "irecv":
                done = self._match_source(key, st.clock)
                if done is not None:
                    st.requests[call.request] = done
                else:
                    slot = [None]
                    self.recvs[key].append((st.clock, slot, rank))
                    st.requests[call.request] = slot
                st.clock = st.clock + net.overhead_ns
                st.p2p_ns = st.p2p_ns + net.overhead_ns
                st.cursor += 1
                return True
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False
                done = np.maximum(st.pending_slot[0], st.clock)
                st.pending_slot = None
            else:
                maybe = self._match_source(key, st.clock)
                if maybe is None:
                    slot = [None]
                    self.recvs[key].append((st.clock, slot, rank))
                    st.pending_slot = slot
                    return False
                done = maybe
            st.p2p_ns = st.p2p_ns + (done - st.clock)
            st.clock = done
            st.cursor += 1
            return True

        if call.kind == "wait":
            entry = st.requests.get(call.request)
            if entry is None:
                raise ValueError(
                    f"rank {rank}: wait on unknown request {call.request}")
            if isinstance(entry, list):
                if entry[0] is None:
                    return False
                done = np.maximum(entry[0], st.clock)
            else:
                done = np.maximum(entry, st.clock)
            st.p2p_ns = st.p2p_ns + (done - st.clock)
            st.clock = done
            del st.requests[call.request]
            st.cursor += 1
            return True

        raise ValueError(f"unhandled MPI call kind {call.kind!r}")


def _fork_core(core: _LockstepCore, idx: np.ndarray) -> _LockstepCore:
    """Column-slice ``core`` into an independent child covering ``idx``.

    Called at a divergence point, before the disputed step runs, so
    structural state (cursors, queue membership, collective rosters) is
    shared by every column and copies as-is; only the float columns are
    sliced.  One-element ``slot`` lists are shared between a queue
    entry and the blocked rank's ``requests`` / ``pending_slot`` — the
    identity memo preserves exactly that sharing in the child, so a
    later match still wakes the right rank.  The parent is discarded
    after forking (its children partition its columns), so buffered
    arrays can be sliced without copy concerns; only the bus pool's
    ``_free`` matrix is mutated in place, and fancy indexing already
    copies it.
    """
    new = _LockstepCore.__new__(_LockstepCore)
    new.trace = core.trace
    new.net = core.net
    new.phase_duration = core.phase_duration
    new.n_cols = int(idx.size)
    new.col_idx = idx if core.col_idx is None else core.col_idx[idx]
    new.n = core.n
    new.events = core.events

    memo: Dict[int, List[Optional[np.ndarray]]] = {}

    def fork_slot(slot):
        forked = memo.get(id(slot))
        if forked is None:
            forked = [None if slot[0] is None else slot[0][idx]]
            memo[id(slot)] = forked
        return forked

    states = []
    for st in core.states:
        ns = _ColState.__new__(_ColState)
        ns.clock = st.clock[idx]
        ns.cursor = st.cursor
        ns.compute_ns = st.compute_ns[idx]
        ns.p2p_ns = st.p2p_ns[idx]
        ns.collective_ns = st.collective_ns[idx]
        ns.requests = {req: (fork_slot(e) if type(e) is list else e[idx])
                       for req, e in st.requests.items()}
        ns.pending_slot = (None if st.pending_slot is None
                           else fork_slot(st.pending_slot))
        ns.link_free = st.link_free[idx]
        ns.blocked = st.blocked
        ns.done = st.done
        states.append(ns)
    new.states = states

    new.sends = defaultdict(list, {
        key: [(arrival[idx], t) for arrival, t in q]
        for key, q in core.sends.items() if q})
    new.recvs = defaultdict(list, {
        key: [(post[idx], fork_slot(slot), waiter)
              for post, slot, waiter in q]
        for key, q in core.recvs.items() if q})
    new.rdv_sends = defaultdict(list, {
        key: [(ready[idx], t, fork_slot(slot), sender)
              for ready, t, slot, sender in q]
        for key, q in core.rdv_sends.items() if q})
    new.buses = core.buses.fork(idx)

    new.coll_seq = [defaultdict(int, d) for d in core.coll_seq]
    new.coll_enter = defaultdict(dict, {
        ckey: {r: col[idx] for r, col in enters.items()}
        for ckey, enters in core.coll_enter.items()})
    new.coll_done = {ckey: col[idx] for ckey, col in core.coll_done.items()}
    new.coll_waiters = defaultdict(list, {
        ckey: list(w) for ckey, w in core.coll_waiters.items() if w})

    new.n_steps = core.n_steps
    new.n_wakeups = core.n_wakeups
    new.n_messages = core.n_messages
    new.bytes_sent = core.bytes_sent
    new.n_unfinished = core.n_unfinished
    new.lockstep_events = core.lockstep_events
    new.worklist_events = core.worklist_events
    new.on_wake = lambda rank: None
    return new


def _order_free(trace: BurstTrace, net: NetworkConfig) -> bool:
    """True when the replay's values cannot depend on step order.

    Requires an unlimited bus pool (``n_buses == 0``) — the one shared
    resource whose grant order is observable — and *protocol-pure*
    point-to-point keys: no ``(src, dst, tag)`` carries both
    eager/isend-buffered and rendezvous sends, because
    ``_match_source`` prefers a buffered send over an advertised
    rendezvous one, making mixed-key pairing depend on what is
    outstanding at discovery time.
    """
    if net.n_buses > 0:
        return False
    classes: Dict[Tuple[int, int, int], bool] = {}
    for rt in trace.ranks:
        for ev in rt.events:
            if isinstance(ev, MpiCall) and ev.kind in ("send", "isend"):
                key = (rt.rank, ev.peer, ev.tag)
                eager = ev.kind == "isend" or net.is_eager(ev.size_bytes)
                if classes.setdefault(key, eager) != eager:
                    return False
    return True


# --------------------------------------------------------------------- tape
#
# On the order-free path the entire replay is *structural*: with an
# unlimited bus pool and protocol-pure keys, which send matches which
# receive (k-th send of a (src, dst, tag) key pairs with its k-th
# receive — one rank produces each side, in program order), which events
# a collective joins (all ranks, by per-rank (kind, seq)), and which
# request a wait consumes are all fixed by the trace alone.  The float
# values then form a DAG: each event's output depends on the same rank's
# previous event plus at most one cross-rank value (a message arrival, a
# receive-post clock, or a collective's entry set).  _build_tape walks
# the trace once (pure Python, no floats), resolves the matching, and
# levels the DAG by depth; _run_array_tape then executes it level by
# level with one NumPy pass per (level, kind) group — the same float64
# ops the scalar ``step`` performs, (events-in-level x configs) at a
# time — instead of ~one Python ``step()`` call per event.  Because an
# event's depth strictly exceeds its same-rank predecessor's, each rank
# appears at most once per level, so the fancy-index scatters never
# collide.  Any structural snag (unmatched receive, rendezvous deadlock
# cycle, unknown wait request, ragged collective, non-uniform collective
# payload) falls back to the worklist driver, which reproduces the
# scalar diagnostics.

(_K_COMPUTE, _K_EAGER_SEND, _K_RECV_EAGER, _K_IRECV_POST, _K_RDV_SEND,
 _K_RDV_POST, _K_RDV_COMPLETE, _K_WAIT_ARR, _K_WAIT_EAGER,
 _K_COLL) = range(10)


class _Tape:
    #: ``n_msgs`` holds the (arrival, post) buffer row counts; ``ws``
    #: caches the driver's workspace matrices between runs (the big
    #: slot buffers are tens of MB — repaying their first-touch page
    #: faults on every call costs more than the arithmetic).
    __slots__ = ("groups", "n_msgs", "n_events", "n_messages",
                 "bytes_sent", "ws")

    def __init__(self, groups, n_msgs, n_events, n_messages, bytes_sent):
        self.groups = groups
        self.n_msgs = n_msgs
        self.n_events = n_events
        self.n_messages = n_messages
        self.bytes_sent = bytes_sent
        self.ws = None


def _build_tape(trace: BurstTrace, net: NetworkConfig) -> Optional[_Tape]:
    """Structural pre-pass: match, level, and group the whole replay.

    Returns ``None`` when the trace cannot be fully resolved
    structurally (it would deadlock, wait on an unknown request, or
    price a collective whose per-rank payloads disagree) — the caller
    then falls back to the worklist driver / scalar engine, which owns
    those diagnostics.
    """
    n = trace.n_ranks
    events = [trace.ranks[r].events for r in range(n)]
    n_events = sum(len(e) for e in events)

    # Pass 1: per-key protocol (guaranteed pure by _order_free).
    key_eager: Dict[Tuple[int, int, int], bool] = {}
    for r in range(n):
        for ev in events[r]:
            if isinstance(ev, MpiCall) and ev.kind in ("send", "isend"):
                key = (r, ev.peer, ev.tag)
                key_eager[key] = (ev.kind == "isend"
                                  or net.is_eager(ev.size_bytes))

    # Message registry: FIFO slot i of a key pairs send i with recv i.
    msg_transfer: List[Optional[float]] = []
    msg_arrival: List[Optional[int]] = []   # producer node (send)
    msg_post: List[Optional[int]] = []      # receive-post node
    key_slots: Dict[Tuple[int, int, int], List[int]] = defaultdict(list)

    def msg_slot(key, i: int) -> int:
        slots = key_slots[key]
        while len(slots) <= i:
            slots.append(len(msg_transfer))
            msg_transfer.append(None)
            msg_arrival.append(None)
            msg_post.append(None)
        return slots[i]

    # Nodes as parallel lists; dependencies as one flat edge list.  The
    # walk below runs once per trace event — the structural hot loop —
    # hence the inlined node construction via bound ``append``s.
    kinds: List[int] = []
    ranks: List[int] = []
    nmsg: List[int] = []
    payloads: List[object] = []
    e_src: List[int] = []
    e_dst: List[int] = []
    k_ap, r_ap, m_ap, p_ap = (kinds.append, ranks.append, nmsg.append,
                              payloads.append)
    es_ap, ed_ap = e_src.append, e_dst.append

    send_i: Dict[Tuple, int] = defaultdict(int)
    recv_i: Dict[Tuple, int] = defaultdict(int)
    colls: Dict[Tuple[str, int], int] = {}
    coll_members: Dict[int, int] = {}
    n_messages = 0
    bytes_sent = 0

    for r in range(n):
        coll_seq: Dict[str, int] = defaultdict(int)
        requests: Dict[int, Tuple[str, int]] = {}
        prev = -1
        for ev in events[r]:
            if isinstance(ev, ComputePhase):
                nid = len(kinds)
                k_ap(_K_COMPUTE), r_ap(r), m_ap(-1), p_ap(ev)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
                continue
            call: MpiCall = ev
            if call.is_collective:
                ckey = (call.kind, coll_seq[call.kind])
                coll_seq[call.kind] += 1
                nid = colls.get(ckey, -1)
                if nid < 0:
                    nid = len(kinds)
                    k_ap(_K_COLL), r_ap(-1), m_ap(-1)
                    p_ap((call.kind, call.size_bytes))
                    colls[ckey] = nid
                    coll_members[nid] = 0
                elif payloads[nid] != (call.kind, call.size_bytes):
                    return None  # ragged payload: completion order decides
                coll_members[nid] += 1
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
            elif call.kind in ("send", "isend"):
                key = (r, call.peer, call.tag)
                mid = msg_slot(key, send_i[key])
                send_i[key] += 1
                msg_transfer[mid] = net.transfer_ns(call.size_bytes)
                eager = call.kind == "isend" or net.is_eager(call.size_bytes)
                nid = len(kinds)
                k_ap(_K_EAGER_SEND if eager else _K_RDV_SEND)
                r_ap(r), m_ap(mid), p_ap(None)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
                msg_arrival[mid] = nid
                if call.kind == "isend":
                    requests[call.request] = ("s", mid)
                n_messages += 1
                bytes_sent += call.size_bytes
            elif call.kind == "recv":
                key = (call.peer, r, call.tag)
                mid = msg_slot(key, recv_i[key])
                recv_i[key] += 1
                eager = key_eager.get(key)
                if eager is None:
                    return None  # no sender ever: structural deadlock
                nid = len(kinds)
                if eager:
                    k_ap(_K_RECV_EAGER), r_ap(r), m_ap(mid), p_ap(None)
                    if prev >= 0:
                        es_ap(prev), ed_ap(nid)
                    prev = nid
                else:
                    k_ap(_K_RDV_POST), r_ap(r), m_ap(mid), p_ap(None)
                    if prev >= 0:
                        es_ap(prev), ed_ap(nid)
                    msg_post[mid] = nid
                    k_ap(_K_RDV_COMPLETE), r_ap(r), m_ap(mid), p_ap(None)
                    es_ap(nid), ed_ap(nid + 1)
                    prev = nid + 1
            elif call.kind == "irecv":
                key = (call.peer, r, call.tag)
                mid = msg_slot(key, recv_i[key])
                recv_i[key] += 1
                eager = key_eager.get(key)
                nid = len(kinds)
                k_ap(_K_IRECV_POST), r_ap(r), m_ap(mid), p_ap(None)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
                msg_post[mid] = nid
                requests[call.request] = (
                    "x" if eager is None else ("e" if eager else "r"), mid)
            elif call.kind == "wait":
                entry = requests.pop(call.request, None)
                if entry is None or entry[0] == "x":
                    return None  # unknown request / unmatched irecv
                tag, mid = entry
                nid = len(kinds)
                k_ap(_K_WAIT_EAGER if tag == "e" else _K_WAIT_ARR)
                r_ap(r), m_ap(mid), p_ap(None)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
            else:
                return None  # unhandled kind: scalar engine raises

    for nid, count in coll_members.items():
        if count != n:
            return None  # some rank never joins: structural deadlock

    # Cross-rank value edges, resolved now that every producer exists.
    for nid, kind in enumerate(kinds):
        if kind in (_K_RECV_EAGER, _K_RDV_COMPLETE, _K_WAIT_ARR,
                    _K_WAIT_EAGER):
            mid = nmsg[nid]
            arr = msg_arrival[mid]
            if arr is None:
                return None  # consumes a message nobody sends
            es_ap(arr), ed_ap(nid)
            if kind == _K_WAIT_EAGER:
                es_ap(msg_post[mid]), ed_ap(nid)
        elif kind == _K_RDV_SEND:
            post = msg_post[nmsg[nid]]
            if post is None:
                return None  # rendezvous sender blocks forever
            es_ap(post), ed_ap(nid)

    # Level the DAG (depth = 1 + max over predecessors) with Kahn waves
    # vectorized over the flat edge list: each wave expands the whole
    # zero-indegree frontier at once.  Total work is O(edges) spread
    # over ~levels vector calls instead of O(edges) dict/list hops.
    n_nodes = len(kinds)
    depth = np.zeros(n_nodes, dtype=np.int64)
    if e_src:
        src = np.asarray(e_src, dtype=np.int64)
        dst = np.asarray(e_dst, dtype=np.int64)
        e_order = np.argsort(src, kind="stable")
        dst_s = dst[e_order]
        starts = np.searchsorted(src, np.arange(n_nodes + 1),
                                 sorter=e_order)
        indeg = np.bincount(dst, minlength=n_nodes)
        frontier = np.flatnonzero(indeg == 0)
        processed = 0
        while frontier.size:
            processed += int(frontier.size)
            counts = starts[frontier + 1] - starts[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            cum = np.cumsum(counts)
            offset = np.arange(total, dtype=np.int64) - np.repeat(
                cum - counts, counts)
            e_idx = np.repeat(starts[frontier], counts) + offset
            ds = dst_s[e_idx]
            np.maximum.at(depth, ds, np.repeat(depth[frontier] + 1, counts))
            np.subtract.at(indeg, ds, 1)
            cand = np.unique(ds)
            frontier = cand[indeg[cand] == 0]
        if processed != n_nodes:
            return None  # dependency cycle: a genuine deadlock

    # Group by (depth, kind); groups are rank-disjoint within a level.
    # Node ids are assigned rank-major and the sort is stable, so
    # members sort by rank within a group; when a group covers every
    # rank, the index array is the identity permutation and a full
    # slice serves instead — the driver then runs its in-place
    # whole-matrix kernels (the common case: bulk-synchronous apps keep
    # all ranks at the same depth).
    kind_arr = np.asarray(kinds, dtype=np.int64)
    rank_arr = np.asarray(ranks, dtype=np.int64)
    nmsg_arr = np.asarray(nmsg, dtype=np.int64)
    tr_arr = np.asarray([np.nan if t is None else t for t in msg_transfer],
                        dtype=np.float64)
    order = np.lexsort((kind_arr, depth))
    d_s = depth[order]
    k_s = kind_arr[order]
    if n_nodes:
        brk = np.flatnonzero((np.diff(d_s) != 0) | (np.diff(k_s) != 0))
        bounds = np.concatenate(([0], brk + 1, [n_nodes]))
    else:
        bounds = np.zeros(1, dtype=np.int64)
    raw = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        raw.append((int(k_s[a]), order[a:b]))

    # Reader-ordered buffer layout.  An arrival value can have up to
    # two readers — the receiver-side consumer (recv / wait / rdv
    # completion) and, for a waited isend, the sender's own wait; a
    # post value has at most one (the matching wait or rendezvous
    # send).  Each (slot, reader) pair gets its *own* buffer slot,
    # assigned walking the groups in execution order, so every reader
    # group's slots form one contiguous ascending run: the driver
    # reads plain slices — views it may finish in place and adopt as
    # the next ``clock``, the slot being dead afterwards — instead of
    # fancy-index gathers, and only producers pay a scatter (twice,
    # for the doubly-read slots).  At paper scale the reader gathers
    # were ~40% of the driver's memory traffic.  Never-read slots
    # (unreceived sends, unwaited irecvs) get the leftover ids past
    # every reader's run, keeping producer scatters unconditional.
    n_msgs = len(msg_transfer)
    arr_map1 = np.full(n_msgs, -1, dtype=np.int64)
    arr_map2 = np.full(n_msgs, -1, dtype=np.int64)
    post_map = np.full(n_msgs, -1, dtype=np.int64)
    n_arr = n_post = 0
    arr_blocks: List[Optional[slice]] = []
    post_blocks: List[Optional[slice]] = []
    for k, members in raw:
        ablk = pblk = None
        if k != _K_COLL:
            mm = nmsg_arr[members]
            if k in (_K_RECV_EAGER, _K_RDV_COMPLETE, _K_WAIT_ARR,
                     _K_WAIT_EAGER):
                ids = np.arange(n_arr, n_arr + mm.size)
                ablk = slice(n_arr, n_arr + mm.size)
                n_arr += mm.size
                first = arr_map1[mm] < 0
                arr_map1[mm[first]] = ids[first]
                second = mm[~first]
                if (arr_map2[second] >= 0).any():
                    return None  # >2 readers: bail rather than corrupt
                arr_map2[second] = ids[~first]
            if k in (_K_WAIT_EAGER, _K_RDV_SEND):
                if (post_map[mm] >= 0).any():
                    return None  # post read twice: bail
                post_map[mm] = np.arange(n_post, n_post + mm.size)
                pblk = slice(n_post, n_post + mm.size)
                n_post += mm.size
        arr_blocks.append(ablk)
        post_blocks.append(pblk)
    for mp, cnt in ((arr_map1, n_arr), (post_map, n_post)):
        left = np.flatnonzero(mp < 0)
        mp[left] = np.arange(cnt, cnt + left.size)
    arr_size = n_arr + int((arr_map1 >= n_arr).sum())
    post_size = n_post + int((post_map >= n_post).sum())

    def _as_slice(idx: np.ndarray):
        lo = int(idx[0]) if idx.size else 0
        if np.array_equal(idx, np.arange(lo, lo + idx.size)):
            return slice(lo, lo + idx.size)
        return idx

    # Final group tuples: (kind, rr, widx, rsl, rsl2, tt2, payload).
    # ``widx``: for arrival producers, a tuple of (target, source-rows)
    # scatter pairs (source ``None`` = every row; the second pair
    # covers doubly-read slots); for posts, one plain index.  ``rsl``:
    # the consumed block (arrivals, or posts for _K_RDV_SEND), a slice
    # by construction.  ``rsl2``: the post block a _K_WAIT_EAGER
    # additionally reads.
    identity = np.arange(n, dtype=np.int64)
    groups = []
    for gi, (k, members) in enumerate(raw):
        if k == _K_COLL:
            for nid in members:
                groups.append((k, None, None, None, None, None,
                               payloads[nid]))
            continue
        rr = rank_arr[members]
        mm = nmsg_arr[members]
        tt2 = (tr_arr[mm][:, None] if k in (_K_EAGER_SEND, _K_RECV_EAGER,
                                            _K_RDV_SEND, _K_WAIT_EAGER)
               else None)
        pl = ([(int(rank_arr[e]), payloads[e]) for e in members]
              if k == _K_COMPUTE else None)
        if np.array_equal(rr, identity):
            rr = slice(None)
        widx = rsl = rsl2 = None
        if k in (_K_EAGER_SEND, _K_RDV_SEND):
            w2 = arr_map2[mm]
            has2 = w2 >= 0
            widx = ((_as_slice(arr_map1[mm]), None),)
            if has2.all():
                widx += ((_as_slice(w2), None),)
            elif has2.any():
                rows = np.flatnonzero(has2)
                widx += ((w2[rows], rows),)
        elif k in (_K_IRECV_POST, _K_RDV_POST):
            widx = _as_slice(post_map[mm])
        if k in (_K_RECV_EAGER, _K_RDV_COMPLETE, _K_WAIT_ARR,
                 _K_WAIT_EAGER):
            rsl = arr_blocks[gi]
        elif k == _K_RDV_SEND:
            rsl = post_blocks[gi]
        if k == _K_WAIT_EAGER:
            rsl2 = post_blocks[gi]
        groups.append((k, rr, widx, rsl, rsl2, tt2, pl))

    return _Tape(groups, (arr_size, post_size), n_events, n_messages,
                 bytes_sent)


#: Tapes are structural — they depend only on ``(trace, net)``, never
#: on configurations — so they are shared across batches.  The key pins
#: the trace object itself (keeping its ``id`` valid for the entry's
#: lifetime); a ``None`` tape records that the trace needs the
#: worklist-driver fallback, so the failed build isn't repeated either.
#: The :func:`_order_free` scan is cached the same way.
_TAPE_CACHE: LruDict = LruDict(8, eviction_counter="replay.tape.evictions")
_ORDER_FREE_CACHE: LruDict = LruDict(
    64, eviction_counter="replay.tape.evictions")


def _order_free_cached(trace: BurstTrace, net: NetworkConfig) -> bool:
    key = (id(trace), net)
    entry = _ORDER_FREE_CACHE.get(key)
    if entry is not None and entry[0] is trace:
        return entry[1]
    free = _order_free(trace, net)
    _ORDER_FREE_CACHE[key] = (trace, free)
    return free


def _tape_for(trace: BurstTrace, net: NetworkConfig) -> Optional[_Tape]:
    key = (id(trace), net)
    entry = _TAPE_CACHE.get(key)
    if entry is not None and entry[0] is trace:
        return entry[1]
    tape = _build_tape(trace, net)
    _TAPE_CACHE[key] = (trace, tape)
    get_metrics().inc("replay.tape.builds")
    return tape


def _run_array_tape(
    tape: _Tape,
    net: NetworkConfig,
    phase_duration: BatchPhaseDurationFn,
    n: int,
    n_cols: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Order-free driver: level-batched NumPy execution of the tape.

    Valid only under :func:`_order_free`.  Runs the identical float64
    operation sequence the scalar core performs per event — the
    redundant ``max(x, clock)`` clamps the scalar blocked/resumed paths
    apply are exact no-ops there (``x >= clock`` always holds at those
    points), so dropping them changes no bits.  Returns the final
    ``(clock, compute, p2p, collective)`` state matrices, one row per
    rank, one column per configuration.

    Full-rank groups run as ``out=``-pipelined kernels over the state
    matrices plus two scratch workspaces: at paper scale a (256, 864)
    float64 temporary costs more in allocator and fault traffic than
    the arithmetic it carries, so expressions that would chain three
    temporaries are fused into in-place ufunc calls.  The
    consumer-ordered buffer layout makes every consumed slot block a
    contiguous slice: the kernel takes the *view*, finishes the value
    in place (the slots are dead afterwards — each has exactly one
    reader) and adopts it as the new ``clock``, so receive/wait groups
    move zero gather bytes; only producers pay a fancy-index scatter.
    Partial groups — rare outside warmup levels — keep the simpler
    gather/compute/scatter form over the same views.  In-place ufuncs
    and buffer adoption do not change results: each kernel applies the
    same ops, in the same order, with the same operand values,
    element-wise.
    """
    ov = net.overhead_ns
    # Workspaces persist on the tape between runs: refaulting the
    # slot buffers' pages every call costs multiples of the actual
    # compute.  Only the five state matrices need re-zeroing; every
    # buffer slot is written by its producer group before any reader
    # group reads it (the DAG leveling guarantees the order), so the
    # message buffers carry over uninitialized.  The locals rebind to
    # adopted views as the run progresses; the cache keeps the
    # original allocations.
    if tape.ws is None or tape.ws[0] != n_cols:
        arr_size, post_size = tape.n_msgs
        tape.ws = (n_cols,
                   np.empty((arr_size, n_cols)),
                   np.empty((post_size, n_cols)),
                   [np.empty((n, n_cols)) for _ in range(5)],
                   np.empty((n, n_cols)),
                   np.empty((n, n_cols)))
    _, arr_buf, post_buf, state, ws1, ws2 = tape.ws
    clock, link_free, p2p, comp, coll = state
    for m in state:
        m.fill(0.0)

    for kind, rr, widx, rsl, rsl2, tt2, pl in tape.groups:
        full = type(rr) is slice
        if kind == _K_COMPUTE:
            dur = ws1 if full else np.empty((len(pl), n_cols))
            for j, (rank, ph) in enumerate(pl):
                dur[j] = phase_duration(rank, ph)
            if dur.min() < 0:
                raise ValueError("phase duration must be non-negative")
            if full:
                np.add(clock, dur, out=clock)
                np.add(comp, dur, out=comp)
            else:
                clock[rr] += dur
                comp[rr] += dur
        elif kind == _K_EAGER_SEND:
            if full:
                np.add(clock, ov, out=clock)                 # ready
                np.maximum(clock, link_free, out=link_free)  # start
                np.add(link_free, tt2, out=link_free)        # arrival
                for tgt, src in widx:
                    arr_buf[tgt] = link_free if src is None else \
                        link_free[src]
                np.add(p2p, ov, out=p2p)
            else:
                ready = clock[rr]
                np.add(ready, ov, out=ready)
                lf = link_free[rr]
                np.maximum(ready, lf, out=lf)
                np.add(lf, tt2, out=lf)
                for tgt, src in widx:
                    arr_buf[tgt] = lf if src is None else lf[src]
                link_free[rr] = lf
                clock[rr] = ready
                p2p[rr] += ov
        elif kind == _K_RECV_EAGER:
            av = arr_buf[rsl]
            if full:
                np.add(clock, tt2, out=ws1)      # post + transfer
                np.maximum(av, ws1, out=av)      # done, finished in place
                np.subtract(av, clock, out=ws2)
                np.add(p2p, ws2, out=p2p)
                clock = av
            else:
                pre = clock[rr]
                done = np.maximum(av, pre + tt2)
                p2p[rr] += done - pre
                clock[rr] = done
        elif kind == _K_IRECV_POST:
            if full:
                post_buf[widx] = clock
                np.add(clock, ov, out=clock)
                np.add(p2p, ov, out=p2p)
            else:
                pre = clock[rr]
                post_buf[widx] = pre
                clock[rr] = pre + ov
                p2p[rr] += ov
        elif kind == _K_RDV_POST:
            post_buf[widx] = clock if full else clock[rr]
        elif kind == _K_RDV_SEND:
            pv = post_buf[rsl]
            if full:
                np.add(clock, ov, out=ws1)           # ready
                np.maximum(ws1, pv, out=ws1)
                np.maximum(ws1, link_free, out=ws1)  # start
                np.subtract(ws1, clock, out=ws2)
                np.add(p2p, ws2, out=p2p)
                np.add(ws1, tt2, out=link_free)      # arrival
                for tgt, src in widx:
                    arr_buf[tgt] = link_free if src is None else \
                        link_free[src]
                clock, ws1 = ws1, clock
            else:
                pre = clock[rr]
                ready = pre + ov
                start = np.maximum(np.maximum(ready, pv), link_free[rr])
                arrival = start + tt2
                for tgt, src in widx:
                    arr_buf[tgt] = arrival if src is None else arrival[src]
                link_free[rr] = arrival
                p2p[rr] += start - pre
                clock[rr] = start
        elif kind == _K_RDV_COMPLETE:
            av = arr_buf[rsl]
            if full:
                np.subtract(av, clock, out=ws2)
                np.add(p2p, ws2, out=p2p)
                clock = av
            else:
                pre = clock[rr]
                p2p[rr] += av - pre
                clock[rr] = av
        elif kind == _K_WAIT_ARR:
            av = arr_buf[rsl]
            if full:
                np.maximum(av, clock, out=av)    # done, finished in place
                np.subtract(av, clock, out=ws2)
                np.add(p2p, ws2, out=p2p)
                clock = av
            else:
                pre = clock[rr]
                done = np.maximum(av, pre)
                p2p[rr] += done - pre
                clock[rr] = done
        elif kind == _K_WAIT_EAGER:
            av = arr_buf[rsl]
            pv = post_buf[rsl2]
            if full:
                np.add(pv, tt2, out=pv)
                np.maximum(av, pv, out=pv)       # buffered value
                np.maximum(pv, clock, out=pv)    # done, finished in place
                np.subtract(pv, clock, out=ws2)
                np.add(p2p, ws2, out=p2p)
                clock = pv
            else:
                pre = clock[rr]
                value = np.maximum(av, pv + tt2)
                done = np.maximum(value, pre)
                p2p[rr] += done - pre
                clock[rr] = done
        else:  # _K_COLL: enter clocks are frozen — every rank is parked
            ckind, size = pl
            cost = collective_cost_ns(ckind, n, size, net)
            done_row = clock.max(axis=0)
            np.add(done_row, cost, out=done_row)
            np.subtract(done_row[None, :], clock, out=ws1)
            np.add(coll, ws1, out=coll)
            clock[:] = done_row

    return clock, comp, p2p, coll


def _run_shared(core: _LockstepCore, active: np.ndarray) -> np.ndarray:
    """Order-free driver: one shared run-until-blocked worklist pass.

    Valid only under :func:`_order_free`; then any structurally legal
    order yields each column's bit-exact scalar result, so no clocks
    are consulted for scheduling and no column ever diverges.  On a
    structural deadlock every column is handed to the scalar engine,
    which reproduces the scalar diagnostic.
    """
    states = core.states
    events = core.events
    ready = deque()
    for r in range(core.n):
        if events[r]:
            ready.append(r)
        else:
            states[r].done = True
            core.n_unfinished -= 1
    core.on_wake = ready.append

    step = core.step
    while ready:
        r = ready.popleft()
        st = states[r]
        n_ev = len(events[r])
        while True:
            if st.cursor >= n_ev:
                st.done = True
                core.n_unfinished -= 1
                break
            if not step(r):
                st.blocked = True
                break
            core.worklist_events += 1

    if core.n_unfinished:
        return np.zeros_like(active)  # deadlock: scalar engine diagnoses
    return active


def _run_lockstep(
    trace: BurstTrace,
    net: NetworkConfig,
    phase_duration: BatchPhaseDurationFn,
    n_configs: int,
) -> Tuple[List[_LockstepCore], np.ndarray, int]:
    """Fork-on-divergence lockstep driver for order-sensitive batches.

    Runs a work stack of lockstep groups.  Within a group, every column
    agrees on the next ``(clock, rank)``-minimal rank (one dense
    ``argmin`` over the (rank, column) key matrix computes all columns'
    choices at once), so one batched step serves the whole group.  At a divergence point the group's columns
    are partitioned by their chosen rank and :func:`_fork_core` splits
    the core into one child per partition; each child re-derives its
    (now unanimous) choice from its own tree and continues.  Forked
    work is bounded: a group of one column can never diverge again, so
    at most ``n_configs - 1`` forks happen over the whole batch, and
    the per-column step sequence is by construction exactly the scalar
    engine's.

    Returns ``(groups, peeled, n_forks)``: the finished cores (each
    covering ``core.col_idx`` absolute columns), the mask of columns
    that hit a structural deadlock (handed to the scalar engine, which
    owns the diagnostic), and the number of extra groups divergences
    created.
    """
    stack = [_LockstepCore(trace, net, phase_duration, n_configs)]
    groups: List[_LockstepCore] = []
    peeled = np.zeros(n_configs, dtype=bool)
    n_forks = 0
    while stack:
        core = stack.pop()
        states = core.states
        events = core.events
        # Dense (rank, column) key matrix: row r is rank r's clock
        # column, +inf while r is blocked or done.  argmin(axis=0)
        # takes the *first* minimum per column, i.e. the smallest rank
        # among ties — the scalar engines' (clock, rank) comparison.
        keys = np.full((core.n, core.n_cols), np.inf)

        def _wake(rank: int, _k=keys, _s=states) -> None:
            _k[rank] = _s[rank].clock

        core.on_wake = _wake
        for r in range(core.n):
            st = states[r]
            if not st.done and st.cursor >= len(events[r]):
                st.done = True
                core.n_unfinished -= 1
            if not st.done and not st.blocked:
                keys[r] = st.clock
        diverged = None
        while core.n_unfinished:
            args = keys.argmin(axis=0)
            r = int(args[0])
            if np.isinf(keys[r, 0]):
                # Column 0's minimum is inf, so every remaining rank is
                # blocked — in every column, because blocked/done are
                # group-level structural state (an all-inf matrix also
                # makes argmin unanimous, so this check fires first).
                break
            if not (args == r).all():
                diverged = args
                break
            st = states[r]
            if core.step(r):
                core.lockstep_events += 1
                if st.cursor >= len(events[r]):
                    st.done = True
                    core.n_unfinished -= 1
                    keys[r] = np.inf
                else:
                    keys[r] = st.clock
            else:
                st.blocked = True
                keys[r] = np.inf
        if diverged is not None:
            choices = np.unique(diverged)
            n_forks += int(choices.size) - 1
            for v in choices:
                stack.append(_fork_core(core, np.flatnonzero(diverged == v)))
        elif core.n_unfinished:
            # Structural deadlock: the scalar engine raises the
            # diagnostic per config.
            cols = (core.col_idx if core.col_idx is not None
                    else np.arange(n_configs))
            peeled[cols] = True
        else:
            groups.append(core)
    return groups, peeled, n_forks


def _core_results(core: _LockstepCore, cols: np.ndarray,
                  results: List[Optional[ReplayResult]]) -> None:
    """Assemble one finished core's columns into ``results``."""
    clock_m = np.stack([st.clock for st in core.states])
    comp_m = np.stack([st.compute_ns for st in core.states])
    p2p_m = np.stack([st.p2p_ns for st in core.states])
    coll_m = np.stack([st.collective_ns for st in core.states])
    total = clock_m.max(axis=0)
    for j, c in enumerate(cols):
        results[int(c)] = ReplayResult(
            total_ns=float(total[j]),
            compute_ns=comp_m[:, j].copy(),
            p2p_ns=p2p_m[:, j].copy(),
            collective_ns=coll_m[:, j].copy(),
            n_messages=core.n_messages,
            bytes_sent=core.bytes_sent,
        )


def replay_batch(
    trace: BurstTrace,
    net: NetworkConfig,
    phase_duration: BatchPhaseDurationFn,
    n_configs: int,
    scalar_engine: str = "event",
    array_driver: bool = True,
) -> List[ReplayResult]:
    """Replay ``trace`` for ``n_configs`` configurations in one pass.

    ``phase_duration(rank, phase)`` returns the phase's duration as a
    float64 column over the configuration axis.  The result list holds
    one :class:`~repro.network.replay.ReplayResult` per configuration,
    bit-identical to ``replay(trace, net, scalar_fn_i, ...)`` with
    ``scalar_fn_i`` reading column ``i`` — for every configuration,
    whether it ran on the array tape, the worklist pass, a forked
    lockstep group, or (only on a structural deadlock) the scalar
    engine (``scalar_engine`` picks which one raises the diagnostic).
    ``array_driver=False`` keeps the order-free path on the
    event-at-a-time worklist driver — the PR4-era behaviour, retained
    for benchmarking and cross-checking.

    Counters: ``replay.batch.array_events`` / ``worklist_events`` /
    ``lockstep_events`` (config-events priced per driver),
    ``replay.batch.driver.{array,worklist,lockstep}`` (the driver this
    call actually ran), ``replay.batch.array_fallbacks`` (tape build
    bail-outs), ``replay.batch.forked_groups``,
    ``replay.batch.peeled_configs``, and scalar-equivalent
    ``replay.events`` / ``replay.messages`` / ``replay.bus_waits``
    totals for the batched columns (peeled columns report through
    their scalar runs).
    """
    if n_configs <= 0:
        raise ValueError("n_configs must be positive")
    obs = get_metrics()
    results: List[Optional[ReplayResult]] = [None] * n_configs
    peeled_mask = np.zeros(n_configs, dtype=bool)

    order_free = _order_free_cached(trace, net)
    tape = None
    if order_free and array_driver:
        tape = _tape_for(trace, net)
        if tape is None:
            obs.inc("replay.batch.array_fallbacks")

    with obs.span("replay.batch.run"):
        if tape is not None:
            n = trace.n_ranks
            clock, comp, p2p, coll = _run_array_tape(
                tape, net, phase_duration, n, n_configs)
            obs.inc("replay.batch.driver.array")
            obs.inc("replay.batch.array_events", tape.n_events * n_configs)
            obs.inc("replay.events", tape.n_events * n_configs)
            obs.inc("replay.messages", tape.n_messages * n_configs)
            total = clock.max(axis=0)
            # Config-major copies: one transpose pass instead of
            # n_configs strided column extractions; rows are disjoint
            # views, and per-config consumers never share them.
            comp_t = np.ascontiguousarray(comp.T)
            p2p_t = np.ascontiguousarray(p2p.T)
            coll_t = np.ascontiguousarray(coll.T)
            for c in range(n_configs):
                results[c] = ReplayResult(
                    total_ns=float(total[c]),
                    compute_ns=comp_t[c],
                    p2p_ns=p2p_t[c],
                    collective_ns=coll_t[c],
                    n_messages=tape.n_messages,
                    bytes_sent=tape.bytes_sent,
                )
        elif order_free:
            core = _LockstepCore(trace, net, phase_duration, n_configs)
            active = _run_shared(core, np.ones(n_configs, dtype=bool))
            obs.inc("replay.batch.driver.worklist")
            n_active = int(active.sum())
            obs.inc("replay.batch.worklist_events",
                    core.worklist_events * n_active)
            if n_active:
                obs.inc("replay.events", core.n_steps * n_active)
                obs.inc("replay.messages", core.n_messages * n_active)
                _core_results(core, np.flatnonzero(active), results)
            peeled_mask = ~active
        else:
            groups, peeled_mask, n_forks = _run_lockstep(
                trace, net, phase_duration, n_configs)
            obs.inc("replay.batch.driver.lockstep")
            if n_forks:
                obs.inc("replay.batch.forked_groups", n_forks)
            for core in groups:
                cols = (core.col_idx if core.col_idx is not None
                        else np.arange(n_configs))
                k = int(cols.size)
                obs.inc("replay.batch.lockstep_events",
                        core.lockstep_events * k)
                obs.inc("replay.events", core.n_steps * k)
                obs.inc("replay.messages", core.n_messages * k)
                bus_waits = int(core.buses.n_waits.sum())
                if bus_waits:
                    obs.inc("replay.bus_waits", bus_waits)
                _core_results(core, cols, results)

    peeled = np.flatnonzero(peeled_mask)
    if peeled.size:
        obs.inc("replay.batch.peeled_configs", int(peeled.size))
        for c in peeled:
            def column(rank: int, phase: ComputePhase, _c=int(c)) -> float:
                return phase_duration(rank, phase)[_c]

            results[c] = replay(trace, net, column, engine=scalar_engine)
    return results  # type: ignore[return-value]
