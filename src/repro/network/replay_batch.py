"""Config-vectorized MPI trace replay: one event-engine pass per batch.

The scalar replay (:mod:`repro.network.replay`) walks a trace once per
node configuration, even though within one design-space batch the trace
— and therefore almost all of the replay's *control flow* — is shared:
the network is fixed across the space (as in MUSA, where the Dimemas
parameters never change), so message sizes, eager/rendezvous protocol
choices, matching, collective membership and blocking structure are all
configuration-invariant.  Only the compute-phase durations differ per
configuration, which perturbs the virtual clocks but usually not the
global ``(clock, rank)`` step order that both scalar engines follow.

This module exploits that: a :class:`_LockstepCore` carries a NumPy
*configuration axis* through every quantity the scalar
``_ReplayCore`` keeps as a float — rank clocks, outgoing-link
``link_free`` times, bus-pool free slots, buffered eager arrivals,
rendezvous release slots, request completion times, collective entry
times — and steps the whole batch in lockstep, one trace event at a
time.  Three drivers share that columnar core:

**Array driver** (:func:`_run_array`).  On the order-free path (see
below) the event order is not just irrelevant — the whole matching is
*structural*, so :func:`_build_tape` resolves it once in pure Python
(no floats), levels the resulting value DAG by dependency depth, and
:func:`_run_array` executes it level by level with one NumPy pass per
(level, kind) group: all of a level's eager sends price in one
vectorized expression over (events-in-level x configs), and likewise
for receives, rendezvous handshakes, waits and collectives.  The ~one
Python ``step()`` call per trace event that the worklist driver costs
collapses into a few hundred array passes, while every float64
operation along a column stays the identical scalar operation — see
the tape section below for why dropped clamps are exact no-ops.  Any
structural snag (would-deadlock, unknown wait request, ragged
collective) falls back to the shared-order driver.

**Shared-order driver** (:func:`_run_shared`).  The scalar replay is
*confluent* whenever no shared resource couples ranks: every message
cost is computed from endpoint-local dataflow values (the sender's
clock and ``link_free`` when *it* reaches the send, the receiver's
clock when *it* posts the receive), collective completion is a
commutative max over entry times, and FIFO matching per
``(src, dst, tag)`` pairs the k-th send with the k-th receive under
any interleaving.  The global ``(clock, rank)`` step order exists
solely to serialize the finite-bus pool (see
:mod:`repro.network.replay`'s docstring) — plus one structural corner:
a key carrying both eager-buffered and rendezvous sends, where
matching prefers whichever eager send is outstanding at discovery
time.  :func:`_order_free` checks both conditions (``n_buses == 0``
and protocol-pure keys, one O(events) scan); when they hold — they do
for the paper's MareNostrum4-like network, which has an unlimited bus
pool — *any* structurally valid order yields, per configuration, the
bit-exact scalar result, so one pass with a trivial run-until-blocked
worklist steps all configurations at once with **zero** divergence
checking.

**Lockstep-peel driver** (:func:`_run_lockstep`).  When the bus pool
is finite (or a key mixes protocols), per-configuration order *does*
matter.  The next rank to step is then chosen exactly like the scalar
engines choose it, per configuration, via a vectorized tournament tree
(min over ranks of ``(clock, rank)``, column-wise).  Wherever every
configuration in the lockstep group agrees on the choice, one step
serves the whole group; columns whose min-ready rank differs from the
group's (a per-config compute duration flipped the order) are
*peeled*: marked inactive and, after the lockstep pass, re-replayed
from scratch on the scalar engine.  Peeling at the first disagreement
means every surviving column executed exactly the step sequence the
scalar engine would have executed for it.

Either way, every arithmetic operation along a column is the same
IEEE-754 float64 operation the scalar core performs (element-wise
instead of one at a time), so results are **bit-identical** to
per-config scalar replay — peeled columns trivially so, because the
scalar engine produces them.  The step outcome itself (advance vs
block, match vs buffer, collective complete vs park) depends only on
*structural* state — queue occupancy, request bookkeeping, collective
membership — which is identical across columns that share a step
history; only the *selection* of which rank steps next reads the
clocks, and only when a shared resource makes that order observable.

Counters: ``replay.batch.array_events`` (config-events priced by the
array driver), ``replay.batch.lockstep_events`` (config-events served
by event-at-a-time batched steps), ``replay.batch.peeled_configs``
(columns finished on the scalar engine), plus the scalar-equivalent
``replay.events`` / ``replay.messages`` / ``replay.bus_waits`` totals.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics
from ..trace.burst import BurstTrace
from ..trace.events import ComputePhase, MpiCall
from ..util import LruDict
from .collectives import collective_cost_ns
from .model import NetworkConfig
from .replay import ReplayResult, replay

__all__ = ["replay_batch", "BatchPhaseDurationFn"]

#: Maps (rank, phase) to a per-configuration duration column (ns).
BatchPhaseDurationFn = Callable[[int, ComputePhase], np.ndarray]


class _MinTree:
    """Vectorized tournament tree: per-column min of ``(clock, rank)``.

    One leaf per rank holds that rank's clock column (``+inf`` when the
    rank is blocked or done).  Internal nodes keep the column-wise
    minimum value and the rank achieving it; ties prefer the left
    child, and left subtrees hold smaller ranks, so the tie-break is
    "smallest rank" — exactly the scalar engines' ``(clock, rank)``
    tuple comparison.  An update touches ``log2(P)`` levels of
    column-wide vector ops instead of an O(ranks x columns) rescan per
    step.
    """

    def __init__(self, n_ranks: int, n_cols: int) -> None:
        p = 1
        while p < max(n_ranks, 1):
            p *= 2
        self.p = p
        self.vals = np.full((2 * p, n_cols), np.inf)
        self.args = np.zeros((2 * p, n_cols), dtype=np.int32)
        for r in range(p):
            self.args[p + r, :] = min(r, n_ranks - 1)
        # Initialize internal args consistently (vals are all inf).
        for i in range(p - 1, 0, -1):
            self.args[i] = self.args[2 * i]

    def update(self, rank: int, clock) -> None:
        """Set ``rank``'s key column (a vector, scalar, or ``inf``)."""
        i = self.p + rank
        self.vals[i] = clock
        i >>= 1
        vals, args = self.vals, self.args
        while i:
            l, r = 2 * i, 2 * i + 1
            take_r = vals[r] < vals[l]
            vals[i] = np.where(take_r, vals[r], vals[l])
            args[i] = np.where(take_r, args[r], args[l])
            i >>= 1

    def root(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.vals[1], self.args[1]


class _BatchBusPool:
    """Column-wise Dimemas finite-bus pool.

    Semantically the scalar pool is a multiset of per-bus free times
    with pop-min/push; which physical slot serves a transfer is
    unobservable, so an argmin over a dense array reproduces the heap's
    results exactly, column by column.
    """

    def __init__(self, n_buses: int, n_cols: int) -> None:
        self.n_buses = n_buses
        self.n_cols = n_cols
        self.n_waits = np.zeros(n_cols, dtype=np.int64)
        if n_buses > 0:
            self._free = np.zeros((n_buses, n_cols))
            self._cols = np.arange(n_cols)

    def acquire(self, ready: np.ndarray, duration_ns: float) -> np.ndarray:
        if self.n_buses <= 0:
            return ready
        idx = np.argmin(self._free, axis=0)
        earliest = self._free[idx, self._cols]
        start = np.maximum(ready, earliest)
        self.n_waits += start > ready
        self._free[idx, self._cols] = start + duration_ns
        return start


class _ColState:
    """Per-rank state with every float replaced by a config column."""

    __slots__ = ("clock", "cursor", "compute_ns", "p2p_ns", "collective_ns",
                 "requests", "pending_slot", "link_free", "blocked", "done")

    def __init__(self, n_cols: int) -> None:
        self.clock = np.zeros(n_cols)
        self.cursor = 0
        self.compute_ns = np.zeros(n_cols)
        self.p2p_ns = np.zeros(n_cols)
        self.collective_ns = np.zeros(n_cols)
        self.requests: Dict[int, object] = {}
        self.pending_slot: Optional[List[Optional[np.ndarray]]] = None
        self.link_free = np.zeros(n_cols)
        self.blocked = False
        self.done = False


class _LockstepCore:
    """The scalar ``_ReplayCore.step`` transliterated onto columns.

    Every float operation becomes the identical element-wise float64
    operation; every structural decision (queue occupancy, protocol
    choice, collective membership) is taken once for the whole group.
    Arrays are never mutated in place once stored, so buffered values
    (eager arrivals, release slots, request completions) stay frozen at
    their creation-time columns exactly like the scalar floats they
    replace.
    """

    def __init__(self, trace: BurstTrace, net: NetworkConfig,
                 phase_duration: BatchPhaseDurationFn, n_cols: int) -> None:
        self.trace = trace
        self.net = net
        self.phase_duration = phase_duration
        self.n_cols = n_cols
        self.n = trace.n_ranks
        self.states = [_ColState(n_cols) for _ in range(self.n)]
        self.events = [trace.ranks[r].events for r in range(self.n)]
        # FIFO queues per (src, dst, tag), as in the scalar _Matcher.
        self.sends = defaultdict(list)
        self.recvs = defaultdict(list)
        self.rdv_sends = defaultdict(list)
        self.buses = _BatchBusPool(net.n_buses, n_cols)

        self.coll_seq = [defaultdict(int) for _ in range(self.n)]
        self.coll_enter: Dict[Tuple[str, int], Dict[int, np.ndarray]] = \
            defaultdict(dict)
        self.coll_done: Dict[Tuple[str, int], np.ndarray] = {}
        self.coll_waiters: Dict[Tuple[str, int], List[int]] = \
            defaultdict(list)

        self.n_steps = 0
        self.n_wakeups = 0
        self.n_messages = 0
        self.bytes_sent = 0
        self.n_unfinished = self.n
        self.lockstep_events = 0
        self.array_events = 0

        #: set by the driver; receives ranks whose dependency resolved
        self.on_wake: Callable[[int], None] = lambda rank: None

    # ------------------------------------------------------------ wake lists

    def wake(self, rank: int) -> None:
        st = self.states[rank]
        if st.blocked:
            st.blocked = False
            self.n_wakeups += 1
            self.on_wake(rank)

    def _resolver(self, rank: int):
        slot: List[Optional[np.ndarray]] = [None]

        def resolve(t_col: np.ndarray) -> None:
            slot[0] = t_col
            self.wake(rank)

        return slot, resolve

    # --------------------------------------------------------- transfer cost

    def _rdv_transfer(self, send_ready, recv_ready, transfer_ns: float,
                      sender: int) -> Tuple[np.ndarray, np.ndarray]:
        sst = self.states[sender]
        start = self.buses.acquire(
            np.maximum(np.maximum(send_ready, recv_ready), sst.link_free),
            transfer_ns)
        sst.link_free = start + transfer_ns
        return start, start + transfer_ns

    def _match_source(self, key, recv_clock) -> Optional[np.ndarray]:
        sq = self.sends[key]
        if sq:
            arrival, transfer_ns = sq.pop(0)
            return np.maximum(arrival, recv_clock + transfer_ns)
        dq = self.rdv_sends[key]
        if dq:
            ready, transfer_ns, sender_slot, sender = dq.pop(0)
            start, arrival = self._rdv_transfer(ready, recv_clock,
                                                transfer_ns, sender)
            sender_slot[0] = start
            self.wake(sender)
            return arrival
        return None

    # ------------------------------------------------------------- stepping

    def step(self, rank: int) -> bool:
        """One event of ``rank`` for the whole group; False = blocked.

        Mirrors ``_ReplayCore.step`` branch for branch; the tree leaf
        for ``rank`` is refreshed by the engine loop, not here.
        """
        self.n_steps += 1
        st = self.states[rank]
        ev = self.events[rank][st.cursor]
        net = self.net

        if isinstance(ev, ComputePhase):
            dur = np.asarray(self.phase_duration(rank, ev), dtype=np.float64)
            if (dur < 0).any():
                raise ValueError("phase duration must be non-negative")
            st.clock = st.clock + dur
            st.compute_ns = st.compute_ns + dur
            st.cursor += 1
            return True

        call: MpiCall = ev
        if call.is_collective:
            key = (call.kind, self.coll_seq[rank][call.kind])
            if key not in self.coll_done:
                enters = self.coll_enter[key]
                if rank in enters:
                    return False  # spurious wake; completion wakes us
                enters[rank] = st.clock
                if len(enters) < self.n:
                    self.coll_waiters[key].append(rank)
                    return False
                cost = collective_cost_ns(call.kind, self.n,
                                          call.size_bytes, net)
                latest = None
                for col in enters.values():
                    latest = col if latest is None else np.maximum(latest, col)
                self.coll_done[key] = latest + cost
                for waiter in self.coll_waiters.pop(key, ()):
                    self.wake(waiter)
            t_done = self.coll_done[key]
            enter = self.coll_enter[key][rank]
            st.collective_ns = st.collective_ns + (t_done - enter)
            st.clock = t_done
            self.coll_seq[rank][call.kind] += 1
            st.cursor += 1
            return True

        if call.kind in ("send", "isend"):
            key = (rank, call.peer, call.tag)
            transfer = net.transfer_ns(call.size_bytes)
            if net.is_eager(call.size_bytes) or call.kind == "isend":
                start = self.buses.acquire(
                    np.maximum(st.clock + net.overhead_ns, st.link_free),
                    transfer)
                st.link_free = start + transfer
                arrival = start + transfer
                rq = self.recvs[key]
                if rq:
                    post, resolver = rq.pop(0)
                    resolver(np.maximum(arrival, post + transfer))
                else:
                    self.sends[key].append((arrival, transfer))
                st.clock = st.clock + net.overhead_ns
                st.p2p_ns = st.p2p_ns + net.overhead_ns
                if call.kind == "isend":
                    st.requests[call.request] = arrival
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False
                release = np.maximum(st.pending_slot[0], st.clock)
                st.p2p_ns = st.p2p_ns + (release - st.clock)
                st.clock = release
                st.pending_slot = None
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            rq = self.recvs[key]
            if rq:
                post, resolver = rq.pop(0)
                start, arrival = self._rdv_transfer(
                    st.clock + net.overhead_ns, post, transfer, rank)
                resolver(arrival)
                st.p2p_ns = st.p2p_ns + (start - st.clock)
                st.clock = start
                self.n_messages += 1
                self.bytes_sent += call.size_bytes
                st.cursor += 1
                return True
            slot: List[Optional[np.ndarray]] = [None]
            self.rdv_sends[key].append(
                (st.clock + net.overhead_ns, transfer, slot, rank))
            st.pending_slot = slot
            return False

        if call.kind in ("recv", "irecv"):
            key = (call.peer, rank, call.tag)
            if call.kind == "irecv":
                done = self._match_source(key, st.clock)
                if done is not None:
                    st.requests[call.request] = done
                else:
                    slot, resolver = self._resolver(rank)
                    self.recvs[key].append((st.clock, resolver))
                    st.requests[call.request] = slot
                st.clock = st.clock + net.overhead_ns
                st.p2p_ns = st.p2p_ns + net.overhead_ns
                st.cursor += 1
                return True
            if st.pending_slot is not None:
                if st.pending_slot[0] is None:
                    return False
                done = np.maximum(st.pending_slot[0], st.clock)
                st.pending_slot = None
            else:
                maybe = self._match_source(key, st.clock)
                if maybe is None:
                    slot, resolver = self._resolver(rank)
                    self.recvs[key].append((st.clock, resolver))
                    st.pending_slot = slot
                    return False
                done = maybe
            st.p2p_ns = st.p2p_ns + (done - st.clock)
            st.clock = done
            st.cursor += 1
            return True

        if call.kind == "wait":
            entry = st.requests.get(call.request)
            if entry is None:
                raise ValueError(
                    f"rank {rank}: wait on unknown request {call.request}")
            if isinstance(entry, list):
                if entry[0] is None:
                    return False
                done = np.maximum(entry[0], st.clock)
            else:
                done = np.maximum(entry, st.clock)
            st.p2p_ns = st.p2p_ns + (done - st.clock)
            st.clock = done
            del st.requests[call.request]
            st.cursor += 1
            return True

        raise ValueError(f"unhandled MPI call kind {call.kind!r}")


def _order_free(trace: BurstTrace, net: NetworkConfig) -> bool:
    """True when the replay's values cannot depend on step order.

    Requires an unlimited bus pool (``n_buses == 0``) — the one shared
    resource whose grant order is observable — and *protocol-pure*
    point-to-point keys: no ``(src, dst, tag)`` carries both
    eager/isend-buffered and rendezvous sends, because
    ``_match_source`` prefers a buffered send over an advertised
    rendezvous one, making mixed-key pairing depend on what is
    outstanding at discovery time.
    """
    if net.n_buses > 0:
        return False
    classes: Dict[Tuple[int, int, int], bool] = {}
    for rt in trace.ranks:
        for ev in rt.events:
            if isinstance(ev, MpiCall) and ev.kind in ("send", "isend"):
                key = (rt.rank, ev.peer, ev.tag)
                eager = ev.kind == "isend" or net.is_eager(ev.size_bytes)
                if classes.setdefault(key, eager) != eager:
                    return False
    return True


# --------------------------------------------------------------------- tape
#
# On the order-free path the entire replay is *structural*: with an
# unlimited bus pool and protocol-pure keys, which send matches which
# receive (k-th send of a (src, dst, tag) key pairs with its k-th
# receive — one rank produces each side, in program order), which events
# a collective joins (all ranks, by per-rank (kind, seq)), and which
# request a wait consumes are all fixed by the trace alone.  The float
# values then form a DAG: each event's output depends on the same rank's
# previous event plus at most one cross-rank value (a message arrival, a
# receive-post clock, or a collective's entry set).  _build_tape walks
# the trace once (pure Python, no floats), resolves the matching, and
# levels the DAG by depth; _run_array then executes it level by level
# with one NumPy pass per (level, kind) group — the same float64 ops the
# scalar ``step`` performs, (events-in-level x configs) at a time —
# instead of ~one Python ``step()`` call per event.  Because an event's
# depth strictly exceeds its same-rank predecessor's, each rank appears
# at most once per level, so the fancy-index scatters never collide.
# Any structural snag (unmatched receive, rendezvous deadlock cycle,
# unknown wait request, ragged collective, non-uniform collective
# payload) falls back to the worklist driver, which reproduces the
# scalar diagnostics.

(_K_COMPUTE, _K_EAGER_SEND, _K_RECV_EAGER, _K_IRECV_POST, _K_RDV_SEND,
 _K_RDV_POST, _K_RDV_COMPLETE, _K_WAIT_ARR, _K_WAIT_EAGER,
 _K_COLL) = range(10)


class _Tape:
    __slots__ = ("groups", "n_msgs", "n_events", "n_messages", "bytes_sent")

    def __init__(self, groups, n_msgs, n_events, n_messages, bytes_sent):
        self.groups = groups
        self.n_msgs = n_msgs
        self.n_events = n_events
        self.n_messages = n_messages
        self.bytes_sent = bytes_sent


def _build_tape(trace: BurstTrace, net: NetworkConfig) -> Optional[_Tape]:
    """Structural pre-pass: match, level, and group the whole replay.

    Returns ``None`` when the trace cannot be fully resolved
    structurally (it would deadlock, wait on an unknown request, or
    price a collective whose per-rank payloads disagree) — the caller
    then falls back to the worklist driver / scalar engine, which owns
    those diagnostics.
    """
    n = trace.n_ranks
    events = [trace.ranks[r].events for r in range(n)]
    n_events = sum(len(e) for e in events)

    # Pass 1: per-key protocol (guaranteed pure by _order_free).
    key_eager: Dict[Tuple[int, int, int], bool] = {}
    for r in range(n):
        for ev in events[r]:
            if isinstance(ev, MpiCall) and ev.kind in ("send", "isend"):
                key = (r, ev.peer, ev.tag)
                key_eager[key] = (ev.kind == "isend"
                                  or net.is_eager(ev.size_bytes))

    # Message registry: FIFO slot i of a key pairs send i with recv i.
    msg_transfer: List[Optional[float]] = []
    msg_arrival: List[Optional[int]] = []   # producer node (send)
    msg_post: List[Optional[int]] = []      # receive-post node
    key_slots: Dict[Tuple[int, int, int], List[int]] = defaultdict(list)

    def msg_slot(key, i: int) -> int:
        slots = key_slots[key]
        while len(slots) <= i:
            slots.append(len(msg_transfer))
            msg_transfer.append(None)
            msg_arrival.append(None)
            msg_post.append(None)
        return slots[i]

    # Nodes as parallel lists; dependencies as one flat edge list.  The
    # walk below runs once per trace event — the structural hot loop —
    # hence the inlined node construction via bound ``append``s.
    kinds: List[int] = []
    ranks: List[int] = []
    nmsg: List[int] = []
    payloads: List[object] = []
    e_src: List[int] = []
    e_dst: List[int] = []
    k_ap, r_ap, m_ap, p_ap = (kinds.append, ranks.append, nmsg.append,
                              payloads.append)
    es_ap, ed_ap = e_src.append, e_dst.append

    send_i: Dict[Tuple, int] = defaultdict(int)
    recv_i: Dict[Tuple, int] = defaultdict(int)
    colls: Dict[Tuple[str, int], int] = {}
    coll_members: Dict[int, int] = {}
    n_messages = 0
    bytes_sent = 0

    for r in range(n):
        coll_seq: Dict[str, int] = defaultdict(int)
        requests: Dict[int, Tuple[str, int]] = {}
        prev = -1
        for ev in events[r]:
            if isinstance(ev, ComputePhase):
                nid = len(kinds)
                k_ap(_K_COMPUTE), r_ap(r), m_ap(-1), p_ap(ev)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
                continue
            call: MpiCall = ev
            if call.is_collective:
                ckey = (call.kind, coll_seq[call.kind])
                coll_seq[call.kind] += 1
                nid = colls.get(ckey, -1)
                if nid < 0:
                    nid = len(kinds)
                    k_ap(_K_COLL), r_ap(-1), m_ap(-1)
                    p_ap((call.kind, call.size_bytes))
                    colls[ckey] = nid
                    coll_members[nid] = 0
                elif payloads[nid] != (call.kind, call.size_bytes):
                    return None  # ragged payload: completion order decides
                coll_members[nid] += 1
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
            elif call.kind in ("send", "isend"):
                key = (r, call.peer, call.tag)
                mid = msg_slot(key, send_i[key])
                send_i[key] += 1
                msg_transfer[mid] = net.transfer_ns(call.size_bytes)
                eager = call.kind == "isend" or net.is_eager(call.size_bytes)
                nid = len(kinds)
                k_ap(_K_EAGER_SEND if eager else _K_RDV_SEND)
                r_ap(r), m_ap(mid), p_ap(None)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
                msg_arrival[mid] = nid
                if call.kind == "isend":
                    requests[call.request] = ("s", mid)
                n_messages += 1
                bytes_sent += call.size_bytes
            elif call.kind == "recv":
                key = (call.peer, r, call.tag)
                mid = msg_slot(key, recv_i[key])
                recv_i[key] += 1
                eager = key_eager.get(key)
                if eager is None:
                    return None  # no sender ever: structural deadlock
                nid = len(kinds)
                if eager:
                    k_ap(_K_RECV_EAGER), r_ap(r), m_ap(mid), p_ap(None)
                    if prev >= 0:
                        es_ap(prev), ed_ap(nid)
                    prev = nid
                else:
                    k_ap(_K_RDV_POST), r_ap(r), m_ap(mid), p_ap(None)
                    if prev >= 0:
                        es_ap(prev), ed_ap(nid)
                    msg_post[mid] = nid
                    k_ap(_K_RDV_COMPLETE), r_ap(r), m_ap(mid), p_ap(None)
                    es_ap(nid), ed_ap(nid + 1)
                    prev = nid + 1
            elif call.kind == "irecv":
                key = (call.peer, r, call.tag)
                mid = msg_slot(key, recv_i[key])
                recv_i[key] += 1
                eager = key_eager.get(key)
                nid = len(kinds)
                k_ap(_K_IRECV_POST), r_ap(r), m_ap(mid), p_ap(None)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
                msg_post[mid] = nid
                requests[call.request] = (
                    "x" if eager is None else ("e" if eager else "r"), mid)
            elif call.kind == "wait":
                entry = requests.pop(call.request, None)
                if entry is None or entry[0] == "x":
                    return None  # unknown request / unmatched irecv
                tag, mid = entry
                nid = len(kinds)
                k_ap(_K_WAIT_EAGER if tag == "e" else _K_WAIT_ARR)
                r_ap(r), m_ap(mid), p_ap(None)
                if prev >= 0:
                    es_ap(prev), ed_ap(nid)
                prev = nid
            else:
                return None  # unhandled kind: scalar engine raises

    for nid, count in coll_members.items():
        if count != n:
            return None  # some rank never joins: structural deadlock

    # Cross-rank value edges, resolved now that every producer exists.
    for nid, kind in enumerate(kinds):
        if kind in (_K_RECV_EAGER, _K_RDV_COMPLETE, _K_WAIT_ARR,
                    _K_WAIT_EAGER):
            mid = nmsg[nid]
            arr = msg_arrival[mid]
            if arr is None:
                return None  # consumes a message nobody sends
            es_ap(arr), ed_ap(nid)
            if kind == _K_WAIT_EAGER:
                es_ap(msg_post[mid]), ed_ap(nid)
        elif kind == _K_RDV_SEND:
            post = msg_post[nmsg[nid]]
            if post is None:
                return None  # rendezvous sender blocks forever
            es_ap(post), ed_ap(nid)

    # Level the DAG (depth = 1 + max over predecessors) with Kahn waves
    # vectorized over the flat edge list: each wave expands the whole
    # zero-indegree frontier at once.  Total work is O(edges) spread
    # over ~levels vector calls instead of O(edges) dict/list hops.
    n_nodes = len(kinds)
    depth = np.zeros(n_nodes, dtype=np.int64)
    if e_src:
        src = np.asarray(e_src, dtype=np.int64)
        dst = np.asarray(e_dst, dtype=np.int64)
        e_order = np.argsort(src, kind="stable")
        dst_s = dst[e_order]
        starts = np.searchsorted(src, np.arange(n_nodes + 1),
                                 sorter=e_order)
        indeg = np.bincount(dst, minlength=n_nodes)
        frontier = np.flatnonzero(indeg == 0)
        processed = 0
        while frontier.size:
            processed += int(frontier.size)
            counts = starts[frontier + 1] - starts[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            cum = np.cumsum(counts)
            offset = np.arange(total, dtype=np.int64) - np.repeat(
                cum - counts, counts)
            e_idx = np.repeat(starts[frontier], counts) + offset
            ds = dst_s[e_idx]
            np.maximum.at(depth, ds, np.repeat(depth[frontier] + 1, counts))
            np.subtract.at(indeg, ds, 1)
            cand = np.unique(ds)
            frontier = cand[indeg[cand] == 0]
        if processed != n_nodes:
            return None  # dependency cycle: a genuine deadlock

    # Group by (depth, kind); groups are rank-disjoint within a level.
    # Node ids are assigned rank-major and the sort is stable, so
    # members sort by rank within a group; when a group covers every
    # rank, the index array is the identity permutation and a full
    # slice serves instead — the driver then reads/writes state views
    # in place, skipping the gather and scatter copies (the common
    # case: bulk-synchronous apps keep all ranks at the same depth).
    kind_arr = np.asarray(kinds, dtype=np.int64)
    rank_arr = np.asarray(ranks, dtype=np.int64)
    nmsg_arr = np.asarray(nmsg, dtype=np.int64)
    tr_arr = np.asarray([np.nan if t is None else t for t in msg_transfer],
                        dtype=np.float64)
    order = np.lexsort((kind_arr, depth))
    d_s = depth[order]
    k_s = kind_arr[order]
    if n_nodes:
        brk = np.flatnonzero((np.diff(d_s) != 0) | (np.diff(k_s) != 0))
        bounds = np.concatenate(([0], brk + 1, [n_nodes]))
    else:
        bounds = np.zeros(1, dtype=np.int64)
    identity = np.arange(n, dtype=np.int64)
    groups = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        members = order[a:b]
        k = int(k_s[a])
        if k == _K_COLL:
            for nid in members:
                groups.append((k, None, None, None, payloads[nid]))
            continue
        rr = rank_arr[members]
        mm = nmsg_arr[members]
        tt = (tr_arr[mm] if k in (_K_EAGER_SEND, _K_RECV_EAGER,
                                  _K_RDV_SEND, _K_WAIT_EAGER) else None)
        pl = ([(int(rank_arr[e]), payloads[e]) for e in members]
              if k == _K_COMPUTE else None)
        if np.array_equal(rr, identity):
            rr = slice(None)
        groups.append((k, rr, mm, tt, pl))

    return _Tape(groups, len(msg_transfer), n_events, n_messages, bytes_sent)


#: Tapes are structural — they depend only on ``(trace, net)``, never
#: on configurations — so they are shared across batches.  The key pins
#: the trace object itself (keeping its ``id`` valid for the entry's
#: lifetime); a ``None`` tape records that the trace needs the
#: worklist-driver fallback, so the failed build isn't repeated either.
#: The :func:`_order_free` scan is cached the same way.
_TAPE_CACHE: LruDict = LruDict(8, eviction_counter="replay.tape.evictions")
_ORDER_FREE_CACHE: LruDict = LruDict(
    64, eviction_counter="replay.tape.evictions")


def _order_free_cached(trace: BurstTrace, net: NetworkConfig) -> bool:
    key = (id(trace), net)
    entry = _ORDER_FREE_CACHE.get(key)
    if entry is not None and entry[0] is trace:
        return entry[1]
    free = _order_free(trace, net)
    _ORDER_FREE_CACHE[key] = (trace, free)
    return free


def _tape_for(trace: BurstTrace, net: NetworkConfig) -> Optional[_Tape]:
    key = (id(trace), net)
    entry = _TAPE_CACHE.get(key)
    if entry is not None and entry[0] is trace:
        return entry[1]
    tape = _build_tape(trace, net)
    _TAPE_CACHE[key] = (trace, tape)
    get_metrics().inc("replay.tape.builds")
    return tape


def _run_array(core: _LockstepCore, active: np.ndarray) -> np.ndarray:
    """Order-free driver: level-batched NumPy execution of the tape.

    Valid only under :func:`_order_free`.  Runs the identical float64
    operation sequence the scalar core performs per event — the
    redundant ``max(x, clock)`` clamps the scalar blocked/resumed paths
    apply are exact no-ops there (``x >= clock`` always holds at those
    points), so dropping them changes no bits.  Falls back to
    :func:`_run_shared` whenever the tape cannot be built.
    """
    tape = _tape_for(core.trace, core.net)
    if tape is None:
        return _run_shared(core, active)

    n, k_cols = core.n, core.n_cols
    net = core.net
    ov = net.overhead_ns
    clock = np.zeros((n, k_cols))
    link_free = np.zeros((n, k_cols))
    p2p = np.zeros((n, k_cols))
    comp = np.zeros((n, k_cols))
    coll = np.zeros((n, k_cols))
    arr_buf = np.zeros((tape.n_msgs, k_cols))
    post_buf = np.zeros((tape.n_msgs, k_cols))

    # Full groups (``rr`` is a whole-axis slice — the common case for
    # bulk-synchronous traces) *rebind* the state matrices to the fresh
    # result arrays instead of copying back through ``x[rr] = ...``; an
    # in-place update would stream every matrix twice (temporary +
    # write-back).  Rebinding is only valid when the group recomputes
    # every row, which is exactly what the slice marks.  Partial groups
    # keep the gather/scatter path; all rebound arrays are freshly
    # allocated and unshared, so their in-place row writes never alias.
    for kind, rr, mm, tt, pl in tape.groups:
        full = type(rr) is slice
        if kind == _K_COMPUTE:
            dur = np.empty((len(pl), k_cols))
            for j, (rank, ph) in enumerate(pl):
                d = np.asarray(core.phase_duration(rank, ph),
                               dtype=np.float64)
                if (d < 0).any():
                    raise ValueError("phase duration must be non-negative")
                dur[j] = d
            if full:
                clock = clock + dur
                comp = comp + dur
            else:
                clock[rr] = clock[rr] + dur
                comp[rr] = comp[rr] + dur
        elif kind == _K_EAGER_SEND:
            pre = clock[rr]
            ready = pre + ov
            start = np.maximum(ready, link_free[rr])
            arrival = start + tt[:, None]
            arr_buf[mm] = arrival
            if full:
                link_free = arrival
                clock = ready
                p2p = p2p + ov
            else:
                link_free[rr] = arrival
                clock[rr] = ready
                p2p[rr] = p2p[rr] + ov
        elif kind == _K_RECV_EAGER:
            pre = clock[rr]
            done = np.maximum(arr_buf[mm], pre + tt[:, None])
            if full:
                p2p = p2p + (done - pre)
                clock = done
            else:
                p2p[rr] = p2p[rr] + (done - pre)
                clock[rr] = done
        elif kind == _K_IRECV_POST:
            pre = clock[rr]
            post_buf[mm] = pre
            if full:
                clock = pre + ov
                p2p = p2p + ov
            else:
                clock[rr] = pre + ov
                p2p[rr] = p2p[rr] + ov
        elif kind == _K_RDV_POST:
            post_buf[mm] = clock[rr]
        elif kind == _K_RDV_SEND:
            pre = clock[rr]
            ready = pre + ov
            start = np.maximum(np.maximum(ready, post_buf[mm]),
                               link_free[rr])
            arrival = start + tt[:, None]
            arr_buf[mm] = arrival
            if full:
                link_free = arrival
                p2p = p2p + (start - pre)
                clock = start
            else:
                link_free[rr] = arrival
                p2p[rr] = p2p[rr] + (start - pre)
                clock[rr] = start
        elif kind == _K_RDV_COMPLETE:
            pre = clock[rr]
            arrival = arr_buf[mm]
            if full:
                p2p = p2p + (arrival - pre)
                clock = arrival
            else:
                p2p[rr] = p2p[rr] + (arrival - pre)
                clock[rr] = arrival
        elif kind == _K_WAIT_ARR:
            pre = clock[rr]
            done = np.maximum(arr_buf[mm], pre)
            if full:
                p2p = p2p + (done - pre)
                clock = done
            else:
                p2p[rr] = p2p[rr] + (done - pre)
                clock[rr] = done
        elif kind == _K_WAIT_EAGER:
            pre = clock[rr]
            value = np.maximum(arr_buf[mm], post_buf[mm] + tt[:, None])
            done = np.maximum(value, pre)
            if full:
                p2p = p2p + (done - pre)
                clock = done
            else:
                p2p[rr] = p2p[rr] + (done - pre)
                clock[rr] = done
        else:  # _K_COLL: enter clocks are frozen — every rank is parked
            ckind, size = pl
            cost = collective_cost_ns(ckind, n, size, net)
            done = clock.max(axis=0) + cost
            coll = coll + (done[None, :] - clock)
            clock = np.empty_like(clock)
            clock[:] = done

    for r in range(n):
        st = core.states[r]
        st.clock = clock[r]
        st.compute_ns = comp[r]
        st.p2p_ns = p2p[r]
        st.collective_ns = coll[r]
        st.done = True
    core.n_unfinished = 0
    core.n_steps = tape.n_events
    core.n_messages = tape.n_messages
    core.bytes_sent = tape.bytes_sent
    core.array_events = tape.n_events
    return active


def _run_shared(core: _LockstepCore, active: np.ndarray) -> np.ndarray:
    """Order-free driver: one shared run-until-blocked worklist pass.

    Valid only under :func:`_order_free`; then any structurally legal
    order yields each column's bit-exact scalar result, so no clocks
    are consulted for scheduling and no column ever diverges.  On a
    structural deadlock every column is handed to the scalar engine,
    which reproduces the scalar diagnostic.
    """
    states = core.states
    events = core.events
    ready = deque()
    for r in range(core.n):
        if events[r]:
            ready.append(r)
        else:
            states[r].done = True
            core.n_unfinished -= 1
    core.on_wake = ready.append

    step = core.step
    while ready:
        r = ready.popleft()
        st = states[r]
        n_ev = len(events[r])
        while True:
            if st.cursor >= n_ev:
                st.done = True
                core.n_unfinished -= 1
                break
            if not step(r):
                st.blocked = True
                break
            core.lockstep_events += 1

    if core.n_unfinished:
        return np.zeros_like(active)  # deadlock: scalar engine diagnoses
    return active


def _run_lockstep(core: _LockstepCore, active: np.ndarray) -> np.ndarray:
    """Drive the lockstep group to completion; returns the surviving
    active mask (peeled columns cleared).

    Each iteration reads the tournament-tree root: per column, the
    ready rank with the smallest ``(clock, rank)`` key.  Columns whose
    choice disagrees with the group's (the modal choice among active
    columns) are peeled; the group then steps its chosen rank once and
    refreshes that rank's leaf.  If *every* active column is peeled by
    a structural dead end (all ranks blocked — a genuine trace
    deadlock), the survivors are handed to the scalar engine too, which
    reproduces the scalar diagnostic exactly.
    """
    states = core.states
    events = core.events
    tree = _MinTree(core.n, core.n_cols)
    core.on_wake = lambda rank: tree.update(rank, states[rank].clock)
    for r in range(core.n):
        if events[r]:
            tree.update(r, states[r].clock)
        else:
            states[r].done = True
            core.n_unfinished -= 1
    lockstep_events = 0

    while core.n_unfinished:
        vals, args = tree.root()
        act_idx = np.flatnonzero(active)
        if act_idx.size == 0:
            break
        votes = args[act_idx]
        if np.isinf(vals[act_idx]).all():
            # Structural: every remaining rank is blocked in every
            # column.  Peel everyone; the scalar engine raises the
            # deadlock diagnostic per config.
            active = np.zeros_like(active)
            break
        r = int(votes[0])
        if not (votes == r).all():
            counts = np.bincount(votes, minlength=core.n)
            r = int(np.argmax(counts))
            peeled = active & (args != r)
            active = active & ~peeled
            if not active.any():
                break
        st = states[r]
        if core.step(r):
            lockstep_events += 1
            if st.cursor >= len(events[r]):
                st.done = True
                core.n_unfinished -= 1
                tree.update(r, np.inf)
            else:
                tree.update(r, st.clock)
        else:
            st.blocked = True
            tree.update(r, np.inf)
    core.lockstep_events = lockstep_events
    return active


def replay_batch(
    trace: BurstTrace,
    net: NetworkConfig,
    phase_duration: BatchPhaseDurationFn,
    n_configs: int,
    scalar_engine: str = "event",
    array_driver: bool = True,
) -> List[ReplayResult]:
    """Replay ``trace`` for ``n_configs`` configurations in one pass.

    ``phase_duration(rank, phase)`` returns the phase's duration as a
    float64 column over the configuration axis.  The result list holds
    one :class:`~repro.network.replay.ReplayResult` per configuration,
    bit-identical to ``replay(trace, net, scalar_fn_i, ...)`` with
    ``scalar_fn_i`` reading column ``i`` — for every configuration,
    whether it ran on the array tape, stayed in lockstep, or was peeled
    to the scalar engine (``scalar_engine`` picks which one finishes
    peeled columns).  ``array_driver=False`` keeps the order-free path
    on the event-at-a-time worklist driver — the PR4-era behaviour,
    retained for benchmarking and cross-checking.

    Counters: ``replay.batch.array_events`` (config-events priced by
    the level-batched array driver), ``replay.batch.lockstep_events``,
    ``replay.batch.peeled_configs``, and scalar-equivalent
    ``replay.events`` / ``replay.messages`` / ``replay.bus_waits``
    totals for the batched columns (peeled columns report through
    their scalar runs).
    """
    if n_configs <= 0:
        raise ValueError("n_configs must be positive")
    obs = get_metrics()
    core = _LockstepCore(trace, net, phase_duration, n_configs)
    if _order_free_cached(trace, net):
        driver = _run_array if array_driver else _run_shared
    else:
        driver = _run_lockstep
    with obs.span("replay.batch.run"):
        active = driver(core, np.ones(n_configs, dtype=bool))

    n_active = int(active.sum())
    obs.inc("replay.batch.lockstep_events", core.lockstep_events * n_active)
    obs.inc("replay.batch.array_events", core.array_events * n_active)
    if n_active:
        obs.inc("replay.events", core.n_steps * n_active)
        obs.inc("replay.messages", core.n_messages * n_active)
        bus_waits = int(core.buses.n_waits[active].sum())
        if bus_waits:
            obs.inc("replay.bus_waits", bus_waits)

    results: List[Optional[ReplayResult]] = [None] * n_configs
    if n_active:
        clock_m = np.stack([st.clock for st in core.states])
        comp_m = np.stack([st.compute_ns for st in core.states])
        p2p_m = np.stack([st.p2p_ns for st in core.states])
        coll_m = np.stack([st.collective_ns for st in core.states])
        total = clock_m.max(axis=0)
        for c in np.flatnonzero(active):
            results[c] = ReplayResult(
                total_ns=float(total[c]),
                compute_ns=comp_m[:, c].copy(),
                p2p_ns=p2p_m[:, c].copy(),
                collective_ns=coll_m[:, c].copy(),
                n_messages=core.n_messages,
                bytes_sent=core.bytes_sent,
            )

    peeled = np.flatnonzero(~active)
    if peeled.size:
        obs.inc("replay.batch.peeled_configs", int(peeled.size))
        for c in peeled:
            def column(rank: int, phase: ComputePhase, _c=int(c)) -> float:
                return phase_duration(rank, phase)[_c]

            results[c] = replay(trace, net, column, engine=scalar_engine)
    return results  # type: ignore[return-value]
