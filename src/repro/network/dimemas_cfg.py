"""Dimemas-style configuration files.

Dimemas reads machine descriptions from ``.cfg`` files; supporting the
same shape of file makes the network model configurable without code
and documents the mapping between our parameters and Dimemas's.  The
format here is the minimal key/value subset covering what the replay
engine models:

.. code-block:: ini

    # MareNostrum IV-like machine
    latency_us = 1.0
    bandwidth_gbs = 12.5
    cpu_overhead_us = 0.4
    n_buses = 0
    eager_threshold_bytes = 32768
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from .model import NetworkConfig

__all__ = ["load_network_cfg", "save_network_cfg"]

_FIELDS = {
    "latency_us": float,
    "bandwidth_gbs": float,
    "cpu_overhead_us": float,
    "n_buses": int,
    "eager_threshold_bytes": int,
}


def load_network_cfg(path: Union[str, Path]) -> NetworkConfig:
    """Parse a Dimemas-style cfg file into a :class:`NetworkConfig`.

    Unknown keys raise (typos should not silently produce a default
    machine); missing keys take the :class:`NetworkConfig` defaults
    where they exist and raise otherwise.
    """
    values: Dict[str, object] = {}
    text = Path(path).read_text(encoding="utf-8")
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ValueError(f"{path}:{lineno}: expected 'key = value', "
                             f"got {raw!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        if key not in _FIELDS:
            raise ValueError(
                f"{path}:{lineno}: unknown key {key!r} "
                f"(known: {sorted(_FIELDS)})")
        if key in values:
            raise ValueError(f"{path}:{lineno}: duplicate key {key!r}")
        try:
            values[key] = _FIELDS[key](value.strip())
        except ValueError as exc:
            raise ValueError(f"{path}:{lineno}: bad value for {key}: "
                             f"{value.strip()!r}") from exc
    required = {"latency_us", "bandwidth_gbs", "cpu_overhead_us"}
    missing = required - values.keys()
    if missing:
        raise ValueError(f"{path}: missing required keys {sorted(missing)}")
    return NetworkConfig(**values)  # type: ignore[arg-type]


def save_network_cfg(net: NetworkConfig, path: Union[str, Path],
                     comment: str = "") -> None:
    """Write a :class:`NetworkConfig` as a Dimemas-style cfg file."""
    lines = []
    if comment:
        lines.append(f"# {comment}")
    lines += [
        f"latency_us = {net.latency_us}",
        f"bandwidth_gbs = {net.bandwidth_gbs}",
        f"cpu_overhead_us = {net.cpu_overhead_us}",
        f"n_buses = {net.n_buses}",
        f"eager_threshold_bytes = {net.eager_threshold_bytes}",
    ]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
