"""Network and MPI replay models (Dimemas substitute)."""

from .collectives import collective_cost_ns
from .dimemas_cfg import load_network_cfg, save_network_cfg
from .model import NetworkConfig, marenostrum4_network
from .replay import ReplayResult, TimelineSegment, replay

__all__ = [
    "NetworkConfig",
    "ReplayResult",
    "TimelineSegment",
    "collective_cost_ns",
    "load_network_cfg",
    "marenostrum4_network",
    "replay",
    "save_network_cfg",
]
