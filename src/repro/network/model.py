"""Dimemas-style network model.

Dimemas abstracts the interconnect as: per-message latency, link
bandwidth, a per-call CPU overhead, and a finite number of "buses"
(simultaneous transfers) — no topology or routing.  The paper simulates
a network with bandwidth and latency similar to MareNostrum IV
(100 Gb/s Omni-Path, ~1 us MPI latency).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkConfig", "marenostrum4_network"]


@dataclass(frozen=True)
class NetworkConfig:
    """Abstract machine network (Dimemas CFG equivalent)."""

    latency_us: float            # end-to-end message latency
    bandwidth_gbs: float         # per-transfer link bandwidth
    cpu_overhead_us: float       # sender/receiver software overhead
    n_buses: int = 0             # simultaneous transfers; 0 = unlimited
    eager_threshold_bytes: int = 32 * 1024

    def __post_init__(self) -> None:
        if self.latency_us < 0 or self.cpu_overhead_us < 0:
            raise ValueError("latencies must be non-negative")
        if self.bandwidth_gbs <= 0:
            raise ValueError("bandwidth must be positive")
        if self.n_buses < 0:
            raise ValueError("n_buses must be non-negative")
        if self.eager_threshold_bytes < 0:
            raise ValueError("eager threshold must be non-negative")

    def transfer_ns(self, size_bytes: int) -> float:
        """Wire time of one message: latency + size / bandwidth."""
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return self.latency_us * 1e3 + size_bytes / self.bandwidth_gbs

    @property
    def overhead_ns(self) -> float:
        return self.cpu_overhead_us * 1e3

    def is_eager(self, size_bytes: int) -> bool:
        """Small messages are sent eagerly (sender does not block on the
        receiver); large ones use the rendezvous protocol."""
        return size_bytes <= self.eager_threshold_bytes


def marenostrum4_network() -> NetworkConfig:
    """Network with MareNostrum IV-like parameters (Sec. V-A).

    100 Gb/s Intel Omni-Path (~12.5 GB/s per link), ~1 us MPI p2p
    latency, sub-microsecond software overhead.
    """
    return NetworkConfig(
        latency_us=1.0,
        bandwidth_gbs=12.5,
        cpu_overhead_us=0.4,
        n_buses=0,
        eager_threshold_bytes=32 * 1024,
    )
