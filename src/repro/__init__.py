"""repro — MUSA reproduction: design-space exploration of next-generation
HPC machines (Gomez et al., IPDPS 2019).

A pure-Python reimplementation of the paper's entire toolchain:

* :mod:`repro.config`   — the Table I/II architectural design space;
* :mod:`repro.trace`    — two-level trace substrate (Extrae/DynamoRIO);
* :mod:`repro.apps`     — the five application models as trace generators;
* :mod:`repro.runtime`  — OmpSs/OpenMP runtime scheduling simulator;
* :mod:`repro.uarch`    — detailed core/cache/SIMD models (TaskSim);
* :mod:`repro.dram`     — DRAM timing and controllers (Ramulator);
* :mod:`repro.power`    — processor and DRAM power (McPAT/DRAMPower);
* :mod:`repro.network`  — MPI replay and network model (Dimemas);
* :mod:`repro.core`     — MUSA orchestration, sweeps and normalization;
* :mod:`repro.analysis` — PCA, timelines, scaling and figure rendering.

Quickstart::

    from repro import Musa, get_app, baseline_node
    musa = Musa(get_app("lulesh"))
    result = musa.simulate_node(baseline_node(n_cores=64))
    print(result.time_ns, result.power.total_w)
"""

from .apps import APP_NAMES, AppModel, all_apps, get_app
from .config import (
    DesignSpace,
    NodeConfig,
    baseline_node,
    full_design_space,
    unconventional_configs,
)
from .core import Musa, ResultSet, RunResult, normalize_axis, run_sweep

__version__ = "1.0.0"

__all__ = [
    "APP_NAMES",
    "AppModel",
    "DesignSpace",
    "Musa",
    "NodeConfig",
    "ResultSet",
    "RunResult",
    "all_apps",
    "baseline_node",
    "full_design_space",
    "get_app",
    "normalize_axis",
    "run_sweep",
    "unconventional_configs",
]
