"""Node power breakdown in the paper's figure components.

Figures 5b-9b split node power into three stacked components:
``Core+L1``, ``L2+L3Cache`` and ``Memory``.  :class:`PowerBreakdown`
carries that split plus energy-to-solution helpers.  HBM configurations
have no memory energy data; their breakdown carries ``None`` and
propagates it, as in the paper's Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PowerBreakdown"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Average node power (watts) split by component."""

    core_l1_w: float
    l2_l3_w: float
    memory_w: Optional[float]

    def __post_init__(self) -> None:
        if self.core_l1_w < 0 or self.l2_l3_w < 0:
            raise ValueError("power components must be non-negative")
        if self.memory_w is not None and self.memory_w < 0:
            raise ValueError("memory power must be non-negative")

    @property
    def total_w(self) -> Optional[float]:
        """Total node power; ``None`` when memory energy is unknown (HBM)."""
        if self.memory_w is None:
            return None
        return self.core_l1_w + self.l2_l3_w + self.memory_w

    @property
    def known_total_w(self) -> float:
        """Total over the components with known power (for HBM configs)."""
        return self.core_l1_w + self.l2_l3_w + (self.memory_w or 0.0)

    def energy_j(self, runtime_s: float) -> Optional[float]:
        """Energy-to-solution in joules; ``None`` without memory data."""
        if runtime_s < 0:
            raise ValueError("runtime must be non-negative")
        total = self.total_w
        return None if total is None else total * runtime_s

    def fraction(self, component: str) -> Optional[float]:
        """Share of a component ('core_l1', 'l2_l3', 'memory') in the total."""
        total = self.total_w
        if total is None or total == 0:
            return None
        value = {
            "core_l1": self.core_l1_w,
            "l2_l3": self.l2_l3_w,
            "memory": self.memory_w,
        }[component]
        return value / total

    def scaled(self, factor: float) -> "PowerBreakdown":
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return PowerBreakdown(
            core_l1_w=self.core_l1_w * factor,
            l2_l3_w=self.l2_l3_w * factor,
            memory_w=None if self.memory_w is None else self.memory_w * factor,
        )

    def __add__(self, other: "PowerBreakdown") -> "PowerBreakdown":
        mem = (
            None
            if self.memory_w is None or other.memory_w is None
            else self.memory_w + other.memory_w
        )
        return PowerBreakdown(
            core_l1_w=self.core_l1_w + other.core_l1_w,
            l2_l3_w=self.l2_l3_w + other.l2_l3_w,
            memory_w=mem,
        )
