"""DRAM power model (DRAMPower substitute).

DRAMPower integrates per-command energies over a Ramulator command
trace; we do the same from command *rates* (the sweep) or from a
:class:`~repro.dram.controller.CommandCounts` record (the event-level
path).  Energy coefficients follow Micron single-rank DDR4-2400 RDIMM
datasheets, as the paper configures (Sec. IV-C); per-DIMM background
power makes populated channel count matter (~2x DRAM power from 4 to 8
channels, Fig. 8b).

HBM has no public energy data; as in the paper, energy queries for HBM
configurations return ``None`` (MEM++ rows of Fig. 11 report no energy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config.memory import MemoryConfig
from ..dram.controller import CommandCounts

__all__ = ["DramPowerModel", "DramPowerResult"]


@dataclass(frozen=True)
class DramPowerResult:
    """Average DRAM power split into components (watts)."""

    background_w: float
    activate_w: float
    rdwr_w: float
    refresh_w: float

    @property
    def total_w(self) -> float:
        return (self.background_w + self.activate_w + self.rdwr_w
                + self.refresh_w)


@dataclass(frozen=True)
class DramPowerModel:
    """Energy coefficients for DDR4-2400 single-rank 8 GB RDIMMs."""

    #: average background power per DIMM (precharge/active standby mix,
    #: CKE mostly high in servers)
    background_w_per_dimm: float = 0.75
    #: ACT+PRE pair energy (IDD0-derived)
    e_act_nj: float = 22.0
    #: energy per 64-byte read burst (core + I/O + termination)
    e_rd_nj: float = 13.0
    #: energy per 64-byte write burst
    e_wr_nj: float = 14.0
    #: refresh adder as a fraction of background
    refresh_fraction: float = 0.06

    def from_rates(
        self,
        memory: MemoryConfig,
        reads_per_s: float,
        writes_per_s: float,
        row_hit_rate: float,
    ) -> Optional[DramPowerResult]:
        """Average DRAM power for steady command rates.

        Returns ``None`` when the memory technology has no energy data
        (HBM), mirroring the paper's MEM++ treatment.
        """
        if not memory.energy_data_available:
            return None
        if reads_per_s < 0 or writes_per_s < 0:
            raise ValueError("rates must be non-negative")
        if not 0.0 <= row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be in [0, 1]")
        n_col = reads_per_s + writes_per_s
        acts_per_s = n_col * (1.0 - row_hit_rate)
        background = memory.total_dimms * self.background_w_per_dimm
        return DramPowerResult(
            background_w=background,
            activate_w=acts_per_s * self.e_act_nj * 1e-9,
            rdwr_w=(reads_per_s * self.e_rd_nj + writes_per_s * self.e_wr_nj)
            * 1e-9,
            refresh_w=background * self.refresh_fraction,
        )

    def from_counts(
        self,
        memory: MemoryConfig,
        counts: CommandCounts,
        elapsed_s: float,
    ) -> Optional[DramPowerResult]:
        """Average DRAM power from an event-level command trace."""
        if elapsed_s <= 0:
            raise ValueError("elapsed_s must be positive")
        if not memory.energy_data_available:
            return None
        background = memory.total_dimms * self.background_w_per_dimm
        return DramPowerResult(
            background_w=background,
            activate_w=counts.n_act * self.e_act_nj * 1e-9 / elapsed_s,
            rdwr_w=(counts.n_rd * self.e_rd_nj + counts.n_wr * self.e_wr_nj)
            * 1e-9 / elapsed_s,
            refresh_w=background * self.refresh_fraction,
        )
