"""Process-technology scaling (22nm, as in the paper's McPAT setup).

The paper feeds McPAT voltage values matched to each frequency step for
a 22nm process (Sec. V-B5).  We model a linear V/f operating curve and
the standard scaling laws: dynamic power ~ f * V^2, leakage ~ V (weakly
super-linear DIBL effects folded into the exponent).
"""

from __future__ import annotations

__all__ = [
    "VREF",
    "FREF_GHZ",
    "voltage_for_frequency",
    "dynamic_scale",
    "leakage_scale",
]

#: Reference operating point: 2.0 GHz at 0.90 V (all per-event energies
#: and leakage powers in the McPAT substitute are calibrated here).
VREF = 0.90
FREF_GHZ = 2.0

_V_BASE = 0.70
_V_SLOPE = 0.10  # V per GHz


def voltage_for_frequency(f_ghz: float) -> float:
    """Supply voltage required for frequency ``f_ghz`` on the 22nm curve.

    1.5 GHz -> 0.85 V, 2.0 -> 0.90 V, 2.5 -> 0.95 V, 3.0 -> 1.00 V.
    Together with the f*V^2 dynamic law this yields the paper's ~2.5x
    power increase for the 1.5 -> 3.0 GHz doubling (Sec. V-B5).
    """
    if f_ghz <= 0:
        raise ValueError("frequency must be positive")
    return _V_BASE + _V_SLOPE * f_ghz


def dynamic_scale(f_ghz: float) -> float:
    """Dynamic-power multiplier vs the reference point (f * V^2 law).

    Note this scales *power for a fixed activity rate per cycle*; the
    per-event energy multiplier is just (V/VREF)^2.
    """
    v = voltage_for_frequency(f_ghz)
    return (f_ghz / FREF_GHZ) * (v / VREF) ** 2


def energy_scale(f_ghz: float) -> float:
    """Per-event dynamic energy multiplier vs the reference voltage."""
    v = voltage_for_frequency(f_ghz)
    return (v / VREF) ** 2


def leakage_scale(f_ghz: float) -> float:
    """Leakage-power multiplier vs the reference point.

    Sub-threshold leakage grows a bit faster than linearly with V;
    exponent 1.8 matches the McPAT 22nm corner reasonably.
    """
    v = voltage_for_frequency(f_ghz)
    return (v / VREF) ** 1.8
