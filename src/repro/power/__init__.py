"""Power models (McPAT + DRAMPower substitutes, 22nm technology)."""

from .area import AreaModel, NodeArea
from .breakdown import PowerBreakdown
from .drampower import DramPowerModel, DramPowerResult
from .dvfs import DvfsPoint, DvfsSelection, select_frequency
from .mcpat import CorePower, McPatModel
from .technology import (
    FREF_GHZ,
    VREF,
    dynamic_scale,
    energy_scale,
    leakage_scale,
    voltage_for_frequency,
)

__all__ = [
    "AreaModel",
    "CorePower",
    "DramPowerModel",
    "DramPowerResult",
    "DvfsPoint",
    "DvfsSelection",
    "FREF_GHZ",
    "McPatModel",
    "NodeArea",
    "PowerBreakdown",
    "VREF",
    "dynamic_scale",
    "energy_scale",
    "leakage_scale",
    "select_frequency",
    "voltage_for_frequency",
]
