"""Processor power model (McPAT substitute).

Per-structure accounting at a 22nm reference point (0.90 V):

* **dynamic** energy per event — front-end/rename/ROB energy per
  instruction (growing with OoO aggressiveness), ALU and FPU energy per
  operation (FPU energy and area scale with SIMD width), cache energy
  per access at each level;
* **leakage** power per structure — core logic scaled by the OoO class,
  FPU lanes, and SRAM leakage proportional to cache capacity.

Calibrated against the paper's observed power structure: Core+L1 power
+~60% going 128->512 bit (Fig. 5b), low-end cores ~50% of aggressive
(Fig. 7b), L2+L3 reaching ~20% of node power at 96 MB (Fig. 6b), and
~2.5x node power from 1.5 to 3.0 GHz (Fig. 9b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..config.cache import MIB
from ..config.node import NodeConfig
from ..uarch.core_model import KernelTiming
from .technology import energy_scale, leakage_scale

__all__ = ["McPatModel", "CorePower"]


@dataclass(frozen=True)
class CorePower:
    """Average power of one core (and its cache slices), in watts."""

    core_l1_dynamic_w: float
    core_l1_leakage_w: float
    l2_l3_dynamic_w: float

    @property
    def core_l1_w(self) -> float:
        return self.core_l1_dynamic_w + self.core_l1_leakage_w


@dataclass(frozen=True)
class McPatModel:
    """Per-event energies (nJ) and leakage powers (W) at 0.90 V / 22nm."""

    # Front-end + rename + ROB + commit energy per instruction for a
    # baseline in-order-ish pipeline; the OoO window multiplier scales it.
    e_instr_base_nj: float = 0.26
    #: additional per-instruction energy at full aggressive OoO capability
    e_instr_ooo_nj: float = 0.40
    e_int_op_nj: float = 0.10
    #: energy per *scalar-equivalent* double-precision flop; a fused
    #: vector op of L lanes costs L times this less a 15% amortization.
    e_flop_nj: float = 0.52
    e_l1_access_nj: float = 0.08
    e_l2_access_nj: float = 0.35
    e_l3_access_nj: float = 1.40
    #: vector register/datapath overhead per fused vector instruction
    vector_amortization: float = 0.85
    #: per-lane datapath energy growth of wide FPUs: each 64-bit lane
    #: beyond the 128-bit baseline adds this fraction to per-flop energy
    #: (wide units are less energy-proportional than narrow ones)
    fpu_width_energy_factor: float = 0.18
    #: busy-wait power of an idle core at the 2 GHz reference point —
    #: OpenMP/OmpSs worker threads spin-poll for work, so starved cores
    #: burn dynamic power too (Sec. V's underutilization argument)
    idle_spin_w_ref: float = 1.05

    def flop_energy_factor(self, node: NodeConfig) -> float:
        """Per-flop energy multiplier from the physical FPU width."""
        return max(0.85, 1.0 + self.fpu_width_energy_factor
                   * (node.vector_lanes - 2))

    def idle_spin_w(self, node: NodeConfig) -> float:
        """Dynamic power of one spin-waiting idle core."""
        from .technology import dynamic_scale

        return self.idle_spin_w_ref * dynamic_scale(node.frequency_ghz)

    # Leakage at reference voltage.
    leak_core_base_w: float = 0.10
    leak_core_ooo_w: float = 0.28       # at full aggressive capability
    leak_per_fpu_lane_w: float = 0.030  # per FPU per 64-bit lane
    leak_l1_w: float = 0.04
    leak_sram_w_per_mb: float = 0.18    # L2/L3 SRAM arrays

    # -- leakage -------------------------------------------------------------

    def core_l1_leakage_w(self, node: NodeConfig) -> float:
        """Leakage of one core + its L1, at the node's voltage.

        Burned whether the core is busy or idle — underutilized nodes
        waste exactly this (the paper's co-design conclusion).
        """
        cap = node.core.window_capability
        lanes = node.vector_lanes
        base = (
            self.leak_core_base_w
            + self.leak_core_ooo_w * cap
            + self.leak_per_fpu_lane_w * node.core.n_fpu * lanes
            + self.leak_l1_w
        )
        return base * leakage_scale(node.frequency_ghz)

    def l2_l3_leakage_w(self, node: NodeConfig) -> float:
        """Leakage of the node's whole L2+L3 SRAM capacity."""
        l2_total = node.cache.l2.size_bytes * node.n_cores
        l3_total = node.cache.l3.size_bytes
        mb = (l2_total + l3_total) / MIB
        return mb * self.leak_sram_w_per_mb * leakage_scale(node.frequency_ghz)

    # -- dynamic -------------------------------------------------------------

    def dynamic_energy_j(
        self,
        node: NodeConfig,
        instructions: float,
        scalar_flops: float,
        l1_accesses: float,
        l2_accesses: float,
        l3_accesses: float,
        effective_lanes: float = 1.0,
    ) -> Tuple[float, float]:
        """Dynamic energy (joules) for given event totals.

        Returns ``(core_l1_j, l2_l3_j)``.  FPU energy is charged per
        *scalar-equivalent* flop (fusion does not change arithmetic work
        done) with an amortization discount for fused control.
        """
        if min(instructions, scalar_flops, l1_accesses, l2_accesses,
               l3_accesses) < 0:
            raise ValueError("event counts must be non-negative")
        escale = energy_scale(node.frequency_ghz)
        cap = node.core.window_capability
        e_instr = self.e_instr_base_nj + self.e_instr_ooo_nj * cap
        amort = self.vector_amortization if effective_lanes > 1.0 else 1.0
        e_flop = self.e_flop_nj * amort * self.flop_energy_factor(node)
        other_ops = max(0.0, instructions - scalar_flops - l1_accesses)
        core_l1_nj = (
            instructions * e_instr
            + scalar_flops * e_flop
            + other_ops * self.e_int_op_nj * 0.5
            + l1_accesses * self.e_l1_access_nj
        )
        l2_l3_nj = (
            l2_accesses * self.e_l2_access_nj
            + l3_accesses * self.e_l3_access_nj
        )
        return core_l1_nj * 1e-9 * escale, l2_l3_nj * 1e-9 * escale

    def busy_core_power(self, timing: KernelTiming,
                        node: NodeConfig) -> CorePower:
        """Average power of one core while executing ``timing``'s kernel."""
        cycles = timing.cycles
        if cycles <= 0:
            raise ValueError("timing has zero cycles")
        seconds_per_unit = cycles / (node.frequency_ghz * 1e9)
        core_j, l2l3_j = self.dynamic_energy_j(
            node,
            instructions=timing.instructions,
            scalar_flops=timing.scalar_flops,
            l1_accesses=timing.l1_accesses,
            l2_accesses=timing.l2_accesses,
            l3_accesses=timing.l3_accesses,
            effective_lanes=timing.vectorization.effective_lanes,
        )
        return CorePower(
            core_l1_dynamic_w=core_j / seconds_per_unit,
            core_l1_leakage_w=self.core_l1_leakage_w(node),
            l2_l3_dynamic_w=l2l3_j / seconds_per_unit,
        )
