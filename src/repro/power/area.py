"""Silicon area model (the 'A' in McPAT).

McPAT reports area alongside power; architects use it to reason about
die cost and about what a design point spends its transistor budget on.
We model per-structure areas at 22nm with the same scaling knobs as the
power model: OoO window structures grow superlinearly with capability,
FPUs grow linearly with lane count, SRAM grows linearly with capacity.

These are first-order numbers (a 22nm server core is a few mm^2, SRAM
is ~1.1 mm^2 per MB with overheads) — good for *relative* comparisons
across the design space, which is all the co-design analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.cache import MIB
from ..config.node import NodeConfig

__all__ = ["AreaModel", "NodeArea"]


@dataclass(frozen=True)
class NodeArea:
    """Area breakdown of one socket, in mm^2."""

    cores_mm2: float
    l2_mm2: float
    l3_mm2: float
    uncore_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.cores_mm2 + self.l2_mm2 + self.l3_mm2 + self.uncore_mm2

    @property
    def cache_fraction(self) -> float:
        t = self.total_mm2
        return (self.l2_mm2 + self.l3_mm2) / t if t > 0 else 0.0


@dataclass(frozen=True)
class AreaModel:
    """Per-structure area coefficients at 22nm."""

    #: in-order-ish pipeline skeleton (fetch/decode/L1s/TLBs)
    core_base_mm2: float = 1.6
    #: additional area at full aggressive OoO capability (ROB, schedulers,
    #: rename, big register files); quadratic-ish growth folded linearly
    #: into window_capability, which is itself an average of the knobs.
    core_ooo_mm2: float = 2.4
    #: per 64-bit FPU lane (datapath + its register-file slice)
    fpu_lane_mm2: float = 0.16
    #: SRAM density including tags/ECC/periphery
    sram_mm2_per_mb: float = 1.15
    #: memory controllers, on-chip fabric, IO — grows with channel count
    uncore_base_mm2: float = 18.0
    uncore_per_channel_mm2: float = 3.2

    def core_mm2(self, node: NodeConfig) -> float:
        """Area of one core (excluding its L2 slice)."""
        cap = node.core.window_capability
        lanes = node.vector_lanes
        return (self.core_base_mm2 + self.core_ooo_mm2 * cap
                + self.fpu_lane_mm2 * node.core.n_fpu * lanes)

    def node_area(self, node: NodeConfig) -> NodeArea:
        """Area breakdown of the whole socket."""
        l2_total_mb = node.cache.l2.size_bytes * node.n_cores / MIB
        l3_total_mb = node.cache.l3.size_bytes / MIB
        return NodeArea(
            cores_mm2=self.core_mm2(node) * node.n_cores,
            l2_mm2=l2_total_mb * self.sram_mm2_per_mb,
            l3_mm2=l3_total_mb * self.sram_mm2_per_mb,
            uncore_mm2=(self.uncore_base_mm2
                        + self.uncore_per_channel_mm2
                        * node.memory.n_channels),
        )
