"""Power-capped frequency selection (DVFS co-design).

Sec. V-B5 closes with "frequency is a key aspect to consider and
balance" — operators run sockets under power caps and want the fastest
frequency that fits.  Given an application, a node template and a cap,
this module sweeps the frequency axis and returns the best feasible
point under a chosen objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..config.node import FREQUENCIES_GHZ, NodeConfig

__all__ = ["DvfsPoint", "DvfsSelection", "select_frequency"]


@dataclass(frozen=True)
class DvfsPoint:
    """One frequency's outcome for the workload."""

    frequency_ghz: float
    time_ns: float
    power_w: float
    energy_j: Optional[float]
    feasible: bool


@dataclass(frozen=True)
class DvfsSelection:
    """The frequency sweep plus the selected operating point."""

    points: Tuple[DvfsPoint, ...]
    power_cap_w: Optional[float]
    objective: str
    selected: Optional[DvfsPoint]

    def point(self, frequency_ghz: float) -> DvfsPoint:
        for p in self.points:
            if p.frequency_ghz == frequency_ghz:
                return p
        raise KeyError(f"no point at {frequency_ghz} GHz")


def select_frequency(
    musa,
    node: NodeConfig,
    power_cap_w: Optional[float] = None,
    objective: str = "performance",
    frequencies: Sequence[float] = FREQUENCIES_GHZ,
) -> DvfsSelection:
    """Pick the best frequency for ``musa``'s application on ``node``.

    Parameters
    ----------
    power_cap_w:
        Node power budget; ``None`` means unconstrained.
    objective:
        ``"performance"`` (min time), ``"energy"`` (min energy), or
        ``"edp"`` (min energy-delay product).  Energy objectives skip
        points without energy data.
    """
    if objective not in ("performance", "energy", "edp"):
        raise ValueError("objective must be performance, energy, or edp")
    if not frequencies:
        raise ValueError("need at least one frequency")
    if power_cap_w is not None and power_cap_w <= 0:
        raise ValueError("power cap must be positive")

    points = []
    for f in sorted(frequencies):
        r = musa.simulate_node(node.with_(frequency_ghz=f))
        power = r.power.known_total_w
        feasible = power_cap_w is None or power <= power_cap_w
        points.append(DvfsPoint(
            frequency_ghz=f,
            time_ns=r.time_ns,
            power_w=power,
            energy_j=r.energy_j,
            feasible=feasible,
        ))

    candidates = [p for p in points if p.feasible]
    if objective in ("energy", "edp"):
        candidates = [p for p in candidates if p.energy_j is not None]
    selected: Optional[DvfsPoint] = None
    if candidates:
        if objective == "performance":
            selected = min(candidates, key=lambda p: p.time_ns)
        elif objective == "energy":
            selected = min(candidates, key=lambda p: p.energy_j)
        else:
            selected = min(candidates,
                           key=lambda p: p.energy_j * p.time_ns)
    return DvfsSelection(points=tuple(points), power_cap_w=power_cap_w,
                         objective=objective, selected=selected)
