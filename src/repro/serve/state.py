"""Sweep-as-a-service query engine: store-backed, singleflight, warm.

:class:`ServeState` is the transport-independent heart of ``repro
serve``: it answers design-space queries from the content-addressed
:class:`~repro.core.store.ResultStore`, evaluating only the design
points the store has never seen.  Three invariants make it safe to put
in front of the engine:

* **store hits never touch the engine** — a fully-cached query is
  assembled from stored records without building a trace, running a
  phase simulation or a replay (the tests pin this with engine
  counters);
* **bit-identity** — the unit of storage is one ``(app, config, mode,
  ranks, code_version)`` point, evaluated by the same
  :class:`~repro.core.batch.BatchEvaluator` the sweep engine uses.
  Batched evaluation is bitwise-identical to scalar simulation
  regardless of grouping, so a response assembled from any mix of
  stored and fresh points equals a direct
  :func:`~repro.core.sweep.run_sweep` of the same query — record for
  record, bit for bit;
* **singleflight** — concurrent identical queries coalesce onto one
  evaluation; followers wait for the leader's response instead of
  racing the engine (``serve.singleflight.coalesced`` counts them).

Warm state is shared across requests: one :class:`BatchEvaluator` per
application (its phase-detail and batch-signature memos persist), plus
the process-global trace and replay-tape caches.  A single engine lock
serializes evaluation — the engine's memos and the obs registry are
not re-entrant, and queries differing in content don't share work
anyway.

Query shapes (plain dicts, the HTTP layer passes JSON bodies through):

``{"kind": "sweep", "apps": [...], "subset": {axis: value-or-list},
   "space": "full"|"smoke", "mode": "fast"|"replay", "ranks": N}``
    The records for every (app, config) in the (restricted) space, in
    canonical sweep order.

``{"kind": "best", ..., "objective": "time_ns"|"energy_j"|"edp"|...,
   "power_cap_w": W, "area_cap_mm2": A, "min_frequency_ghz": F,
   "energy_cap_j": J}``
    The constrained optimum over the same records, via
    :func:`~repro.analysis.optimize.optimize_node`.

``{"kind": "delta", "axis": <axis>, "a": <value>, "b": <value>, ...}``
    Paired comparison of two hierarchies (two values of one axis, all
    other axes swept): per-pair ratios and per-app geometric means.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.optimize import Constraints, optimize_node
from ..apps import APP_NAMES, get_app
from ..config.space import (
    AXES,
    DesignSpace,
    full_design_space,
    smoke_design_space,
)
from ..core.batch import BatchEvaluator
from ..core.canon import content_digest
from ..core.musa import Musa
from ..core.results import ResultSet
from ..core.store import ResultStore, store_keys_batch
from ..obs import get_metrics

__all__ = ["QueryError", "ServeState"]


class QueryError(ValueError):
    """A malformed or unanswerable query (HTTP 400, not a server bug)."""


class _Flight:
    """One in-flight query: followers wait on the leader's outcome."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Optional[Dict] = None
        self.error: Optional[BaseException] = None


class ServeState:
    """Shared server state: store, warm evaluators, in-flight queries."""

    def __init__(self, store: ResultStore, code_version: str,
                 engine: str = "batch") -> None:
        self.store = store
        self.code_version = code_version
        self.engine = engine
        self.started_s = time.time()
        self._engine_lock = threading.Lock()
        self._evaluators: Dict[str, BatchEvaluator] = {}
        self._flights: Dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()

    # -- singleflight front door ----------------------------------------------

    def handle(self, query: Dict) -> Dict:
        """Answer one query, coalescing concurrent identical ones.

        The canonical digest of the *normalized* query identifies a
        flight, so requests that differ only in dict ordering or
        omitted defaults still share one evaluation.
        """
        get_metrics().inc("serve.requests")
        norm = self._normalize(query)
        digest = content_digest(norm)
        with self._flights_lock:
            flight = self._flights.get(digest)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[digest] = flight
        if not leader:
            get_metrics().inc("serve.singleflight.coalesced")
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.response
        try:
            flight.response = self._answer(norm)
            return flight.response
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            with self._flights_lock:
                self._flights.pop(digest, None)
            flight.event.set()

    def invalidate(self, criteria: Dict) -> int:
        """Selective store invalidation (``{"app": ..., "mode": ...,
        "code_version": ...}``; ``{"stale": true}`` drops every entry
        not produced by this server's code version; ``{"all": true}``
        drops everything)."""
        crit = dict(criteria or {})
        if crit.pop("stale", False):
            return self.store.invalidate_stale(self.code_version)
        if crit.pop("all", False):
            return self.store.invalidate()
        allowed = {"app", "mode", "code_version"}
        unknown = set(crit) - allowed
        if unknown:
            raise QueryError(f"unknown invalidation fields {sorted(unknown)}; "
                             f"allowed: {sorted(allowed)}, 'stale', 'all'")
        if not crit:
            raise QueryError("empty invalidation; pass criteria, "
                             "'stale': true, or 'all': true")
        return self.store.invalidate(**crit)

    # -- query normalization --------------------------------------------------

    def _normalize(self, query: Dict) -> Dict:
        if not isinstance(query, dict):
            raise QueryError("query must be a JSON object")
        kind = query.get("kind")
        if kind not in ("sweep", "best", "delta"):
            raise QueryError(
                f"unknown query kind {kind!r}; expected sweep|best|delta")
        apps = list(query.get("apps") or APP_NAMES)
        for app in apps:
            if app not in APP_NAMES:
                raise QueryError(f"unknown app {app!r}; known: {APP_NAMES}")
        mode = query.get("mode", "fast")
        if mode not in ("fast", "replay"):
            raise QueryError(f"mode must be fast|replay, got {mode!r}")
        space = query.get("space", "full")
        if space not in ("full", "smoke"):
            raise QueryError(f"space must be full|smoke, got {space!r}")
        ranks = int(query.get("ranks", 256))
        if ranks < 1:
            raise QueryError("ranks must be >= 1")
        subset = dict(query.get("subset") or {})
        for axis in subset:
            if axis not in AXES:
                raise QueryError(f"unknown axis {axis!r}; valid axes: {AXES}")
        norm = {"kind": kind, "apps": apps, "mode": mode, "space": space,
                "ranks": ranks, "subset": subset,
                "code_version": self.code_version}
        if kind == "best":
            norm["objective"] = query.get("objective", "time_ns")
            for f in ("power_cap_w", "area_cap_mm2", "min_frequency_ghz",
                      "energy_cap_j"):
                v = query.get(f)
                norm[f] = None if v is None else float(v)
        elif kind == "delta":
            axis = query.get("axis")
            if axis not in AXES:
                raise QueryError(
                    f"delta needs 'axis' (one of {AXES}), got {axis!r}")
            if axis in subset:
                raise QueryError(f"delta axis {axis!r} cannot also be "
                                 "pinned in 'subset'")
            if "a" not in query or "b" not in query:
                raise QueryError("delta needs 'a' and 'b' axis values")
            norm["axis"] = axis
            norm["a"] = query["a"]
            norm["b"] = query["b"]
        return norm

    def _space(self, norm: Dict, extra: Optional[Dict] = None) -> DesignSpace:
        base = (smoke_design_space() if norm["space"] == "smoke"
                else full_design_space())
        fixed = dict(norm["subset"])
        fixed.update(extra or {})
        try:
            return base.restrict(**fixed) if fixed else base
        except (KeyError, ValueError) as exc:
            raise QueryError(str(exc)) from exc

    # -- evaluation -----------------------------------------------------------

    def _evaluator(self, app_name: str) -> BatchEvaluator:
        if app_name not in self._evaluators:
            self._evaluators[app_name] = BatchEvaluator(
                Musa(get_app(app_name)))
        return self._evaluators[app_name]

    def _sweep_records(self, norm: Dict,
                       space: Optional[DesignSpace] = None
                       ) -> Tuple[List[Dict], Dict[str, int]]:
        """Records for every (app, config) of the query, in canonical
        sweep order (app-major, then space row-major) — exactly
        :func:`run_sweep`'s result order.

        Store hits are returned as stored; only misses are evaluated,
        one batched engine call per app, and written back with
        provenance.
        """
        space = space if space is not None else self._space(norm)
        mode, ranks = norm["mode"], norm["ranks"]
        nodes = space.configs()
        axes = [node.axis_values() for node in nodes]
        # Vectorized content addressing: one fragment-spliced key render
        # per point instead of a dict build + canonical serialization
        # (bit-identical to store_key, pinned by the store tests).
        keys = {}
        for app in norm["apps"]:
            for i, key in enumerate(store_keys_batch(
                    app, axes, mode, ranks, self.code_version)):
                keys[(app, i)] = key

        records: Dict[Tuple[str, int], Dict] = {}
        misses: Dict[str, List[int]] = {}
        hits = 0
        for (app, i), key in keys.items():
            entry = self.store.get(key)
            if entry is not None:
                records[(app, i)] = entry["record"]
                hits += 1
            else:
                misses.setdefault(app, []).append(i)

        evaluated = 0
        if misses:
            with self._engine_lock:
                reg = get_metrics()
                for app, idxs in misses.items():
                    before = reg.snapshot()
                    frame = self._evaluator(app).evaluate_frame(
                        [nodes[i] for i in idxs], n_ranks=ranks, mode=mode)
                    delta = reg.delta(before, reg.snapshot())
                    evaluated += len(idxs)
                    # Whole-batch counter deltas, attributed to each
                    # entry of the batch: enough to audit *what kind* of
                    # engine work produced it (phase sims, replay
                    # events), cheap enough to store per point.
                    prov = {"engine": self.engine,
                            "created_s": time.time(),
                            "batch_size": len(idxs),
                            "obs": delta.get("counters", {})}
                    # One columnar block line stores the whole batch;
                    # its vectorized keys match keys[(app, i)] exactly.
                    self.store.put_frame(frame, mode, ranks,
                                         self.code_version, prov)
                    for j, i in enumerate(idxs):
                        records[(app, i)] = frame.row(j)

        ordered = [records[(app, i)] for app in norm["apps"]
                   for i in range(len(nodes))]
        served = {"store_hits": hits, "evaluated": evaluated,
                  "points": len(ordered)}
        return ordered, served

    # -- answers --------------------------------------------------------------

    def _answer(self, norm: Dict) -> Dict:
        get_metrics().inc(f"serve.query.{norm['kind']}")
        handler = {"sweep": self._q_sweep, "best": self._q_best,
                   "delta": self._q_delta}[norm["kind"]]
        result, served = handler(norm)
        served["code_version"] = self.code_version
        return {"ok": True, "kind": norm["kind"], "result": result,
                "served": served}

    def _q_sweep(self, norm: Dict) -> Tuple[Dict, Dict]:
        records, served = self._sweep_records(norm)
        return {"records": records}, served

    def _q_best(self, norm: Dict) -> Tuple[Dict, Dict]:
        records, served = self._sweep_records(norm)
        results = ResultSet(records)
        cap_j = norm.get("energy_cap_j")
        if cap_j is not None:
            results = results.filter(
                lambda r: r.get("energy_j") is not None
                and r["energy_j"] <= cap_j)
        cons = Constraints(power_cap_w=norm.get("power_cap_w"),
                           area_cap_mm2=norm.get("area_cap_mm2"),
                           min_frequency_ghz=norm.get("min_frequency_ghz"))
        try:
            choice = optimize_node(results, objective=norm["objective"],
                                   constraints=cons, apps=norm["apps"])
        except ValueError as exc:
            raise QueryError(str(exc)) from exc
        result = {"config": choice.config, "label": choice.label,
                  "objective": choice.objective, "score": choice.score,
                  "per_app": choice.per_app,
                  "n_feasible": choice.n_feasible}
        return result, served

    def _q_delta(self, norm: Dict) -> Tuple[Dict, Dict]:
        axis, val_a, val_b = norm["axis"], norm["a"], norm["b"]
        space_a = self._space(norm, {axis: val_a})
        space_b = self._space(norm, {axis: val_b})
        recs_a, served_a = self._sweep_records(norm, space_a)
        recs_b, served_b = self._sweep_records(norm, space_b)
        # Both spaces iterate the non-delta axes in the same row-major
        # order, so records pair positionally.
        pairs = []
        by_app: Dict[str, List[float]] = {}
        for ra, rb in zip(recs_a, recs_b):
            if ra.get("failed") or rb.get("failed"):
                continue
            speedup = (ra["time_ns"] / rb["time_ns"]
                       if rb["time_ns"] else None)
            energy_ratio = None
            if ra.get("energy_j") and rb.get("energy_j"):
                energy_ratio = rb["energy_j"] / ra["energy_j"]
            pairs.append({
                "app": ra["app"],
                "config": {k: ra[k] for k in
                           ("core", "cache", "memory", "frequency",
                            "vector", "cores") if k != axis},
                "time_ns_a": ra["time_ns"], "time_ns_b": rb["time_ns"],
                "speedup_b_over_a": speedup,
                "energy_ratio_b_over_a": energy_ratio,
            })
            if speedup:
                by_app.setdefault(ra["app"], []).append(speedup)
        summary = {app: float(np.exp(np.mean(np.log(v))))
                   for app, v in sorted(by_app.items())}
        result = {"axis": axis, "a": val_a, "b": val_b, "pairs": pairs,
                  "geomean_speedup_by_app": summary}
        served = {k: served_a[k] + served_b[k] for k in served_a}
        return result, served
