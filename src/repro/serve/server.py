"""Asyncio HTTP front end over :class:`~repro.serve.state.ServeState`.

Stdlib-only: ``asyncio.start_server`` plus a minimal HTTP/1.1 request
parser — no web framework.  Query evaluation is CPU-bound and runs in a
thread-pool executor so the event loop keeps accepting connections (and
so concurrent identical queries actually reach the singleflight logic
concurrently).

Endpoints (all responses are canonical JSON, so two servings of the
same content are byte-identical):

* ``GET  /health``     — liveness, uptime, store size, code version;
* ``GET  /metrics``    — :func:`repro.obs.summarize` of the process;
* ``POST /query``      — a query dict (see :mod:`repro.serve.state`);
* ``POST /invalidate`` — selective store invalidation.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from ..core.canon import canonical_dumps
from ..core.frame import FrameRow
from ..obs import get_metrics, summarize
from .state import QueryError, ServeState

__all__ = ["ReproServer", "serve_forever"]

_MAX_BODY = 8 * 1024 * 1024
_MAX_HEADER_LINES = 64


class _BadRequest(Exception):
    pass


async def _read_request(reader: asyncio.StreamReader
                        ) -> Tuple[str, str, bytes]:
    """Parse one HTTP/1.1 request: (method, path, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise _BadRequest("empty request")
    try:
        method, target, _version = request_line.decode("ascii").split()
    except ValueError:
        raise _BadRequest(f"malformed request line {request_line!r}")
    content_length = 0
    for _ in range(_MAX_HEADER_LINES):
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise _BadRequest("bad Content-Length")
    else:
        raise _BadRequest("too many headers")
    if content_length > _MAX_BODY:
        raise _BadRequest(f"body exceeds {_MAX_BODY} bytes")
    body = (await reader.readexactly(content_length)
            if content_length else b"")
    return method, target.split("?", 1)[0], body


_SPLICE = "__records_splice__"


def _render_payload(payload: Dict) -> str:
    """``canonical_dumps(payload)``, splicing frame-backed records.

    A warm sweep response is mostly frame rows whose canonical bytes
    the frames already cache; rendering those by splice instead of
    re-encoding per-row dicts is the serve side of the columnar data
    plane.  Byte-identical to ``canonical_dumps`` of the same payload
    (covered by the serve frame tests).
    """
    result = payload.get("result")
    records = (result.get("records")
               if isinstance(result, dict) else None)
    if (not isinstance(records, list) or not records
            or not any(isinstance(r, FrameRow) for r in records)):
        return canonical_dumps(payload)
    parts = []
    for r in records:
        if isinstance(r, FrameRow):
            parts.append(r.frame.canonical_lines()[r.index])
        else:
            parts.append(canonical_dumps(r))
    shell = canonical_dumps(
        {**payload, "result": {**result, "records": _SPLICE}})
    return shell.replace('"records":' + json.dumps(_SPLICE),
                         '"records":[' + ",".join(parts) + "]", 1)


def _response(status: int, payload: Dict) -> bytes:
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
              405: "Method Not Allowed",
              500: "Internal Server Error"}.get(status, "OK")
    body = (_render_payload(payload) + "\n").encode("utf-8")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode("ascii")
    return head + body


class ReproServer:
    """The asyncio server: owns the listening socket, delegates to a
    shared :class:`ServeState`."""

    def __init__(self, state: ServeState, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.state = state
        self.host = host
        self.port = port  # 0 = ephemeral; real port set by start()
        self._server: Optional[asyncio.base_events.Server] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def serve_until(self,
                          stop: Optional[asyncio.Event] = None) -> None:
        await self.start()
        try:
            if stop is None:
                await asyncio.Event().wait()  # run forever
            else:
                await stop.wait()
        finally:
            await self.close()

    # -- request handling -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await _read_request(reader)
            except (_BadRequest, asyncio.IncompleteReadError,
                    UnicodeDecodeError) as exc:
                writer.write(_response(400, {"ok": False,
                                             "error": str(exc)}))
                return
            status, payload = await self._dispatch(method, path, body)
            writer.write(_response(status, payload))
        except ConnectionError:  # client went away mid-response
            pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(self, method: str, path: str,
                        body: bytes) -> Tuple[int, Dict]:
        if path == "/health" and method == "GET":
            import time
            return 200, {"ok": True,
                         "uptime_s": time.time() - self.state.started_s,
                         "store_entries": len(self.state.store),
                         "code_version": self.state.code_version}
        if path == "/metrics" and method == "GET":
            return 200, {"ok": True, "metrics": summarize()}
        if path in ("/query", "/invalidate"):
            if method != "POST":
                return 405, {"ok": False,
                             "error": f"{path} requires POST"}
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return 400, {"ok": False, "error": f"bad JSON body: {exc}"}
            loop = asyncio.get_running_loop()
            try:
                if path == "/query":
                    # CPU-bound; off the event loop so the server keeps
                    # accepting (singleflight coalesces the duplicates).
                    response = await loop.run_in_executor(
                        None, self.state.handle, payload)
                    return 200, response
                removed = await loop.run_in_executor(
                    None, self.state.invalidate, payload)
                return 200, {"ok": True, "invalidated": removed}
            except QueryError as exc:
                return 400, {"ok": False, "error": str(exc)}
            except Exception as exc:  # engine bug: report, don't die
                get_metrics().inc("serve.errors")
                return 500, {"ok": False,
                             "error": f"{type(exc).__name__}: {exc}"}
        return 404, {"ok": False, "error": f"no route {method} {path}"}


def serve_forever(state: ServeState, host: str = "127.0.0.1",
                  port: int = 8787) -> None:
    """Blocking entry point used by ``repro serve``."""
    server = ReproServer(state, host=host, port=port)

    async def _run():
        await server.start()
        print(f"repro serve: listening on http://{server.host}:"
              f"{server.port} (store: {state.store.path}, "
              f"{len(state.store)} entries, code {state.code_version})",
              flush=True)
        await asyncio.Event().wait()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: shutting down", flush=True)
