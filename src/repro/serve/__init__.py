"""Sweep-as-a-service: async HTTP query API over a content-addressed
result store.

``repro serve`` starts the server; ``repro query`` is the CLI client.
See :mod:`repro.serve.state` for the query language and the caching /
singleflight / bit-identity contracts.
"""

from .client import ServeClient
from .server import ReproServer, serve_forever
from .state import QueryError, ServeState

__all__ = [
    "QueryError",
    "ReproServer",
    "ServeClient",
    "ServeState",
    "serve_forever",
]
