"""Minimal stdlib HTTP client for the serve API.

Used by ``repro query``, the CI smoke script and the tests.  Raw-bytes
access is deliberate: the server emits canonical JSON, so byte-level
comparison of two responses is the strongest possible identity check.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServeClient"]


class ServeClient:
    """One-request-per-call client (the server closes each connection)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout_s: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Tuple[int, bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def raw_query(self, query: Dict) -> Tuple[int, bytes]:
        """POST /query, returning the exact response bytes."""
        return self._request("POST", "/query", query)

    def query(self, query: Dict) -> Dict[str, Any]:
        """POST /query, parsed; raises RuntimeError on a non-200."""
        status, body = self.raw_query(query)
        parsed = json.loads(body)
        if status != 200:
            raise RuntimeError(
                f"query failed ({status}): {parsed.get('error', body)}")
        return parsed

    def invalidate(self, criteria: Dict) -> int:
        status, body = self._request("POST", "/invalidate", criteria)
        parsed = json.loads(body)
        if status != 200:
            raise RuntimeError(
                f"invalidate failed ({status}): {parsed.get('error')}")
        return parsed["invalidated"]

    def health(self) -> Dict[str, Any]:
        status, body = self._request("GET", "/health")
        if status != 200:
            raise RuntimeError(f"health failed ({status})")
        return json.loads(body)

    def metrics(self) -> Dict[str, Any]:
        status, body = self._request("GET", "/metrics")
        if status != 200:
            raise RuntimeError(f"metrics failed ({status})")
        return json.loads(body)["metrics"]
