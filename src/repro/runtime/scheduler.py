"""Discrete-event simulation of the node-level runtime system.

MUSA re-simulates the OmpSs/OpenMP runtime for an arbitrary core count
by replaying the runtime events recorded in the burst trace: task
creations, dependencies, barriers and critical sections.  This module
implements that replay as greedy list scheduling:

* the master thread runs the phase's serial section, then creates tasks
  one by one paying a per-task creation overhead (wall-clock ns — these
  timings come from the native trace and do not scale with simulated
  frequency, see Sec. V-B5 of the paper);
* a task becomes ready once created and with all dependencies finished;
* idle cores greedily pick the ready task with the earliest ready time
  (FIFO, like Nanos++);
* ``omp critical`` time is serialized across the whole phase;
* if the phase ends in a barrier, every core waits for the makespan.

The returned :class:`PhaseResult` carries the makespan, per-core busy
times and (optionally) the full task timeline used for the Fig. 3
occupancy analysis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs import get_metrics
from ..trace.events import ComputePhase
from ..util import LruDict
from .jit import get_jit_kernel, run_jit_schedule

__all__ = ["PhaseResult", "simulate_phase", "simulate_phase_batch"]


@dataclass(frozen=True)
class TaskSpan:
    """Execution record of one task: which core ran it and when."""

    task_index: int
    core: int
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of simulating one compute phase on ``n_cores`` cores."""

    makespan_ns: float
    busy_ns: np.ndarray          # per-core busy time (len == n_cores)
    n_tasks: int
    serial_ns: float
    creation_ns_total: float
    spans: Optional[Tuple[TaskSpan, ...]] = None

    @property
    def n_cores(self) -> int:
        return len(self.busy_ns)

    @property
    def occupancy(self) -> float:
        """Fraction of core-time spent executing tasks (Fig. 3 metric)."""
        if self.makespan_ns <= 0:
            return 1.0
        return float(self.busy_ns.sum() / (self.n_cores * self.makespan_ns))

    @property
    def idle_ns(self) -> float:
        """Aggregate idle core-time inside the phase (leakage waste)."""
        return float(self.n_cores * self.makespan_ns - self.busy_ns.sum())


#: id(phase) -> (structure tag or None, phase) — the phase reference is
#: kept so a garbage-collected phase cannot alias a recycled id().
#: LRU-bounded (one entry per distinct phase object; applications hold a
#: few dozen phases) so synthetic tests churning phases neither leak nor
#: — as the old wipe-at-capacity dict did — drop the hot working set and
#: pin 4096 stale phases alive until the next wipe.  Evictions are
#: counted under ``sched.structure.evictions``.
_STRUCTURE_CACHE: LruDict = LruDict(
    1024, eviction_counter="sched.structure.evictions")


def _structure_of(phase: ComputePhase) -> Optional[str]:
    """Classify the dependency structure of a phase, if specializable.

    Two shapes cover every trace the application models emit and admit
    an exact shortcut of the general list scheduler (see
    :func:`_simulate_fast`):

    * ``"nodeps"`` — every task is immediately ready once created;
    * ``"fanout0"`` — task 0 has no dependencies and every other task
      depends exactly on task 0 (producer/consumer fan-out).

    Anything else returns ``None`` and takes the general path.
    """
    key = id(phase)
    hit = _STRUCTURE_CACHE.get(key)
    if hit is not None and hit[1] is phase:
        return hit[0]
    tasks = phase.tasks
    structure: Optional[str] = None
    if all(not t.deps for t in tasks):
        structure = "nodeps"
    elif tasks and not tasks[0].deps and all(
            t.deps == (0,) for t in tasks[1:]):
        structure = "fanout0"
    _STRUCTURE_CACHE[key] = (structure, phase)
    return structure


def _simulate_fast(structure: str, n: int, n_cores: int, durations,
                   create_time, master_done: float, serial: float,
                   creation: float, critical_total: float,
                   busy: np.ndarray) -> PhaseResult:
    """Specialized greedy scheduler for the two common dependency shapes.

    Bitwise-identical to the general algorithm: for both shapes the
    ready heap provably pops tasks in index order (ready times are
    nondecreasing in the task index and ties break on the index), so
    the ready heap is elided and only the core heap is kept.  The same
    heap operations run in the same order, producing the same floats.
    """
    cores: List[Tuple[float, int]] = [(0.0, c) for c in range(n_cores)]
    cores[0] = (master_done, 0)
    heapq.heapify(cores)
    busy[0] += master_done

    makespan = master_done
    start_index = 0
    if structure == "fanout0":
        # Task 0 runs alone; its finish gates every other task.
        free_time, core = heapq.heappop(cores)
        rt = create_time[0]
        start = rt if rt > free_time else free_time
        end0 = start + durations[0]
        busy[core] += durations[0]
        heapq.heappush(cores, (end0, core))
        if end0 > makespan:
            makespan = end0
        start_index = 1
    else:
        end0 = 0.0

    for i in range(start_index, n):
        rt = create_time[i]
        if structure == "fanout0" and end0 > rt:
            rt = end0
        free_time, core = heapq.heappop(cores)
        start = rt if rt > free_time else free_time
        end = start + durations[i]
        busy[core] += durations[i]
        heapq.heappush(cores, (end, core))
        if end > makespan:
            makespan = end

    makespan = max(makespan, serial + critical_total)
    return PhaseResult(
        makespan_ns=makespan,
        busy_ns=busy,
        n_tasks=n,
        serial_ns=serial,
        creation_ns_total=n * creation,
        spans=None,
    )


def simulate_phase(
    phase: ComputePhase,
    n_cores: int,
    duration_scale: float = 1.0,
    overhead_scale: float = 1.0,
    task_durations_ns: Optional[Sequence[float]] = None,
    collect_spans: bool = False,
    _force_general: bool = False,
) -> PhaseResult:
    """Simulate one compute phase on ``n_cores`` cores.

    Parameters
    ----------
    duration_scale:
        Multiplier applied to every task duration (used by the detailed
        integration to re-time tasks for a target architecture, and by
        rank-level imbalance).
    overhead_scale:
        Multiplier for runtime overheads (serial, creation, critical).
        Kept separate because runtime timings are wall-clock and do not
        follow core frequency.
    task_durations_ns:
        Optional explicit per-task durations overriding the trace
        reference values (after which ``duration_scale`` still applies).
    collect_spans:
        If True, record per-task (core, start, end) for timeline
        analysis; costs memory, off by default for the sweep.
    _force_general:
        Skip the structure-specialized fast path (testing hook; the two
        paths are asserted bitwise-equal by the property suite).
    """
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    if duration_scale <= 0 or overhead_scale <= 0:
        raise ValueError("scales must be positive")

    tasks = phase.tasks
    n = len(tasks)
    serial = phase.serial_ns * overhead_scale
    creation = phase.creation_ns * overhead_scale
    critical_total = phase.critical_ns * overhead_scale

    if task_durations_ns is not None:
        if len(task_durations_ns) != n:
            raise ValueError(
                f"expected {n} durations, got {len(task_durations_ns)}"
            )
        durations = [d * duration_scale for d in task_durations_ns]
    else:
        durations = [t.duration_ns * duration_scale for t in tasks]

    busy = np.zeros(n_cores, dtype=np.float64)
    if n == 0:
        makespan = serial + critical_total
        return PhaseResult(makespan, busy, 0, serial, 0.0,
                           spans=() if collect_spans else None)

    # Task i is created at serial + (i+1)*creation by the master thread.
    create_time = [serial + (i + 1) * creation for i in range(n)]
    master_done = create_time[-1]

    if not collect_spans and not _force_general:
        structure = _structure_of(phase)
        if structure is not None:
            return _simulate_fast(structure, n, n_cores, durations,
                                  create_time, master_done, serial,
                                  creation, critical_total, busy)
        # General-DAG phase: the opt-in JIT backend (REPRO_JIT=numba,
        # see repro.runtime.jit) replays the exact heapq algorithm
        # below, compiled.  Span collection stays on this path.
        kernel = get_jit_kernel()
        if kernel is not None:
            makespan, ok = run_jit_schedule(
                kernel, tasks, durations, create_time, master_done, busy)
            if not ok:
                raise RuntimeError(
                    "scheduler deadlock: no ready tasks but work remains "
                    "(dependency cycle in trace?)"
                )
            makespan = max(makespan, serial + critical_total)
            return PhaseResult(
                makespan_ns=makespan,
                busy_ns=busy,
                n_tasks=n,
                serial_ns=serial,
                creation_ns_total=n * creation,
                spans=None,
            )

    # Dependency bookkeeping: children lists and remaining-dep counters.
    n_deps = [len(t.deps) for t in tasks]
    children: List[List[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        for d in t.deps:
            children[d].append(i)

    dep_finish = [0.0] * n         # latest finish among resolved deps
    finish_time = [0.0] * n

    # Ready heap: (ready_time, task index).  Cores heap: (free_time, core).
    ready: List[Tuple[float, int]] = []
    for i in range(n):
        if n_deps[i] == 0:
            heapq.heappush(ready, (create_time[i], i))

    cores: List[Tuple[float, int]] = [(0.0, c) for c in range(n_cores)]
    # The master (core 0) is busy until it finishes creating tasks.
    cores[0] = (master_done, 0)
    heapq.heapify(cores)
    busy[0] += master_done  # serial + creation work occupies the master

    spans: List[TaskSpan] = []
    n_done = 0
    makespan = master_done
    while n_done < n:
        if not ready:
            raise RuntimeError(
                "scheduler deadlock: no ready tasks but work remains "
                "(dependency cycle in trace?)"
            )
        ready_time, i = heapq.heappop(ready)
        free_time, core = heapq.heappop(cores)
        start = max(ready_time, free_time)
        end = start + durations[i]
        finish_time[i] = end
        busy[core] += durations[i]
        heapq.heappush(cores, (end, core))
        if collect_spans:
            spans.append(TaskSpan(i, core, start, end))
        makespan = max(makespan, end)
        n_done += 1
        for child in children[i]:
            n_deps[child] -= 1
            dep_finish[child] = max(dep_finish[child], end)
            if n_deps[child] == 0:
                heapq.heappush(
                    ready, (max(create_time[child], dep_finish[child]), child)
                )

    # Critical sections serialize: the phase cannot finish before the
    # sum of all critical time has elapsed after the serial section.
    makespan = max(makespan, serial + critical_total)

    return PhaseResult(
        makespan_ns=makespan,
        busy_ns=busy,
        n_tasks=n,
        serial_ns=serial,
        creation_ns_total=n * creation,
        spans=tuple(spans) if collect_spans else None,
    )


def simulate_phase_batch(
    phase: ComputePhase,
    n_cores: Sequence[int],
    duration_scale: Union[float, Sequence[float]] = 1.0,
    overhead_scale: Union[float, Sequence[float]] = 1.0,
    task_durations_ns: Optional[np.ndarray] = None,
) -> List[PhaseResult]:
    """:func:`simulate_phase` over a configuration axis, vectorized.

    ``n_cores`` / ``duration_scale`` / ``overhead_scale`` give one value
    (or a broadcastable scalar) per config column; ``task_durations_ns``
    is an optional ``(n_tasks, n_configs)`` matrix of explicit per-task,
    per-config durations (or a 1-D shared base, like the scalar call).

    Bitwise-identity argument.  A per-config *result broadcast* — run
    the schedule once on base durations and multiply the output times by
    each config's scale — can never be bitwise: float multiplication
    does not distribute over addition, so ``fl(s*a) + fl(s*b)`` differs
    from ``s*(a+b)`` in the last ulp for general ``s``.  What *is*
    exactly config-invariant for the ``nodeps``/``fanout0`` structures
    is the scheduler's **task visit order**: ready times are
    nondecreasing in the task index for any non-negative durations and
    overheads (``nodeps``: ready = creation times, an increasing
    sequence; ``fanout0``: task 0 first, then
    ``max(create_time[i], end0)``, nondecreasing in ``i``), and ties
    break on the index — so every config visits tasks 0..n-1 in index
    order, exactly as :func:`_simulate_fast` does.  That lets all
    configs advance through one synchronized per-task loop in which the
    per-config core state is exact, not broadcast:

    * the core heap's pop (min ``(free_time, core)``, ties to the lowest
      core index) is an ``argmin`` over a per-config row of core free
      times (NumPy ``argmin`` returns the first occurrence — the same
      tie-break);
    * ``start``/``end``/``busy`` updates are the same float64 operations
      on the same operands, elementwise across the config axis.

    Each column therefore reproduces the scalar heap schedule float for
    float.  Phases with any other dependency structure — and columns
    whose ``overhead_scale`` differs from ``duration_scale``, which the
    scale-invariance contract of the batched sweep does not cover — fall
    back to per-config :func:`simulate_phase` calls.  Vectorized columns
    are counted under ``sched.batch.fast``; fallback columns under
    ``sched.batch.fallbacks``.
    """
    nc = np.asarray(n_cores, dtype=np.int64)
    if nc.ndim != 1:
        raise ValueError("n_cores must be 1-D")
    n_cfg = len(nc)
    if np.any(nc <= 0):
        raise ValueError("n_cores must be positive")
    ds = np.broadcast_to(np.asarray(duration_scale, dtype=np.float64),
                         (n_cfg,)).copy()
    os_ = np.broadcast_to(np.asarray(overhead_scale, dtype=np.float64),
                          (n_cfg,)).copy()
    if np.any(ds <= 0) or np.any(os_ <= 0):
        raise ValueError("scales must be positive")

    tasks = phase.tasks
    n = len(tasks)
    if task_durations_ns is not None:
        base = np.asarray(task_durations_ns, dtype=np.float64)
        if base.ndim == 1:
            base = base[:, None]
        if base.shape[0] != n or base.shape[1] not in (1, n_cfg):
            raise ValueError(
                f"expected ({n}, {n_cfg}) durations, got {base.shape}")
    else:
        base = np.array([t.duration_ns for t in tasks],
                        dtype=np.float64)[:, None]

    results: List[Optional[PhaseResult]] = [None] * n_cfg
    structure = _structure_of(phase) if n else None
    if n == 0:
        # The scalar path returns before looking at structure or scales.
        fast = np.ones(n_cfg, dtype=bool)
    elif structure is None:
        fast = np.zeros(n_cfg, dtype=bool)
    else:
        fast = ds == os_

    slow = np.flatnonzero(~fast)
    if len(slow):
        get_metrics().inc("sched.batch.fallbacks", len(slow))
        for k in slow:
            col = base[:, 0] if base.shape[1] == 1 else base[:, k]
            results[k] = simulate_phase(
                phase, int(nc[k]), duration_scale=float(ds[k]),
                overhead_scale=float(os_[k]),
                task_durations_ns=col.tolist())

    cols = np.flatnonzero(fast)
    if len(cols) == 0:
        return results  # type: ignore[return-value]
    get_metrics().inc("sched.batch.fast", len(cols))

    serial = phase.serial_ns * os_[cols]
    creation = phase.creation_ns * os_[cols]
    critical_total = phase.critical_ns * os_[cols]

    if n == 0:
        makespan = serial + critical_total
        for j, k in enumerate(cols):
            results[k] = PhaseResult(
                float(makespan[j]), np.zeros(int(nc[k]), dtype=np.float64),
                0, float(serial[j]), 0.0, spans=None)
        return results  # type: ignore[return-value]

    dur = (base if base.shape[1] == 1 else base[:, cols]) * ds[cols]
    # create_time[i] = serial + (i+1)*creation, per column — the same
    # float64 ops as the scalar list comprehension, elementwise.
    create = (np.arange(1, n + 1, dtype=np.float64)[:, None]
              * creation[None, :]) + serial[None, :]
    master_done = create[-1, :]
    nc_f = nc[cols]

    # Process one core-count group at a time so the free/busy matrices
    # are dense (no +inf padding rows) and slices stay contiguous.
    makespans = np.empty(len(cols), dtype=np.float64)
    busy_out: List[Optional[np.ndarray]] = [None] * len(cols)
    for c in np.unique(nc_f):
        g = np.flatnonzero(nc_f == c)
        kg = len(g)
        rows = np.arange(kg)
        dur_g = np.ascontiguousarray(dur[:, g])
        create_g = create[:, g]
        md = master_done[g]

        free = np.zeros((kg, int(c)), dtype=np.float64)
        free[:, 0] = md
        busy = np.zeros((kg, int(c)), dtype=np.float64)
        busy[:, 0] += md
        makespan = md.copy()

        start_index = 0
        end0 = None
        if structure == "fanout0":
            idx = np.argmin(free, axis=1)
            ft = free[rows, idx]
            rt = create_g[0]
            start = np.where(rt > ft, rt, ft)
            end0 = start + dur_g[0]
            busy[rows, idx] += dur_g[0]
            free[rows, idx] = end0
            np.maximum(makespan, end0, out=makespan)
            start_index = 1

        for i in range(start_index, n):
            rt = create_g[i]
            if end0 is not None:
                rt = np.where(end0 > rt, end0, rt)
            idx = np.argmin(free, axis=1)
            ft = free[rows, idx]
            start = np.where(rt > ft, rt, ft)
            end = start + dur_g[i]
            busy[rows, idx] += dur_g[i]
            free[rows, idx] = end
            np.maximum(makespan, end, out=makespan)

        np.maximum(makespan, serial[g] + critical_total[g], out=makespan)
        makespans[g] = makespan
        for j, gj in enumerate(g):
            busy_out[gj] = busy[j].copy()

    for j, k in enumerate(cols):
        results[k] = PhaseResult(
            makespan_ns=float(makespans[j]),
            busy_ns=busy_out[j],
            n_tasks=n,
            serial_ns=float(serial[j]),
            creation_ns_total=n * float(creation[j]),
            spans=None,
        )
    return results  # type: ignore[return-value]
