"""Discrete-event simulation of the node-level runtime system.

MUSA re-simulates the OmpSs/OpenMP runtime for an arbitrary core count
by replaying the runtime events recorded in the burst trace: task
creations, dependencies, barriers and critical sections.  This module
implements that replay as greedy list scheduling:

* the master thread runs the phase's serial section, then creates tasks
  one by one paying a per-task creation overhead (wall-clock ns — these
  timings come from the native trace and do not scale with simulated
  frequency, see Sec. V-B5 of the paper);
* a task becomes ready once created and with all dependencies finished;
* idle cores greedily pick the ready task with the earliest ready time
  (FIFO, like Nanos++);
* ``omp critical`` time is serialized across the whole phase;
* if the phase ends in a barrier, every core waits for the makespan.

The returned :class:`PhaseResult` carries the makespan, per-core busy
times and (optionally) the full task timeline used for the Fig. 3
occupancy analysis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..trace.events import ComputePhase

__all__ = ["PhaseResult", "simulate_phase"]


@dataclass(frozen=True)
class TaskSpan:
    """Execution record of one task: which core ran it and when."""

    task_index: int
    core: int
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of simulating one compute phase on ``n_cores`` cores."""

    makespan_ns: float
    busy_ns: np.ndarray          # per-core busy time (len == n_cores)
    n_tasks: int
    serial_ns: float
    creation_ns_total: float
    spans: Optional[Tuple[TaskSpan, ...]] = None

    @property
    def n_cores(self) -> int:
        return len(self.busy_ns)

    @property
    def occupancy(self) -> float:
        """Fraction of core-time spent executing tasks (Fig. 3 metric)."""
        if self.makespan_ns <= 0:
            return 1.0
        return float(self.busy_ns.sum() / (self.n_cores * self.makespan_ns))

    @property
    def idle_ns(self) -> float:
        """Aggregate idle core-time inside the phase (leakage waste)."""
        return float(self.n_cores * self.makespan_ns - self.busy_ns.sum())


#: id(phase) -> (structure tag or None, phase) — the phase reference is
#: kept so a garbage-collected phase cannot alias a recycled id().
_STRUCTURE_CACHE: dict = {}

#: Bound on the structure cache: one entry per distinct phase object;
#: applications hold a few dozen phases, so this never grows in practice,
#: but synthetic tests churning phases should not leak.
_STRUCTURE_CACHE_MAX = 4096


def _structure_of(phase: ComputePhase) -> Optional[str]:
    """Classify the dependency structure of a phase, if specializable.

    Two shapes cover every trace the application models emit and admit
    an exact shortcut of the general list scheduler (see
    :func:`_simulate_fast`):

    * ``"nodeps"`` — every task is immediately ready once created;
    * ``"fanout0"`` — task 0 has no dependencies and every other task
      depends exactly on task 0 (producer/consumer fan-out).

    Anything else returns ``None`` and takes the general path.
    """
    key = id(phase)
    hit = _STRUCTURE_CACHE.get(key)
    if hit is not None and hit[1] is phase:
        return hit[0]
    tasks = phase.tasks
    structure: Optional[str] = None
    if all(not t.deps for t in tasks):
        structure = "nodeps"
    elif tasks and not tasks[0].deps and all(
            t.deps == (0,) for t in tasks[1:]):
        structure = "fanout0"
    if len(_STRUCTURE_CACHE) >= _STRUCTURE_CACHE_MAX:
        _STRUCTURE_CACHE.clear()
    _STRUCTURE_CACHE[key] = (structure, phase)
    return structure


def _simulate_fast(structure: str, n: int, n_cores: int, durations,
                   create_time, master_done: float, serial: float,
                   creation: float, critical_total: float,
                   busy: np.ndarray) -> PhaseResult:
    """Specialized greedy scheduler for the two common dependency shapes.

    Bitwise-identical to the general algorithm: for both shapes the
    ready heap provably pops tasks in index order (ready times are
    nondecreasing in the task index and ties break on the index), so
    the ready heap is elided and only the core heap is kept.  The same
    heap operations run in the same order, producing the same floats.
    """
    cores: List[Tuple[float, int]] = [(0.0, c) for c in range(n_cores)]
    cores[0] = (master_done, 0)
    heapq.heapify(cores)
    busy[0] += master_done

    makespan = master_done
    start_index = 0
    if structure == "fanout0":
        # Task 0 runs alone; its finish gates every other task.
        free_time, core = heapq.heappop(cores)
        rt = create_time[0]
        start = rt if rt > free_time else free_time
        end0 = start + durations[0]
        busy[core] += durations[0]
        heapq.heappush(cores, (end0, core))
        if end0 > makespan:
            makespan = end0
        start_index = 1
    else:
        end0 = 0.0

    for i in range(start_index, n):
        rt = create_time[i]
        if structure == "fanout0" and end0 > rt:
            rt = end0
        free_time, core = heapq.heappop(cores)
        start = rt if rt > free_time else free_time
        end = start + durations[i]
        busy[core] += durations[i]
        heapq.heappush(cores, (end, core))
        if end > makespan:
            makespan = end

    makespan = max(makespan, serial + critical_total)
    return PhaseResult(
        makespan_ns=makespan,
        busy_ns=busy,
        n_tasks=n,
        serial_ns=serial,
        creation_ns_total=n * creation,
        spans=None,
    )


def simulate_phase(
    phase: ComputePhase,
    n_cores: int,
    duration_scale: float = 1.0,
    overhead_scale: float = 1.0,
    task_durations_ns: Optional[Sequence[float]] = None,
    collect_spans: bool = False,
    _force_general: bool = False,
) -> PhaseResult:
    """Simulate one compute phase on ``n_cores`` cores.

    Parameters
    ----------
    duration_scale:
        Multiplier applied to every task duration (used by the detailed
        integration to re-time tasks for a target architecture, and by
        rank-level imbalance).
    overhead_scale:
        Multiplier for runtime overheads (serial, creation, critical).
        Kept separate because runtime timings are wall-clock and do not
        follow core frequency.
    task_durations_ns:
        Optional explicit per-task durations overriding the trace
        reference values (after which ``duration_scale`` still applies).
    collect_spans:
        If True, record per-task (core, start, end) for timeline
        analysis; costs memory, off by default for the sweep.
    _force_general:
        Skip the structure-specialized fast path (testing hook; the two
        paths are asserted bitwise-equal by the property suite).
    """
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    if duration_scale <= 0 or overhead_scale <= 0:
        raise ValueError("scales must be positive")

    tasks = phase.tasks
    n = len(tasks)
    serial = phase.serial_ns * overhead_scale
    creation = phase.creation_ns * overhead_scale
    critical_total = phase.critical_ns * overhead_scale

    if task_durations_ns is not None:
        if len(task_durations_ns) != n:
            raise ValueError(
                f"expected {n} durations, got {len(task_durations_ns)}"
            )
        durations = [d * duration_scale for d in task_durations_ns]
    else:
        durations = [t.duration_ns * duration_scale for t in tasks]

    busy = np.zeros(n_cores, dtype=np.float64)
    if n == 0:
        makespan = serial + critical_total
        return PhaseResult(makespan, busy, 0, serial, 0.0,
                           spans=() if collect_spans else None)

    # Task i is created at serial + (i+1)*creation by the master thread.
    create_time = [serial + (i + 1) * creation for i in range(n)]
    master_done = create_time[-1]

    if not collect_spans and not _force_general:
        structure = _structure_of(phase)
        if structure is not None:
            return _simulate_fast(structure, n, n_cores, durations,
                                  create_time, master_done, serial,
                                  creation, critical_total, busy)

    # Dependency bookkeeping: children lists and remaining-dep counters.
    n_deps = [len(t.deps) for t in tasks]
    children: List[List[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        for d in t.deps:
            children[d].append(i)

    dep_finish = [0.0] * n         # latest finish among resolved deps
    finish_time = [0.0] * n

    # Ready heap: (ready_time, task index).  Cores heap: (free_time, core).
    ready: List[Tuple[float, int]] = []
    for i in range(n):
        if n_deps[i] == 0:
            heapq.heappush(ready, (create_time[i], i))

    cores: List[Tuple[float, int]] = [(0.0, c) for c in range(n_cores)]
    # The master (core 0) is busy until it finishes creating tasks.
    cores[0] = (master_done, 0)
    heapq.heapify(cores)
    busy[0] += master_done  # serial + creation work occupies the master

    spans: List[TaskSpan] = []
    n_done = 0
    makespan = master_done
    while n_done < n:
        if not ready:
            raise RuntimeError(
                "scheduler deadlock: no ready tasks but work remains "
                "(dependency cycle in trace?)"
            )
        ready_time, i = heapq.heappop(ready)
        free_time, core = heapq.heappop(cores)
        start = max(ready_time, free_time)
        end = start + durations[i]
        finish_time[i] = end
        busy[core] += durations[i]
        heapq.heappush(cores, (end, core))
        if collect_spans:
            spans.append(TaskSpan(i, core, start, end))
        makespan = max(makespan, end)
        n_done += 1
        for child in children[i]:
            n_deps[child] -= 1
            dep_finish[child] = max(dep_finish[child], end)
            if n_deps[child] == 0:
                heapq.heappush(
                    ready, (max(create_time[child], dep_finish[child]), child)
                )

    # Critical sections serialize: the phase cannot finish before the
    # sum of all critical time has elapsed after the serial section.
    makespan = max(makespan, serial + critical_total)

    return PhaseResult(
        makespan_ns=makespan,
        busy_ns=busy,
        n_tasks=n,
        serial_ns=serial,
        creation_ns_total=n * creation,
        spans=tuple(spans) if collect_spans else None,
    )
