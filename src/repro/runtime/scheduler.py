"""Discrete-event simulation of the node-level runtime system.

MUSA re-simulates the OmpSs/OpenMP runtime for an arbitrary core count
by replaying the runtime events recorded in the burst trace: task
creations, dependencies, barriers and critical sections.  This module
implements that replay as greedy list scheduling:

* the master thread runs the phase's serial section, then creates tasks
  one by one paying a per-task creation overhead (wall-clock ns — these
  timings come from the native trace and do not scale with simulated
  frequency, see Sec. V-B5 of the paper);
* a task becomes ready once created and with all dependencies finished;
* idle cores greedily pick the ready task with the earliest ready time
  (FIFO, like Nanos++);
* ``omp critical`` time is serialized across the whole phase;
* if the phase ends in a barrier, every core waits for the makespan.

The returned :class:`PhaseResult` carries the makespan, per-core busy
times and (optionally) the full task timeline used for the Fig. 3
occupancy analysis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..trace.events import ComputePhase

__all__ = ["PhaseResult", "simulate_phase"]


@dataclass(frozen=True)
class TaskSpan:
    """Execution record of one task: which core ran it and when."""

    task_index: int
    core: int
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class PhaseResult:
    """Outcome of simulating one compute phase on ``n_cores`` cores."""

    makespan_ns: float
    busy_ns: np.ndarray          # per-core busy time (len == n_cores)
    n_tasks: int
    serial_ns: float
    creation_ns_total: float
    spans: Optional[Tuple[TaskSpan, ...]] = None

    @property
    def n_cores(self) -> int:
        return len(self.busy_ns)

    @property
    def occupancy(self) -> float:
        """Fraction of core-time spent executing tasks (Fig. 3 metric)."""
        if self.makespan_ns <= 0:
            return 1.0
        return float(self.busy_ns.sum() / (self.n_cores * self.makespan_ns))

    @property
    def idle_ns(self) -> float:
        """Aggregate idle core-time inside the phase (leakage waste)."""
        return float(self.n_cores * self.makespan_ns - self.busy_ns.sum())


def simulate_phase(
    phase: ComputePhase,
    n_cores: int,
    duration_scale: float = 1.0,
    overhead_scale: float = 1.0,
    task_durations_ns: Optional[Sequence[float]] = None,
    collect_spans: bool = False,
) -> PhaseResult:
    """Simulate one compute phase on ``n_cores`` cores.

    Parameters
    ----------
    duration_scale:
        Multiplier applied to every task duration (used by the detailed
        integration to re-time tasks for a target architecture, and by
        rank-level imbalance).
    overhead_scale:
        Multiplier for runtime overheads (serial, creation, critical).
        Kept separate because runtime timings are wall-clock and do not
        follow core frequency.
    task_durations_ns:
        Optional explicit per-task durations overriding the trace
        reference values (after which ``duration_scale`` still applies).
    collect_spans:
        If True, record per-task (core, start, end) for timeline
        analysis; costs memory, off by default for the sweep.
    """
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    if duration_scale <= 0 or overhead_scale <= 0:
        raise ValueError("scales must be positive")

    tasks = phase.tasks
    n = len(tasks)
    serial = phase.serial_ns * overhead_scale
    creation = phase.creation_ns * overhead_scale
    critical_total = phase.critical_ns * overhead_scale

    if task_durations_ns is not None:
        if len(task_durations_ns) != n:
            raise ValueError(
                f"expected {n} durations, got {len(task_durations_ns)}"
            )
        durations = [d * duration_scale for d in task_durations_ns]
    else:
        durations = [t.duration_ns * duration_scale for t in tasks]

    busy = np.zeros(n_cores, dtype=np.float64)
    if n == 0:
        makespan = serial + critical_total
        return PhaseResult(makespan, busy, 0, serial, 0.0,
                           spans=() if collect_spans else None)

    # Task i is created at serial + (i+1)*creation by the master thread.
    create_time = [serial + (i + 1) * creation for i in range(n)]
    master_done = create_time[-1]

    # Dependency bookkeeping: children lists and remaining-dep counters.
    n_deps = [len(t.deps) for t in tasks]
    children: List[List[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        for d in t.deps:
            children[d].append(i)

    dep_finish = [0.0] * n         # latest finish among resolved deps
    finish_time = [0.0] * n

    # Ready heap: (ready_time, task index).  Cores heap: (free_time, core).
    ready: List[Tuple[float, int]] = []
    for i in range(n):
        if n_deps[i] == 0:
            heapq.heappush(ready, (create_time[i], i))

    cores: List[Tuple[float, int]] = [(0.0, c) for c in range(n_cores)]
    # The master (core 0) is busy until it finishes creating tasks.
    cores[0] = (master_done, 0)
    heapq.heapify(cores)
    busy[0] += master_done  # serial + creation work occupies the master

    spans: List[TaskSpan] = []
    n_done = 0
    makespan = master_done
    while n_done < n:
        if not ready:
            raise RuntimeError(
                "scheduler deadlock: no ready tasks but work remains "
                "(dependency cycle in trace?)"
            )
        ready_time, i = heapq.heappop(ready)
        free_time, core = heapq.heappop(cores)
        start = max(ready_time, free_time)
        end = start + durations[i]
        finish_time[i] = end
        busy[core] += durations[i]
        heapq.heappush(cores, (end, core))
        if collect_spans:
            spans.append(TaskSpan(i, core, start, end))
        makespan = max(makespan, end)
        n_done += 1
        for child in children[i]:
            n_deps[child] -= 1
            dep_finish[child] = max(dep_finish[child], end)
            if n_deps[child] == 0:
                heapq.heappush(
                    ready, (max(create_time[child], dep_finish[child]), child)
                )

    # Critical sections serialize: the phase cannot finish before the
    # sum of all critical time has elapsed after the serial section.
    makespan = max(makespan, serial + critical_total)

    return PhaseResult(
        makespan_ns=makespan,
        busy_ns=busy,
        n_tasks=n,
        serial_ns=serial,
        creation_ns_total=n * creation,
        spans=tuple(spans) if collect_spans else None,
    )
