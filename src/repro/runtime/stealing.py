"""Work-stealing scheduler variant.

The paper's runtime (Nanos++) uses central ready queues; modern tasking
runtimes steal from per-worker deques instead.  This variant lets the
co-design study ask a *system software* question the paper raises but
does not explore: how much of the observed starvation is scheduling
policy rather than trace-level parallelism?

Semantics: task creation pushes to the creating worker's deque
(round-robin for the master's initial burst); idle workers pop their
own deque LIFO and steal FIFO from victims chosen deterministically.
Steals cost ``steal_ns`` of the thief's time.  The simulation remains
a discrete-event replay with the same inputs/outputs as
:func:`~repro.runtime.scheduler.simulate_phase`.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from ..trace.events import ComputePhase
from .scheduler import PhaseResult, TaskSpan

__all__ = ["simulate_phase_stealing"]


def simulate_phase_stealing(
    phase: ComputePhase,
    n_cores: int,
    duration_scale: float = 1.0,
    overhead_scale: float = 1.0,
    task_durations_ns: Optional[Sequence[float]] = None,
    steal_ns: float = 120.0,
    collect_spans: bool = False,
) -> PhaseResult:
    """Simulate one phase under work stealing.

    Compatible signature with :func:`simulate_phase`; an extra
    ``steal_ns`` parameter charges each successful steal.
    """
    if n_cores <= 0:
        raise ValueError("n_cores must be positive")
    if duration_scale <= 0 or overhead_scale <= 0:
        raise ValueError("scales must be positive")
    if steal_ns < 0:
        raise ValueError("steal_ns must be non-negative")

    tasks = phase.tasks
    n = len(tasks)
    serial = phase.serial_ns * overhead_scale
    creation = phase.creation_ns * overhead_scale
    critical_total = phase.critical_ns * overhead_scale

    if task_durations_ns is not None:
        if len(task_durations_ns) != n:
            raise ValueError(f"expected {n} durations")
        durations = [d * duration_scale for d in task_durations_ns]
    else:
        durations = [t.duration_ns * duration_scale for t in tasks]

    busy = np.zeros(n_cores, dtype=np.float64)
    if n == 0:
        return PhaseResult(serial + critical_total, busy, 0, serial, 0.0,
                           spans=() if collect_spans else None)

    create_time = [serial + (i + 1) * creation for i in range(n)]
    n_deps = [len(t.deps) for t in tasks]
    children: List[List[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        for d in t.deps:
            children[d].append(i)

    # Per-worker deques; creation round-robins the master's burst the way
    # an eager-binding runtime distributes initial chunks.
    deques: List[Deque[int]] = [deque() for _ in range(n_cores)]
    release_time = [0.0] * n       # when the task became ready
    finish_time = [0.0] * n

    # Event queue of (time, kind, payload): kind 0 = task created,
    # kind 1 = core free.  Created tasks with unmet deps wait for their
    # parents; dependency release re-enqueues them.
    events: List[Tuple[float, int, int, int]] = []
    seq = 0
    for i in range(n):
        if n_deps[i] == 0:
            heapq.heappush(events, (create_time[i], 0, seq, i))
            seq += 1
    for c in range(n_cores):
        start = create_time[-1] if c == 0 else 0.0
        heapq.heappush(events, (start, 1, seq, c))
        seq += 1
    busy[0] += create_time[-1]

    spans: List[TaskSpan] = []
    n_done = 0
    makespan = create_time[-1]
    idle_since = [None] * n_cores  # cores parked waiting for work
    rr = 0

    def dispatch(core: int, task: int, now: float, stole: bool) -> None:
        nonlocal n_done, makespan, seq
        start = now + (steal_ns if stole else 0.0)
        end = start + durations[task]
        busy[core] += end - start
        finish_time[task] = end
        if collect_spans:
            spans.append(TaskSpan(task, core, start, end))
        makespan = max(makespan, end)
        n_done += 1
        for child in children[task]:
            n_deps[child] -= 1
            release_time[child] = max(release_time[child], end,
                                      create_time[child])
            if n_deps[child] == 0:
                heapq.heappush(events, (release_time[child], 0, seq, child))
                seq += 1
        heapq.heappush(events, (end, 1, seq, core))
        seq += 1

    def try_find_work(core: int) -> Optional[Tuple[int, bool]]:
        if deques[core]:
            return deques[core].pop(), False      # own deque: LIFO
        for step in range(1, n_cores):
            victim = (core + step) % n_cores
            if deques[victim]:
                return deques[victim].popleft(), True  # steal: FIFO
        return None

    while events and n_done < n:
        now, kind, _, payload = heapq.heappop(events)
        if kind == 0:
            # Task becomes available: push to a deque; wake a parked core.
            task = payload
            target = rr % n_cores
            rr += 1
            woke = False
            for c in range(n_cores):
                core = (target + c) % n_cores
                if idle_since[core] is not None:
                    idle_since[core] = None
                    dispatch(core, task, now, stole=False)
                    woke = True
                    break
            if not woke:
                deques[target].append(task)
        else:
            core = payload
            found = try_find_work(core)
            if found is None:
                idle_since[core] = now
            else:
                task, stole = found
                dispatch(core, task, max(now, release_time[task],
                                         create_time[task]), stole)

    if n_done < n:
        raise RuntimeError("work-stealing scheduler deadlock "
                           "(dependency cycle in trace?)")
    makespan = max(makespan, serial + critical_total)
    return PhaseResult(
        makespan_ns=makespan,
        busy_ns=busy,
        n_tasks=n,
        serial_ns=serial,
        creation_ns_total=n * creation,
        spans=tuple(spans) if collect_spans else None,
    )
