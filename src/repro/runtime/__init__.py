"""Runtime-system (OmpSs/OpenMP) scheduling simulator."""

from .openmp import (
    imbalanced_durations,
    parallel_for,
    pipeline_deps,
    task_phase,
    wavefront_deps,
)
from .hetero import HeteroMix, area_matched_mix, simulate_phase_hetero
from .scheduler import PhaseResult, TaskSpan, simulate_phase
from .stealing import simulate_phase_stealing

__all__ = [
    "HeteroMix",
    "PhaseResult",
    "TaskSpan",
    "area_matched_mix",
    "imbalanced_durations",
    "parallel_for",
    "pipeline_deps",
    "simulate_phase",
    "simulate_phase_hetero",
    "simulate_phase_stealing",
    "task_phase",
    "wavefront_deps",
]
