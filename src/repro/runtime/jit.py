"""Optional JIT backend for the general-DAG list scheduler.

The structure-specialized paths in :mod:`repro.runtime.scheduler`
(``nodeps``/``fanout0``, plus the config-vectorized batch) cover every
phase the bundled application models emit; traces with real dependency
DAGs fall through to the general heapq scheduler, which is pure Python
and dominates sweep time on such traces.  This module provides an
**opt-in** compiled replacement for exactly that path.

Design for bit-identity
-----------------------

The kernel (:func:`_make_kernel`) is a line-for-line transcription of
the general path onto parallel NumPy arrays:

* both heaps (ready: ``(ready_time, task)``; cores: ``(free_time,
  core)``) are binary heaps over ``(float64 key, int64 value)`` pairs
  using **CPython's own sift algorithms** (``_siftdown`` / the
  leaf-then-up ``_siftup``) and lexicographic comparison, so pops occur
  in exactly the order ``heapq`` would produce — including tie-breaks
  on the task/core index;
* every float operation (``start = max(ready_time, free_time)``,
  ``end = start + durations[i]``, the ``busy`` and ``dep_finish``
  accumulations) is the same float64 operation on the same operands in
  the same order.

Because the kernel body is plain Python over arrays, it runs in two
modes selected by the ``REPRO_JIT`` environment variable:

* ``REPRO_JIT=numba`` — wrap the kernel in ``numba.njit``.  If numba
  is not importable the backend **soft-disables** with a warning and
  the ``sched.jit.unavailable`` counter; sweeps keep working.
* ``REPRO_JIT=python`` — run the identical kernel interpreted.  This
  exists so the bit-identity oracle (and CI, where numba may be
  absent) exercises the exact code numba would compile.
* unset / ``off`` — backend disabled, the heapq path runs as before.

``sched.jit.calls`` counts kernel invocations.  The backend is
resolved once per process (first general-path phase); tests reset it
via :func:`_reset_backend`.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..obs import get_metrics

__all__ = ["get_jit_kernel", "run_jit_schedule", "JIT_ENV_VAR"]

JIT_ENV_VAR = "REPRO_JIT"

#: Sentinel distinguishing "not resolved yet" from "resolved: disabled".
_UNRESOLVED = object()
_backend: object = _UNRESOLVED


def _make_kernel(decorate: Callable) -> Callable:
    """Build the schedule kernel, optionally compiled by ``decorate``.

    ``decorate`` is either the identity (interpreted ``python``
    backend) or ``numba.njit`` — the function bodies are identical, so
    the interpreted backend is the compiled backend's oracle.
    """

    @decorate
    def _lt(k1, v1, k2, v2):
        # Lexicographic (key, value) compare — Python tuple ordering.
        return k1 < k2 or (k1 == k2 and v1 < v2)

    @decorate
    def _siftdown(hk, hv, startpos, pos):
        # CPython heapq._siftdown: bubble heap[pos] toward the root.
        nk = hk[pos]
        nv = hv[pos]
        while pos > startpos:
            parent = (pos - 1) >> 1
            if _lt(nk, nv, hk[parent], hv[parent]):
                hk[pos] = hk[parent]
                hv[pos] = hv[parent]
                pos = parent
            else:
                break
        hk[pos] = nk
        hv[pos] = nv

    @decorate
    def _siftup(hk, hv, size, pos):
        # CPython heapq._siftup: sink to a leaf, then bubble back up.
        startpos = pos
        nk = hk[pos]
        nv = hv[pos]
        child = 2 * pos + 1
        while child < size:
            right = child + 1
            if right < size and not _lt(hk[child], hv[child],
                                        hk[right], hv[right]):
                child = right
            hk[pos] = hk[child]
            hv[pos] = hv[child]
            pos = child
            child = 2 * pos + 1
        hk[pos] = nk
        hv[pos] = nv
        _siftdown(hk, hv, startpos, pos)

    @decorate
    def kernel(dur, create, n_deps, child_ptr, child_idx, n_cores,
               master_done, busy, dep_finish):
        n = dur.shape[0]

        # Ready heap, pushed in task-index order like the heapq path.
        rk = np.empty(n, np.float64)
        rv = np.empty(n, np.int64)
        rs = 0
        for i in range(n):
            if n_deps[i] == 0:
                rk[rs] = create[i]
                rv[rs] = i
                rs += 1
                _siftdown(rk, rv, 0, rs - 1)

        # Cores heap: [(0.0, c) ...] with slot 0 = (master_done, 0),
        # then heapify — reversed(range(n//2)) siftups, like CPython.
        ck = np.zeros(n_cores, np.float64)
        cv = np.empty(n_cores, np.int64)
        for c in range(n_cores):
            cv[c] = c
        ck[0] = master_done
        for i in range(n_cores // 2 - 1, -1, -1):
            _siftup(ck, cv, n_cores, i)
        busy[0] += master_done

        n_done = 0
        makespan = master_done
        while n_done < n:
            if rs == 0:
                return makespan, False  # deadlock: cycle in the trace
            ready_time = rk[0]
            i = rv[0]
            rs -= 1
            if rs > 0:
                rk[0] = rk[rs]
                rv[0] = rv[rs]
                _siftup(rk, rv, rs, 0)
            free_time = ck[0]
            core = cv[0]
            start = ready_time if ready_time > free_time else free_time
            end = start + dur[i]
            busy[core] += dur[i]
            # heapreplace cores root with (end, core).
            ck[0] = end
            cv[0] = core
            _siftup(ck, cv, n_cores, 0)
            if end > makespan:
                makespan = end
            n_done += 1
            for p in range(child_ptr[i], child_ptr[i + 1]):
                child = child_idx[p]
                n_deps[child] -= 1
                if end > dep_finish[child]:
                    dep_finish[child] = end
                if n_deps[child] == 0:
                    rt = create[child]
                    if dep_finish[child] > rt:
                        rt = dep_finish[child]
                    rk[rs] = rt
                    rv[rs] = child
                    rs += 1
                    _siftdown(rk, rv, 0, rs - 1)
        return makespan, True

    return kernel


def _resolve_backend() -> Optional[Callable]:
    """Resolve ``REPRO_JIT`` once per process."""
    name = os.environ.get(JIT_ENV_VAR, "").strip().lower()
    obs = get_metrics()
    if name in ("", "0", "off", "none"):
        return None
    if name == "python":
        obs.inc("sched.jit.enabled")
        return _make_kernel(lambda f: f)
    if name == "numba":
        try:
            import numba
        except ImportError:
            warnings.warn(
                f"{JIT_ENV_VAR}=numba requested but numba is not "
                "installed; falling back to the interpreted scheduler",
                RuntimeWarning, stacklevel=3)
            obs.inc("sched.jit.unavailable")
            return None
        obs.inc("sched.jit.enabled")
        return _make_kernel(numba.njit(cache=False))
    warnings.warn(
        f"unknown {JIT_ENV_VAR} backend {name!r} (expected 'numba', "
        "'python' or 'off'); JIT disabled",
        RuntimeWarning, stacklevel=3)
    obs.inc("sched.jit.unavailable")
    return None


def get_jit_kernel() -> Optional[Callable]:
    """The active JIT kernel, or ``None`` when the backend is off."""
    global _backend
    if _backend is _UNRESOLVED:
        _backend = _resolve_backend()
    return _backend  # type: ignore[return-value]


def _reset_backend() -> None:
    """Force re-resolution of ``REPRO_JIT`` (testing hook)."""
    global _backend
    _backend = _UNRESOLVED


def run_jit_schedule(
    kernel: Callable,
    tasks,
    durations: List[float],
    create_time: List[float],
    master_done: float,
    busy: np.ndarray,
) -> Tuple[float, bool]:
    """Run the compiled general-DAG schedule for one phase.

    Packs the dependency lists into CSR ``(child_ptr, child_idx)`` —
    children appear in task-index order, matching the append order of
    the heapq path's list-of-lists — and invokes ``kernel``.  Returns
    ``(makespan, ok)``; ``ok`` is False on a dependency-cycle deadlock
    (the caller raises the same error the interpreted path does).
    ``busy`` is filled in place, exactly like the heapq path.
    """
    n = len(tasks)
    n_deps = np.empty(n, np.int64)
    counts = np.zeros(n + 1, np.int64)
    for i, t in enumerate(tasks):
        n_deps[i] = len(t.deps)
        for d in t.deps:
            counts[d + 1] += 1
    child_ptr = np.cumsum(counts)
    child_idx = np.empty(int(child_ptr[-1]), np.int64)
    cursor = child_ptr[:-1].copy()
    for i, t in enumerate(tasks):
        for d in t.deps:
            child_idx[cursor[d]] = i
            cursor[d] += 1

    get_metrics().inc("sched.jit.calls")
    makespan, ok = kernel(
        np.asarray(durations, np.float64),
        np.asarray(create_time, np.float64),
        n_deps, child_ptr, child_idx,
        np.int64(len(busy)), np.float64(master_done),
        busy, np.zeros(n, np.float64),
    )
    return float(makespan), bool(ok)
