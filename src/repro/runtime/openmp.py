"""OpenMP/OmpSs construct builders.

The tracing extension described in Sec. III added support for classic
``parallel for`` worksharing (on top of the existing task support) plus
``omp critical``.  These helpers build :class:`ComputePhase` records the
way the extended tracer would emit them:

* :func:`parallel_for` — a worksharing loop becomes one task per chunk
  with an implicit barrier;
* :func:`task_phase` — an OmpSs task region with explicit dependencies;
* :func:`pipeline_deps` / :func:`wavefront_deps` — common dependency
  topologies of the studied applications.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..trace.events import ComputePhase, TaskRecord

__all__ = [
    "parallel_for",
    "task_phase",
    "pipeline_deps",
    "wavefront_deps",
    "imbalanced_durations",
]


def imbalanced_durations(
    n_tasks: int,
    mean_ns: float,
    imbalance: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Per-task durations with a controlled load-imbalance level.

    ``imbalance`` follows the usual metric ``max/mean - 1``: 0 gives
    perfectly uniform tasks, 0.5 makes the slowest task 50% longer than
    the mean.  Durations are lognormal-ish (positive, right-skewed) and
    rescaled so the sample satisfies the target max/mean exactly.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if mean_ns <= 0:
        raise ValueError("mean_ns must be positive")
    if imbalance < 0:
        raise ValueError("imbalance must be non-negative")
    if imbalance == 0 or n_tasks == 1:
        return np.full(n_tasks, mean_ns)
    raw = rng.lognormal(mean=0.0, sigma=0.3, size=n_tasks)
    raw /= raw.mean()
    # Affine map so mean stays 1 and max becomes 1 + imbalance.
    mx = raw.max()
    if mx > 1.0:
        alpha = imbalance / (mx - 1.0)
        raw = 1.0 + (raw - 1.0) * alpha
    raw = np.maximum(raw, 0.05)
    raw /= raw.mean()
    return raw * mean_ns


def parallel_for(
    phase_id: int,
    kernel: str,
    n_iterations: int,
    iter_ns: float,
    chunk: Optional[int] = None,
    n_threads_traced: int = 48,
    imbalance: float = 0.0,
    creation_ns: float = 150.0,
    serial_ns: float = 0.0,
    critical_ns: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> ComputePhase:
    """``#pragma omp parallel for`` as a phase of chunk tasks.

    With ``chunk=None`` the static default is used: the iteration space
    is split into ``n_threads_traced`` chunks (the thread count of the
    *traced* run — the trace fixes the chunking; re-simulation with more
    cores cannot create parallelism that is not in the trace, which is
    exactly the paper's Fig. 2/3 starvation effect).
    """
    if n_iterations <= 0:
        raise ValueError("n_iterations must be positive")
    if iter_ns <= 0:
        raise ValueError("iter_ns must be positive")
    if chunk is None:
        chunk = max(1, math.ceil(n_iterations / n_threads_traced))
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    n_tasks = math.ceil(n_iterations / chunk)
    sizes = np.full(n_tasks, chunk, dtype=np.int64)
    sizes[-1] = n_iterations - chunk * (n_tasks - 1)
    rng = rng if rng is not None else np.random.default_rng(phase_id)
    factors = imbalanced_durations(n_tasks, 1.0, imbalance, rng)
    tasks = tuple(
        TaskRecord(
            kernel=kernel,
            duration_ns=float(sizes[i] * iter_ns * factors[i]),
            work_units=float(sizes[i]),
        )
        for i in range(n_tasks)
    )
    return ComputePhase(
        phase_id=phase_id,
        tasks=tasks,
        serial_ns=serial_ns,
        creation_ns=creation_ns,
        barrier_after=True,   # worksharing loops have an implicit barrier
        critical_ns=critical_ns,
    )


def task_phase(
    phase_id: int,
    kernel: str,
    n_tasks: int,
    task_ns: float,
    deps: Sequence[Tuple[int, ...]] = (),
    imbalance: float = 0.0,
    creation_ns: float = 300.0,
    serial_ns: float = 0.0,
    serial_task_ns: float = 0.0,
    barrier_after: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> ComputePhase:
    """An OmpSs/OpenMP task region with optional explicit dependencies.

    ``serial_task_ns`` prepends a *serialized compute segment*: a single
    task every other task depends on.  Unlike ``serial_ns`` (runtime
    overhead at fixed wall-clock cost), a serial segment is application
    code — it re-times with the simulated architecture and occupies one
    core while the rest idle (the paper's Sec. V-A "important serialized
    execution segments").
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if task_ns <= 0:
        raise ValueError("task_ns must be positive")
    if deps and len(deps) != n_tasks:
        raise ValueError("deps must be empty or have one entry per task")
    if serial_task_ns < 0:
        raise ValueError("serial_task_ns must be non-negative")
    rng = rng if rng is not None else np.random.default_rng(phase_id)
    factors = imbalanced_durations(n_tasks, 1.0, imbalance, rng)
    offset = 1 if serial_task_ns > 0 else 0
    tasks = []
    if serial_task_ns > 0:
        tasks.append(TaskRecord(
            kernel=kernel,
            duration_ns=float(serial_task_ns),
            work_units=float(serial_task_ns / task_ns),
        ))
    for i in range(n_tasks):
        if deps:
            task_deps = tuple(d + offset for d in deps[i])
        elif offset:
            task_deps = (0,)
        else:
            task_deps = ()
        tasks.append(TaskRecord(
            kernel=kernel,
            duration_ns=float(task_ns * factors[i]),
            deps=task_deps,
            work_units=1.0,
        ))
    return ComputePhase(
        phase_id=phase_id,
        tasks=tuple(tasks),
        serial_ns=serial_ns,
        creation_ns=creation_ns,
        barrier_after=barrier_after,
    )


def pipeline_deps(n_stages: int, width: int) -> Tuple[Tuple[int, ...], ...]:
    """Dependencies of a ``width``-wide, ``n_stages``-deep pipeline.

    Task ``(s, w)`` (index ``s*width + w``) depends on ``(s-1, w)`` —
    per-lane chains, as in per-zone solver sweeps (BT-MZ/SP-MZ style).
    """
    if n_stages <= 0 or width <= 0:
        raise ValueError("n_stages and width must be positive")
    deps = []
    for s in range(n_stages):
        for w in range(width):
            deps.append(() if s == 0 else ((s - 1) * width + w,))
    return tuple(deps)


def wavefront_deps(rows: int, cols: int) -> Tuple[Tuple[int, ...], ...]:
    """Dependencies of a 2-D wavefront: (i,j) waits on (i-1,j) and (i,j-1).

    The classic diagonal-sweep pattern of the NAS SP/BT solvers: the
    available parallelism grows and shrinks along anti-diagonals, capping
    mean concurrency well below ``rows*cols``.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    deps = []
    for i in range(rows):
        for j in range(cols):
            d = []
            if i > 0:
                d.append((i - 1) * cols + j)
            if j > 0:
                d.append(i * cols + (j - 1))
            deps.append(tuple(d))
    return tuple(deps)
