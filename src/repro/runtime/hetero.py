"""Heterogeneous (big.LITTLE) node scheduling.

Sec. II-B motivates "leaner core designs" as a first-class trend; the
natural follow-up question the paper leaves open is *mixing* core
classes in one socket: do a few big cores for the serial/imbalanced
tail plus many small cores beat a homogeneous die of the same area?

This module extends the runtime scheduler with per-core speed factors
(a task on core ``c`` runs for ``duration / speed[c]``) and provides
the area-normalized study helper: build mixed sockets that spend the
same silicon as a homogeneous one, schedule every application phase on
both, and compare.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config.core import CoreConfig, core_preset
from ..config.node import NodeConfig
from ..power.area import AreaModel
from ..trace.events import ComputePhase
from .scheduler import PhaseResult, TaskSpan

__all__ = ["simulate_phase_hetero", "HeteroMix", "area_matched_mix"]


def simulate_phase_hetero(
    phase: ComputePhase,
    core_speeds: Sequence[float],
    duration_scale: float = 1.0,
    overhead_scale: float = 1.0,
    task_durations_ns: Optional[Sequence[float]] = None,
    collect_spans: bool = False,
) -> PhaseResult:
    """Greedy list scheduling on cores with per-core speed factors.

    ``core_speeds[c]`` multiplies core ``c``'s execution rate (1.0 = the
    reference core the durations were timed for).  The scheduler is
    speed-aware: an idle fast core is preferred over an idle slow one
    (what a heterogeneity-aware runtime would do).  The master thread —
    creation overheads — runs on core 0, so put a big core first.
    """
    speeds = np.asarray(list(core_speeds), dtype=np.float64)
    if len(speeds) == 0 or np.any(speeds <= 0):
        raise ValueError("core_speeds must be non-empty and positive")
    if duration_scale <= 0 or overhead_scale <= 0:
        raise ValueError("scales must be positive")
    n_cores = len(speeds)

    tasks = phase.tasks
    n = len(tasks)
    serial = phase.serial_ns * overhead_scale
    creation = phase.creation_ns * overhead_scale
    critical_total = phase.critical_ns * overhead_scale

    if task_durations_ns is not None:
        if len(task_durations_ns) != n:
            raise ValueError(f"expected {n} durations")
        durations = [d * duration_scale for d in task_durations_ns]
    else:
        durations = [t.duration_ns * duration_scale for t in tasks]

    busy = np.zeros(n_cores, dtype=np.float64)
    if n == 0:
        return PhaseResult(serial + critical_total, busy, 0, serial, 0.0,
                           spans=() if collect_spans else None)

    create_time = [serial + (i + 1) * creation for i in range(n)]
    master_done = create_time[-1]
    n_deps = [len(t.deps) for t in tasks]
    children: List[List[int]] = [[] for _ in range(n)]
    for i, t in enumerate(tasks):
        for d in t.deps:
            children[d].append(i)
    dep_finish = [0.0] * n

    ready: List[Tuple[float, int]] = []
    for i in range(n):
        if n_deps[i] == 0:
            heapq.heappush(ready, (create_time[i], i))

    # Core heap keyed by (free_time, -speed): ties go to the fastest.
    cores: List[Tuple[float, float, int]] = [
        (0.0, -speeds[c], c) for c in range(n_cores)]
    cores[0] = (master_done, -speeds[0], 0)
    heapq.heapify(cores)
    busy[0] += master_done

    spans: List[TaskSpan] = []
    n_done = 0
    makespan = master_done
    while n_done < n:
        if not ready:
            raise RuntimeError("hetero scheduler deadlock")
        ready_time, i = heapq.heappop(ready)
        free_time, neg_speed, core = heapq.heappop(cores)
        start = max(ready_time, free_time)
        dur = durations[i] / (-neg_speed)
        end = start + dur
        busy[core] += dur
        heapq.heappush(cores, (end, neg_speed, core))
        if collect_spans:
            spans.append(TaskSpan(i, core, start, end))
        makespan = max(makespan, end)
        n_done += 1
        for child in children[i]:
            n_deps[child] -= 1
            dep_finish[child] = max(dep_finish[child], end)
            if n_deps[child] == 0:
                heapq.heappush(
                    ready, (max(create_time[child], dep_finish[child]),
                            child))
    makespan = max(makespan, serial + critical_total)
    return PhaseResult(
        makespan_ns=makespan, busy_ns=busy, n_tasks=n, serial_ns=serial,
        creation_ns_total=n * creation,
        spans=tuple(spans) if collect_spans else None,
    )


@dataclass(frozen=True)
class HeteroMix:
    """A mixed-core socket: big cores first, then little cores."""

    n_big: int
    n_little: int
    big: CoreConfig
    little: CoreConfig
    #: little-core relative speed (vs the big core) for the workload
    little_speed: float

    def __post_init__(self) -> None:
        if self.n_big < 0 or self.n_little < 0 or \
                self.n_big + self.n_little == 0:
            raise ValueError("mix needs at least one core")
        if not 0 < self.little_speed <= 1.0:
            raise ValueError("little_speed must be in (0, 1]")

    @property
    def n_cores(self) -> int:
        return self.n_big + self.n_little

    def speeds(self) -> np.ndarray:
        return np.concatenate([
            np.ones(self.n_big),
            np.full(self.n_little, self.little_speed),
        ])


def area_matched_mix(
    node: NodeConfig,
    n_big: int,
    little_speed: float,
    big: str = "aggressive",
    little: str = "lowend",
    area_model: Optional[AreaModel] = None,
) -> HeteroMix:
    """Build a mixed socket spending the same core area as ``node``.

    Keeps ``n_big`` big cores and fills the remaining silicon of the
    homogeneous socket with little cores.
    """
    am = area_model or AreaModel()
    big_cfg = core_preset(big)
    little_cfg = core_preset(little)
    total_area = am.core_mm2(node) * node.n_cores
    big_area = am.core_mm2(node.with_(core=big_cfg)) * n_big
    if big_area > total_area:
        raise ValueError(
            f"{n_big} {big} cores already exceed the area budget")
    little_each = am.core_mm2(node.with_(core=little_cfg))
    n_little = int((total_area - big_area) // little_each)
    if n_little == 0 and n_big == 0:
        raise ValueError("area budget fits no cores at all")
    return HeteroMix(n_big=n_big, n_little=n_little, big=big_cfg,
                     little=little_cfg, little_speed=little_speed)
