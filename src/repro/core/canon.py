"""Canonical JSON serialization and content addressing.

Everything this repository persists or hashes — sweep journals,
ResultSet files, the content-addressed result store — goes through one
serializer so that

* **the bytes are valid interchange JSON**: bare ``json.dumps`` emits
  the non-standard ``NaN`` / ``Infinity`` tokens under its default
  ``allow_nan=True``, which many readers reject and others silently
  rewrite to ``null`` — poison for a content-addressed store (the
  stored bytes and the re-serialized parse no longer hash alike);
* **equal values serialize to equal bytes**: keys are sorted and the
  separators fixed, so a SHA-256 of the text is a stable content
  address independent of dict construction order;
* **non-finite floats round-trip exactly**: they are encoded as an
  explicit sentinel object ``{"__nonfinite__": "nan" | "inf" |
  "-inf"}`` and decoded back to the same float, instead of relying on
  non-JSON tokens.

The sentinel key is reserved: serializing a mapping that already
contains ``"__nonfinite__"`` raises, so decoding is never ambiguous.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections.abc import Mapping
from typing import Any, Optional

__all__ = ["canonical_dumps", "canonical_loads", "content_digest",
           "NONFINITE_KEY"]

#: Reserved object key marking an encoded non-finite float.
NONFINITE_KEY = "__nonfinite__"

_ENCODE = {math.inf: "inf", -math.inf: "-inf"}
_DECODE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def _encode(obj: Any) -> Any:
    """Recursively replace non-finite floats with sentinel objects."""
    if isinstance(obj, float):
        # Covers numpy scalar subclasses of float as well.
        if math.isnan(obj):
            return {NONFINITE_KEY: "nan"}
        if math.isinf(obj):
            return {NONFINITE_KEY: _ENCODE[obj]}
        return obj
    if isinstance(obj, Mapping):
        # dicts and read-only views alike (e.g. a columnar FrameRow):
        # both serialize to the same key-sorted canonical bytes.
        if NONFINITE_KEY in obj:
            raise ValueError(
                f"mapping uses the reserved key {NONFINITE_KEY!r}")
        return {k: _encode(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_encode(v) for v in obj]
    return obj


def _decode_hook(obj: dict) -> Any:
    if len(obj) == 1 and NONFINITE_KEY in obj:
        try:
            return _DECODE[obj[NONFINITE_KEY]]
        except (KeyError, TypeError):
            raise ValueError(
                f"invalid non-finite sentinel: {obj[NONFINITE_KEY]!r}")
    return obj


def canonical_dumps(obj: Any, indent: Optional[int] = None) -> str:
    """Serialize to canonical JSON text.

    Keys sorted, compact separators (or ``indent`` for human-facing
    files), ``allow_nan=False`` — with non-finite floats carried by the
    sentinel encoding so the strictness can never raise for them.
    Equal values produce equal text, making ``sha256(text)`` a content
    address.
    """
    separators = (",", ": ") if indent is not None else (",", ":")
    return json.dumps(_encode(obj), sort_keys=True, allow_nan=False,
                      separators=separators, indent=indent)


def canonical_loads(text: str) -> Any:
    """Parse canonical JSON text, decoding non-finite sentinels.

    Also accepts historical pre-canonical output: plain JSON parses
    unchanged, and the legacy ``NaN``/``Infinity`` tokens (written by
    bare ``json.dumps`` before PR 8) still decode, so old journals and
    result files remain readable.
    """
    return json.loads(text, object_hook=_decode_hook)


def content_digest(obj: Any) -> str:
    """Hex SHA-256 of the canonical serialization of ``obj``."""
    return hashlib.sha256(canonical_dumps(obj).encode("utf-8")).hexdigest()
