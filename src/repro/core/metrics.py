"""Evaluation metrics: speedup, parallel efficiency, energy-to-solution."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "speedup",
    "parallel_efficiency",
    "normalized_energy",
    "energy_delay_product",
    "energy_delay_squared",
    "geo_mean",
]


def speedup(baseline_time: float, time: float) -> float:
    """Classic speedup: baseline runtime over candidate runtime."""
    if baseline_time <= 0 or time <= 0:
        raise ValueError("times must be positive")
    return baseline_time / time


def parallel_efficiency(baseline_time: float, time: float,
                        n_units: int) -> float:
    """Speedup divided by the resource ratio (cores, ranks...)."""
    if n_units <= 0:
        raise ValueError("n_units must be positive")
    return speedup(baseline_time, time) / n_units


def normalized_energy(baseline_energy: Optional[float],
                      energy: Optional[float]) -> Optional[float]:
    """Energy-to-solution ratio; ``None`` propagates (HBM configs)."""
    if baseline_energy is None or energy is None:
        return None
    if baseline_energy <= 0 or energy <= 0:
        raise ValueError("energies must be positive")
    return energy / baseline_energy


def energy_delay_product(energy_j: Optional[float],
                         time_s: float) -> Optional[float]:
    """EDP (J*s): the balanced efficiency objective; None propagates."""
    if energy_j is None:
        return None
    if energy_j <= 0 or time_s <= 0:
        raise ValueError("energy and time must be positive")
    return energy_j * time_s


def energy_delay_squared(energy_j: Optional[float],
                         time_s: float) -> Optional[float]:
    """ED^2P (J*s^2): the performance-leaning efficiency objective."""
    edp = energy_delay_product(energy_j, time_s)
    return None if edp is None else edp * time_s


def geo_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for ratios)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if len(arr) == 0:
        raise ValueError("geo_mean of empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geo_mean requires positive values")
    return float(np.exp(np.log(arr).mean()))
