"""Fault-tolerant, resumable design-space sweep engine.

Runs the full (or a restricted) design space for a set of applications
as a chunked task schedule, inline or across worker processes.  Each
worker owns one lazily-built :class:`~repro.core.musa.Musa` instance
per application, so trace generation happens once per (worker, app) and
phase-detail memoization works across the configs the worker handles —
the same amortization MUSA gets from reusing one trace for the whole
campaign.

Since the batched engine landed, the unit of work is one app x
*config-batch*: consecutive same-app tasks are grouped (up to
``batch_size``) and evaluated column-wise by
:class:`~repro.core.batch.BatchEvaluator`, bitwise-identical to — and
several times faster than — per-config simulation.  Journal records,
retries, abort and resume semantics are all still per config; a batch
that fails to evaluate falls back to scalar per-config simulation.

Campaign-scale robustness, on top of the bare pool the first version
was:

* **journaling** — with ``resume=path`` every completed record is
  appended to a crash-safe :class:`~repro.core.checkpoint.Journal`
  and already-done tasks are skipped on the next invocation;
* **fault tolerance** — a failing task (exception or per-task
  ``timeout_s``) is retried up to ``max_retries`` times with
  exponential backoff, then recorded as a ``"failed": True`` stub so
  one bad point cannot abort a 4,320-simulation campaign;
* **fault injection** — ``fault_hook(app, node, attempt)`` runs before
  every simulation, letting tests kill precisely the Nth attempt of a
  chosen task (:class:`FailNTimes`) or abort the whole sweep
  (:class:`SweepAbort`);
* **metrics** — scheduler counters (completed / skipped / retries /
  failed) and worker-side spans are reported through
  :mod:`repro.obs`, with worker deltas merged back into the parent.

The returned :class:`~repro.core.results.ResultSet` is always in the
canonical ``sweep_configs`` order, independent of worker count, chunk
size and completion order.

Scaling to million-point range spaces (PR 9) changed the parallel
scheduler from static ``Pool`` chunking to a **work-stealing shard
scheduler**:

* tasks come from a lazy task table (``DesignSpace.config_at``) so the
  space is never materialized;
* the queued work is packed into app x config-batch *shards*
  (``sweep.shards`` counts them), dealt across per-worker deques; a
  worker that drains its deque steals the back half of the richest
  victim's deque (``sweep.steals``);
* workers are dedicated processes fed through per-worker inboxes, so
  shard ownership is real (Musa/evaluator caches stay hot per worker)
  and a dead worker's shards are requeued (``sweep.worker.lost``)
  instead of hanging the campaign;
* ``shard=(K, N)`` (CLI ``--shard K/N``) restricts one invocation to
  every Nth task, letting N hosts split a campaign; their journals
  merge with :func:`repro.core.checkpoint.merge_journal` into one
  bit-identical resume.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from heapq import heappop, heappush
from multiprocessing import get_context
from pathlib import Path
from queue import Empty as _QueueEmpty
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..apps.registry import get_app
from ..config.node import NodeConfig
from ..config.space import DesignSpace
from ..obs import MetricsRegistry, ProgressMeter, get_metrics, set_metrics, warn
from .batch import BatchEvaluator
from .checkpoint import Journal, replay_journal, task_key
from .frame import FrameRow, pack_frame, unpack_frame
from .musa import Musa
from .results import ResultSet

__all__ = [
    "FailNTimes",
    "InjectedFault",
    "SweepAbort",
    "TaskTimeout",
    "run_sweep",
    "sweep_configs",
]


class SweepAbort(RuntimeError):
    """Fatal sweep error: never retried, aborts the whole campaign.

    Work journaled before the abort is preserved; ``resume=`` picks the
    campaign back up.
    """


class InjectedFault(RuntimeError):
    """Raised by test fault hooks to simulate a worker failure."""


class TaskTimeout(RuntimeError):
    """A task exceeded the per-task ``timeout_s`` budget."""


@dataclass(frozen=True)
class FailNTimes:
    """Deterministic injectable fault hook.

    Fails the first ``times`` attempts of every matching task (all
    tasks when no ``app``/``label`` filter is given), so retry logic
    can be exercised reproducibly from any worker process.  With
    ``fatal=True`` it raises :class:`SweepAbort` instead, simulating a
    mid-campaign crash.
    """

    times: int = 1
    app: Optional[str] = None
    label: Optional[str] = None
    fatal: bool = False

    def __call__(self, app_name: str, node: NodeConfig, attempt: int) -> None:
        if attempt >= self.times:
            return
        if self.app is not None and app_name != self.app:
            return
        if self.label is not None and node.label != self.label:
            return
        if self.fatal:
            raise SweepAbort(
                f"injected abort for {app_name} on {node.label}")
        raise InjectedFault(
            f"injected fault (attempt {attempt}) for {app_name} "
            f"on {node.label}")


# --------------------------------------------------------------- worker side

# Per-process Musa cache (workers are forked/spawned per sweep).
_MUSA_CACHE: Dict[str, Musa] = {}

# Per-process batched-evaluator cache, keyed like _MUSA_CACHE.
_BATCH_EVALUATORS: Dict[str, BatchEvaluator] = {}

#: Per-process task-execution settings, set by the pool initializer
#: (or directly for inline runs).
_WORKER: Dict[str, object] = {"fault_hook": None, "timeout_s": None,
                              "batch": False, "batch_size": 1,
                              "mode": "fast", "frame": True}


def _musa_for(app_name: str) -> Musa:
    if app_name not in _MUSA_CACHE:
        _MUSA_CACHE[app_name] = Musa(get_app(app_name))
    return _MUSA_CACHE[app_name]


def _evaluator_for(app_name: str) -> BatchEvaluator:
    if app_name not in _BATCH_EVALUATORS:
        _BATCH_EVALUATORS[app_name] = BatchEvaluator(_musa_for(app_name))
    return _BATCH_EVALUATORS[app_name]


def _init_worker(fault_hook, timeout_s, batch: bool = False,
                 batch_size: int = 1, mode: str = "fast",
                 frame: bool = True) -> None:
    _WORKER["fault_hook"] = fault_hook
    _WORKER["timeout_s"] = timeout_s
    _WORKER["batch"] = batch
    _WORKER["batch_size"] = batch_size
    _WORKER["mode"] = mode
    _WORKER["frame"] = frame


def _timeout_unavailable(seconds: float, why: str) -> None:
    """A timeout was requested but cannot be armed here: degrade to an
    unbudgeted run (warn once per occurrence, count it) rather than
    failing the task."""
    get_metrics().inc("sweep.timeout_unavailable")
    warn("per-task timeout %.3gs unavailable (%s); running without a "
         "wall-clock budget", seconds, why)


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`TaskTimeout` if the block runs longer than
    ``seconds``.

    SIGALRM-based, so it only works on POSIX and only on the main
    thread.  Anywhere else a requested timeout degrades gracefully:
    the block runs without a budget, a warning is logged and the
    ``sweep.timeout_unavailable`` counter records the degradation.
    """
    if not seconds:
        yield
        return
    if not hasattr(signal, "SIGALRM"):
        _timeout_unavailable(seconds, "platform lacks signal.SIGALRM")
        yield
        return

    def _alarm(signum, frame):
        raise TaskTimeout(f"task exceeded {seconds:g}s budget")

    try:
        old = signal.signal(signal.SIGALRM, _alarm)
    except ValueError:  # not in the main thread
        _timeout_unavailable(seconds, "not on the main thread")
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


def _execute_task(task) -> Dict:
    """One (app, node) simulation, with fault hook and timeout applied."""
    idx, attempt, app_name, node, n_ranks = task
    reg = get_metrics()
    with reg.span("sweep.task"), _deadline(_WORKER["timeout_s"]):
        hook = _WORKER["fault_hook"]
        if hook is not None:
            hook(app_name, node, attempt)
        return _musa_for(app_name).simulate_node(
            node, n_ranks=n_ranks, mode=str(_WORKER["mode"])).record()


def _execute_batch(batch) -> Tuple[List[Tuple], Optional[BaseException]]:
    """One app x config-batch evaluation (the batched task shape).

    ``batch`` is a list of ``(idx, attempt, app_name, node, n_ranks)``
    tuples sharing one ``app_name``.  Semantics mirror running each
    member through :func:`_execute_task`:

    * the fault hook runs per member; a member whose hook raises a
      transient error fails *individually* and the rest proceed;
    * :class:`SweepAbort` from a hook stops the walk, the members
      already cleared are still evaluated and **returned** (so the
      caller can journal them before surfacing the abort), and the
      abort comes back as the second tuple element — never raised from
      here;
    * the wall-clock budget is ``timeout_s x len(batch)`` for the whole
      batch; on :class:`TaskTimeout` every member without an outcome
      fails with the timeout (entering the per-task retry path);
    * if the batched evaluator itself fails, the batch falls back to
      scalar per-config simulation (``sweep.batch.fallback`` counts
      these) — a model bug degrades throughput, not coverage.

    Returns ``(outcomes, abort)`` with outcomes shaped exactly like
    :func:`_run_chunk`'s.
    """
    reg = get_metrics()
    outcomes: List[Tuple] = []
    runnable: List[Tuple] = []
    abort: Optional[BaseException] = None
    app_name, n_ranks = batch[0][2], batch[0][4]
    mode = str(_WORKER["mode"])
    timeout_s = _WORKER["timeout_s"]
    budget = timeout_s * len(batch) if timeout_s else None
    hook = _WORKER["fault_hook"]
    reg.inc("sweep.batch.configs", len(batch))
    try:
        with reg.span("sweep.batch"), _deadline(budget):
            for task in batch:
                idx, attempt, _, node, _ = task
                if hook is not None:
                    try:
                        hook(app_name, node, attempt)
                    except SweepAbort as exc:
                        abort = exc
                        break
                    except TaskTimeout:
                        raise
                    except Exception as exc:
                        outcomes.append((idx, attempt, False,
                                         f"{type(exc).__name__}: {exc}"))
                        continue
                runnable.append(task)
            if runnable:
                ok_payloads = None
                evaluator = _evaluator_for(app_name)
                nodes = [t[3] for t in runnable]
                try:
                    if _WORKER.get("frame", True):
                        # Columnar path: one frame for the whole batch;
                        # outcomes carry lazy row views of it, so the
                        # journal can write one block line per shard
                        # and no record dicts are ever materialized.
                        res_frame = evaluator.evaluate_frame(
                            nodes, n_ranks=n_ranks, mode=mode)
                        ok_payloads = res_frame.rows()
                    else:
                        results = evaluator.evaluate(
                            nodes, n_ranks=n_ranks, mode=mode)
                        ok_payloads = [r.record() for r in results]
                except (SweepAbort, TaskTimeout):
                    raise
                except Exception:
                    reg.inc("sweep.batch.fallback")
                if ok_payloads is not None:
                    for task, payload in zip(runnable, ok_payloads):
                        outcomes.append((task[0], task[1], True, payload))
                else:
                    for task in runnable:  # scalar fallback; hooks already ran
                        idx, attempt, _, node, _ = task
                        try:
                            rec = _musa_for(app_name).simulate_node(
                                node, n_ranks=n_ranks, mode=mode).record()
                        except TaskTimeout:
                            raise
                        except Exception as exc:
                            outcomes.append((idx, attempt, False,
                                             f"{type(exc).__name__}: {exc}"))
                        else:
                            outcomes.append((idx, attempt, True, rec))
    except TaskTimeout as exc:
        if abort is None:
            done = {o[0] for o in outcomes}
            msg = f"{type(exc).__name__}: {exc}"
            for task in batch:
                if task[0] not in done:
                    outcomes.append((task[0], task[1], False, msg))
        # With an abort pending, evaluated-but-unrecorded members simply
        # stay un-journaled; the resumed campaign redoes them.
    return outcomes, abort


def _iter_batches(chunk, batch_size: int):
    """Split a task chunk into maximal runs of consecutive same-app
    tasks, capped at ``batch_size``."""
    i = 0
    while i < len(chunk):
        j = i + 1
        while (j < len(chunk) and j - i < batch_size
               and chunk[j][2] == chunk[i][2]):
            j += 1
        yield list(chunk[i:j])
        i = j


def _run_chunk(chunk) -> Tuple[List[Tuple], Dict]:
    """Run a chunk of tasks in a worker; never raises for per-task
    failures (:class:`SweepAbort` excepted), so the pool stays alive.

    Returns ``(outcomes, metrics_delta)`` where each outcome is
    ``(idx, attempt, ok, record_or_error)``.  The delta is recorded in
    a fresh chunk-local registry (swapped in for the chunk's duration,
    then folded into the worker's persistent one) so its timer
    ``max_s`` values are true per-interval maxima — snapshot
    subtraction would report the worker's *all-time* max for every
    chunk, inflating parent-merged spans.
    """
    chunk_reg = MetricsRegistry()
    prev = set_metrics(chunk_reg)
    outcomes: List[Tuple] = []
    try:
        batch_size = int(_WORKER.get("batch_size") or 1)
        if _WORKER.get("batch") and batch_size > 1:
            for batch in _iter_batches(chunk, batch_size):
                try:
                    out, abort = _execute_batch(batch)
                except SweepAbort:
                    raise
                except Exception as exc:
                    out = [(t[0], t[1], False, f"{type(exc).__name__}: {exc}")
                           for t in batch]
                    abort = None
                outcomes.extend(out)
                if abort is not None:
                    raise abort
        else:
            for task in chunk:
                idx, attempt = task[0], task[1]
                try:
                    outcomes.append((idx, attempt, True, _execute_task(task)))
                except SweepAbort:
                    raise
                except Exception as exc:
                    outcomes.append((idx, attempt, False,
                                     f"{type(exc).__name__}: {exc}"))
    finally:
        set_metrics(prev)
        prev.merge(chunk_reg.snapshot())
    return outcomes, chunk_reg.snapshot()


# ---------------------------------------------------------- frame IPC wire

def _pack_outcomes(outcomes: List[Tuple]) -> Tuple[List[Tuple], List[Tuple]]:
    """Wire-encode a chunk's outcomes for the results queue.

    Frame-backed success payloads collapse to ``("__row__", fi, row)``
    references into a side list of packed frames — each distinct frame
    crosses the process boundary once (as one ndarray pickle, or a
    shared-memory segment when large), instead of N per-row pickles.
    Returns ``(wire_outcomes, packed_frames)``.
    """
    frames: List = []
    frame_slot: Dict[int, int] = {}
    wire: List[Tuple] = []
    for idx, attempt, ok, payload in outcomes:
        if ok and type(payload) is FrameRow:
            fi = frame_slot.get(id(payload.frame))
            if fi is None:
                fi = frame_slot[id(payload.frame)] = len(frames)
                frames.append(payload.frame)
            wire.append((idx, attempt, ok, ("__row__", fi, payload.index)))
        else:
            wire.append((idx, attempt, ok, payload))
    return wire, [pack_frame(f) for f in frames]


def _unpack_outcomes(wire: List[Tuple], packed: List[Tuple]) -> List[Tuple]:
    """Decode :func:`_pack_outcomes` output on the parent side.

    Counts each frame's transport (``sweep.ipc.shm`` /
    ``sweep.ipc.pickle``) and rebinds row references to the
    reconstructed frames.
    """
    reg = get_metrics()
    frames = []
    for transport, payload in packed:
        reg.inc(f"sweep.ipc.{transport}")
        frames.append(unpack_frame(transport, payload))
    out: List[Tuple] = []
    for idx, attempt, ok, payload in wire:
        if (ok and type(payload) is tuple and len(payload) == 3
                and payload[0] == "__row__"):
            _, fi, row = payload
            payload = frames[fi].row(row)
        out.append((idx, attempt, ok, payload))
    return out


# ------------------------------------------------------------ parent side

def sweep_configs(
    app_names: Sequence[str],
    space: Iterable[NodeConfig],
) -> List:
    """Materialize (app, node) work items in deterministic order."""
    configs = list(space)
    return [(app, node) for app in app_names for node in configs]


class _TaskTable:
    """Lazy (app, node) view in app-major x space row-major order.

    Indexable like the materialized :func:`sweep_configs` list but
    builds each :class:`NodeConfig` on demand through
    ``DesignSpace.config_at``, so scheduling a million-point range
    space costs index arithmetic, not a million dataclasses.
    """

    def __init__(self, app_names: Sequence[str], space: DesignSpace) -> None:
        self.app_names = list(app_names)
        self.space = space
        self.n_configs = len(space)

    def __len__(self) -> int:
        return len(self.app_names) * self.n_configs

    def __getitem__(self, idx: int) -> Tuple[str, NodeConfig]:
        if not 0 <= idx < len(self):
            raise IndexError(idx)
        app_i, cfg_i = divmod(idx, self.n_configs)
        return self.app_names[app_i], self.space.config_at(cfg_i)


def _parse_shard(shard) -> Optional[Tuple[int, int]]:
    """Normalize a ``"K/N"`` string or ``(K, N)`` pair; None passes."""
    if shard is None:
        return None
    if isinstance(shard, str):
        try:
            k, n = (int(p) for p in shard.split("/"))
        except ValueError:
            raise ValueError(f"shard must be 'K/N', got {shard!r}") from None
    else:
        k, n = shard
    if n < 1 or not 0 <= k < n:
        raise ValueError(f"shard must satisfy 0 <= K < N, got {k}/{n}")
    return int(k), int(n)


def _failure_stub(app_name: str, node: NodeConfig, error: str,
                  attempts: int) -> Dict:
    """A result-shaped record marking a task that exhausted its retries."""
    ax = node.axis_values()
    return {
        "app": app_name,
        "core": ax["core"], "cache": ax["cache"], "memory": ax["memory"],
        "frequency": ax["frequency"], "vector": ax["vector"],
        "cores": ax["cores"],
        "failed": True,
        "error": error,
        "attempts": attempts,
    }


class _Scheduler:
    """Shared bookkeeping for the inline and pooled schedulers: retry
    queue with exponential backoff, journaling, metrics, progress."""

    def __init__(self, tasks, reg, journal, meter, max_retries,
                 retry_backoff_s):
        self.tasks = tasks
        self.reg = reg
        self.journal = journal
        self.meter = meter
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.completed: Dict[int, Dict] = {}
        self.queue: deque = deque()
        self.retry_heap: List[Tuple[float, int, int]] = []

    def promote_ready_retries(self) -> None:
        now = time.monotonic()
        while self.retry_heap and self.retry_heap[0][0] <= now:
            _, idx, attempt = heappop(self.retry_heap)
            self.queue.append((idx, attempt))

    def next_retry_delay(self) -> Optional[float]:
        if not self.retry_heap:
            return None
        return max(0.0, self.retry_heap[0][0] - time.monotonic())

    def pending(self) -> bool:
        return bool(self.queue or self.retry_heap)

    def _finish(self, idx: int, record: Dict,
                journal: bool = True) -> None:
        self.completed[idx] = record
        if journal and self.journal is not None:
            self.journal.append(record)
        if self.meter is not None:
            self.meter.update()

    def record_outcomes(self, outcomes: Sequence[Tuple]) -> None:
        """Record a shard's outcomes, journaling frame-backed successes
        as one columnar block line per frame.

        Failures and scalar successes keep the per-record path
        unchanged; retry/stub/metrics semantics are identical to
        calling :meth:`record_outcome` per outcome.
        """
        frame_rows: Dict[int, List[FrameRow]] = {}
        for idx, attempt, ok, payload in outcomes:
            if ok and type(payload) is FrameRow and self.journal is not None:
                frame_rows.setdefault(id(payload.frame), []).append(payload)
                self.reg.inc("sweep.tasks.completed")
                self._finish(idx, payload, journal=False)
            else:
                self.record_outcome(idx, attempt, ok, payload)
        for rows in frame_rows.values():
            frame = rows[0].frame
            if len(rows) != len(frame):
                frame = frame.select([r.index for r in rows])
            self.journal.append_frame(frame)

    def record_outcome(self, idx: int, attempt: int, ok: bool,
                       payload) -> None:
        if ok:
            self.reg.inc("sweep.tasks.completed")
            self._finish(idx, payload)
            return
        self.reg.inc("sweep.faults")
        if attempt < self.max_retries:
            self.reg.inc("sweep.retries")
            delay = self.retry_backoff_s * (2 ** attempt)
            heappush(self.retry_heap,
                     (time.monotonic() + delay, idx, attempt + 1))
            return
        app_name, node = self.tasks[idx]
        self.reg.inc("sweep.tasks.failed")
        self._finish(idx, _failure_stub(app_name, node, str(payload),
                                        attempt + 1))


def _pop_batch(sched: _Scheduler, n_ranks: int, batch_size: int) -> List:
    """Pop a maximal run of queued tasks sharing the front task's app."""
    idx, attempt = sched.queue.popleft()
    app_name, node = sched.tasks[idx]
    batch = [(idx, attempt, app_name, node, n_ranks)]
    while sched.queue and len(batch) < batch_size:
        nxt_idx = sched.queue[0][0]
        if sched.tasks[nxt_idx][0] != app_name:
            break
        idx, attempt = sched.queue.popleft()
        _, node = sched.tasks[idx]
        batch.append((idx, attempt, app_name, node, n_ranks))
    return batch


def _run_inline(sched: _Scheduler, n_ranks: int) -> None:
    batch_size = int(_WORKER.get("batch_size") or 1)
    batched = bool(_WORKER.get("batch")) and batch_size > 1
    while sched.pending():
        sched.promote_ready_retries()
        if not sched.queue:
            time.sleep(min(sched.next_retry_delay() or 0.0, 0.05))
            continue
        if batched:
            batch = _pop_batch(sched, n_ranks, batch_size)
            sched.reg.inc("sweep.shards")
            try:
                outcomes, abort = _execute_batch(batch)
            except Exception as exc:
                outcomes = [(t[0], t[1], False,
                             f"{type(exc).__name__}: {exc}") for t in batch]
                abort = None
            sched.record_outcomes(outcomes)
            if abort is not None:
                # Pre-abort members are journaled above before the
                # campaign stops — a resume skips them.
                raise abort
            continue
        idx, attempt = sched.queue.popleft()
        app_name, node = sched.tasks[idx]
        sched.reg.inc("sweep.shards")
        try:
            rec = _execute_task((idx, attempt, app_name, node, n_ranks))
        except SweepAbort:
            raise
        except Exception as exc:
            sched.record_outcome(idx, attempt, False,
                                 f"{type(exc).__name__}: {exc}")
        else:
            sched.record_outcome(idx, attempt, True, rec)


def _drain_ready(sched: _Scheduler, inflight: Dict[int, object],
                 ready: Sequence[int]) -> None:
    """Collect every ready chunk result, then surface any abort.

    A chunk whose ``.get()`` raises :class:`SweepAbort` must not
    discard the *other* ready chunks' completed outcomes and metrics
    deltas: those are drained (and journaled through the scheduler)
    first, and the abort is re-raised only after all ready handles have
    been recorded — so a resume does not redo finished work.
    """
    abort: Optional[BaseException] = None
    for h in ready:
        try:
            outcomes, delta = inflight.pop(h).get()
        except SweepAbort as exc:
            if abort is None:
                abort = exc
            continue
        sched.reg.merge(delta)
        recorder = getattr(sched, "record_outcomes", None)
        if recorder is not None:
            recorder(outcomes)
        else:  # minimal scheduler doubles (tests) only record per-task
            for idx, attempt, ok, payload in outcomes:
                sched.record_outcome(idx, attempt, ok, payload)
    if abort is not None:
        raise abort


def _pool_context():
    """Multiprocessing context for sweep workers.

    Fork where available (cheap workers; parent traces shared via COW);
    on spawn-only platforms the degradation is counted
    (``sweep.ctx.spawn``) and warned about instead of crashing the
    sweep.
    """
    try:
        return get_context("fork")
    except ValueError:
        get_metrics().inc("sweep.ctx.spawn")
        warn("fork start method unavailable; using spawn workers "
             "(slower start-up, traces not shared copy-on-write)")
        return get_context("spawn")


def _worker_main(inbox, results, init_args) -> None:
    """Shard-worker loop: pull ``(shard_id, chunk)`` from the private
    inbox, run it, push ``(shard_id, status, payload)`` to the shared
    results queue.  ``None`` is the shutdown sentinel.  Nothing short
    of process death escapes: per-task failures are outcomes, a
    :class:`SweepAbort` is shipped as a message, and any other escape
    fails the whole shard into the retry path.
    """
    _init_worker(*init_args)
    while True:
        item = inbox.get()
        if item is None:
            return
        shard_id, chunk = item
        try:
            outcomes, delta = _run_chunk(chunk)
            wire, packed = _pack_outcomes(outcomes)
            results.put((shard_id, "ok", (wire, packed, delta)))
        except SweepAbort as exc:
            results.put((shard_id, "abort", str(exc)))
        except BaseException as exc:  # keep the worker alive
            results.put((shard_id, "err",
                         ([(t[0], t[1]) for t in chunk],
                          f"{type(exc).__name__}: {exc}")))


class _ShardResult:
    """Handle-shaped view of one finished shard message, so the shared
    abort-draining logic (:func:`_drain_ready`, directly unit-tested)
    works unchanged on queue messages."""

    __slots__ = ("_status", "_payload")

    def __init__(self, status: str, payload) -> None:
        self._status = status
        self._payload = payload

    def get(self):
        if self._status == "abort":
            raise SweepAbort(self._payload)
        if self._status == "err":
            pairs, msg = self._payload
            return ([(idx, attempt, False, msg) for idx, attempt in pairs],
                    {})
        wire, packed, delta = self._payload
        return _unpack_outcomes(wire, packed), delta


def _pop_chunk(sched: _Scheduler, n_ranks: int, chunk_size: int) -> List:
    """Pop one shard: a run of queued same-app tasks, <= chunk_size."""
    idx, attempt = sched.queue.popleft()
    app_name, node = sched.tasks[idx]
    chunk = [(idx, attempt, app_name, node, n_ranks)]
    while sched.queue and len(chunk) < chunk_size:
        nxt_idx = sched.queue[0][0]
        nxt_app, nxt_node = sched.tasks[nxt_idx]
        if nxt_app != app_name:
            break
        idx, attempt = sched.queue.popleft()
        chunk.append((idx, attempt, app_name, nxt_node, n_ranks))
    return chunk


def _make_shards(sched: _Scheduler, n_ranks: int, chunk_size: int) -> List:
    """Pack every queued task into app x config-batch shards."""
    shards = []
    while sched.queue:
        shards.append(_pop_chunk(sched, n_ranks, chunk_size))
    sched.reg.inc("sweep.shards", len(shards))
    return shards


def _run_pooled(sched: _Scheduler, n_ranks: int, processes: int,
                chunk_size: int, fault_hook, timeout_s, batch,
                batch_size, mode, frame: bool = True) -> None:
    """Work-stealing shard scheduler over dedicated worker processes.

    Queued tasks are packed into app x config-batch shards and dealt
    across per-worker deques.  Each worker keeps at most two shards in
    flight (one running, one buffered in its inbox); when a worker's
    deque drains, it steals the back half of the richest victim's deque
    (``sweep.steals``), so tail imbalance — slow shards, heterogeneous
    apps, a noisy machine — rebalances instead of serializing on the
    unluckiest worker.  Retries re-enter as fresh shards dealt to the
    lightest deque.  A worker process that dies mid-shard has its
    in-flight tasks pushed into the retry path and its deque
    redistributed (``sweep.worker.lost``) rather than hanging the
    campaign.
    """
    reg = sched.reg
    ctx = _pool_context()
    init_args = (fault_hook, timeout_s, batch, batch_size, mode, frame)
    results_q = ctx.Queue()
    inboxes = []
    workers = []
    for _ in range(processes):
        inbox = ctx.Queue()
        proc = ctx.Process(target=_worker_main,
                           args=(inbox, results_q, init_args), daemon=True)
        proc.start()
        inboxes.append(inbox)
        workers.append(proc)

    deques: List[deque] = [deque() for _ in range(processes)]
    alive = [True] * processes
    outstanding = [0] * processes
    owner: Dict[int, int] = {}        # shard_id -> worker slot
    shard_tasks: Dict[int, List] = {}  # shard_id -> [(idx, attempt), ...]
    next_shard = 0

    def live_slots() -> List[int]:
        return [w for w in range(processes) if alive[w]]

    def deal(shards) -> None:
        nonlocal next_shard
        slots = live_slots()
        if not slots:
            raise RuntimeError("all sweep workers died; cannot continue")
        for chunk in shards:
            w = min(slots, key=lambda j: len(deques[j]) + outstanding[j])
            deques[w].append((next_shard, chunk))
            next_shard += 1

    def dispatch(w: int) -> None:
        while alive[w] and outstanding[w] < 2:
            if not deques[w]:
                victims = [v for v in live_slots() if v != w and deques[v]]
                if not victims:
                    return
                v = max(victims, key=lambda j: len(deques[j]))
                stolen = [deques[v].pop()
                          for _ in range((len(deques[v]) + 1) // 2)]
                deques[w].extend(reversed(stolen))
                reg.inc("sweep.steals")
            shard_id, chunk = deques[w].popleft()
            owner[shard_id] = w
            shard_tasks[shard_id] = [(t[0], t[1]) for t in chunk]
            inboxes[w].put((shard_id, chunk))
            outstanding[w] += 1

    def dispatch_all() -> None:
        for w in range(processes):
            dispatch(w)

    def reap_dead() -> None:
        for w in range(processes):
            if not alive[w] or workers[w].is_alive():
                continue
            alive[w] = False
            reg.inc("sweep.worker.lost")
            warn("sweep worker %d died; requeueing its shards", w)
            for sid in [s for s, ow in owner.items() if ow == w]:
                owner.pop(sid)
                outstanding[w] -= 1
                for idx, attempt in shard_tasks.pop(sid):
                    if idx not in sched.completed:
                        sched.record_outcome(idx, attempt, False,
                                             "worker process died")
            if deques[w]:
                orphans = [chunk for _, chunk in deques[w]]
                deques[w].clear()
                deal(orphans)

    try:
        deal(_make_shards(sched, n_ranks, chunk_size))
        dispatch_all()
        while (sched.pending() or owner or any(deques)):
            sched.promote_ready_retries()
            if sched.queue:
                deal(_make_shards(sched, n_ranks, chunk_size))
                dispatch_all()
            try:
                msg = results_q.get(timeout=0.02)
            except _QueueEmpty:
                reap_dead()
                if not live_slots():
                    raise RuntimeError(
                        "all sweep workers died; cannot continue")
                continue
            ready: Dict[int, _ShardResult] = {}
            while True:
                shard_id, status, payload = msg
                w = owner.pop(shard_id)
                shard_tasks.pop(shard_id, None)
                outstanding[w] -= 1
                ready[shard_id] = _ShardResult(status, payload)
                try:
                    msg = results_q.get_nowait()
                except _QueueEmpty:
                    break
            _drain_ready(sched, ready, list(ready))
            dispatch_all()
    finally:
        for w, proc in enumerate(workers):
            if proc.is_alive():
                try:
                    inboxes[w].put_nowait(None)
                except Exception:  # pragma: no cover - full/broken pipe
                    pass
        for proc in workers:
            proc.join(timeout=2.0)
        for proc in workers:
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for q in inboxes + [results_q]:
            q.close()
            q.cancel_join_thread()


def run_sweep(
    app_names: Sequence[str],
    space: Optional[DesignSpace] = None,
    n_ranks: int = 256,
    processes: Optional[int] = None,
    progress: bool = False,
    *,
    resume: Optional[Union[str, Path]] = None,
    fsync_every: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff_s: float = 0.05,
    chunk_size: Optional[int] = None,
    fault_hook: Optional[Callable[[str, NodeConfig, int], None]] = None,
    metrics: Optional[MetricsRegistry] = None,
    batch: bool = True,
    batch_size: int = 256,
    mode: str = "fast",
    shard: Optional[Union[str, Tuple[int, int]]] = None,
    frame: bool = True,
) -> ResultSet:
    """Simulate every (application, configuration) pair.

    Parameters
    ----------
    app_names:
        Paper application names (see :data:`repro.apps.APP_NAMES`).
    space:
        Design space (default: the full 864-point Table I space).
    processes:
        Worker processes; <=1 runs inline (useful under pytest).
        Defaults to ``os.cpu_count()`` capped at 8.
    resume:
        Journal path.  Completed records are appended there as they
        finish; tasks already journaled are skipped, so re-invoking
        after a crash resumes the campaign.
    fsync_every:
        Journal fsync stride (1 = every record durable immediately).
    timeout_s:
        Per-task wall-clock budget; an overrunning task fails with
        :class:`TaskTimeout` and enters the retry path.
    max_retries:
        Attempts beyond the first before a task is recorded as a
        ``"failed": True`` stub instead of aborting the campaign.
    retry_backoff_s:
        Base of the exponential retry backoff (doubles per attempt).
    chunk_size:
        Tasks per worker dispatch (default: sized so each worker sees
        ~4 chunks, capped at ``batch_size`` so batched shards keep
        their column count — or at 32 when ``batch=False``).
    fault_hook:
        ``hook(app_name, node, attempt)`` called before each attempt;
        raising simulates a worker failure (see :class:`FailNTimes`).
    metrics:
        Registry to report into (default: the process-global one).
    batch:
        Evaluate config batches through the column-wise
        :class:`~repro.core.batch.BatchEvaluator` (the fast path; the
        results are bitwise-identical to scalar evaluation).  Disable
        to force one simulation per task.
    batch_size:
        Upper bound on configs per batched evaluation; also scales the
        batch's wall-clock budget (``timeout_s x len(batch)``).
    mode:
        ``'fast'`` (default) evaluates each point with the analytic
        communication-invariant model; ``'replay'`` splices the same
        detailed compute timings into the event-driven Dimemas-style
        MPI replay of the ``n_ranks``-rank trace (see
        :meth:`repro.core.musa.Musa.simulate_node`).  Replay tasks are
        journaled, retried and resumed exactly like fast ones, and the
        batched evaluator still amortizes the compute-timing columns.
    shard:
        ``"K/N"`` (or ``(K, N)``): run only every Nth task starting at
        K, so N hosts can split one campaign.  The returned ResultSet
        covers just this shard (canonical sub-order); give each shard
        its own ``resume=`` journal and union them with
        :func:`repro.core.checkpoint.merge_journal` — resuming the full
        sweep from the merged journal reproduces the single-process
        ResultSet byte-for-byte without re-evaluating anything.
    frame:
        Keep results columnar end-to-end (the default): batched
        evaluations return one :class:`~repro.core.frame.ResultFrame`
        per shard, workers ship it as a single pickle or shared-memory
        block (``sweep.ipc.shm`` / ``sweep.ipc.pickle``), the journal
        writes one block line per shard, and the returned ResultSet
        holds lazy row views.  ``frame=False`` forces the per-record
        dict path — the retained bit-identity oracle; both paths
        produce byte-identical journals on resume, records and digests.

    The returned ResultSet is in canonical task order regardless of
    ``processes``/``chunk_size``/``batch_size``; failed tasks appear as
    stub records (``record["failed"] is True``).
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if mode not in ("fast", "replay"):
        raise ValueError("mode must be 'fast' or 'replay'")
    space = space or DesignSpace()
    shard_kn = _parse_shard(shard)
    # Lazy task table when the space supports random access; arbitrary
    # config iterables (tests, ad-hoc lists) still materialize.
    if hasattr(space, "config_at"):
        tasks = _TaskTable(app_names, space)
    else:
        tasks = sweep_configs(app_names, space)
    if processes is None:
        processes = min(os.cpu_count() or 1, 8)

    reg = metrics or get_metrics()
    prev_reg = set_metrics(reg) if reg is not get_metrics() else None
    prev_worker = dict(_WORKER)
    journal: Optional[Journal] = None
    try:
        with reg.span("sweep.run"):
            done: Dict[Tuple, Dict] = {}
            if resume is not None:
                replayed = replay_journal(resume)
                for rec in replayed.results.lazy():
                    done[task_key(rec)] = rec

            indices = (range(len(tasks)) if shard_kn is None
                       else range(shard_kn[0], len(tasks), shard_kn[1]))
            n_resumed = 0
            if done:
                pending: List[int] = []
                for i in indices:
                    app_name, node = tasks[i]
                    ax = node.axis_values()
                    key = (app_name, ax["core"], ax["cache"], ax["memory"],
                           ax["frequency"], ax["vector"], ax["cores"])
                    if key in done:
                        n_resumed += 1
                    else:
                        pending.append(i)
            else:
                pending = list(indices)
            reg.inc("sweep.tasks.skipped", n_resumed)

            if progress and n_resumed:
                print(f"  resuming: {n_resumed} done, {len(pending)} pending",
                      flush=True)
            meter = (ProgressMeter(len(pending)) if progress and pending
                     else None)

            if resume is not None:
                journal = Journal(resume, fsync_every=fsync_every)
                if shard_kn is not None:
                    journal.append_meta({"shard": shard_kn[0],
                                         "of": shard_kn[1],
                                         "tasks": len(pending) + n_resumed})
            sched = _Scheduler(tasks, reg, journal, meter, max_retries,
                               retry_backoff_s)
            sched.queue.extend((i, 0) for i in pending)

            if processes <= 1 or len(pending) <= 1:
                _init_worker(fault_hook, timeout_s, batch, batch_size, mode,
                             frame)
                _run_inline(sched, n_ranks)
            else:
                if chunk_size is None:
                    # Coarse shards keep the batched evaluator's column
                    # count high (work-stealing absorbs the imbalance);
                    # scalar evaluation wants finer dispatch.
                    cap = batch_size if batch else 32
                    chunk_size = min(cap, max(1, len(pending)
                                              // (processes * 4)))
                _run_pooled(sched, n_ranks, processes, chunk_size,
                            fault_hook, timeout_s, batch, batch_size, mode,
                            frame)
    finally:
        if journal is not None:
            journal.close()
        _WORKER.update(prev_worker)
        if prev_reg is not None:
            set_metrics(prev_reg)

    results = ResultSet()
    for i in indices:
        if i in sched.completed:
            results.add(sched.completed[i])
        else:
            app_name, node = tasks[i]
            ax = node.axis_values()
            key = (app_name, ax["core"], ax["cache"], ax["memory"],
                   ax["frequency"], ax["vector"], ax["cores"])
            results.add(done[key])
    return results
