"""Design-space sweep driver.

Runs the full (or a restricted) design space for a set of applications,
in parallel across worker processes.  Each worker owns one lazily-built
:class:`~repro.core.musa.Musa` instance per application, so trace
generation happens once per (worker, app) and phase-detail memoization
works across the configs the worker handles — the same amortization
MUSA gets from reusing one trace for the whole campaign.
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import Dict, Iterable, List, Optional, Sequence

from ..apps.registry import get_app
from ..config.node import NodeConfig
from ..config.space import DesignSpace
from .musa import Musa
from .results import ResultSet

__all__ = ["run_sweep", "sweep_configs"]

# Per-process Musa cache (workers are forked/spawned per sweep).
_MUSA_CACHE: Dict[str, Musa] = {}


def _musa_for(app_name: str) -> Musa:
    if app_name not in _MUSA_CACHE:
        _MUSA_CACHE[app_name] = Musa(get_app(app_name))
    return _MUSA_CACHE[app_name]


def _simulate_one(task) -> Dict:
    app_name, node, n_ranks = task
    musa = _musa_for(app_name)
    return musa.simulate_node(node, n_ranks=n_ranks).record()


def sweep_configs(
    app_names: Sequence[str],
    space: Iterable[NodeConfig],
) -> List:
    """Materialize (app, node) work items in deterministic order."""
    configs = list(space)
    return [(app, node) for app in app_names for node in configs]


def run_sweep(
    app_names: Sequence[str],
    space: Optional[DesignSpace] = None,
    n_ranks: int = 256,
    processes: Optional[int] = None,
    progress: bool = False,
) -> ResultSet:
    """Simulate every (application, configuration) pair.

    Parameters
    ----------
    app_names:
        Paper application names (see :data:`repro.apps.APP_NAMES`).
    space:
        Design space (default: the full 864-point Table I space).
    processes:
        Worker processes; <=1 runs inline (useful under pytest).
        Defaults to ``os.cpu_count()`` capped at 8.
    """
    space = space or DesignSpace()
    tasks = [(app, node, n_ranks) for app in app_names for node in space]
    if processes is None:
        processes = min(os.cpu_count() or 1, 8)

    results = ResultSet()
    if processes <= 1:
        for i, task in enumerate(tasks):
            results.add(_simulate_one(task))
            if progress and (i + 1) % 200 == 0:
                print(f"  sweep: {i + 1}/{len(tasks)}", flush=True)
        return results

    try:
        ctx = get_context("fork")  # cheap workers; traces shared via COW
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = get_context("spawn")
    with ctx.Pool(processes=processes) as pool:
        chunk = max(1, len(tasks) // (processes * 8))
        for i, rec in enumerate(pool.imap(_simulate_one, tasks,
                                          chunksize=chunk)):
            results.add(rec)
            if progress and (i + 1) % 200 == 0:
                print(f"  sweep: {i + 1}/{len(tasks)}", flush=True)
    return results
