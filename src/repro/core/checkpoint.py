"""Append-only sweep journal: crash-safe record of completed work.

A full campaign is 4,320 simulations; interrupting one (timeout,
preemption, crash) should not discard completed work.  The sweep engine
appends each finished record to a JSONL journal as it completes and, on
resume, skips every (app, configuration) pair already present — the
same amortization discipline MUSA applies to its traces.

Journal format: one JSON object per line.

* **result records** — flat :class:`~repro.core.results.ResultSet`
  dicts, exactly what ``RunResult.record()`` produces;
* **failure stubs** — result-shaped dicts with ``"failed": true`` plus
  ``"error"``/``"attempts"``; these are *not* treated as done on
  resume, so a later run retries them;
* **block lines** — ``{"__frame__": {...}}`` columnar
  :class:`~repro.core.frame.ResultFrame` payloads covering N records in
  one line (DESIGN §10); replay expands them through the exact same
  dedup rules as N scalar lines, so a journal written by the columnar
  path resumes byte-for-byte like its per-record equivalent;
* a truncated final line (the torn-write crash case) is tolerated and
  dropped.

Duplicate keys keep their first occurrence; every dropped duplicate is
counted (``checkpoint.duplicates_dropped``) and logged through
:mod:`repro.obs` so silent journal corruption is visible.

Sharded campaigns add two pieces on top of this format:

* **meta lines** — ``{"__meta__": {...}}`` provenance headers (shard
  index, shard count) appended by ``repro sweep --shard K/N``; replay
  collects them but they never affect resume decisions, so a journal
  with meta lines resumes identically to one without;
* :func:`merge_journal` — unions K partial journals into one, first
  occurrence per task key winning, records written in canonical
  task-key order.  Resuming from the merged journal is byte-identical
  to resuming from a single-process journal of the same campaign.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..obs import inc as obs_inc
from ..obs import warn as obs_warn
from ..config.space import DesignSpace
from .canon import canonical_dumps, canonical_loads
from .frame import BLOCK_KEY, ResultFrame
from .results import CONFIG_KEYS, ResultSet

__all__ = [
    "Journal",
    "JournalReplay",
    "META_KEY",
    "load_checkpoint",
    "merge_journal",
    "replay_journal",
    "run_sweep_checkpointed",
    "task_key",
]

#: Field marking a journal line as shard/provenance metadata rather
#: than a task record.
META_KEY = "__meta__"


def task_key(record: Dict) -> Tuple:
    """The (app, axis...) identity of one design point."""
    return tuple(record[k] for k in CONFIG_KEYS)


class Journal:
    """Append-only JSONL writer with a bounded-loss fsync policy.

    ``fsync_every=1`` (the default) makes every record durable before
    the next task starts; larger values trade at most that many records
    of loss for fewer synchronous flushes on large campaigns.
    """

    def __init__(self, path: Union[str, Path], fsync_every: int = 1) -> None:
        if fsync_every <= 0:
            raise ValueError("fsync_every must be positive")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._since_sync = 0

    def append(self, record: Dict) -> None:
        # Canonical serialization: valid interchange JSON even for
        # non-finite floats (sentinel-encoded, never bare NaN tokens),
        # key-sorted so identical records are byte-identical lines.
        self.append_rendered(canonical_dumps(record))

    def append_rendered(self, line: str, n: int = 1) -> None:
        """Append a pre-rendered canonical JSON line covering ``n``
        records (no trailing newline in ``line``)."""
        self._fh.write(line + "\n")
        self._since_sync += n
        if self._since_sync >= self.fsync_every:
            self.flush()

    def append_frame(self, frame: ResultFrame) -> None:
        """Append one columnar block line covering ``len(frame)``
        records.

        The block counts as its record count toward the fsync budget,
        so ``fsync_every`` keeps its bounded-loss meaning; one block is
        still one write + at most one fsync, which is where the
        columnar journal path earns its throughput.
        """
        if len(frame):
            self.append_rendered(frame.to_block_line(), n=len(frame))

    def append_meta(self, meta: Dict) -> None:
        """Append a provenance header (shard identity etc.).

        Meta lines are collected by :func:`replay_journal` but ignored
        by resume logic, so they may appear anywhere in the file.
        """
        self.append({META_KEY: dict(meta)})

    def flush(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalReplay:
    """Everything a resuming sweep needs to know about a journal."""

    results: ResultSet = field(default_factory=ResultSet)
    done: Set[Tuple] = field(default_factory=set)
    failed: List[Dict] = field(default_factory=list)
    duplicates: int = 0
    corrupt_lines: int = 0
    meta: List[Dict] = field(default_factory=list)


def _frame_task_keys(frame: ResultFrame) -> List[Tuple]:
    """Per-row task keys from a block frame's columns.

    Raises ``KeyError`` when a config key column is missing, which the
    callers treat as a corrupt block line.
    """
    cols = [frame.column(k).tolist() for k in CONFIG_KEYS]
    return list(zip(*cols))


def _frame_failed_flags(frame: ResultFrame) -> Optional[List[bool]]:
    if "failed" not in frame.keys:
        return None
    return [bool(v) for v in frame.column("failed").tolist()]


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Replay a (possibly partial) journal.

    Successful records land in ``results``/``done``; failure stubs are
    collected separately so the caller can retry them; duplicates keep
    their first occurrence and are counted, as are undecodable lines.

    Failure stubs are deduplicated by task key across the whole journal
    (a task that fails on N resumed runs appends N stubs); the *latest*
    stub wins, so ``attempts`` reflects the most recent run.  A stub for
    a task that later succeeded is dropped entirely.
    """
    out = JournalReplay()
    p = Path(path)
    if not p.exists():
        return out
    stubs: Dict[Tuple, Dict] = {}
    with p.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = canonical_loads(line)
            except (json.JSONDecodeError, ValueError):
                out.corrupt_lines += 1  # truncated tail of a crashed run
                continue
            if not isinstance(record, dict):
                out.corrupt_lines += 1
                continue
            if META_KEY in record:
                out.meta.append(record[META_KEY])
                continue
            if BLOCK_KEY in record:
                # Columnar block line: expand rows through the exact
                # same dedup rules as N scalar lines (first success
                # wins, latest stub wins, stubs dropped on success).
                try:
                    frame = ResultFrame.from_block_payload(record[BLOCK_KEY])
                    keys = _frame_task_keys(frame)
                except (KeyError, ValueError, TypeError):
                    out.corrupt_lines += 1
                    continue
                failed = _frame_failed_flags(frame)
                for i, key in enumerate(keys):
                    if key in out.done:
                        out.duplicates += 1
                        continue
                    if failed is not None and failed[i]:
                        stubs[key] = frame.row(i).to_dict()
                        continue
                    out.done.add(key)
                    out.results._add_keyed(key, frame.row(i))
                    stubs.pop(key, None)
                continue
            try:
                key = task_key(record)
            except KeyError:
                out.corrupt_lines += 1  # record missing config keys
                continue
            if key in out.done:
                out.duplicates += 1
                continue
            if record.get("failed"):
                stubs[key] = record  # latest stub wins
                continue
            out.done.add(key)
            out.results.add(record, copy=False)  # freshly parsed: owned
            stubs.pop(key, None)  # the task eventually succeeded
    out.failed.extend(stubs.values())
    if out.duplicates:
        obs_inc("checkpoint.duplicates_dropped", out.duplicates)
        obs_warn(
            "journal %s: dropped %d duplicate record(s), keeping first "
            "occurrences", p, out.duplicates)
    if out.corrupt_lines:
        obs_inc("checkpoint.corrupt_lines", out.corrupt_lines)
    obs_inc("checkpoint.records_loaded", len(out.results))
    return out


def load_checkpoint(path: Union[str, Path]) -> ResultSet:
    """Load the successful records of a journal into a ResultSet.

    Tolerates a truncated final line (the crash case); duplicate
    records keep their first occurrence (each drop is warned about and
    counted through :mod:`repro.obs`); failure stubs are excluded.
    """
    return replay_journal(path).results


#: Merge pass-1 line reference: (path index, byte offset, row).
#: ``row == -1`` marks a scalar line; ``row >= 0`` indexes into a
#: columnar block line.
_LineRef = Tuple[int, int, int]


def _scan_journal(
    pi: int, p: Path,
) -> Tuple[Dict[Tuple, _LineRef], Dict[Tuple, _LineRef], int, int, List[Dict]]:
    """Streaming single-journal replay recording line references.

    Mirrors :func:`replay_journal`'s dedup/tolerance rules exactly but
    keeps only ``(path, offset, row)`` per surviving key, so merge's
    peak memory is bounded by the key index, not the record payloads.
    Returns ``(results, stubs, duplicates, corrupt_lines, meta)``.
    """
    results: Dict[Tuple, _LineRef] = {}
    stubs: Dict[Tuple, _LineRef] = {}
    done: Set[Tuple] = set()
    duplicates = corrupt = 0
    meta: List[Dict] = []
    if not p.exists():
        return results, stubs, duplicates, corrupt, meta
    with p.open("rb") as fh:
        offset = 0
        for raw in fh:
            line_off = offset
            offset += len(raw)
            line = raw.strip()
            if not line:
                continue
            try:
                record = canonical_loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError, ValueError):
                corrupt += 1
                continue
            if not isinstance(record, dict):
                corrupt += 1
                continue
            if META_KEY in record:
                meta.append(record[META_KEY])
                continue
            if BLOCK_KEY in record:
                try:
                    frame = ResultFrame.from_block_payload(record[BLOCK_KEY])
                    keys = _frame_task_keys(frame)
                except (KeyError, ValueError, TypeError):
                    corrupt += 1
                    continue
                failed = _frame_failed_flags(frame)
                for i, key in enumerate(keys):
                    if key in done:
                        duplicates += 1
                        continue
                    if failed is not None and failed[i]:
                        stubs[key] = (pi, line_off, i)
                        continue
                    done.add(key)
                    results[key] = (pi, line_off, i)
                    stubs.pop(key, None)
                continue
            try:
                key = task_key(record)
            except KeyError:
                corrupt += 1
                continue
            if key in done:
                duplicates += 1
                continue
            if record.get("failed"):
                stubs[key] = (pi, line_off, -1)
                continue
            done.add(key)
            results[key] = (pi, line_off, -1)
            stubs.pop(key, None)
    return results, stubs, duplicates, corrupt, meta


class _LineFetcher:
    """Random access to journal lines by byte offset (merge pass 2),
    with a small LRU of decoded block frames so a block is not
    re-parsed once per row."""

    def __init__(self, paths: Sequence[Path], cache_blocks: int = 16) -> None:
        self._paths = list(paths)
        self._handles: Dict[int, BinaryIO] = {}
        self._blocks: "OrderedDict[Tuple[int, int], ResultFrame]" = OrderedDict()
        self._cache_blocks = cache_blocks

    def _line(self, pi: int, offset: int) -> str:
        fh = self._handles.get(pi)
        if fh is None:
            fh = self._paths[pi].open("rb")
            self._handles[pi] = fh
        fh.seek(offset)
        return fh.readline().decode("utf-8").strip()

    def _frame(self, pi: int, offset: int) -> ResultFrame:
        key = (pi, offset)
        frame = self._blocks.get(key)
        if frame is not None:
            self._blocks.move_to_end(key)
            return frame
        payload = canonical_loads(self._line(pi, offset))
        frame = ResultFrame.from_block_payload(payload[BLOCK_KEY])
        self._blocks[key] = frame
        while len(self._blocks) > self._cache_blocks:
            self._blocks.popitem(last=False)
        return frame

    def canonical_line(self, ref: _LineRef) -> str:
        """The referenced record's canonical JSON line, byte-exact."""
        pi, offset, row = ref
        if row < 0:
            # Scalar lines may predate canonical form; re-render like
            # Journal.append always has.
            return canonical_dumps(canonical_loads(self._line(pi, offset)))
        return self._frame(pi, offset).canonical_lines()[row]

    def record(self, ref: _LineRef) -> Mapping[str, Any]:
        pi, offset, row = ref
        if row < 0:
            return canonical_loads(self._line(pi, offset))
        return self._frame(pi, offset).row(row)

    def close(self) -> None:
        for fh in self._handles.values():
            fh.close()
        self._handles.clear()


def merge_journal(
    paths: Sequence[Union[str, Path]],
    out_path: Union[str, Path],
    fsync_every: int = 64,
    collect: bool = True,
) -> JournalReplay:
    """Union K partial journals into one canonical resume journal.

    Each input is replayed with the usual tolerance (torn tails,
    duplicates, meta lines, columnar block lines); across inputs the
    **first occurrence** of a task key wins, consistent with
    single-journal dedup.  A failure stub survives only if no input
    holds a success for the same key (the latest stub wins, mirroring
    :func:`replay_journal`).  Output records are written sorted by task
    key as per-record canonical lines, so merging the same shard set in
    any path order — and any mix of block/scalar inputs — produces a
    byte-identical file, and resuming from it is byte-identical to
    resuming a single-process journal.

    The merge streams: pass 1 scans each input line-at-a-time keeping
    only ``(path, offset, row)`` references per surviving key; pass 2
    re-reads just the winning lines in key order.  Peak memory is
    bounded by the key index plus one cached block, independent of
    record payload size.

    Returns the replay of the merged content (results + surviving
    stubs); counts land under ``checkpoint.merged_*``.  With
    ``collect=False`` the returned replay carries ``done`` keys and
    counts but leaves ``results``/``failed`` empty, keeping the merge
    itself O(keys) in memory for very large campaigns.
    """
    if not paths:
        raise ValueError("merge_journal needs at least one input journal")
    path_objs = [Path(p) for p in paths]
    records: Dict[Tuple, _LineRef] = {}
    stubs: Dict[Tuple, _LineRef] = {}
    merged = JournalReplay()
    for pi, p in enumerate(path_objs):
        res_j, stubs_j, dups, corrupt, meta = _scan_journal(pi, p)
        merged.duplicates += dups
        merged.corrupt_lines += corrupt
        merged.meta.extend(meta)
        for key, ref in res_j.items():
            records.setdefault(key, ref)  # first occurrence wins
        for key, ref in stubs_j.items():
            stubs[key] = ref  # latest stub wins
    for key in records:
        stubs.pop(key, None)  # a shard eventually succeeded

    fetch = _LineFetcher(path_objs)
    try:
        out = Path(out_path)
        tmp = out.with_suffix(out.suffix + ".tmp")
        with Journal(tmp, fsync_every=fsync_every) as journal:
            for key in sorted(records):
                journal.append_rendered(fetch.canonical_line(records[key]))
            for key in sorted(stubs):
                journal.append_rendered(fetch.canonical_line(stubs[key]))
        os.replace(tmp, out)

        merged.done.update(records)
        if collect:
            for key in sorted(records):
                merged.results._add_keyed(key, fetch.record(records[key]))
            merged.failed.extend(
                dict(fetch.record(stubs[key])) for key in sorted(stubs))
    finally:
        fetch.close()
    if merged.duplicates:
        obs_inc("checkpoint.duplicates_dropped", merged.duplicates)
        obs_warn(
            "merge: dropped %d duplicate record(s), keeping first "
            "occurrences", merged.duplicates)
    if merged.corrupt_lines:
        obs_inc("checkpoint.corrupt_lines", merged.corrupt_lines)
    obs_inc("checkpoint.merged_journals", len(paths))
    obs_inc("checkpoint.merged_records", len(records))
    return merged


def run_sweep_checkpointed(
    app_names: Sequence[str],
    space: Optional[DesignSpace] = None,
    checkpoint_path: Union[str, Path] = "sweep.ckpt.jsonl",
    n_ranks: int = 256,
    flush_every: int = 1,
    progress: bool = False,
) -> ResultSet:
    """Run (or resume) a single-process sweep journaled at
    ``checkpoint_path``.

    Kept as the stable high-level entry point; since the sweep engine
    itself became journal-aware this is a thin wrapper over
    :func:`~repro.core.sweep.run_sweep` with ``resume=`` set.  Use
    ``run_sweep(..., resume=path, processes=N)`` directly for a
    parallel resumable campaign.
    """
    if flush_every <= 0:
        raise ValueError("flush_every must be positive")
    from .sweep import run_sweep  # local import: sweep imports this module

    return run_sweep(
        app_names,
        space,
        n_ranks=n_ranks,
        processes=1,
        progress=progress,
        resume=checkpoint_path,
        fsync_every=flush_every,
    )
