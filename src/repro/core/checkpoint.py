"""Checkpointed (resumable) design-space sweeps.

A full campaign is 4,320 simulations; interrupting one (timeout,
preemption, crash) should not discard completed work.  The checkpointed
driver appends each record to a JSONL file as it completes and, on
restart, skips every (app, configuration) pair already present — the
same amortization discipline MUSA applies to its traces.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Sequence, Set, Tuple, Union

from ..config.space import DesignSpace
from .results import CONFIG_KEYS, ResultSet
from .sweep import _musa_for

__all__ = ["run_sweep_checkpointed", "load_checkpoint"]


def _record_key(record: dict) -> Tuple:
    return tuple(record[k] for k in CONFIG_KEYS)


def load_checkpoint(path: Union[str, Path]) -> ResultSet:
    """Load a (possibly partial) JSONL checkpoint into a ResultSet.

    Tolerates a truncated final line (the crash case); duplicate
    records (from concurrent writers) keep their first occurrence.
    """
    results = ResultSet()
    p = Path(path)
    if not p.exists():
        return results
    seen: Set[Tuple] = set()
    with p.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated tail from an interrupted run
            key = _record_key(record)
            if key in seen:
                continue
            seen.add(key)
            results.add(record)
    return results


def run_sweep_checkpointed(
    app_names: Sequence[str],
    space: Optional[DesignSpace] = None,
    checkpoint_path: Union[str, Path] = "sweep.ckpt.jsonl",
    n_ranks: int = 256,
    flush_every: int = 1,
    progress: bool = False,
) -> ResultSet:
    """Run (or resume) a sweep with per-record checkpointing.

    Single-process by design: the bottleneck a checkpoint protects
    against is wall-clock interruption, and an appending writer must be
    unique.  For a fresh parallel campaign use
    :func:`~repro.core.sweep.run_sweep` and ``ResultSet.save``.
    """
    if flush_every <= 0:
        raise ValueError("flush_every must be positive")
    space = space or DesignSpace()
    path = Path(checkpoint_path)
    path.parent.mkdir(parents=True, exist_ok=True)

    results = load_checkpoint(path)
    done = {_record_key(r) for r in results}
    tasks = [(app, node) for app in app_names for node in space]
    pending = []
    for app, node in tasks:
        ax = node.axis_values()
        key = (app, ax["core"], ax["cache"], ax["memory"], ax["frequency"],
               ax["vector"], ax["cores"])
        if key not in done:
            pending.append((app, node))

    if progress and results:
        print(f"  resuming: {len(results)} done, {len(pending)} pending",
              flush=True)

    with path.open("a", encoding="utf-8") as fh:
        since_flush = 0
        for i, (app, node) in enumerate(pending):
            record = _musa_for(app).simulate_node(node, n_ranks=n_ranks
                                                  ).record()
            results.add(record)
            fh.write(json.dumps(record) + "\n")
            since_flush += 1
            if since_flush >= flush_every:
                fh.flush()
                os.fsync(fh.fileno())
                since_flush = 0
            if progress and (i + 1) % 200 == 0:
                print(f"  checkpointed sweep: {i + 1}/{len(pending)}",
                      flush=True)
    return results
