"""Append-only sweep journal: crash-safe record of completed work.

A full campaign is 4,320 simulations; interrupting one (timeout,
preemption, crash) should not discard completed work.  The sweep engine
appends each finished record to a JSONL journal as it completes and, on
resume, skips every (app, configuration) pair already present — the
same amortization discipline MUSA applies to its traces.

Journal format: one JSON object per line.

* **result records** — flat :class:`~repro.core.results.ResultSet`
  dicts, exactly what ``RunResult.record()`` produces;
* **failure stubs** — result-shaped dicts with ``"failed": true`` plus
  ``"error"``/``"attempts"``; these are *not* treated as done on
  resume, so a later run retries them;
* a truncated final line (the torn-write crash case) is tolerated and
  dropped.

Duplicate keys keep their first occurrence; every dropped duplicate is
counted (``checkpoint.duplicates_dropped``) and logged through
:mod:`repro.obs` so silent journal corruption is visible.

Sharded campaigns add two pieces on top of this format:

* **meta lines** — ``{"__meta__": {...}}`` provenance headers (shard
  index, shard count) appended by ``repro sweep --shard K/N``; replay
  collects them but they never affect resume decisions, so a journal
  with meta lines resumes identically to one without;
* :func:`merge_journal` — unions K partial journals into one, first
  occurrence per task key winning, records written in canonical
  task-key order.  Resuming from the merged journal is byte-identical
  to resuming from a single-process journal of the same campaign.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs import inc as obs_inc
from ..obs import warn as obs_warn
from ..config.space import DesignSpace
from .canon import canonical_dumps, canonical_loads
from .results import CONFIG_KEYS, ResultSet

__all__ = [
    "Journal",
    "JournalReplay",
    "META_KEY",
    "load_checkpoint",
    "merge_journal",
    "replay_journal",
    "run_sweep_checkpointed",
    "task_key",
]

#: Field marking a journal line as shard/provenance metadata rather
#: than a task record.
META_KEY = "__meta__"


def task_key(record: Dict) -> Tuple:
    """The (app, axis...) identity of one design point."""
    return tuple(record[k] for k in CONFIG_KEYS)


class Journal:
    """Append-only JSONL writer with a bounded-loss fsync policy.

    ``fsync_every=1`` (the default) makes every record durable before
    the next task starts; larger values trade at most that many records
    of loss for fewer synchronous flushes on large campaigns.
    """

    def __init__(self, path: Union[str, Path], fsync_every: int = 1) -> None:
        if fsync_every <= 0:
            raise ValueError("fsync_every must be positive")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._since_sync = 0

    def append(self, record: Dict) -> None:
        # Canonical serialization: valid interchange JSON even for
        # non-finite floats (sentinel-encoded, never bare NaN tokens),
        # key-sorted so identical records are byte-identical lines.
        self._fh.write(canonical_dumps(record) + "\n")
        self._since_sync += 1
        if self._since_sync >= self.fsync_every:
            self.flush()

    def append_meta(self, meta: Dict) -> None:
        """Append a provenance header (shard identity etc.).

        Meta lines are collected by :func:`replay_journal` but ignored
        by resume logic, so they may appear anywhere in the file.
        """
        self.append({META_KEY: dict(meta)})

    def flush(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._since_sync = 0

    def close(self) -> None:
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class JournalReplay:
    """Everything a resuming sweep needs to know about a journal."""

    results: ResultSet = field(default_factory=ResultSet)
    done: Set[Tuple] = field(default_factory=set)
    failed: List[Dict] = field(default_factory=list)
    duplicates: int = 0
    corrupt_lines: int = 0
    meta: List[Dict] = field(default_factory=list)


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Replay a (possibly partial) journal.

    Successful records land in ``results``/``done``; failure stubs are
    collected separately so the caller can retry them; duplicates keep
    their first occurrence and are counted, as are undecodable lines.

    Failure stubs are deduplicated by task key across the whole journal
    (a task that fails on N resumed runs appends N stubs); the *latest*
    stub wins, so ``attempts`` reflects the most recent run.  A stub for
    a task that later succeeded is dropped entirely.
    """
    out = JournalReplay()
    p = Path(path)
    if not p.exists():
        return out
    stubs: Dict[Tuple, Dict] = {}
    with p.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = canonical_loads(line)
            except (json.JSONDecodeError, ValueError):
                out.corrupt_lines += 1  # truncated tail of a crashed run
                continue
            if not isinstance(record, dict):
                out.corrupt_lines += 1
                continue
            if META_KEY in record:
                out.meta.append(record[META_KEY])
                continue
            try:
                key = task_key(record)
            except KeyError:
                out.corrupt_lines += 1  # record missing config keys
                continue
            if key in out.done:
                out.duplicates += 1
                continue
            if record.get("failed"):
                stubs[key] = record  # latest stub wins
                continue
            out.done.add(key)
            out.results.add(record)
            stubs.pop(key, None)  # the task eventually succeeded
    out.failed.extend(stubs.values())
    if out.duplicates:
        obs_inc("checkpoint.duplicates_dropped", out.duplicates)
        obs_warn(
            "journal %s: dropped %d duplicate record(s), keeping first "
            "occurrences", p, out.duplicates)
    if out.corrupt_lines:
        obs_inc("checkpoint.corrupt_lines", out.corrupt_lines)
    obs_inc("checkpoint.records_loaded", len(out.results))
    return out


def load_checkpoint(path: Union[str, Path]) -> ResultSet:
    """Load the successful records of a journal into a ResultSet.

    Tolerates a truncated final line (the crash case); duplicate
    records keep their first occurrence (each drop is warned about and
    counted through :mod:`repro.obs`); failure stubs are excluded.
    """
    return replay_journal(path).results


def merge_journal(
    paths: Sequence[Union[str, Path]],
    out_path: Union[str, Path],
    fsync_every: int = 64,
) -> JournalReplay:
    """Union K partial journals into one canonical resume journal.

    Each input is replayed with the usual tolerance (torn tails,
    duplicates, meta lines); across inputs the **first occurrence** of a
    task key wins, consistent with single-journal dedup.  A failure stub
    survives only if no input holds a success for the same key (the
    latest stub wins, mirroring :func:`replay_journal`).  Output records
    are written sorted by task key, so merging the same shard set in any
    path order produces a byte-identical file, and resuming from it is
    byte-identical to resuming a single-process journal.

    Returns the replay of the merged content (results + surviving
    stubs); counts land under ``checkpoint.merged_*``.
    """
    if not paths:
        raise ValueError("merge_journal needs at least one input journal")
    records: Dict[Tuple, Dict] = {}
    stubs: Dict[Tuple, Dict] = {}
    merged = JournalReplay()
    for path in paths:
        replay = replay_journal(path)
        merged.duplicates += replay.duplicates
        merged.corrupt_lines += replay.corrupt_lines
        merged.meta.extend(replay.meta)
        for rec in replay.results:
            records.setdefault(task_key(rec), rec)
        for stub in replay.failed:
            stubs[task_key(stub)] = stub  # latest stub wins
    for key in records:
        stubs.pop(key, None)  # a shard eventually succeeded

    out = Path(out_path)
    tmp = out.with_suffix(out.suffix + ".tmp")
    with Journal(tmp, fsync_every=fsync_every) as journal:
        for key in sorted(records):
            journal.append(records[key])
        for key in sorted(stubs):
            journal.append(stubs[key])
    os.replace(tmp, out)

    for key in sorted(records):
        merged.done.add(key)
        merged.results.add(records[key])
    merged.failed.extend(stubs[key] for key in sorted(stubs))
    obs_inc("checkpoint.merged_journals", len(paths))
    obs_inc("checkpoint.merged_records", len(merged.results))
    return merged


def run_sweep_checkpointed(
    app_names: Sequence[str],
    space: Optional[DesignSpace] = None,
    checkpoint_path: Union[str, Path] = "sweep.ckpt.jsonl",
    n_ranks: int = 256,
    flush_every: int = 1,
    progress: bool = False,
) -> ResultSet:
    """Run (or resume) a single-process sweep journaled at
    ``checkpoint_path``.

    Kept as the stable high-level entry point; since the sweep engine
    itself became journal-aware this is a thin wrapper over
    :func:`~repro.core.sweep.run_sweep` with ``resume=`` set.  Use
    ``run_sweep(..., resume=path, processes=N)`` directly for a
    parallel resumable campaign.
    """
    if flush_every <= 0:
        raise ValueError("flush_every must be positive")
    from .sweep import run_sweep  # local import: sweep imports this module

    return run_sweep(
        app_names,
        space,
        n_ranks=n_ranks,
        processes=1,
        progress=progress,
        resume=checkpoint_path,
        fsync_every=flush_every,
    )
