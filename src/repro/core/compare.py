"""Structured A/B comparison of two node configurations.

Answers the architect's everyday question — "what does moving from
node A to node B buy each workload, and what does it cost?" — as a
typed result, across any set of applications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..apps.base import AppModel
from ..apps.registry import all_apps
from ..config.node import NodeConfig
from .musa import Musa, RunResult

__all__ = ["AppDelta", "NodeComparison", "compare_nodes"]


@dataclass(frozen=True)
class AppDelta:
    """One application's movement from node A to node B."""

    app: str
    speedup: float                 # time_A / time_B (>1 = B faster)
    power_ratio: float             # power_B / power_A
    energy_ratio: Optional[float]  # energy_B / energy_A (None for HBM)
    a: RunResult
    b: RunResult

    @property
    def perf_per_watt_ratio(self) -> float:
        return self.speedup / self.power_ratio


@dataclass(frozen=True)
class NodeComparison:
    """All applications' movements between two nodes."""

    node_a: NodeConfig
    node_b: NodeConfig
    deltas: Tuple[AppDelta, ...]

    def __getitem__(self, app: str) -> AppDelta:
        for d in self.deltas:
            if d.app == app:
                return d
        raise KeyError(f"no delta for app {app!r}")

    @property
    def mean_speedup(self) -> float:
        from .metrics import geo_mean

        return geo_mean([d.speedup for d in self.deltas])

    def winners(self, threshold: float = 1.05) -> Tuple[str, ...]:
        """Apps that meaningfully profit from B."""
        return tuple(d.app for d in self.deltas if d.speedup > threshold)

    def render(self) -> str:
        from ..analysis.report import format_rows

        rows = []
        for d in self.deltas:
            rows.append([d.app, d.speedup, d.power_ratio,
                         d.energy_ratio, d.perf_per_watt_ratio])
        rows.append(["GEOMEAN", self.mean_speedup, None, None, None])
        return format_rows(
            f"A = {self.node_a.label}\nB = {self.node_b.label}",
            ["app", "speedup (B)", "power ratio", "energy ratio",
             "perf/W ratio"],
            rows)


def compare_nodes(
    node_a: NodeConfig,
    node_b: NodeConfig,
    apps: Optional[Sequence[AppModel]] = None,
    n_ranks: int = 256,
) -> NodeComparison:
    """Simulate every app on both nodes and package the deltas."""
    if node_a.label == node_b.label:
        raise ValueError("comparing a node against itself")
    app_list = list(apps) if apps is not None else all_apps()
    if not app_list:
        raise ValueError("need at least one application")
    deltas = []
    for app in app_list:
        musa = Musa(app)
        ra = musa.simulate_node(node_a, n_ranks=n_ranks)
        rb = musa.simulate_node(node_b, n_ranks=n_ranks)
        pa, pb = ra.power.known_total_w, rb.power.known_total_w
        energy = (None if ra.energy_j is None or rb.energy_j is None
                  else rb.energy_j / ra.energy_j)
        deltas.append(AppDelta(
            app=app.name,
            speedup=ra.time_ns / rb.time_ns,
            power_ratio=pb / pa if pa > 0 else float("inf"),
            energy_ratio=energy,
            a=ra, b=rb,
        ))
    return NodeComparison(node_a=node_a, node_b=node_b,
                          deltas=tuple(deltas))
