"""Columnar result frames: the SoA result data plane.

The compute kernels have been config-vectorized since PR 2, but results
still round-tripped through per-record Python dicts: the batch
evaluator spliced its column arrays into N dicts, workers pickled lists
of dicts, the journal/store serialized and hashed one record at a time,
and ``ResultSet`` copied every dict on insert.  At range-space scale
(PR 9) that dict-shaped plane dominates the wall clock — the paper's
own "data movement dominates" lesson, applied to the simulator itself.

:class:`ResultFrame` keeps a sweep's records as typed NumPy columns
plus a small schema header and makes the *canonical bytes* of each
record available without materializing dicts:

* ``canonical_lines()`` renders, column-at-a-time, the exact text
  ``canonical_dumps(record)`` would produce for each row — same key
  sort, same float ``repr``, same non-finite sentinel objects — so
  journal lines, store keys and golden digests are bit-identical to
  the dict path by construction;
* ``record_digests()`` hashes those bytes (the content address of each
  record is unchanged);
* ``to_block()``/``from_block()`` give the journal and the store a
  schema-versioned one-line-per-shard representation;
* :class:`FrameRow` is a ``Mapping`` view of one row — consumers that
  genuinely need a record see one materialized lazily, on access.

Column typing is inferred, not declared: a column holding only
(non-bool) ints becomes ``i8``, only floats/None becomes ``f8`` with a
None mask, anything else stays an object column rendered through
:func:`canonical_dumps` per distinct value.  The inference is exact —
JSON preserves the int/float distinction both ways (``2`` vs ``2.0``)
— which is what lets a frame round-trip through its block form and
re-render byte-identical lines.
"""

from __future__ import annotations

import hashlib
import json
import math
import pickle
from collections.abc import Mapping
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .canon import NONFINITE_KEY, canonical_dumps

__all__ = ["ResultFrame", "FrameRow", "BLOCK_KEY", "BLOCK_SCHEMA",
           "pack_frame", "unpack_frame", "scalar_fragment",
           "SHM_MIN_BYTES"]

#: Reserved top-level key marking a columnar block line in a journal or
#: store file.  Like ``NONFINITE_KEY`` it may not appear in user
#: records, so a reader can never confuse a block with a record.
BLOCK_KEY = "__frame__"

#: Version of the block payload layout.  Bump on any change to the
#: column encoding; readers reject versions they do not understand
#: rather than misparse them.
BLOCK_SCHEMA = 1

#: Frames whose pickled payload is at least this large ship between
#: sweep workers via ``multiprocessing.shared_memory`` (one bulk copy)
#: instead of the results queue's pipe.  Below it the queue pickle is
#: cheaper than a segment create/attach round trip.
SHM_MIN_BYTES = 64 * 1024

_KINDS = ("i8", "f8", "obj")


def _infer_column(values: Sequence[Any]) -> Tuple[str, Any, Any]:
    """Classify one column; returns ``(kind, array, none_mask)``.

    ``bool`` is excluded from ``i8`` (it is an ``int`` subclass but
    canonically renders ``true``/``false``), and ints beyond 2**63-1
    fall back to the object column rather than overflow.
    """
    all_int = True
    all_float = True
    has_none = False
    for v in values:
        if type(v) is int and -(2 ** 63) <= v < 2 ** 63:
            all_float = False
        elif type(v) is float:
            all_int = False
        elif v is None:
            all_int = False
            has_none = True
        else:
            all_int = all_float = False
            break
    if values and all_int:
        return "i8", np.array(values, dtype=np.int64), None
    if values and all_float:
        if has_none:
            mask = np.array([v is None for v in values], dtype=bool)
            arr = np.array([0.0 if v is None else v for v in values],
                           dtype=np.float64)
            return "f8", arr, mask
        return "f8", np.array(values, dtype=np.float64), None
    return "obj", _object_array(values), None


def _object_array(values: Sequence[Any]) -> np.ndarray:
    """A 1-D object array holding ``values`` as-is.

    ``np.array(values, dtype=object)`` auto-nests equal-length sequence
    cells into a 2-D array, corrupting list-valued cells; element-wise
    assignment keeps every cell the original Python object.
    """
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


def _float_fragment(x: float) -> str:
    """Canonical JSON text of one float (matches ``canonical_dumps``)."""
    if math.isnan(x):
        return '{"__nonfinite__":"nan"}'
    if math.isinf(x):
        return ('{"__nonfinite__":"inf"}' if x > 0
                else '{"__nonfinite__":"-inf"}')
    return repr(x)


def scalar_fragment(v: Any) -> str:
    """Canonical JSON text of one scalar value.

    Byte-identical to ``canonical_dumps(v)`` — this is the splice
    primitive for hand-rendered canonical text (store keys, canonical
    lines) that must hash like the dict path.
    """
    if v is None:
        return "null"
    if v is True:
        return "true"
    if v is False:
        return "false"
    if type(v) is int:
        return str(v)
    if type(v) is float:
        return _float_fragment(v)
    return canonical_dumps(v)


class FrameRow(Mapping):
    """Read-only ``Mapping`` view of one frame row.

    Scalars materialize on key access (``int``/``float``/``None`` with
    the exact Python types the dict path produced).  ``Mapping``
    equality makes ``row == record_dict`` hold both ways, so existing
    consumers that compare records keep working unchanged.
    """

    __slots__ = ("_frame", "_i")

    def __init__(self, frame: "ResultFrame", i: int):
        self._frame = frame
        self._i = i

    def __getitem__(self, key: str) -> Any:
        return self._frame.cell(key, self._i)

    def __iter__(self) -> Iterator[str]:
        return iter(self._frame.keys)

    def __len__(self) -> int:
        return len(self._frame.keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrameRow({dict(self)!r})"

    @property
    def frame(self) -> "ResultFrame":
        return self._frame

    @property
    def index(self) -> int:
        return self._i

    def to_dict(self) -> Dict[str, Any]:
        """Materialize the row as a plain record dict (schema order)."""
        return {k: self._frame.cell(k, self._i) for k in self._frame.keys}


class ResultFrame:
    """Immutable columnar batch of result records with one schema.

    Construct via :meth:`from_records` or :meth:`from_columns`; rows
    are exposed as :class:`FrameRow` views through :meth:`row`.
    """

    __slots__ = ("keys", "_cols", "_n", "_lines", "_digests")

    def __init__(self, keys: Tuple[str, ...],
                 cols: Dict[str, Tuple[str, Any, Any]], n: int):
        self.keys = keys
        self._cols = cols          # key -> (kind, array, none_mask|None)
        self._n = n
        self._lines: Optional[List[str]] = None
        self._digests: Optional[List[str]] = None

    # -- construction --------------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Mapping]) -> "ResultFrame":
        """Build a frame from uniform-schema record dicts."""
        records = list(records)
        if not records:
            return cls((), {}, 0)
        keys = tuple(records[0].keys())
        key_set = set(keys)
        if len(key_set) != len(keys):
            raise ValueError("duplicate keys in record")
        if NONFINITE_KEY in key_set or BLOCK_KEY in key_set:
            raise ValueError("record uses a reserved key")
        for r in records[1:]:
            if set(r.keys()) != key_set:
                raise ValueError(
                    "records do not share one schema: "
                    f"{sorted(key_set)} vs {sorted(r.keys())}")
        cols = {k: _infer_column([r[k] for r in records]) for k in keys}
        return cls(keys, cols, len(records))

    @classmethod
    def from_columns(cls, keys: Sequence[str],
                     columns: Mapping[str, Any]) -> "ResultFrame":
        """Build a frame from ready-made columns.

        Each column is an ``np.int64`` array, an ``np.float64`` array
        (optionally a ``(values, none_mask)`` pair), an object array,
        or a plain list (inferred like :meth:`from_records`).  This is
        the zero-copy path the batch evaluator uses: float64 columns it
        computed are adopted as-is.
        """
        keys = tuple(keys)
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys")
        cols: Dict[str, Tuple[str, Any, Any]] = {}
        n = None
        for k in keys:
            col = columns[k]
            mask = None
            if isinstance(col, tuple):
                col, mask = col
            if isinstance(col, np.ndarray):
                if col.dtype == np.int64:
                    kind = "i8"
                elif col.dtype == np.float64:
                    kind = "f8"
                elif col.dtype == object:
                    kind = "obj"
                else:
                    raise ValueError(
                        f"column {k!r}: unsupported dtype {col.dtype}")
                if mask is not None:
                    if kind != "f8":
                        raise ValueError(
                            f"column {k!r}: none-mask on non-f8 column")
                    mask = np.asarray(mask, dtype=bool)
                cols[k] = (kind, col, mask)
            else:
                cols[k] = _infer_column(list(col))
            m = len(cols[k][1])
            if n is None:
                n = m
            elif m != n:
                raise ValueError(
                    f"column {k!r}: length {m} != {n}")
        return cls(keys, cols, n or 0)

    # -- basic access --------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def row(self, i: int) -> FrameRow:
        if not 0 <= i < self._n:
            raise IndexError(i)
        return FrameRow(self, i)

    def rows(self) -> Iterator[FrameRow]:
        return (FrameRow(self, i) for i in range(self._n))

    def cell(self, key: str, i: int) -> Any:
        kind, arr, mask = self._cols[key]
        if kind == "i8":
            return int(arr[i])
        if kind == "f8":
            if mask is not None and mask[i]:
                return None
            return float(arr[i])
        return arr[i]

    def column(self, key: str) -> Any:
        """The raw column array (f8 columns: None cells read as NaN)."""
        kind, arr, mask = self._cols[key]
        if kind == "f8" and mask is not None:
            arr = np.where(mask, np.nan, arr)
        return arr

    def column_kind(self, key: str) -> str:
        return self._cols[key][0]

    def none_mask(self, key: str) -> Optional[np.ndarray]:
        return self._cols[key][2]

    def to_records(self) -> List[Dict[str, Any]]:
        return [self.row(i).to_dict() for i in range(self._n)]

    def select(self, indices: Sequence[int]) -> "ResultFrame":
        """New frame holding the given rows, in the given order."""
        idx = np.asarray(indices, dtype=np.intp)
        cols = {}
        for k, (kind, arr, mask) in self._cols.items():
            cols[k] = (kind, arr[idx],
                       None if mask is None else mask[idx])
        out = ResultFrame(self.keys, cols, len(idx))
        if self._lines is not None:
            out._lines = [self._lines[i] for i in idx]
        if self._digests is not None:
            out._digests = [self._digests[i] for i in idx]
        return out

    # -- canonical rendering -------------------------------------------

    def _fragments(self, key: str) -> List[str]:
        kind, arr, mask = self._cols[key]
        if kind == "i8":
            return [str(v) for v in arr.tolist()]
        if kind == "f8":
            vals = arr.tolist()
            if mask is None:
                return [_float_fragment(v) for v in vals]
            return ["null" if m else _float_fragment(v)
                    for v, m in zip(vals, mask.tolist())]
        # Object column: full canonical encoding, memoized per distinct
        # value (axis labels repeat heavily across a sweep).  The memo
        # keys on (type, value): ``False == 0`` and ``1 == 1.0`` hash
        # alike but render differently.
        memo: Dict[Any, str] = {}
        out = []
        for v in arr.tolist():
            try:
                frag = memo.get((type(v), v))
            except TypeError:        # unhashable (nested list/dict)
                out.append(canonical_dumps(v))
                continue
            if frag is None:
                frag = canonical_dumps(v)
                memo[(type(v), v)] = frag
            out.append(frag)
        return out

    def canonical_lines(self) -> List[str]:
        """Per-row canonical JSON, bit-identical to the dict path.

        Row ``i``'s text equals ``canonical_dumps(self.row(i).to_dict())``
        — same sorted keys, compact separators, float ``repr`` and
        non-finite sentinels — because every fragment renderer mirrors
        one ``json.dumps`` rule exactly.  Cached: the journal, the
        digests and the store all reuse one rendering.
        """
        if self._lines is None:
            if self._n == 0:
                self._lines = []
            else:
                skeys = sorted(self.keys)
                heads = [("{" if j == 0 else ",") + json.dumps(k) + ":"
                         for j, k in enumerate(skeys)]
                frag_cols = [self._fragments(k) for k in skeys]
                lines = []
                for i in range(self._n):
                    parts: List[str] = []
                    for head, frags in zip(heads, frag_cols):
                        parts.append(head)
                        parts.append(frags[i])
                    parts.append("}")
                    lines.append("".join(parts))
                self._lines = lines
        return self._lines

    def record_digests(self) -> List[str]:
        """Hex SHA-256 of each row's canonical bytes (content address)."""
        if self._digests is None:
            sha = hashlib.sha256
            self._digests = [sha(line.encode("utf-8")).hexdigest()
                             for line in self.canonical_lines()]
        return self._digests

    # -- block (journal / store) form ----------------------------------

    def to_block_payload(self) -> Dict[str, Any]:
        """The schema-versioned column payload of a block line."""
        cols: Dict[str, Any] = {}
        kinds: Dict[str, str] = {}
        for k in self.keys:
            kind, arr, mask = self._cols[k]
            kinds[k] = kind
            if kind == "f8" and mask is not None:
                vals = arr.tolist()
                cols[k] = [None if m else v
                           for v, m in zip(vals, mask.tolist())]
            else:
                cols[k] = arr.tolist()
        return {"schema": BLOCK_SCHEMA, "n": self._n,
                "keys": list(self.keys), "kinds": kinds, "cols": cols}

    def to_block_line(self) -> str:
        """One canonical JSONL line carrying the whole frame."""
        return canonical_dumps({BLOCK_KEY: self.to_block_payload()})

    @classmethod
    def from_block_payload(cls, payload: Mapping[str, Any]) -> "ResultFrame":
        schema = payload.get("schema")
        if schema != BLOCK_SCHEMA:
            raise ValueError(f"unsupported frame block schema: {schema!r}")
        keys = tuple(payload["keys"])
        n = int(payload["n"])
        kinds = payload["kinds"]
        cols: Dict[str, Tuple[str, Any, Any]] = {}
        for k in keys:
            kind = kinds[k]
            vals = payload["cols"][k]
            if len(vals) != n:
                raise ValueError(f"column {k!r}: length {len(vals)} != {n}")
            if kind == "i8":
                cols[k] = ("i8", np.array(vals, dtype=np.int64), None)
            elif kind == "f8":
                if any(v is None for v in vals):
                    mask = np.array([v is None for v in vals], dtype=bool)
                    arr = np.array([0.0 if v is None else v for v in vals],
                                   dtype=np.float64)
                    cols[k] = ("f8", arr, mask)
                else:
                    cols[k] = ("f8", np.array(vals, dtype=np.float64), None)
            elif kind == "obj":
                cols[k] = ("obj", _object_array(list(vals)), None)
            else:
                raise ValueError(f"column {k!r}: unknown kind {kind!r}")
        return cls(keys, cols, n)

    # -- equality (testing aid) ----------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultFrame):
            return NotImplemented
        return (self.keys == other.keys
                and len(self) == len(other)
                and self.to_records() == other.to_records())

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("ResultFrame is unhashable")


# -- worker IPC packing ------------------------------------------------------


def pack_frame(frame: ResultFrame) -> Tuple[str, Any]:
    """Pack a frame for the sweep results queue.

    Returns ``("shm", (segment_name, nbytes))`` when the pickled frame
    is large enough that a shared-memory segment beats the queue pipe
    (one bulk copy, no per-chunk pipe writes), else
    ``("pickle", frame)``.  The receiving side *must* call
    :func:`unpack_frame`, which unlinks the segment.
    """
    payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) >= SHM_MIN_BYTES:
        try:
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(create=True,
                                             size=len(payload))
        except (ImportError, OSError):
            return "pickle", frame
        try:
            seg.buf[:len(payload)] = payload
            name = seg.name
        finally:
            seg.close()
        return "shm", (name, len(payload))
    return "pickle", frame


def unpack_frame(transport: str, payload: Any) -> ResultFrame:
    """Reconstruct a frame shipped by :func:`pack_frame`.

    For the shm transport this attaches, copies out, closes and
    *unlinks* the segment — exactly-once consumption.
    """
    if transport == "pickle":
        return payload
    if transport != "shm":
        raise ValueError(f"unknown frame transport: {transport!r}")
    from multiprocessing import shared_memory
    name, nbytes = payload
    seg = shared_memory.SharedMemory(name=name)
    try:
        data = bytes(seg.buf[:nbytes])
    finally:
        seg.close()
        seg.unlink()
    return pickle.loads(data)
