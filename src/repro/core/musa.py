"""The MUSA facade: multi-scale simulation of one application.

One :class:`Musa` instance owns an application model and exposes the
paper's three simulation modes:

* **burst mode** (hardware-agnostic, Sec. V-A): runtime scheduling of
  the traced tasks on N cores, no microarchitecture — Fig. 2a/2b/3/4;
* **detailed mode** (Sec. V-B): per-phase interval-analysis timing with
  cache/bandwidth/power models for one :class:`NodeConfig`;
* **integrated runs**: detailed compute timings spliced into the
  rank-level communication model, either analytically (``fast``, used
  by the 864-point sweep — communication is configuration-invariant,
  exactly as in MUSA where Dimemas parameters are fixed) or through the
  full Dimemas-style replay (``replay``).

Phase-level results are memoized per (phase, node) so the 864-point
sweep re-simulates only what changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..apps.base import AppModel, grid_neighbors, rank_grid_dims
from ..config.node import NodeConfig
from ..network.collectives import collective_cost_ns
from ..network.model import NetworkConfig, marenostrum4_network
from ..network.replay import ReplayResult, replay
from ..obs import get_metrics
from ..power.breakdown import PowerBreakdown
from ..power.drampower import DramPowerModel
from ..power.mcpat import McPatModel
from ..runtime.scheduler import PhaseResult, simulate_phase
from ..trace.burst import BurstTrace
from ..trace.events import ComputePhase
from ..util import LruDict
from .phase_sim import PhaseDetail, simulate_phase_detailed

__all__ = ["Musa", "RunResult"]


class _LruDict(LruDict):
    """:class:`repro.util.LruDict` counting under ``musa.memo.evictions``.

    The shared implementation lives in :mod:`repro.util`; this alias
    pins Musa's historical eviction counter name (read by
    :func:`repro.obs.summarize`) and keeps the import path stable for
    callers — including
    :func:`~repro.core.phase_sim.simulate_phase_detailed`, which takes
    the timing cache as an argument.
    """

    def __init__(self, maxsize: int) -> None:
        super().__init__(maxsize, eviction_counter="musa.memo.evictions")


@dataclass(frozen=True)
class RunResult:
    """Integrated detailed-mode outcome for one (app, node) point."""

    app: str
    node: NodeConfig
    n_ranks: int
    time_ns: float
    power: PowerBreakdown
    energy_j: Optional[float]          # None for HBM (no energy data)
    mpki_l1: float
    mpki_l2: float
    mpki_l3: float
    gmem_req_per_s: float              # billions of DRAM requests / s / node
    bw_utilization: float              # peak over phases
    occupancy: float                   # busy core-time / total core-time
    compute_ns: float                  # per-iteration critical-path compute
    comm_ns: float                     # per-iteration communication

    def record(self) -> Dict:
        """Flat dict for :class:`~repro.core.results.ResultSet`."""
        ax = self.node.axis_values()
        return {
            "app": self.app,
            "core": ax["core"],
            "cache": ax["cache"],
            "memory": ax["memory"],
            "frequency": ax["frequency"],
            "vector": ax["vector"],
            "cores": ax["cores"],
            "time_ns": self.time_ns,
            "power_core_l1_w": self.power.core_l1_w,
            "power_l2_l3_w": self.power.l2_l3_w,
            "power_memory_w": self.power.memory_w,
            "power_total_w": self.power.total_w,
            "energy_j": self.energy_j,
            "mpki_l1": self.mpki_l1,
            "mpki_l2": self.mpki_l2,
            "mpki_l3": self.mpki_l3,
            "gmem_req_per_s": self.gmem_req_per_s,
            "bw_utilization": self.bw_utilization,
            "occupancy": self.occupancy,
        }


class Musa:
    """Multi-scale simulator for one application."""

    def __init__(
        self,
        app: AppModel,
        network: Optional[NetworkConfig] = None,
        mcpat: Optional[McPatModel] = None,
        drampower: Optional[DramPowerModel] = None,
        memo_cap: int = 16384,
    ) -> None:
        self.app = app
        self.network = network or marenostrum4_network()
        self.mcpat = mcpat or McPatModel()
        self.drampower = drampower or DramPowerModel()
        obs = get_metrics()
        obs.inc("musa.trace_gen")
        with obs.span("musa.trace_gen"):
            self.detailed = app.detailed_trace()
        #: one canonical iteration's phases, shared across ranks/iterations
        self.phases: Tuple[ComputePhase, ...] = app.canonical_phases()
        # Memo dicts are LRU-bounded (``memo_cap`` entries each) so a
        # long multi-app campaign's per-process caches stay flat in
        # memory; the default cap comfortably holds one app's full
        # 864-point space (phases x configs) without evicting.
        self._burst_cache: Dict[Tuple, PhaseResult] = _LruDict(memo_cap)
        self._detail_cache: Dict[Tuple, PhaseDetail] = _LruDict(memo_cap)
        self._trace_cache: Dict[Tuple, BurstTrace] = _LruDict(memo_cap)
        #: (kernel, node, share) -> resolved timing; shared across
        #: phases so kernels reused by several phases are timed once
        self._timing_cache: Dict[Tuple, Tuple] = _LruDict(memo_cap)

    # ------------------------------------------------------------------ burst

    def burst_phase(self, phase: ComputePhase, n_cores: int,
                    collect_spans: bool = False) -> PhaseResult:
        """Hardware-agnostic schedule of one phase (memoized)."""
        key = (id(phase), n_cores)
        if collect_spans:
            return simulate_phase(phase, n_cores, collect_spans=True)
        if key not in self._burst_cache:
            self._burst_cache[key] = simulate_phase(phase, n_cores)
        return self._burst_cache[key]

    def compute_region_makespan(self, n_cores: int) -> float:
        """Makespan of the representative compute region (Fig. 2a)."""
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        region = max(self.phases, key=lambda p: p.total_task_ns)
        return self.burst_phase(region, n_cores).makespan_ns

    def compute_region_speedup(self, n_cores: int) -> float:
        """Fig. 2a metric: single-region speedup vs one core."""
        return (self.compute_region_makespan(1)
                / self.compute_region_makespan(n_cores))

    def _burst_trace(self, n_ranks: int,
                     n_iterations: Optional[int]) -> BurstTrace:
        key = (n_ranks, n_iterations)
        if key not in self._trace_cache:
            self._trace_cache[key] = self.app.burst_trace(n_ranks, n_iterations)
        return self._trace_cache[key]

    def simulate_burst_full(
        self,
        n_cores: int,
        n_ranks: int = 256,
        n_iterations: Optional[int] = None,
        collect_segments: bool = False,
    ) -> ReplayResult:
        """Full-application burst-mode run: scheduling + MPI replay
        (Fig. 2b / Fig. 4)."""
        trace = self._burst_trace(n_ranks, n_iterations)
        scales = self.app.rank_scales(n_ranks)

        def duration(rank: int, phase: ComputePhase) -> float:
            return self.burst_phase(phase, n_cores).makespan_ns * scales[rank]

        return replay(trace, self.network, duration,
                      collect_segments=collect_segments)

    # --------------------------------------------------------------- detailed

    def phase_detail(self, phase: ComputePhase, node: NodeConfig,
                     collect_spans: bool = False) -> PhaseDetail:
        """Detailed-mode simulation of one phase (memoized per node)."""
        if collect_spans:
            return simulate_phase_detailed(phase, self.detailed, node,
                                           collect_spans=True,
                                           timing_cache=self._timing_cache)
        key = (id(phase), node.label)
        obs = get_metrics()
        if key not in self._detail_cache:
            obs.inc("musa.phase_detail.miss")
            self._detail_cache[key] = simulate_phase_detailed(
                phase, self.detailed, node,
                timing_cache=self._timing_cache)
        else:
            obs.inc("musa.phase_detail.hit")
        return self._detail_cache[key]

    def comm_iteration_ns(self, n_ranks: int) -> float:
        """Analytic per-iteration communication cost.

        Halo injection (sequential isend/irecv posting, pipelined
        transfers sharing the NIC) plus the iteration's collectives.
        Configuration-invariant: the network is fixed across the design
        space, as in the paper.
        """
        if n_ranks <= 0:
            raise ValueError("n_ranks must be positive")
        if n_ranks == 1:
            return 0.0
        net = self.network
        n_nb = len(grid_neighbors(0, rank_grid_dims(n_ranks)))
        halo_once = (
            2 * n_nb * net.overhead_ns
            + n_nb * self.app.halo_bytes / net.bandwidth_gbs
            + net.latency_us * 1e3
        )
        halo = halo_once * len(self.phases)  # one exchange per phase
        coll = self.app.allreduce_per_iter * collective_cost_ns(
            "allreduce", n_ranks, 8, net)
        return halo + coll

    def simulate_node(
        self,
        node: NodeConfig,
        n_ranks: int = 256,
        n_iterations: Optional[int] = None,
        mode: str = "fast",
        include_comm: bool = False,
    ) -> RunResult:
        """Integrated detailed run of the application's traced region.

        ``mode='fast'`` combines per-phase detailed makespans with the
        rank-imbalance critical path; with ``include_comm`` it adds the
        analytic communication model.  ``mode='replay'`` splices the
        same detailed timings into the full Dimemas-style replay
        (communication always included), run on the reactive
        event-driven engine — usable at the paper's 256-rank scale and
        reported through the ``replay.*`` metrics counters.  The
        design-space figures
        (Figs. 5-9) evaluate the detailed *compute region* per node —
        communication is configuration-invariant and enters only the
        scaling study (Fig. 2b) — so the sweep default excludes it.
        """
        if mode not in ("fast", "replay"):
            raise ValueError("mode must be 'fast' or 'replay'")
        obs = get_metrics()
        obs.inc("musa.simulate_node")
        with obs.span("musa.simulate_node"):
            return self._simulate_node(node, n_ranks, n_iterations, mode,
                                       include_comm)

    def _simulate_node(
        self,
        node: NodeConfig,
        n_ranks: int,
        n_iterations: Optional[int],
        mode: str,
        include_comm: bool,
    ) -> RunResult:
        n_iter = n_iterations or self.app.default_iterations
        details = [self.phase_detail(p, node) for p in self.phases]
        scales = self.app.rank_scales(n_ranks)
        max_scale = float(scales.max())
        compute_iter = sum(d.makespan_ns for d in details)
        comm_iter = self.comm_iteration_ns(n_ranks) if include_comm else 0.0

        if mode == "fast":
            total_ns = n_iter * (compute_iter * max_scale + comm_iter)
        else:
            trace = self._burst_trace(n_ranks, n_iterations)
            by_id = {id(p): d for p, d in zip(self.phases, details)}

            def duration(rank: int, phase: ComputePhase) -> float:
                return by_id[id(phase)].makespan_ns * scales[rank]

            total_ns = replay(trace, self.network, duration).total_ns

        return self._assemble_result(node, n_ranks, n_iter, details,
                                     total_ns, compute_iter, comm_iter)

    # ----------------------------------------------------------------- power

    def _assemble_result(
        self,
        node: NodeConfig,
        n_ranks: int,
        n_iter: int,
        details,
        total_ns: float,
        compute_iter: float,
        comm_iter: float,
    ) -> RunResult:
        total_s = total_ns * 1e-9
        if total_s <= 0:
            raise ValueError("run has non-positive duration")

        # Event totals for the whole run (one node, mean-scale rank).
        agg = {k: 0.0 for k in ("instr", "flops", "l1", "l2", "l3", "dram",
                                "bytes")}
        core_dyn_j = 0.0
        l2l3_dyn_j = 0.0
        row_hit_num = 0.0
        store_num = 0.0
        busy_core_ns = 0.0
        for d in details:
            lanes_eff = (d.timings[0].vectorization.effective_lanes
                         if d.timings else 1.0)
            cj, lj = self.mcpat.dynamic_energy_j(
                node,
                instructions=d.instructions,
                scalar_flops=d.scalar_flops,
                l1_accesses=d.l1_accesses,
                l2_accesses=d.l2_accesses,
                l3_accesses=d.l3_accesses,
                effective_lanes=lanes_eff,
            )
            core_dyn_j += cj * n_iter
            l2l3_dyn_j += lj * n_iter
            for key, field in (("instr", "instructions"),
                               ("flops", "scalar_flops"),
                               ("l1", "l1_accesses"), ("l2", "l2_accesses"),
                               ("l3", "l3_accesses"), ("dram", "dram_accesses"),
                               ("bytes", "dram_bytes")):
                agg[key] += getattr(d, field) * n_iter
            row_hit_num += d.row_hit_rate * d.dram_bytes * n_iter
            store_num += d.store_fraction * d.dram_accesses * n_iter
            busy_core_ns += d.busy_core_ns * n_iter

        row_hit = row_hit_num / agg["bytes"] if agg["bytes"] else 0.0
        store_frac = store_num / agg["dram"] if agg["dram"] else 0.0

        # Core + L1: dynamic while busy, spin power while idle (OpenMP
        # workers busy-wait), leakage always, on all cores.
        leak_core = self.mcpat.core_l1_leakage_w(node) * node.n_cores
        busy_frac = min(1.0, busy_core_ns / (total_ns * node.n_cores))
        idle_cores = node.n_cores * (1.0 - busy_frac)
        core_l1_w = (core_dyn_j / total_s + leak_core
                     + idle_cores * self.mcpat.idle_spin_w(node))
        # L2 + L3: dynamic + SRAM leakage.
        l2_l3_w = l2l3_dyn_j / total_s + self.mcpat.l2_l3_leakage_w(node)
        # DRAM: command rates over the whole run.  Rates use the
        # line-granular traffic (64 B per column command), which is
        # conserved under SIMD fusion.
        lines_per_s = agg["bytes"] / 64.0 / total_s
        writes_per_s = lines_per_s * store_frac
        reads_per_s = lines_per_s * (1.0 - store_frac)
        dram = self.drampower.from_rates(node.memory, reads_per_s,
                                         writes_per_s, row_hit)
        power = PowerBreakdown(
            core_l1_w=core_l1_w,
            l2_l3_w=l2_l3_w,
            memory_w=None if dram is None else dram.total_w,
        )

        return RunResult(
            app=self.app.name,
            node=node,
            n_ranks=n_ranks,
            time_ns=total_ns,
            power=power,
            energy_j=power.energy_j(total_s),
            mpki_l1=1000.0 * agg["l2"] / agg["instr"] if agg["instr"] else 0.0,
            mpki_l2=1000.0 * agg["l3"] / agg["instr"] if agg["instr"] else 0.0,
            mpki_l3=1000.0 * agg["dram"] / agg["instr"] if agg["instr"] else 0.0,
            gmem_req_per_s=agg["bytes"] / 64.0 / total_ns,
            bw_utilization=max((d.bw_utilization for d in details),
                               default=0.0),
            occupancy=busy_core_ns / (total_ns * node.n_cores),
            compute_ns=compute_iter,
            comm_ns=comm_iter,
        )
