"""Detailed simulation of one compute phase on one node configuration.

This is MUSA's detailed mode for a rank-level compute phase: kernels
are timed with the interval-analysis core model, node-level bandwidth
contention is resolved against the *occupied* core count, per-task
durations are rebuilt (preserving the trace's intra-phase imbalance),
and the runtime scheduler replays task execution.  Two passes refine
the occupancy estimate: contention depends on how many cores are busy,
which depends on the schedule, which depends on contention.

Results carry the node-level event totals the power models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..config.node import NodeConfig
from ..obs import get_metrics
from ..runtime.scheduler import PhaseResult, simulate_phase
from ..trace.detailed import DetailedTrace
from ..trace.events import ComputePhase
from ..uarch.core_model import KernelTiming, time_kernel
from ..uarch.cpu import resolve_contention

__all__ = ["PhaseDetail", "simulate_phase_detailed"]


@dataclass(frozen=True)
class PhaseDetail:
    """Detailed-mode outcome of one compute phase (whole node).

    Event totals aggregate over every task of the phase; ``busy_core_ns``
    is the sum of per-core busy time (for occupancy/power), and
    ``schedule`` the runtime-scheduler result.
    """

    makespan_ns: float
    busy_core_ns: float
    n_busy_cores: float          # effective concurrency used for sharing
    schedule: PhaseResult
    # node-level event totals for the phase
    instructions: float
    scalar_flops: float
    l1_accesses: float
    l2_accesses: float
    l3_accesses: float
    dram_accesses: float
    dram_bytes: float
    store_fraction: float        # of memory instructions
    row_hit_rate: float          # traffic-weighted
    bw_utilization: float        # of derated channel capacity
    core_dynamic_j: float        # placeholder, filled by power integration
    timings: Tuple[KernelTiming, ...]

    @property
    def occupancy(self) -> float:
        if self.makespan_ns <= 0:
            return 1.0
        return self.busy_core_ns / (self.makespan_ns * self.schedule.n_cores)


def _imbalance_factors(phase: ComputePhase) -> np.ndarray:
    """Per-task duration multipliers preserving the trace's intra-phase
    imbalance, normalized per kernel (mean 1 over each kernel's tasks).

    Zero-work tasks (empty partitions in an irregular decomposition)
    carry no re-timeable work: they get factor 1.0 and are excluded
    from the per-kernel mean so they cannot skew their siblings.
    """
    n = len(phase.tasks)
    per_unit = np.array([t.duration_ns / t.work_units if t.work_units > 0
                         else 0.0 for t in phase.tasks])
    has_work = np.array([t.work_units > 0 for t in phase.tasks])
    factors = np.ones(n)
    kernels = {t.kernel for t in phase.tasks}
    for k in kernels:
        idx = [i for i, t in enumerate(phase.tasks)
               if t.kernel == k and has_work[i]]
        if not idx:
            continue
        mean = per_unit[idx].mean()
        if mean > 0:
            factors[idx] = per_unit[idx] / mean
    return factors


def simulate_phase_detailed(
    phase: ComputePhase,
    detailed: DetailedTrace,
    node: NodeConfig,
    collect_spans: bool = False,
    n_refine: int = 2,
    timing_cache: Optional[Dict] = None,
) -> PhaseDetail:
    """Simulate ``phase`` on ``node`` in detailed mode.

    ``timing_cache`` (a plain dict owned by the caller, usually
    :class:`~repro.core.musa.Musa`) memoizes resolved kernel timings by
    ``(kernel, node, share)`` — the full (hashable) NodeConfig, not its
    display label, so two distinct configurations that happen to render
    the same label can never share timings.  Phases reusing a kernel at the
    same occupancy — common, e.g. SP-MZ runs ``sp_solve`` in three of
    its four phases — then skip the interval-analysis + contention
    solve entirely; hits/misses are counted through :mod:`repro.obs`
    as ``phase_sim.kernel_memo.*``.
    """
    obs = get_metrics()
    obs.inc("phase_sim.calls")
    with obs.span("phase_sim.simulate"):
        return _simulate_phase_detailed(phase, detailed, node,
                                        collect_spans, n_refine,
                                        timing_cache)


def _simulate_phase_detailed(
    phase: ComputePhase,
    detailed: DetailedTrace,
    node: NodeConfig,
    collect_spans: bool,
    n_refine: int,
    timing_cache: Optional[Dict] = None,
) -> PhaseDetail:
    if n_refine < 1:
        raise ValueError("n_refine must be >= 1")
    tasks = phase.tasks
    if not tasks:
        sched = simulate_phase(phase, node.n_cores)
        return PhaseDetail(
            makespan_ns=sched.makespan_ns, busy_core_ns=float(sched.busy_ns.sum()),
            n_busy_cores=0.0, schedule=sched, instructions=0.0, scalar_flops=0.0,
            l1_accesses=0.0, l2_accesses=0.0, l3_accesses=0.0, dram_accesses=0.0,
            dram_bytes=0.0, store_fraction=0.0, row_hit_rate=0.0,
            bw_utilization=0.0, core_dynamic_j=0.0, timings=(),
        )

    imb = _imbalance_factors(phase)
    work = np.array([t.work_units for t in tasks])
    kernel_names = sorted({t.kernel for t in tasks})

    # Initial concurrency estimate: can't exceed tasks or cores.
    n_busy = float(min(len(tasks), node.n_cores))

    sched: Optional[PhaseResult] = None
    timings: Dict[str, KernelTiming] = {}
    utilization = 0.0
    obs = get_metrics()
    for _ in range(n_refine):
        share = max(1, int(round(n_busy)))
        timings = {}
        utilization = 0.0
        for k in kernel_names:
            ckey = (k, node, share)
            if timing_cache is not None and ckey in timing_cache:
                obs.inc("phase_sim.kernel_memo.hit")
                timing, util = timing_cache[ckey]
            else:
                obs.inc("phase_sim.kernel_memo.miss")
                t0 = time_kernel(detailed[k], node, l3_share_cores=share)
                cont = resolve_contention(t0, share, node.memory)
                timing, util = cont.timing, cont.utilization
                if timing_cache is not None:
                    timing_cache[ckey] = (timing, util)
            timings[k] = timing
            utilization = max(utilization, util)
        durations = np.array([
            timings[t.kernel].duration_ns * t.work_units for t in tasks
        ]) * imb
        sched = simulate_phase(phase, node.n_cores,
                               task_durations_ns=durations.tolist(),
                               collect_spans=collect_spans)
        # Refine concurrency from the actual schedule: average busy cores
        # over the task-execution portion of the phase.
        exec_ns = max(sched.makespan_ns - sched.serial_ns, 1e-9)
        n_busy_new = min(
            float(node.n_cores),
            max(1.0, float(sched.busy_ns.sum()) / exec_ns),
        )
        if abs(n_busy_new - n_busy) < 0.5:
            n_busy = n_busy_new
            break
        n_busy = n_busy_new

    assert sched is not None
    # Node-level event totals.
    totals = {f: 0.0 for f in ("instructions", "scalar_flops", "l1", "l2",
                               "l3", "dram", "bytes")}
    row_hit_weighted = 0.0
    store_weighted = 0.0
    for t in tasks:
        timing = timings[t.kernel]
        sig = detailed[t.kernel]
        w = t.work_units
        totals["instructions"] += timing.instructions * w
        totals["scalar_flops"] += timing.scalar_flops * w
        totals["l1"] += timing.l1_accesses * w
        totals["l2"] += timing.l2_accesses * w
        totals["l3"] += timing.l3_accesses * w
        totals["dram"] += timing.dram_accesses * w
        totals["bytes"] += timing.dram_bytes * w
        row_hit_weighted += sig.row_hit_rate * timing.dram_bytes * w
        mem = sig.mix.mem
        store_weighted += (sig.mix.store / mem if mem > 0 else 0.0) \
            * timing.l1_accesses * w
    row_hit = row_hit_weighted / totals["bytes"] if totals["bytes"] else 0.0
    store_frac = store_weighted / totals["l1"] if totals["l1"] else 0.0

    return PhaseDetail(
        makespan_ns=sched.makespan_ns,
        busy_core_ns=float(sched.busy_ns.sum()),
        n_busy_cores=n_busy,
        schedule=sched,
        instructions=totals["instructions"],
        scalar_flops=totals["scalar_flops"],
        l1_accesses=totals["l1"],
        l2_accesses=totals["l2"],
        l3_accesses=totals["l3"],
        dram_accesses=totals["dram"],
        dram_bytes=totals["bytes"],
        store_fraction=store_frac,
        row_hit_rate=row_hit,
        bw_utilization=utilization,
        core_dynamic_j=0.0,
        timings=tuple(timings[k] for k in kernel_names),
    )
