"""Content-addressed, persistent store of design-point results.

The unit of storage is one evaluated design point: the flat record of
one ``(app, configuration, mode, ranks)`` simulation under one code
version.  The key is the SHA-256 of the canonical serialization
(:mod:`repro.core.canon`) of exactly those inputs, so

* equal queries hash to equal keys regardless of dict ordering or the
  process that computed them;
* a model change (new code version) can never silently serve stale
  results — old entries simply stop matching, and can be audited or
  bulk-invalidated by their recorded provenance.

Entries carry **provenance**: the inputs themselves (auditable without
re-hashing), the code version, creation time, the engine that produced
the record, and the engine's :mod:`repro.obs` counter deltas for the
evaluation that filled them.

Persistence is an append-only JSONL file in the same spirit as the
sweep journal (:mod:`repro.core.checkpoint`): crash-tolerant (a torn
final line is dropped and counted), duplicate keys keep their first
occurrence, and :meth:`ResultStore.invalidate` compacts by atomic
rewrite.  All operations are thread-safe — the serve worker pool calls
into one shared store.

Observability: ``store.hit`` / ``store.miss`` / ``store.put`` /
``store.invalidated`` / ``store.corrupt_lines``, surfaced by
:func:`repro.obs.summarize`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from ..obs import get_metrics
from .canon import canonical_dumps, canonical_loads, content_digest

__all__ = ["ResultStore", "make_provenance", "store_key",
           "STORE_KEY_SCHEMA"]

#: Version tag of the key schema.  Bump when the keyed-input structure
#: changes so old entries can never alias new keys.
STORE_KEY_SCHEMA = 1


def store_key(app: str, config: Dict[str, Any], mode: str, ranks: int,
              code_version: str) -> str:
    """Canonical SHA-256 content address of one design-point query.

    ``config`` is the six-axis mapping produced by
    :meth:`repro.config.node.NodeConfig.axis_values`.
    """
    return content_digest({
        "schema": STORE_KEY_SCHEMA,
        "app": app,
        "config": dict(config),
        "mode": mode,
        "ranks": int(ranks),
        "code_version": code_version,
    })


class ResultStore:
    """Persistent ``key -> entry`` map, content-addressed and audited.

    An entry is a plain dict::

        {
          "key": <sha256 hex>,
          "inputs": {"app", "config": {...}, "mode", "ranks",
                     "code_version"},
          "record": {<flat ResultSet record>},
          "provenance": {"engine", "created_s", "obs": {counter: delta}},
        }

    ``get`` counts hits/misses; ``put`` appends (first occurrence wins,
    consistent with the journal); ``invalidate`` removes matching
    entries and compacts the file atomically.
    """

    def __init__(self, path: Union[str, Path], fsync_every: int = 1) -> None:
        if fsync_every <= 0:
            raise ValueError("fsync_every must be positive")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict] = {}
        self._since_sync = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._load()
        self._fh = self.path.open("a", encoding="utf-8")

    # -- loading --------------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        obs = get_metrics()
        corrupt = duplicates = 0
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = canonical_loads(line)
                    key = entry["key"]
                except (json.JSONDecodeError, ValueError, KeyError,
                        TypeError):
                    corrupt += 1  # torn tail of a crashed writer
                    continue
                if key in self._entries:
                    duplicates += 1
                    continue
                self._entries[key] = entry
        if corrupt:
            obs.inc("store.corrupt_lines", corrupt)
        if duplicates:
            obs.inc("store.duplicates_dropped", duplicates)
        obs.inc("store.entries_loaded", len(self._entries))

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def entries(self) -> List[Dict]:
        """Snapshot of every entry (insertion order)."""
        with self._lock:
            return list(self._entries.values())

    def get(self, key: str) -> Optional[Dict]:
        """The stored entry for ``key``, counting the hit or miss."""
        with self._lock:
            entry = self._entries.get(key)
        get_metrics().inc("store.hit" if entry is not None else "store.miss")
        return entry

    def put(self, key: str, record: Dict, inputs: Dict,
            provenance: Dict) -> Dict:
        """Store one evaluated design point (idempotent per key).

        Returns the stored entry.  A concurrent or repeated put of an
        existing key keeps the first entry — content addressing makes
        both byte-equivalent by construction.
        """
        entry = {"key": key, "inputs": inputs, "record": record,
                 "provenance": provenance}
        with self._lock:
            if key in self._entries:
                return self._entries[key]
            self._entries[key] = entry
            self._fh.write(canonical_dumps(entry) + "\n")
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._flush_locked()
        get_metrics().inc("store.put")
        return entry

    def put_point(self, app: str, config: Dict[str, Any], mode: str,
                  ranks: int, code_version: str, record: Dict,
                  engine: str, obs_delta: Optional[Dict] = None) -> str:
        """Store one evaluated design point from its raw identity.

        Convenience over :meth:`put` for producers that stream points
        as they evaluate them (the active-search loop): computes the
        content address, assembles the auditable ``inputs`` block and
        the provenance, and returns the key so the caller can hand it
        to the serve layer.
        """
        inputs = {"app": app, "config": dict(config), "mode": mode,
                  "ranks": int(ranks), "code_version": code_version}
        key = store_key(app, config, mode, ranks, code_version)
        self.put(key, record, inputs,
                 make_provenance(engine, obs_delta or {}))
        return key

    # -- invalidation ---------------------------------------------------------

    def invalidate(
        self,
        predicate: Optional[Callable[[Dict], bool]] = None,
        **input_equals: Any,
    ) -> int:
        """Remove entries whose ``inputs`` match and compact the file.

        Selection: every ``input_equals`` field must equal the entry's
        corresponding ``inputs`` field (``code_version=...``,
        ``app=...``, ``mode=...``), and ``predicate(entry)``, when
        given, must hold.  With neither, *everything* is invalidated.
        Returns the number of entries removed (counted under
        ``store.invalidated``).
        """
        def matches(entry: Dict) -> bool:
            inputs = entry.get("inputs", {})
            if any(inputs.get(k) != v for k, v in input_equals.items()):
                return False
            return predicate(entry) if predicate is not None else True

        with self._lock:
            keep = {k: e for k, e in self._entries.items()
                    if not matches(e)}
            removed = len(self._entries) - len(keep)
            if removed:
                self._entries = keep
                self._rewrite_locked()
        if removed:
            get_metrics().inc("store.invalidated", removed)
        return removed

    def invalidate_stale(self, current_code_version: str) -> int:
        """Drop every entry produced by a different code version."""
        return self.invalidate(
            lambda e: e.get("inputs", {}).get("code_version")
            != current_code_version)

    def _rewrite_locked(self) -> None:
        """Atomic compaction: write a temp file, fsync, rename over."""
        self._fh.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for entry in self._entries.values():
                fh.write(canonical_dumps(entry) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fh = self.path.open("a", encoding="utf-8")
        self._since_sync = 0

    # -- lifecycle ------------------------------------------------------------

    def _flush_locked(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._since_sync = 0

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._flush_locked()
                self._fh.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_provenance(engine: str, obs_delta: Dict[str, float]) -> Dict:
    """Provenance block for a freshly evaluated entry."""
    return {
        "engine": engine,
        "created_s": time.time(),
        "obs": dict(obs_delta),
    }
