"""Content-addressed, persistent store of design-point results.

The unit of storage is one evaluated design point: the flat record of
one ``(app, configuration, mode, ranks)`` simulation under one code
version.  The key is the SHA-256 of the canonical serialization
(:mod:`repro.core.canon`) of exactly those inputs, so

* equal queries hash to equal keys regardless of dict ordering or the
  process that computed them;
* a model change (new code version) can never silently serve stale
  results — old entries simply stop matching, and can be audited or
  bulk-invalidated by their recorded provenance.

Entries carry **provenance**: the inputs themselves (auditable without
re-hashing), the code version, creation time, the engine that produced
the record, and the engine's :mod:`repro.obs` counter deltas for the
evaluation that filled them.

Persistence is an append-only JSONL file in the same spirit as the
sweep journal (:mod:`repro.core.checkpoint`): crash-tolerant (a torn
final line is dropped and counted), duplicate keys keep their first
occurrence, and :meth:`ResultStore.invalidate` compacts by atomic
rewrite.  All operations are thread-safe — the serve worker pool calls
into one shared store.

Since the columnar data plane (DESIGN §10) the store also speaks a
**block** line format: one ``{"__block__": ...}`` JSONL line carries a
whole :class:`~repro.core.frame.ResultFrame` of records sharing one
``(mode, ranks, code_version)`` identity plus their per-record keys and
a common provenance.  Per-record keys are computed vectorized from the
frame's columns (:func:`store_keys_frame`) and are bit-identical to
:func:`store_key` of the same inputs, so a store written by the
columnar path serves the same content addresses as the dict path.
Entries loaded from a block stay columnar: ``get`` materializes a thin
entry dict whose ``record`` is a lazy ``FrameRow`` view.

Observability: ``store.hit`` / ``store.miss`` / ``store.put`` /
``store.invalidated`` / ``store.corrupt_lines``, plus
``store.block.put`` / ``store.block.records`` / ``store.block.loaded``
for the columnar plane, surfaced by :func:`repro.obs.summarize`.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import get_metrics
from .canon import canonical_dumps, canonical_loads, content_digest
from .frame import ResultFrame, scalar_fragment

__all__ = ["ResultStore", "make_provenance", "store_key",
           "store_keys_batch", "store_keys_frame",
           "STORE_KEY_SCHEMA", "STORE_BLOCK_KEY", "STORE_BLOCK_SCHEMA"]

#: Version tag of the key schema.  Bump when the keyed-input structure
#: changes so old entries can never alias new keys.
STORE_KEY_SCHEMA = 1


def store_key(app: str, config: Dict[str, Any], mode: str, ranks: int,
              code_version: str) -> str:
    """Canonical SHA-256 content address of one design-point query.

    ``config`` is the six-axis mapping produced by
    :meth:`repro.config.node.NodeConfig.axis_values`.
    """
    return content_digest({
        "schema": STORE_KEY_SCHEMA,
        "app": app,
        "config": dict(config),
        "mode": mode,
        "ranks": int(ranks),
        "code_version": code_version,
    })


#: Reserved top-level key marking a columnar block line in the store
#: file (one frame of records + per-record keys + shared provenance).
STORE_BLOCK_KEY = "__block__"

#: Version of the store block layout; readers reject versions they do
#: not understand rather than misparse them.
STORE_BLOCK_SCHEMA = 1

#: The six config axes, in canonical (sorted) key order — the order
#: their fragments appear in a rendered key text.
_AXIS_KEYS_SORTED: Tuple[str, ...] = (
    "cache", "core", "cores", "frequency", "memory", "vector")


def _config_fragment(config: Mapping[str, Any],
                     memo: Optional[Dict[Any, str]] = None) -> str:
    """The ``"config":{...}`` inner text of a key serialization,
    byte-identical to ``canonical_dumps(dict(config))``."""
    items = sorted(config.items())
    parts = []
    for k, v in items:
        if memo is not None:
            frag = memo.get(v)
            if frag is None:
                frag = memo[v] = scalar_fragment(v)
        else:
            frag = scalar_fragment(v)
        parts.append(json.dumps(k) + ":" + frag)
    return "{" + ",".join(parts) + "}"


def _key_text_parts(app: str, mode: str, ranks: int,
                    code_version: str) -> Tuple[str, str]:
    """(head, tail) around the config fragment of one key text.

    Splicing ``head + config_fragment + tail`` reproduces
    ``canonical_dumps`` of the keyed-input dict byte-for-byte (sorted
    top-level keys: app, code_version, config, mode, ranks, schema).
    """
    head = ('{"app":' + json.dumps(app)
            + ',"code_version":' + json.dumps(code_version)
            + ',"config":')
    tail = (',"mode":' + json.dumps(mode)
            + ',"ranks":' + str(int(ranks))
            + ',"schema":' + str(STORE_KEY_SCHEMA) + "}")
    return head, tail


def store_keys_batch(app: str, configs: Sequence[Mapping[str, Any]],
                     mode: str, ranks: int,
                     code_version: str) -> List[str]:
    """Vectorized :func:`store_key` over one app's config sequence.

    Renders each key text by fragment splicing (axis values memoized
    across rows — a design space reuses a handful of labels) instead of
    building and canonically serializing one dict per point.
    Bit-identical to calling :func:`store_key` per config.
    """
    head, tail = _key_text_parts(app, mode, ranks, code_version)
    memo: Dict[Any, str] = {}
    return [
        hashlib.sha256(
            (head + _config_fragment(cfg, memo) + tail).encode("utf-8")
        ).hexdigest()
        for cfg in configs
    ]


def store_keys_frame(frame: ResultFrame, mode: str, ranks: int,
                     code_version: str) -> List[str]:
    """Per-row store keys of a result frame, from its columns.

    The frame's config columns carry exactly the values
    ``NodeConfig.axis_values()`` reports (labels and axis scalars), so
    the keys are bit-identical to :func:`store_key` over the same
    points — pinned by the store tests.
    """
    cols = {k: frame.column(k).tolist() for k in _AXIS_KEYS_SORTED}
    apps = frame.column("app").tolist()
    memo: Dict[Any, str] = {}
    heads: Dict[str, Tuple[str, str]] = {}
    keys = []
    for i in range(len(frame)):
        app = apps[i]
        parts = heads.get(app)
        if parts is None:
            parts = heads[app] = _key_text_parts(
                app, mode, ranks, code_version)
        frags = []
        for k in _AXIS_KEYS_SORTED:
            v = cols[k][i]
            frag = memo.get(v)
            if frag is None:
                frag = memo[v] = scalar_fragment(v)
            frags.append('"' + k + '":' + frag)
        text = parts[0] + "{" + ",".join(frags) + "}" + parts[1]
        keys.append(hashlib.sha256(text.encode("utf-8")).hexdigest())
    return keys


class _Block:
    """One loaded/written store block: a frame plus shared identity.

    Entries materialize lazily per row — a thin dict whose ``record``
    is a :class:`~repro.core.frame.FrameRow` view, so serving a warm
    query never rebuilds record dicts.
    """

    __slots__ = ("frame", "keys", "mode", "ranks", "code_version",
                 "provenance")

    def __init__(self, frame: ResultFrame, keys: Sequence[str], mode: str,
                 ranks: int, code_version: str, provenance: Dict) -> None:
        self.frame = frame
        self.keys = list(keys)
        self.mode = mode
        self.ranks = ranks
        self.code_version = code_version
        self.provenance = provenance

    def entry(self, i: int) -> Dict:
        row = self.frame.row(i)
        inputs = {"app": row["app"],
                  "config": {k: row[k] for k in
                             ("core", "cache", "memory", "frequency",
                              "vector", "cores")},
                  "mode": self.mode, "ranks": self.ranks,
                  "code_version": self.code_version}
        return {"key": self.keys[i], "inputs": inputs, "record": row,
                "provenance": self.provenance}

    def payload(self, rows: Optional[Sequence[int]] = None) -> Dict:
        """The block-line payload covering ``rows`` (default: all)."""
        if rows is None or len(rows) == len(self.keys):
            frame, keys = self.frame, self.keys
        else:
            frame = self.frame.select(rows)
            keys = [self.keys[i] for i in rows]
        return {STORE_BLOCK_KEY: {
            "schema": STORE_BLOCK_SCHEMA,
            "mode": self.mode, "ranks": self.ranks,
            "code_version": self.code_version,
            "keys": keys, "provenance": self.provenance,
            "frame": frame.to_block_payload(),
        }}


#: Internal entry slot: a materialized entry dict (scalar line) or a
#: ``(block, row)`` reference into a columnar block.
_Slot = Union[Dict, Tuple[_Block, int]]


class ResultStore:
    """Persistent ``key -> entry`` map, content-addressed and audited.

    An entry is a plain dict::

        {
          "key": <sha256 hex>,
          "inputs": {"app", "config": {...}, "mode", "ranks",
                     "code_version"},
          "record": {<flat ResultSet record>},
          "provenance": {"engine", "created_s", "obs": {counter: delta}},
        }

    ``get`` counts hits/misses; ``put`` appends (first occurrence wins,
    consistent with the journal); ``invalidate`` removes matching
    entries and compacts the file atomically.
    """

    def __init__(self, path: Union[str, Path], fsync_every: int = 1) -> None:
        if fsync_every <= 0:
            raise ValueError("fsync_every must be positive")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self._lock = threading.Lock()
        self._entries: Dict[str, _Slot] = {}
        self._since_sync = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._load()
        self._fh = self.path.open("a", encoding="utf-8")

    # -- loading --------------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        obs = get_metrics()
        corrupt = duplicates = blocks = 0
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = canonical_loads(line)
                    if (isinstance(entry, dict)
                            and STORE_BLOCK_KEY in entry):
                        block = self._decode_block(entry[STORE_BLOCK_KEY])
                        blocks += 1
                        for j, key in enumerate(block.keys):
                            if key in self._entries:
                                duplicates += 1
                                continue
                            self._entries[key] = (block, j)
                        continue
                    key = entry["key"]
                except (json.JSONDecodeError, ValueError, KeyError,
                        TypeError):
                    corrupt += 1  # torn tail of a crashed writer
                    continue
                if key in self._entries:
                    duplicates += 1
                    continue
                self._entries[key] = entry
        if corrupt:
            obs.inc("store.corrupt_lines", corrupt)
        if duplicates:
            obs.inc("store.duplicates_dropped", duplicates)
        if blocks:
            obs.inc("store.block.loaded", blocks)
        obs.inc("store.entries_loaded", len(self._entries))

    @staticmethod
    def _decode_block(b: Dict) -> _Block:
        if b.get("schema") != STORE_BLOCK_SCHEMA:
            raise ValueError(
                f"unsupported store block schema: {b.get('schema')!r}")
        frame = ResultFrame.from_block_payload(b["frame"])
        keys = list(b["keys"])
        if len(keys) != len(frame):
            raise ValueError(
                f"store block: {len(keys)} keys != {len(frame)} rows")
        return _Block(frame, keys, b["mode"], int(b["ranks"]),
                      b["code_version"], b["provenance"])

    @staticmethod
    def _materialize(slot: _Slot) -> Dict:
        if type(slot) is tuple:
            block, j = slot
            return block.entry(j)
        return slot

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def entries(self) -> List[Dict]:
        """Snapshot of every entry (insertion order)."""
        with self._lock:
            return [self._materialize(s) for s in self._entries.values()]

    def get(self, key: str) -> Optional[Dict]:
        """The stored entry for ``key``, counting the hit or miss.

        Block-backed entries materialize a thin dict whose ``record``
        is a lazy ``FrameRow`` view of the stored frame.
        """
        with self._lock:
            slot = self._entries.get(key)
        get_metrics().inc("store.hit" if slot is not None else "store.miss")
        return None if slot is None else self._materialize(slot)

    def put(self, key: str, record: Dict, inputs: Dict,
            provenance: Dict) -> Dict:
        """Store one evaluated design point (idempotent per key).

        Returns the stored entry.  A concurrent or repeated put of an
        existing key keeps the first entry — content addressing makes
        both byte-equivalent by construction.
        """
        entry = {"key": key, "inputs": inputs, "record": record,
                 "provenance": provenance}
        with self._lock:
            if key in self._entries:
                return self._entries[key]
            self._entries[key] = entry
            self._fh.write(canonical_dumps(entry) + "\n")
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._flush_locked()
        get_metrics().inc("store.put")
        return entry

    def put_frame(self, frame: ResultFrame, mode: str, ranks: int,
                  code_version: str, provenance: Dict) -> List[str]:
        """Store every row of a frame as one columnar block line.

        Keys are computed vectorized from the frame's columns
        (bit-identical to :func:`store_key` per row); rows whose key is
        already present are skipped (first occurrence wins, like
        :meth:`put`).  One line, one write, at most one fsync — this is
        the columnar data plane's store write path.  Returns the
        per-row keys for *all* rows, stored or pre-existing.
        """
        keys = store_keys_frame(frame, mode, ranks, code_version)
        with self._lock:
            fresh = [i for i, k in enumerate(keys)
                     if k not in self._entries]
            if not fresh:
                return keys
            block = _Block(frame, keys, mode, int(ranks), code_version,
                           provenance)
            if len(fresh) < len(keys):
                block = _Block(frame.select(fresh),
                               [keys[i] for i in fresh], mode,
                               int(ranks), code_version, provenance)
            for j, k in enumerate(block.keys):
                self._entries[k] = (block, j)
            self._fh.write(canonical_dumps(block.payload()) + "\n")
            self._since_sync += len(block.keys)
            if self._since_sync >= self.fsync_every:
                self._flush_locked()
        obs = get_metrics()
        obs.inc("store.put", len(fresh))
        obs.inc("store.block.put")
        obs.inc("store.block.records", len(fresh))
        return keys

    def put_point(self, app: str, config: Dict[str, Any], mode: str,
                  ranks: int, code_version: str, record: Dict,
                  engine: str, obs_delta: Optional[Dict] = None) -> str:
        """Store one evaluated design point from its raw identity.

        Convenience over :meth:`put` for producers that stream points
        as they evaluate them (the active-search loop): computes the
        content address, assembles the auditable ``inputs`` block and
        the provenance, and returns the key so the caller can hand it
        to the serve layer.
        """
        inputs = {"app": app, "config": dict(config), "mode": mode,
                  "ranks": int(ranks), "code_version": code_version}
        key = store_key(app, config, mode, ranks, code_version)
        self.put(key, record, inputs,
                 make_provenance(engine, obs_delta or {}))
        return key

    # -- invalidation ---------------------------------------------------------

    def invalidate(
        self,
        predicate: Optional[Callable[[Dict], bool]] = None,
        **input_equals: Any,
    ) -> int:
        """Remove entries whose ``inputs`` match and compact the file.

        Selection: every ``input_equals`` field must equal the entry's
        corresponding ``inputs`` field (``code_version=...``,
        ``app=...``, ``mode=...``), and ``predicate(entry)``, when
        given, must hold.  With neither, *everything* is invalidated.
        Returns the number of entries removed (counted under
        ``store.invalidated``).
        """
        def matches(entry: Dict) -> bool:
            inputs = entry.get("inputs", {})
            if any(inputs.get(k) != v for k, v in input_equals.items()):
                return False
            return predicate(entry) if predicate is not None else True

        with self._lock:
            keep = {k: s for k, s in self._entries.items()
                    if not matches(self._materialize(s))}
            removed = len(self._entries) - len(keep)
            if removed:
                self._entries = keep
                self._rewrite_locked()
        if removed:
            get_metrics().inc("store.invalidated", removed)
        return removed

    def invalidate_stale(self, current_code_version: str) -> int:
        """Drop every entry produced by a different code version."""
        return self.invalidate(
            lambda e: e.get("inputs", {}).get("code_version")
            != current_code_version)

    def _rewrite_locked(self) -> None:
        """Atomic compaction: write a temp file, fsync, rename over.

        Streams line-at-a-time: scalar entries re-render one canonical
        line each, and surviving rows of a block are written back as
        one (possibly row-subset) block line — no per-row entry dicts
        are ever materialized, so compaction memory is bounded by one
        block, not the store size.
        """
        self._fh.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            run_block: Optional[_Block] = None
            run_rows: List[int] = []

            def flush_run() -> None:
                nonlocal run_block
                if run_block is not None:
                    fh.write(canonical_dumps(
                        run_block.payload(run_rows)) + "\n")
                run_block = None
                run_rows.clear()

            for slot in self._entries.values():
                if type(slot) is tuple:
                    block, j = slot
                    if block is not run_block:
                        flush_run()
                        run_block = block
                    run_rows.append(j)
                else:
                    flush_run()
                    fh.write(canonical_dumps(slot) + "\n")
            flush_run()
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fh = self.path.open("a", encoding="utf-8")
        self._since_sync = 0

    # -- lifecycle ------------------------------------------------------------

    def _flush_locked(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._since_sync = 0

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._flush_locked()
                self._fh.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_provenance(engine: str, obs_delta: Dict[str, float]) -> Dict:
    """Provenance block for a freshly evaluated entry."""
    return {
        "engine": engine,
        "created_s": time.time(),
        "obs": dict(obs_delta),
    }
