"""Paired normalization of sweep results (Sec. V-B methodology).

To quantify one architectural axis, the paper normalizes every
simulation against the simulation that shares *all other* parameters
but uses the axis' baseline value, then averages — e.g. each
{x,y,z,s,t,256bit} point is divided by its {x,y,z,s,t,128bit} partner,
giving 96 paired samples per bar in a 32- or 64-core panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .results import CONFIG_KEYS, ResultSet

__all__ = ["AxisBar", "normalize_axis", "axis_table"]

#: Metrics where a *smaller* value is better and the ratio is inverted
#: so bars read as "speedup" (baseline_time / time).
_INVERTED_METRICS = {"time_ns"}


@dataclass(frozen=True)
class AxisBar:
    """One figure bar: an (app, cores-panel, axis-value) average."""

    app: str
    cores: int
    axis: str
    value: object
    mean: float
    std: float
    n_samples: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (f"{self.app:8s} {self.cores:3d}c {self.axis}={self.value!s:>10} "
                f"{self.mean:6.3f} +- {self.std:5.3f} (n={self.n_samples})")


def normalize_axis(
    results: ResultSet,
    axis: str,
    baseline_value,
    metric: str,
    invert: Optional[bool] = None,
) -> List[AxisBar]:
    """Compute the paper's paired-normalized bars for one axis.

    Parameters
    ----------
    axis:
        One of the config keys except 'app' (e.g. ``"vector"``).
    baseline_value:
        The axis value every sample is normalized against (e.g. 128).
    metric:
        Record field to normalize (``time_ns``, ``power_total_w``,
        ``energy_j``, ...).  ``time_ns`` ratios are inverted so the
        result reads as speedup, matching the figures.
    """
    if axis not in CONFIG_KEYS or axis == "app":
        raise ValueError(f"axis must be one of {CONFIG_KEYS[1:]}")
    if invert is None:
        invert = metric in _INVERTED_METRICS

    samples: Dict[Tuple[str, int, object], List[float]] = {}
    for rec in results:
        base = results.partner(rec, **{axis: baseline_value})
        v, v0 = rec.get(metric), base.get(metric)
        if v is None or v0 is None:
            continue  # e.g. HBM energy
        if v <= 0 or v0 <= 0:
            raise ValueError(
                f"metric {metric} must be positive for normalization")
        ratio = (v0 / v) if invert else (v / v0)
        key = (rec["app"], rec["cores"], rec[axis])
        samples.setdefault(key, []).append(ratio)

    bars = []
    for (app, cores, value), vals in sorted(samples.items(),
                                            key=lambda kv: str(kv[0])):
        arr = np.asarray(vals)
        bars.append(AxisBar(app=app, cores=cores, axis=axis, value=value,
                            mean=float(arr.mean()), std=float(arr.std()),
                            n_samples=len(arr)))
    return bars


def axis_table(
    bars: Sequence[AxisBar],
    apps: Sequence[str],
    values: Sequence,
    cores: int,
) -> Dict[str, Dict[object, Tuple[float, float]]]:
    """Re-shape bars into ``{app: {axis_value: (mean, std)}}`` for one
    cores panel — the layout of each paper figure."""
    table: Dict[str, Dict[object, Tuple[float, float]]] = {a: {} for a in apps}
    for b in bars:
        if b.cores != cores or b.app not in table:
            continue
        table[b.app][b.value] = (b.mean, b.std)
    for app in apps:
        missing = [v for v in values if v not in table[app]]
        if missing:
            raise ValueError(
                f"panel incomplete: app {app} missing values {missing}")
    return table
