"""Result container for design-space sweeps.

A :class:`ResultSet` holds one flat record per (application, node
configuration) simulation, with JSON round-trip, filtering and grouping
helpers used by the normalization layer and the benchmark reports.
Records are plain dicts so worker processes can ship them cheaply.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .canon import canonical_dumps, canonical_loads

__all__ = ["ResultSet", "CONFIG_KEYS"]

#: Fields that identify one design point (with 'app').
CONFIG_KEYS: Tuple[str, ...] = (
    "app", "core", "cache", "memory", "frequency", "vector", "cores",
)


class ResultSet:
    """An append-only collection of sweep records."""

    def __init__(self, records: Optional[Sequence[Dict[str, Any]]] = None):
        self._records: List[Dict[str, Any]] = []
        self._index: Dict[Tuple, int] = {}
        for r in records or ():
            self.add(r)

    # -- construction ---------------------------------------------------------

    def add(self, record: Dict[str, Any]) -> None:
        missing = [k for k in CONFIG_KEYS if k not in record]
        if missing:
            raise ValueError(f"record missing config keys: {missing}")
        key = self._key(record)
        if key in self._index:
            raise ValueError(f"duplicate record for config {key}")
        self._index[key] = len(self._records)
        self._records.append(dict(record))

    @staticmethod
    def _key(record: Dict[str, Any]) -> Tuple:
        return tuple(record[k] for k in CONFIG_KEYS)

    def extend(self, records: Sequence[Dict[str, Any]]) -> None:
        for r in records:
            self.add(r)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        """Record-by-record equality, in order (bitwise field values)."""
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._records == other._records

    def failures(self) -> "ResultSet":
        """Failed-task stubs recorded by the fault-tolerant sweep."""
        return self.filter(lambda r: bool(r.get("failed")))

    def successes(self) -> "ResultSet":
        """Records carrying real simulation results (no failure stubs)."""
        return self.filter(lambda r: not r.get("failed"))

    def lookup(self, **config) -> Dict[str, Any]:
        """Exact-match lookup by full config key."""
        missing = [k for k in CONFIG_KEYS if k not in config]
        if missing:
            raise ValueError(f"lookup needs all config keys; missing {missing}")
        key = tuple(config[k] for k in CONFIG_KEYS)
        try:
            return self._records[self._index[key]]
        except KeyError:
            raise KeyError(f"no record for config {key}") from None

    def partner(self, record: Dict[str, Any], **overrides) -> Dict[str, Any]:
        """The record sharing every config key except the overridden ones.

        This implements the paper's pairing: a 256-bit sample's partner
        is the 128-bit configuration with all other parameters equal.
        """
        cfg = {k: record[k] for k in CONFIG_KEYS}
        cfg.update(overrides)
        return self.lookup(**cfg)

    def filter(self, predicate: Optional[Callable[[Dict], bool]] = None,
               **equals) -> "ResultSet":
        """Sub-set by field equality and/or a predicate."""
        out = ResultSet()
        for r in self._records:
            if any(r.get(k) != v for k, v in equals.items()):
                continue
            if predicate is not None and not predicate(r):
                continue
            out.add(r)
        return out

    def values(self, field: str) -> np.ndarray:
        """Field values as an array (None -> nan)."""
        vals = [r.get(field) for r in self._records]
        return np.array([np.nan if v is None else v for v in vals],
                        dtype=np.float64)

    def unique(self, field: str) -> List:
        seen: List = []
        for r in self._records:
            v = r.get(field)
            if v not in seen:
                seen.append(v)
        return seen

    def group_mean(self, by: Sequence[str], field: str) -> Dict[Tuple, float]:
        """Mean of ``field`` grouped by the ``by`` fields (nan-aware)."""
        groups: Dict[Tuple, List[float]] = {}
        for r in self._records:
            v = r.get(field)
            if v is None:
                continue
            groups.setdefault(tuple(r[k] for k in by), []).append(float(v))
        return {k: float(np.mean(v)) for k, v in groups.items()}

    # -- persistence ----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write canonical JSON: key-sorted, non-finite floats sentinel-
        encoded — equal ResultSets produce byte-identical files."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(canonical_dumps({"records": self._records}),
                     encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultSet":
        data = canonical_loads(Path(path).read_text(encoding="utf-8"))
        return cls(data["records"])
