"""Result container for design-space sweeps.

A :class:`ResultSet` holds one flat record per (application, node
configuration) simulation, with JSON round-trip, filtering and grouping
helpers used by the normalization layer and the benchmark reports.

Since the columnar data plane (DESIGN §10) an entry is either a plain
dict or a :class:`~repro.core.frame.FrameRow` — a lazy ``Mapping`` view
into a :class:`~repro.core.frame.ResultFrame` that only materializes
scalars on key access.  Both shapes compare equal field-for-field, so
``__eq__``/iteration/lookup semantics are unchanged; ``save`` renders
frame-backed entries from the frame's cached canonical lines without
ever building their dicts, and ``values`` reads whole columns when the
set is backed by a single frame.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from .canon import canonical_dumps, canonical_loads
from .frame import FrameRow, ResultFrame

__all__ = ["ResultSet", "CONFIG_KEYS"]

#: Fields that identify one design point (with 'app').
CONFIG_KEYS: Tuple[str, ...] = (
    "app", "core", "cache", "memory", "frequency", "vector", "cores",
)

Record = Mapping[str, Any]


class ResultSet:
    """An append-only collection of sweep records."""

    def __init__(self, records: Optional[Sequence[Record]] = None):
        self._records: List[Record] = []
        self._index: Dict[Tuple, int] = {}
        for r in records or ():
            self.add(r)

    # -- construction ---------------------------------------------------------

    def add(self, record: Record, copy: bool = True) -> None:
        """Insert one record.

        ``copy=False`` is the trusted-internal-path fast lane: callers
        that hand over a record they will never mutate again (a freshly
        parsed load, a frame row) skip the defensive ``dict()`` copy.
        Frame rows are immutable views and are never copied.
        """
        missing = [k for k in CONFIG_KEYS if k not in record]
        if missing:
            raise ValueError(f"record missing config keys: {missing}")
        key = self._key(record)
        if key in self._index:
            raise ValueError(f"duplicate record for config {key}")
        self._index[key] = len(self._records)
        if copy and type(record) is dict:
            record = dict(record)
        self._records.append(record)

    def add_frame(self, frame: ResultFrame) -> None:
        """Bulk-insert every row of a frame as lazy entries.

        Config keys and duplicates are validated from the frame's
        columns; no row dict is materialized.
        """
        if len(frame) == 0:
            return
        missing = [k for k in CONFIG_KEYS if k not in frame.keys]
        if missing:
            raise ValueError(f"record missing config keys: {missing}")
        key_cols = [frame.column(k).tolist() for k in CONFIG_KEYS]
        for i, key in enumerate(zip(*key_cols)):
            self._add_keyed(key, frame.row(i))

    def _add_keyed(self, key: Tuple, record: Record) -> None:
        """Trusted insert: the caller guarantees ``key == _key(record)``
        and that the record carries every config key."""
        if key in self._index:
            raise ValueError(f"duplicate record for config {key}")
        self._index[key] = len(self._records)
        self._records.append(record)

    @staticmethod
    def _key(record: Record) -> Tuple:
        return tuple(record[k] for k in CONFIG_KEYS)

    def extend(self, records: Sequence[Record]) -> None:
        for r in records:
            self.add(r)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        """Iterate records, materializing frame-backed entries.

        ``list(rs)`` must keep yielding plain dicts — bare
        ``json.dumps(list(rs))`` is the golden-digest contract — so
        lazy rows materialize here, on access.  Internal columnar
        paths use :meth:`lazy` instead.
        """
        for r in self._records:
            yield r.to_dict() if isinstance(r, FrameRow) else r

    def lazy(self) -> Iterator[Record]:
        """Iterate entries as stored — frame rows stay lazy views."""
        return iter(self._records)

    def __eq__(self, other: object) -> bool:
        """Record-by-record equality, in order (bitwise field values)."""
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self._records == other._records

    def _backing_frame(self) -> Optional[Tuple[ResultFrame, np.ndarray]]:
        """``(frame, row_indices)`` when every entry is a row of one
        frame — the column fast path for ``values``/``save``."""
        if not self._records:
            return None
        first = self._records[0]
        if not isinstance(first, FrameRow):
            return None
        frame = first.frame
        idx = np.empty(len(self._records), dtype=np.intp)
        for j, e in enumerate(self._records):
            if not isinstance(e, FrameRow) or e.frame is not frame:
                return None
            idx[j] = e.index
        return frame, idx

    def failures(self) -> "ResultSet":
        """Failed-task stubs recorded by the fault-tolerant sweep."""
        return self.filter(lambda r: bool(r.get("failed")))

    def successes(self) -> "ResultSet":
        """Records carrying real simulation results (no failure stubs)."""
        return self.filter(lambda r: not r.get("failed"))

    def lookup(self, **config) -> Record:
        """Exact-match lookup by full config key."""
        missing = [k for k in CONFIG_KEYS if k not in config]
        if missing:
            raise ValueError(f"lookup needs all config keys; missing {missing}")
        key = tuple(config[k] for k in CONFIG_KEYS)
        try:
            return self._records[self._index[key]]
        except KeyError:
            raise KeyError(f"no record for config {key}") from None

    def partner(self, record: Record, **overrides) -> Record:
        """The record sharing every config key except the overridden ones.

        This implements the paper's pairing: a 256-bit sample's partner
        is the 128-bit configuration with all other parameters equal.
        """
        cfg = {k: record[k] for k in CONFIG_KEYS}
        cfg.update(overrides)
        return self.lookup(**cfg)

    def filter(self, predicate: Optional[Callable[[Record], bool]] = None,
               **equals) -> "ResultSet":
        """Sub-set by field equality and/or a predicate.

        Equality-only filters over a frame-backed set run column-wise:
        one vectorized mask per field instead of one cell access per
        record per field, and the surviving rows are re-keyed from the
        config columns without materializing any row dict.
        """
        out = ResultSet()
        backing = (self._backing_frame()
                   if predicate is None and equals else None)
        if backing is not None and all(k in backing[0].keys for k in equals):
            frame, idx = backing
            keep = np.ones(len(idx), dtype=bool)
            for k, v in equals.items():
                col = frame.column(k)[idx]
                if frame.column_kind(k) == "obj":
                    keep &= np.fromiter((c == v for c in col.tolist()),
                                        dtype=bool, count=len(col))
                else:
                    keep &= col == v
            kept = np.nonzero(keep)[0]
            key_cols = [frame.column(k)[idx[kept]].tolist()
                        for k in CONFIG_KEYS]
            for j, key in zip(kept.tolist(), zip(*key_cols)):
                out._add_keyed(key, self._records[j])
            return out
        for r in self._records:
            if any(r.get(k) != v for k, v in equals.items()):
                continue
            if predicate is not None and not predicate(r):
                continue
            out.add(r)
        return out

    def values(self, field: str) -> np.ndarray:
        """Field values as an array (None/missing -> nan).

        Frame-backed sets slice the column directly — no per-record
        materialization on the warm analysis path.
        """
        backing = self._backing_frame()
        if backing is not None:
            frame, idx = backing
            if field in frame.keys and frame.column_kind(field) != "obj":
                return frame.column(field)[idx].astype(np.float64)
        vals = [r.get(field) for r in self._records]
        return np.array([np.nan if v is None else v for v in vals],
                        dtype=np.float64)

    def unique(self, field: str) -> List:
        seen: List = []
        for r in self._records:
            v = r.get(field)
            if v not in seen:
                seen.append(v)
        return seen

    def group_mean(self, by: Sequence[str], field: str) -> Dict[Tuple, float]:
        """Mean of ``field`` grouped by the ``by`` fields (nan-aware)."""
        groups: Dict[Tuple, List[float]] = {}
        for r in self._records:
            v = r.get(field)
            if v is None:
                continue
            groups.setdefault(tuple(r[k] for k in by), []).append(float(v))
        return {k: float(np.mean(v)) for k, v in groups.items()}

    # -- persistence ----------------------------------------------------------

    def canonical_text(self) -> str:
        """The canonical JSON text of the whole set.

        Byte-identical to ``canonical_dumps({"records": [...]})`` over
        materialized records; frame-backed entries splice the frame's
        cached canonical line instead of re-encoding a dict.
        """
        parts: List[str] = []
        for r in self._records:
            if isinstance(r, FrameRow):
                parts.append(r.frame.canonical_lines()[r.index])
            else:
                parts.append(canonical_dumps(r))
        return '{"records":[' + ",".join(parts) + "]}"

    def save(self, path: Union[str, Path]) -> None:
        """Write canonical JSON: key-sorted, non-finite floats sentinel-
        encoded — equal ResultSets produce byte-identical files."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(self.canonical_text(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultSet":
        data = canonical_loads(Path(path).read_text(encoding="utf-8"))
        out = cls()
        for r in data["records"]:
            # Freshly parsed records are owned by this set: adding them
            # without the defensive copy halves load's allocation cost.
            out.add(r, copy=False)
        return out
