"""Batched config-major evaluation of the integrated fast and replay modes.

One sweep task used to be one ``(app, node)`` simulation; this module
evaluates one app against a whole *batch* of node configurations at
once.  Trace-derived quantities (imbalance factors, per-task work,
kernel membership) are invariant across configurations and precomputed
once per app; the per-kernel hot path then runs column-wise over the
configuration axis (:mod:`repro.uarch.batch`) on the batched cache-miss
model, the phase schedule replay runs column-wise through
:func:`~repro.runtime.scheduler.simulate_phase_batch` (falling back to
per-config scalar scheduling only for general DAGs or unequal
overhead/duration scales), and the MPI trace replay of ``mode='replay'``
runs column-wise too (:mod:`repro.network.replay_batch`), with the
order-free path executed level-batched on a structural tape.

**Exactness contract**: for every configuration the batched evaluator
produces a :class:`~repro.core.musa.RunResult` bitwise-identical to
``Musa.simulate_node`` — same floats, not merely close ones.  The
refine loop reproduces the scalar iteration structure with a per-config
*active* mask: once a configuration passes the scalar convergence test
its share and occupancy freeze, and because the timing recompute at a
frozen share is deterministic and idempotent, frozen lanes ride along
through later iterations unchanged.

Node-level totals are accumulated **in task order** (vector over the
config axis), never regrouped per kernel — float addition is not
associative and the contract is bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.node import NodeConfig
from ..network.replay import replay
from ..network.replay_batch import replay_batch
from ..obs import get_metrics
from ..power.technology import energy_scale
from ..runtime.scheduler import PhaseResult, simulate_phase_batch
from ..trace.events import ComputePhase
from ..uarch.batch import NodeBatch, resolve_contention_batch, time_kernel_batch
from ..util import LruDict
from .frame import ResultFrame
from .musa import Musa, RunResult
from .phase_sim import PhaseDetail, _imbalance_factors

__all__ = ["BatchEvaluator", "RECORD_KEYS"]

#: The flat-record schema of ``RunResult.record()``, in its insertion
#: order — the frame path builds these columns directly.
RECORD_KEYS = (
    "app", "core", "cache", "memory", "frequency", "vector", "cores",
    "time_ns", "power_core_l1_w", "power_l2_l3_w", "power_memory_w",
    "power_total_w", "energy_j", "mpki_l1", "mpki_l2", "mpki_l3",
    "gmem_req_per_s", "bw_utilization", "occupancy",
)

#: Matches the scalar path (simulate_phase_detailed's default).
_N_REFINE = 2


@dataclass(frozen=True)
class _PhaseInvariants:
    """Configuration-independent per-phase data, computed once per app."""

    phase: ComputePhase
    imb: np.ndarray              # per-task imbalance factors
    work: Tuple                  # per-task work units (original numbers)
    work_arr: np.ndarray         # same, as float64 (exact conversion)
    kernel_names: Tuple[str, ...]
    kidx: np.ndarray             # per-task index into kernel_names
    n_tasks: int


@dataclass
class _PhaseCols:
    """One phase's converged per-config columns (SoA form).

    ``_materialize_details`` turns these into the per-config
    :class:`PhaseDetail` list of the retained dict path;
    ``evaluate_frame`` consumes the columns directly.
    """

    scheds: List[PhaseResult]
    makespan: np.ndarray         # per-config phase makespan (ns)
    busy: np.ndarray             # per-config sum of core busy time (ns)
    n_busy: np.ndarray
    instr: np.ndarray
    flops: float                 # config-invariant scalar
    l1: np.ndarray
    l2: np.ndarray
    l3: np.ndarray
    dram: np.ndarray
    dram_bytes: np.ndarray
    store_frac: np.ndarray
    row_hit: np.ndarray
    util: np.ndarray
    lanes_eff: np.ndarray        # effective SIMD lanes of the first kernel
    kernel_names: Tuple[str, ...]
    timing_cols: Dict


class BatchEvaluator:
    """Evaluates one app's integrated fast mode over config batches.

    Owns per-app memoization: miss profiles keyed on the full hashable
    ``(kernel, hierarchy, share)`` and SIMD fusion keyed on
    ``(kernel, width)`` persist for the evaluator's lifetime; resolved
    kernel-timing *columns* are memoized per :meth:`evaluate` call by
    ``(kernel, share-column)``, which is what makes kernels shared by
    several phases (SP-MZ's ``sp_solve``) nearly free, mirroring the
    scalar path's ``(kernel, node, share)`` cache.
    """

    def __init__(self, musa: Musa, memo_cap: int = 16384) -> None:
        self.musa = musa
        self._invariants = [self._phase_invariants(p) for p in musa.phases]
        # LRU-bounded like Musa's memos (PR 4): a long-lived process
        # (the sweep service) evaluates unbounded config streams through
        # one evaluator, and these were the last unbounded memo dicts.
        self._miss_memo: Dict = LruDict(
            memo_cap, eviction_counter="batch.memo.evictions")
        self._vec_memo: Dict = LruDict(
            memo_cap, eviction_counter="batch.memo.evictions")

    @staticmethod
    def _phase_invariants(phase: ComputePhase) -> _PhaseInvariants:
        tasks = phase.tasks
        if not tasks:
            return _PhaseInvariants(phase, np.empty(0), (),
                                    np.empty(0, np.int64), (),
                                    np.empty(0, np.int64), 0)
        imb = _imbalance_factors(phase)
        kernel_names = tuple(sorted({t.kernel for t in tasks}))
        pos = {k: i for i, k in enumerate(kernel_names)}
        kidx = np.array([pos[t.kernel] for t in tasks], np.int64)
        work = tuple(t.work_units for t in tasks)
        return _PhaseInvariants(
            phase=phase,
            imb=imb,
            work=work,
            work_arr=np.array(work, np.float64),
            kernel_names=kernel_names,
            kidx=kidx,
            n_tasks=len(tasks),
        )

    # ------------------------------------------------------------------ public

    def evaluate(
        self,
        nodes: Sequence[NodeConfig],
        n_ranks: int = 256,
        n_iterations: Optional[int] = None,
        include_comm: bool = False,
        mode: str = "fast",
        batch_replay: bool = True,
    ) -> List[RunResult]:
        """Integrated results for every node, in input order.

        Bitwise-equal to ``[musa.simulate_node(n, n_ranks, n_iterations,
        mode=mode, include_comm=include_comm) for n in nodes]``.  With
        ``mode='replay'`` the per-kernel compute timings are resolved
        column-wise over the whole batch and the Dimemas-style
        event-driven replay also runs *once* for the batch: the
        config-vectorized lockstep engine
        (:func:`repro.network.replay_batch.replay_batch`) steps every
        configuration through one event pass, peeling configs whose
        step order diverges out to the scalar engine — bit-identical
        either way.  ``batch_replay=False`` forces the per-config
        scalar replay splice (the equivalence oracle).
        """
        if mode not in ("fast", "replay"):
            raise ValueError("mode must be 'fast' or 'replay'")
        nodes = list(nodes)
        obs = get_metrics()
        obs.inc("musa.simulate_node", len(nodes))
        with obs.span("musa.batch_eval"):
            return self._evaluate(nodes, n_ranks, n_iterations, include_comm,
                                  mode, batch_replay)

    def evaluate_frame(
        self,
        nodes: Sequence[NodeConfig],
        n_ranks: int = 256,
        n_iterations: Optional[int] = None,
        include_comm: bool = False,
        mode: str = "fast",
        batch_replay: bool = True,
    ) -> ResultFrame:
        """Columnar results for every node, in input order.

        The SoA twin of :meth:`evaluate`: the same phase columns feed a
        config-vectorized mirror of ``Musa._assemble_result`` instead of
        per-config ``RunResult`` splicing, and the records never exist
        as dicts.  The contract is *bitwise*:
        ``frame.to_records() == [r.record() for r in evaluate(...)]``
        and the canonical bytes/digests of every row are identical to
        the dict path's — every expression below reproduces the scalar
        float64 evaluation order (elementwise ``+ - * /`` and
        ``minimum``/``maximum`` are IEEE-identical between numpy and
        Python floats; cross-phase accumulation runs phase-by-phase in
        source order, never ``np.sum``'s pairwise tree; transcendental
        voltage scalings are computed per *unique* node key by the same
        scalar model code, then broadcast).
        """
        if mode not in ("fast", "replay"):
            raise ValueError("mode must be 'fast' or 'replay'")
        nodes = list(nodes)
        obs = get_metrics()
        obs.inc("musa.simulate_node", len(nodes))
        with obs.span("musa.batch_eval"):
            return self._evaluate_frame(nodes, n_ranks, n_iterations,
                                        include_comm, mode, batch_replay)

    def _evaluate(self, nodes, n_ranks, n_iterations, include_comm, mode,
                  batch_replay=True):
        musa = self.musa
        nb = NodeBatch.from_nodes(nodes)
        n_configs = len(nodes)
        n_iter = n_iterations or musa.app.default_iterations
        scales = musa.app.rank_scales(n_ranks)
        max_scale = float(scales.max())
        comm_iter = musa.comm_iteration_ns(n_ranks) if include_comm else 0.0

        kernel_memo: Dict = {}  # (kernel, share-column bytes) -> columns
        cols_per_phase = [self._phase_cols(inv, nb, kernel_memo)
                          for inv in self._invariants]
        details_per_phase: List[List[PhaseDetail]] = [
            self._materialize_details(pc) for pc in cols_per_phase]
        compute_iter = np.zeros(n_configs)
        for pc in cols_per_phase:
            # Same accumulation order as sum(d.makespan_ns for d in details).
            compute_iter = compute_iter + pc.makespan

        trace = (musa._burst_trace(n_ranks, n_iterations)
                 if mode == "replay" else None)
        replay_totals: Optional[List[float]] = None
        if mode == "replay" and batch_replay:
            # One config-vectorized replay pass for the whole batch
            # (array tape when order-free, fork-on-divergence lockstep
            # under a finite bus pool): the per-phase makespan columns
            # (exactly the arrays summed into ``compute_iter`` above)
            # scaled per rank reproduce the scalar splice's float64
            # products bit for bit.
            cols = {id(p): pc.makespan
                    for p, pc in zip(musa.phases, cols_per_phase)}

            def duration_batch(rank, phase, _cols=cols):
                return _cols[id(phase)] * scales[rank]

            replay_totals = [
                r.total_ns for r in replay_batch(
                    trace, musa.network, duration_batch, n_configs)]
        results: List[RunResult] = []
        for i, node in enumerate(nodes):
            details_i = [per_phase[i] for per_phase in details_per_phase]
            ci = float(compute_iter[i])
            if mode == "fast":
                total_ns = n_iter * (ci * max_scale + comm_iter)
            elif replay_totals is not None:
                total_ns = replay_totals[i]
            else:
                by_id = {id(p): d for p, d in zip(musa.phases, details_i)}

                def duration(rank, phase, _by_id=by_id):
                    return _by_id[id(phase)].makespan_ns * scales[rank]

                total_ns = replay(trace, musa.network, duration).total_ns
            results.append(musa._assemble_result(
                node, n_ranks, n_iter, details_i, total_ns, ci, comm_iter))
        return results

    # ----------------------------------------------------------------- phases

    def _phase_cols(
        self,
        inv: _PhaseInvariants,
        nb: NodeBatch,
        kernel_memo: Dict,
    ) -> _PhaseCols:
        obs = get_metrics()
        n_configs = len(nb)
        obs.inc("phase_sim.calls", n_configs)
        phase = inv.phase

        if inv.n_tasks == 0:
            scheds = list(simulate_phase_batch(phase, nb.n_cores))
            zeros = np.zeros(n_configs)
            return _PhaseCols(
                scheds=scheds,
                makespan=np.array([s.makespan_ns for s in scheds]),
                busy=np.array([float(s.busy_ns.sum()) for s in scheds]),
                n_busy=zeros, instr=zeros, flops=0.0, l1=zeros, l2=zeros,
                l3=zeros, dram=zeros, dram_bytes=zeros, store_frac=zeros,
                row_hit=zeros, util=zeros,
                lanes_eff=np.ones(n_configs),
                kernel_names=(), timing_cols={},
            )

        detailed = self.musa.detailed
        kernel_names, kidx, imb = inv.kernel_names, inv.kidx, inv.imb

        n_cores_f = nb.n_cores.astype(np.float64)
        # Scalar: float(min(len(tasks), node.n_cores)).
        n_busy = np.minimum(float(inv.n_tasks), n_cores_f)

        active = np.ones(n_configs, dtype=bool)
        share: Optional[np.ndarray] = None
        scheds: List[Optional[PhaseResult]] = [None] * n_configs
        timing_cols: Dict = {}
        util_col = np.zeros(n_configs)
        for _ in range(_N_REFINE):
            # Frozen lanes keep the share of the iteration they converged
            # in (NOT round(frozen n_busy): 2.4 -> 2.6 converges with
            # |diff| < 0.5 but the rounds differ).
            share_new = np.maximum(1.0, np.round(n_busy)).astype(np.int64)
            share = share_new if share is None else np.where(
                active, share_new, share)
            skey = share.tobytes()

            timing_cols = {}
            util_col = np.zeros(n_configs)
            for k in kernel_names:
                mk = (k, skey)
                hit = kernel_memo.get(mk)
                if hit is not None:
                    obs.inc("phase_sim.kernel_memo.hit", n_configs)
                    t_col, u_col = hit
                else:
                    obs.inc("phase_sim.kernel_memo.miss", n_configs)
                    tb = time_kernel_batch(
                        detailed[k], nb, share,
                        miss_memo=self._miss_memo, vec_memo=self._vec_memo)
                    cb = resolve_contention_batch(tb, share, nb)
                    t_col, u_col = cb.timing, cb.utilization
                    kernel_memo[mk] = (t_col, u_col)
                timing_cols[k] = t_col
                util_col = np.maximum(util_col, u_col)

            dur_cols = np.stack(
                [timing_cols[k].duration_ns for k in kernel_names])
            conv = np.zeros(n_configs, dtype=bool)
            act = np.flatnonzero(active)
            if len(act):
                # Per-task durations for every active column at once:
                # the same (gather * work) * imb float64 sequence the
                # scalar path runs per config, elementwise over columns.
                durations = ((dur_cols[kidx][:, act]
                              * inv.work_arr[:, None]) * imb[:, None])
                batch = simulate_phase_batch(
                    phase, nb.n_cores[act], task_durations_ns=durations)
                for j, i in enumerate(act):
                    sched = batch[j]
                    scheds[i] = sched
                    exec_ns = max(sched.makespan_ns - sched.serial_ns, 1e-9)
                    n_busy_new = min(
                        float(n_cores_f[i]),
                        max(1.0, float(sched.busy_ns.sum()) / exec_ns),
                    )
                    conv[i] = abs(n_busy_new - n_busy[i]) < 0.5
                    n_busy[i] = n_busy_new
            active = active & ~conv
            if not active.any():
                break

        # ------- node-level event totals, accumulated in task order ----------
        instr_cols = np.stack(
            [timing_cols[k].instructions for k in kernel_names])
        l1_cols = np.stack([timing_cols[k].l1_accesses for k in kernel_names])
        l2_cols = np.stack([timing_cols[k].l2_accesses for k in kernel_names])
        l3_cols = np.stack([timing_cols[k].l3_accesses for k in kernel_names])
        dram_cols = np.stack(
            [timing_cols[k].dram_accesses for k in kernel_names])
        bytes_cols = np.stack([timing_cols[k].dram_bytes for k in kernel_names])
        flops_per_kernel = [timing_cols[k].scalar_flops for k in kernel_names]
        # Scalar computes (sig.row_hit_rate * dram_bytes) * w and
        # (store/mem * l1_accesses) * w per task; hoist the per-kernel
        # left factor, keep the * w and the accumulation per task.
        rhb_cols = np.stack([
            detailed[k].row_hit_rate * timing_cols[k].dram_bytes
            for k in kernel_names])
        ratios = []
        for k in kernel_names:
            mix = detailed[k].mix
            ratios.append(mix.store / mix.mem if mix.mem > 0 else 0.0)
        sw_cols = np.stack(
            [ratios[j] * l1_cols[j] for j in range(len(kernel_names))])

        tot_instr = np.zeros(n_configs)
        tot_l1 = np.zeros(n_configs)
        tot_l2 = np.zeros(n_configs)
        tot_l3 = np.zeros(n_configs)
        tot_dram = np.zeros(n_configs)
        tot_bytes = np.zeros(n_configs)
        row_hit_w = np.zeros(n_configs)
        store_w = np.zeros(n_configs)
        tot_flops = 0.0  # config-invariant: same accumulation, computed once
        for t_i in range(inv.n_tasks):
            j = kidx[t_i]
            w = inv.work[t_i]
            tot_instr = tot_instr + instr_cols[j] * w
            tot_flops += flops_per_kernel[j] * w
            tot_l1 = tot_l1 + l1_cols[j] * w
            tot_l2 = tot_l2 + l2_cols[j] * w
            tot_l3 = tot_l3 + l3_cols[j] * w
            tot_dram = tot_dram + dram_cols[j] * w
            tot_bytes = tot_bytes + bytes_cols[j] * w
            row_hit_w = row_hit_w + rhb_cols[j] * w
            store_w = store_w + sw_cols[j] * w

        with np.errstate(divide="ignore", invalid="ignore"):
            row_hit_col = np.where(tot_bytes != 0.0, row_hit_w / tot_bytes, 0.0)
            store_col = np.where(tot_l1 != 0.0, store_w / tot_l1, 0.0)

        assert all(s is not None for s in scheds)
        # The scalar path reads effective lanes off the phase's *first*
        # kernel timing (``d.timings[0]``); kernel_names is sorted, so
        # that is kernel_names[0]'s vectorization column.
        lanes_eff = np.array(
            [v.effective_lanes
             for v in timing_cols[kernel_names[0]].vectorizations],
            dtype=np.float64)
        return _PhaseCols(
            scheds=scheds,
            makespan=np.array([s.makespan_ns for s in scheds]),
            busy=np.array([float(s.busy_ns.sum()) for s in scheds]),
            n_busy=n_busy.astype(np.float64, copy=True),
            instr=tot_instr, flops=tot_flops, l1=tot_l1, l2=tot_l2,
            l3=tot_l3, dram=tot_dram, dram_bytes=tot_bytes,
            store_frac=store_col, row_hit=row_hit_col, util=util_col,
            lanes_eff=lanes_eff,
            kernel_names=kernel_names, timing_cols=timing_cols,
        )

    def _materialize_details(self, pc: _PhaseCols) -> List[PhaseDetail]:
        """Per-config :class:`PhaseDetail` list — the retained dict path.

        Field-for-field identical to the pre-columnar materialization:
        every scalar is ``float()`` of the same column cell.
        """
        out = []
        for i, sched in enumerate(pc.scheds):
            out.append(PhaseDetail(
                makespan_ns=sched.makespan_ns,
                busy_core_ns=float(pc.busy[i]),
                n_busy_cores=float(pc.n_busy[i]),
                schedule=sched,
                instructions=float(pc.instr[i]),
                scalar_flops=pc.flops,
                l1_accesses=float(pc.l1[i]),
                l2_accesses=float(pc.l2[i]),
                l3_accesses=float(pc.l3[i]),
                dram_accesses=float(pc.dram[i]),
                dram_bytes=float(pc.dram_bytes[i]),
                store_fraction=float(pc.store_frac[i]),
                row_hit_rate=float(pc.row_hit[i]),
                bw_utilization=float(pc.util[i]),
                core_dynamic_j=0.0,
                timings=tuple(pc.timing_cols[k].at(i)
                              for k in pc.kernel_names),
            ))
        return out

    # ------------------------------------------------------------- frame path

    def _node_scalar_cols(self, nodes: Sequence[NodeConfig]) -> Dict:
        """Per-config columns of the node-level *scalar* model terms.

        Voltage scalings involve transcendentals (``** 2``, ``** 1.8``)
        whose numpy ufuncs are not guaranteed bit-identical to Python's
        ``**``; each term is therefore computed by the existing scalar
        model per unique node key (a handful of presets span any
        sweep) and broadcast — the broadcast cell *is* the Python float
        the dict path used.
        """
        mcpat = self.musa.mcpat
        dp = self.musa.drampower
        n = len(nodes)
        escale = np.empty(n)
        spin = np.empty(n)
        e_instr = np.empty(n)
        flop_factor = np.empty(n)
        leak_core = np.empty(n)
        l2l3_leak = np.empty(n)
        background = np.empty(n)
        energy_ok = np.empty(n, dtype=bool)
        m_f: Dict = {}
        m_core: Dict = {}
        m_vec: Dict = {}
        m_leak: Dict = {}
        m_sram: Dict = {}
        m_mem: Dict = {}
        for i, node in enumerate(nodes):
            f = node.frequency_ghz
            v = m_f.get(f)
            if v is None:
                v = (energy_scale(f), mcpat.idle_spin_w(node))
                m_f[f] = v
            escale[i], spin[i] = v

            c = node.core
            ei = m_core.get(c.label)
            if ei is None:
                ei = (mcpat.e_instr_base_nj
                      + mcpat.e_instr_ooo_nj * c.window_capability)
                m_core[c.label] = ei
            e_instr[i] = ei

            vb = node.vector_bits
            ff = m_vec.get(vb)
            if ff is None:
                ff = mcpat.flop_energy_factor(node)
                m_vec[vb] = ff
            flop_factor[i] = ff

            k = (c.label, vb, f)
            lw = m_leak.get(k)
            if lw is None:
                lw = mcpat.core_l1_leakage_w(node)
                m_leak[k] = lw
            # Scalar path: core_l1_leakage_w(node) * node.n_cores
            # (float * int, exact for any realistic core count).
            leak_core[i] = lw * node.n_cores

            k = (node.cache.label, node.n_cores, f)
            sw = m_sram.get(k)
            if sw is None:
                sw = mcpat.l2_l3_leakage_w(node)
                m_sram[k] = sw
            l2l3_leak[i] = sw

            mem = node.memory
            mv = m_mem.get(mem.label)
            if mv is None:
                mv = (mem.total_dimms * dp.background_w_per_dimm,
                      mem.energy_data_available)
                m_mem[mem.label] = mv
            background[i], energy_ok[i] = mv
        return {
            "escale": escale, "spin": spin, "e_instr": e_instr,
            "flop_factor": flop_factor, "leak_core": leak_core,
            "l2l3_leak": l2l3_leak, "background": background,
            "energy_ok": energy_ok,
        }

    def _evaluate_frame(self, nodes, n_ranks, n_iterations, include_comm,
                        mode, batch_replay=True):
        musa = self.musa
        mcpat = musa.mcpat
        dp = musa.drampower
        nb = NodeBatch.from_nodes(nodes)
        n_configs = len(nodes)
        n_iter = n_iterations or musa.app.default_iterations
        scales = musa.app.rank_scales(n_ranks)
        max_scale = float(scales.max())
        comm_iter = musa.comm_iteration_ns(n_ranks) if include_comm else 0.0

        kernel_memo: Dict = {}
        cols_per_phase = [self._phase_cols(inv, nb, kernel_memo)
                          for inv in self._invariants]
        compute_iter = np.zeros(n_configs)
        for pc in cols_per_phase:
            compute_iter = compute_iter + pc.makespan

        if mode == "fast":
            # Scalar: n_iter * (ci * max_scale + comm_iter), per config.
            total_ns = n_iter * (compute_iter * max_scale + comm_iter)
        else:
            trace = musa._burst_trace(n_ranks, n_iterations)
            if batch_replay:
                cols = {id(p): pc.makespan
                        for p, pc in zip(musa.phases, cols_per_phase)}

                def duration_batch(rank, phase, _cols=cols):
                    return _cols[id(phase)] * scales[rank]

                total_ns = np.array(
                    [r.total_ns for r in replay_batch(
                        trace, musa.network, duration_batch, n_configs)],
                    dtype=np.float64)
            else:
                totals = []
                for i in range(n_configs):
                    by_id = {id(p): float(pc.makespan[i])
                             for p, pc in zip(musa.phases, cols_per_phase)}

                    def duration(rank, phase, _by_id=by_id):
                        return _by_id[id(phase)] * scales[rank]

                    totals.append(
                        replay(trace, musa.network, duration).total_ns)
                total_ns = np.array(totals, dtype=np.float64)

        if np.any(total_ns <= 0):
            raise ValueError("run has non-positive duration")
        total_s = total_ns * 1e-9
        sc = self._node_scalar_cols(nodes)
        n_cores_f = nb.n_cores.astype(np.float64)

        # -- dynamic_energy_j + the _assemble_result detail loop, columnwise;
        # accumulation runs phase-by-phase in source order (left-to-right
        # float addition, exactly the scalar `+=` sequence).
        core_dyn = np.zeros(n_configs)
        l2l3_dyn = np.zeros(n_configs)
        agg_instr = np.zeros(n_configs)
        agg_l2 = np.zeros(n_configs)
        agg_l3 = np.zeros(n_configs)
        agg_dram = np.zeros(n_configs)
        agg_bytes = np.zeros(n_configs)
        row_hit_num = np.zeros(n_configs)
        store_num = np.zeros(n_configs)
        busy_core_ns = np.zeros(n_configs)
        util_peak = np.zeros(n_configs)
        for pc in cols_per_phase:
            amort = np.where(pc.lanes_eff > 1.0,
                             mcpat.vector_amortization, 1.0)
            e_flop = (mcpat.e_flop_nj * amort) * sc["flop_factor"]
            other_ops = np.maximum(0.0, (pc.instr - pc.flops) - pc.l1)
            core_nj = ((pc.instr * sc["e_instr"] + pc.flops * e_flop)
                       + ((other_ops * mcpat.e_int_op_nj) * 0.5)) \
                + pc.l1 * mcpat.e_l1_access_nj
            l2l3_nj = (pc.l2 * mcpat.e_l2_access_nj
                       + pc.l3 * mcpat.e_l3_access_nj)
            core_dyn = core_dyn + ((core_nj * 1e-9) * sc["escale"]) * n_iter
            l2l3_dyn = l2l3_dyn + ((l2l3_nj * 1e-9) * sc["escale"]) * n_iter
            agg_instr = agg_instr + pc.instr * n_iter
            agg_l2 = agg_l2 + pc.l2 * n_iter
            agg_l3 = agg_l3 + pc.l3 * n_iter
            agg_dram = agg_dram + pc.dram * n_iter
            agg_bytes = agg_bytes + pc.dram_bytes * n_iter
            row_hit_num = row_hit_num + (pc.row_hit * pc.dram_bytes) * n_iter
            store_num = store_num + (pc.store_frac * pc.dram) * n_iter
            busy_core_ns = busy_core_ns + pc.busy * n_iter
            util_peak = np.maximum(util_peak, pc.util)

        with np.errstate(divide="ignore", invalid="ignore"):
            row_hit = np.where(agg_bytes != 0.0,
                               row_hit_num / agg_bytes, 0.0)
            store_frac = np.where(agg_dram != 0.0,
                                  store_num / agg_dram, 0.0)
            mpki_l1 = np.where(agg_instr != 0.0,
                               (1000.0 * agg_l2) / agg_instr, 0.0)
            mpki_l2 = np.where(agg_instr != 0.0,
                               (1000.0 * agg_l3) / agg_instr, 0.0)
            mpki_l3 = np.where(agg_instr != 0.0,
                               (1000.0 * agg_dram) / agg_instr, 0.0)

        busy_frac = np.minimum(1.0, busy_core_ns / (total_ns * n_cores_f))
        idle_cores = n_cores_f * (1.0 - busy_frac)
        core_l1_w = (core_dyn / total_s + sc["leak_core"]) \
            + idle_cores * sc["spin"]
        l2_l3_w = l2l3_dyn / total_s + sc["l2l3_leak"]

        lines_per_s = agg_bytes / 64.0 / total_s
        writes_per_s = lines_per_s * store_frac
        reads_per_s = lines_per_s * (1.0 - store_frac)
        # DramPowerModel.from_rates, columnwise; ``None`` (HBM) cells
        # masked out.
        n_col = reads_per_s + writes_per_s
        acts_per_s = n_col * (1.0 - row_hit)
        activate_w = (acts_per_s * dp.e_act_nj) * 1e-9
        rdwr_w = (reads_per_s * dp.e_rd_nj
                  + writes_per_s * dp.e_wr_nj) * 1e-9
        refresh_w = sc["background"] * dp.refresh_fraction
        memory_w = ((sc["background"] + activate_w) + rdwr_w) + refresh_w
        none_mask = ~sc["energy_ok"]
        memory_w = np.where(none_mask, 0.0, memory_w)
        power_total_w = np.where(
            none_mask, 0.0, (core_l1_w + l2_l3_w) + memory_w)
        energy_j = np.where(none_mask, 0.0, power_total_w * total_s)

        gmem = agg_bytes / 64.0 / total_ns
        occupancy = busy_core_ns / (total_ns * n_cores_f)

        app_col = np.empty(n_configs, dtype=object)
        app_col[:] = musa.app.name
        columns = {
            "app": app_col,
            "core": np.array([nd.core.label for nd in nodes], dtype=object),
            "cache": np.array([nd.cache.label for nd in nodes], dtype=object),
            "memory": np.array([nd.memory.label for nd in nodes],
                               dtype=object),
            "frequency": np.array([nd.frequency_ghz for nd in nodes],
                                  dtype=np.float64),
            "vector": np.array([nd.vector_bits for nd in nodes],
                               dtype=np.int64),
            "cores": np.asarray(nb.n_cores, dtype=np.int64),
            "time_ns": total_ns,
            "power_core_l1_w": core_l1_w,
            "power_l2_l3_w": l2_l3_w,
            "power_memory_w": (memory_w, none_mask),
            "power_total_w": (power_total_w, none_mask),
            "energy_j": (energy_j, none_mask),
            "mpki_l1": mpki_l1,
            "mpki_l2": mpki_l2,
            "mpki_l3": mpki_l3,
            "gmem_req_per_s": gmem,
            "bw_utilization": util_peak,
            "occupancy": occupancy,
        }
        if not none_mask.any():
            columns["power_memory_w"] = memory_w
            columns["power_total_w"] = power_total_w
            columns["energy_j"] = energy_j
        return ResultFrame.from_columns(RECORD_KEYS, columns)
