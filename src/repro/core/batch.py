"""Batched config-major evaluation of the integrated fast and replay modes.

One sweep task used to be one ``(app, node)`` simulation; this module
evaluates one app against a whole *batch* of node configurations at
once.  Trace-derived quantities (imbalance factors, per-task work,
kernel membership) are invariant across configurations and precomputed
once per app; the per-kernel hot path then runs column-wise over the
configuration axis (:mod:`repro.uarch.batch`) on the batched cache-miss
model, the phase schedule replay runs column-wise through
:func:`~repro.runtime.scheduler.simulate_phase_batch` (falling back to
per-config scalar scheduling only for general DAGs or unequal
overhead/duration scales), and the MPI trace replay of ``mode='replay'``
runs column-wise too (:mod:`repro.network.replay_batch`), with the
order-free path executed level-batched on a structural tape.

**Exactness contract**: for every configuration the batched evaluator
produces a :class:`~repro.core.musa.RunResult` bitwise-identical to
``Musa.simulate_node`` — same floats, not merely close ones.  The
refine loop reproduces the scalar iteration structure with a per-config
*active* mask: once a configuration passes the scalar convergence test
its share and occupancy freeze, and because the timing recompute at a
frozen share is deterministic and idempotent, frozen lanes ride along
through later iterations unchanged.

Node-level totals are accumulated **in task order** (vector over the
config axis), never regrouped per kernel — float addition is not
associative and the contract is bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.node import NodeConfig
from ..network.replay import replay
from ..network.replay_batch import replay_batch
from ..obs import get_metrics
from ..runtime.scheduler import PhaseResult, simulate_phase_batch
from ..trace.events import ComputePhase
from ..uarch.batch import NodeBatch, resolve_contention_batch, time_kernel_batch
from ..util import LruDict
from .musa import Musa, RunResult
from .phase_sim import PhaseDetail, _imbalance_factors

__all__ = ["BatchEvaluator"]

#: Matches the scalar path (simulate_phase_detailed's default).
_N_REFINE = 2


@dataclass(frozen=True)
class _PhaseInvariants:
    """Configuration-independent per-phase data, computed once per app."""

    phase: ComputePhase
    imb: np.ndarray              # per-task imbalance factors
    work: Tuple                  # per-task work units (original numbers)
    work_arr: np.ndarray         # same, as float64 (exact conversion)
    kernel_names: Tuple[str, ...]
    kidx: np.ndarray             # per-task index into kernel_names
    n_tasks: int


class BatchEvaluator:
    """Evaluates one app's integrated fast mode over config batches.

    Owns per-app memoization: miss profiles keyed on the full hashable
    ``(kernel, hierarchy, share)`` and SIMD fusion keyed on
    ``(kernel, width)`` persist for the evaluator's lifetime; resolved
    kernel-timing *columns* are memoized per :meth:`evaluate` call by
    ``(kernel, share-column)``, which is what makes kernels shared by
    several phases (SP-MZ's ``sp_solve``) nearly free, mirroring the
    scalar path's ``(kernel, node, share)`` cache.
    """

    def __init__(self, musa: Musa, memo_cap: int = 16384) -> None:
        self.musa = musa
        self._invariants = [self._phase_invariants(p) for p in musa.phases]
        # LRU-bounded like Musa's memos (PR 4): a long-lived process
        # (the sweep service) evaluates unbounded config streams through
        # one evaluator, and these were the last unbounded memo dicts.
        self._miss_memo: Dict = LruDict(
            memo_cap, eviction_counter="batch.memo.evictions")
        self._vec_memo: Dict = LruDict(
            memo_cap, eviction_counter="batch.memo.evictions")

    @staticmethod
    def _phase_invariants(phase: ComputePhase) -> _PhaseInvariants:
        tasks = phase.tasks
        if not tasks:
            return _PhaseInvariants(phase, np.empty(0), (),
                                    np.empty(0, np.int64), (),
                                    np.empty(0, np.int64), 0)
        imb = _imbalance_factors(phase)
        kernel_names = tuple(sorted({t.kernel for t in tasks}))
        pos = {k: i for i, k in enumerate(kernel_names)}
        kidx = np.array([pos[t.kernel] for t in tasks], np.int64)
        work = tuple(t.work_units for t in tasks)
        return _PhaseInvariants(
            phase=phase,
            imb=imb,
            work=work,
            work_arr=np.array(work, np.float64),
            kernel_names=kernel_names,
            kidx=kidx,
            n_tasks=len(tasks),
        )

    # ------------------------------------------------------------------ public

    def evaluate(
        self,
        nodes: Sequence[NodeConfig],
        n_ranks: int = 256,
        n_iterations: Optional[int] = None,
        include_comm: bool = False,
        mode: str = "fast",
        batch_replay: bool = True,
    ) -> List[RunResult]:
        """Integrated results for every node, in input order.

        Bitwise-equal to ``[musa.simulate_node(n, n_ranks, n_iterations,
        mode=mode, include_comm=include_comm) for n in nodes]``.  With
        ``mode='replay'`` the per-kernel compute timings are resolved
        column-wise over the whole batch and the Dimemas-style
        event-driven replay also runs *once* for the batch: the
        config-vectorized lockstep engine
        (:func:`repro.network.replay_batch.replay_batch`) steps every
        configuration through one event pass, peeling configs whose
        step order diverges out to the scalar engine — bit-identical
        either way.  ``batch_replay=False`` forces the per-config
        scalar replay splice (the equivalence oracle).
        """
        if mode not in ("fast", "replay"):
            raise ValueError("mode must be 'fast' or 'replay'")
        nodes = list(nodes)
        obs = get_metrics()
        obs.inc("musa.simulate_node", len(nodes))
        with obs.span("musa.batch_eval"):
            return self._evaluate(nodes, n_ranks, n_iterations, include_comm,
                                  mode, batch_replay)

    def _evaluate(self, nodes, n_ranks, n_iterations, include_comm, mode,
                  batch_replay=True):
        musa = self.musa
        nb = NodeBatch.from_nodes(nodes)
        n_configs = len(nodes)
        n_iter = n_iterations or musa.app.default_iterations
        scales = musa.app.rank_scales(n_ranks)
        max_scale = float(scales.max())
        comm_iter = musa.comm_iteration_ns(n_ranks) if include_comm else 0.0

        kernel_memo: Dict = {}  # (kernel, share-column bytes) -> columns
        details_per_phase: List[List[PhaseDetail]] = []
        compute_iter = np.zeros(n_configs)
        for inv in self._invariants:
            details = self._phase_detail_batch(inv, nb, kernel_memo)
            details_per_phase.append(details)
            # Same accumulation order as sum(d.makespan_ns for d in details).
            compute_iter = compute_iter + np.array(
                [d.makespan_ns for d in details])

        trace = (musa._burst_trace(n_ranks, n_iterations)
                 if mode == "replay" else None)
        replay_totals: Optional[List[float]] = None
        if mode == "replay" and batch_replay:
            # One config-vectorized replay pass for the whole batch
            # (array tape when order-free, fork-on-divergence lockstep
            # under a finite bus pool): the per-phase makespan columns
            # (exactly the arrays summed into ``compute_iter`` above)
            # scaled per rank reproduce the scalar splice's float64
            # products bit for bit.
            cols = {id(p): np.array([d.makespan_ns for d in dp])
                    for p, dp in zip(musa.phases, details_per_phase)}

            def duration_batch(rank, phase, _cols=cols):
                return _cols[id(phase)] * scales[rank]

            replay_totals = [
                r.total_ns for r in replay_batch(
                    trace, musa.network, duration_batch, n_configs)]
        results: List[RunResult] = []
        for i, node in enumerate(nodes):
            details_i = [per_phase[i] for per_phase in details_per_phase]
            ci = float(compute_iter[i])
            if mode == "fast":
                total_ns = n_iter * (ci * max_scale + comm_iter)
            elif replay_totals is not None:
                total_ns = replay_totals[i]
            else:
                by_id = {id(p): d for p, d in zip(musa.phases, details_i)}

                def duration(rank, phase, _by_id=by_id):
                    return _by_id[id(phase)].makespan_ns * scales[rank]

                total_ns = replay(trace, musa.network, duration).total_ns
            results.append(musa._assemble_result(
                node, n_ranks, n_iter, details_i, total_ns, ci, comm_iter))
        return results

    # ----------------------------------------------------------------- phases

    def _phase_detail_batch(
        self,
        inv: _PhaseInvariants,
        nb: NodeBatch,
        kernel_memo: Dict,
    ) -> List[PhaseDetail]:
        obs = get_metrics()
        n_configs = len(nb)
        obs.inc("phase_sim.calls", n_configs)
        phase = inv.phase

        if inv.n_tasks == 0:
            out = []
            for sched in simulate_phase_batch(phase, nb.n_cores):
                out.append(PhaseDetail(
                    makespan_ns=sched.makespan_ns,
                    busy_core_ns=float(sched.busy_ns.sum()),
                    n_busy_cores=0.0, schedule=sched, instructions=0.0,
                    scalar_flops=0.0, l1_accesses=0.0, l2_accesses=0.0,
                    l3_accesses=0.0, dram_accesses=0.0, dram_bytes=0.0,
                    store_fraction=0.0, row_hit_rate=0.0, bw_utilization=0.0,
                    core_dynamic_j=0.0, timings=(),
                ))
            return out

        detailed = self.musa.detailed
        kernel_names, kidx, imb = inv.kernel_names, inv.kidx, inv.imb

        n_cores_f = nb.n_cores.astype(np.float64)
        # Scalar: float(min(len(tasks), node.n_cores)).
        n_busy = np.minimum(float(inv.n_tasks), n_cores_f)

        active = np.ones(n_configs, dtype=bool)
        share: Optional[np.ndarray] = None
        scheds: List[Optional[PhaseResult]] = [None] * n_configs
        timing_cols: Dict = {}
        util_col = np.zeros(n_configs)
        for _ in range(_N_REFINE):
            # Frozen lanes keep the share of the iteration they converged
            # in (NOT round(frozen n_busy): 2.4 -> 2.6 converges with
            # |diff| < 0.5 but the rounds differ).
            share_new = np.maximum(1.0, np.round(n_busy)).astype(np.int64)
            share = share_new if share is None else np.where(
                active, share_new, share)
            skey = share.tobytes()

            timing_cols = {}
            util_col = np.zeros(n_configs)
            for k in kernel_names:
                mk = (k, skey)
                hit = kernel_memo.get(mk)
                if hit is not None:
                    obs.inc("phase_sim.kernel_memo.hit", n_configs)
                    t_col, u_col = hit
                else:
                    obs.inc("phase_sim.kernel_memo.miss", n_configs)
                    tb = time_kernel_batch(
                        detailed[k], nb, share,
                        miss_memo=self._miss_memo, vec_memo=self._vec_memo)
                    cb = resolve_contention_batch(tb, share, nb)
                    t_col, u_col = cb.timing, cb.utilization
                    kernel_memo[mk] = (t_col, u_col)
                timing_cols[k] = t_col
                util_col = np.maximum(util_col, u_col)

            dur_cols = np.stack(
                [timing_cols[k].duration_ns for k in kernel_names])
            conv = np.zeros(n_configs, dtype=bool)
            act = np.flatnonzero(active)
            if len(act):
                # Per-task durations for every active column at once:
                # the same (gather * work) * imb float64 sequence the
                # scalar path runs per config, elementwise over columns.
                durations = ((dur_cols[kidx][:, act]
                              * inv.work_arr[:, None]) * imb[:, None])
                batch = simulate_phase_batch(
                    phase, nb.n_cores[act], task_durations_ns=durations)
                for j, i in enumerate(act):
                    sched = batch[j]
                    scheds[i] = sched
                    exec_ns = max(sched.makespan_ns - sched.serial_ns, 1e-9)
                    n_busy_new = min(
                        float(n_cores_f[i]),
                        max(1.0, float(sched.busy_ns.sum()) / exec_ns),
                    )
                    conv[i] = abs(n_busy_new - n_busy[i]) < 0.5
                    n_busy[i] = n_busy_new
            active = active & ~conv
            if not active.any():
                break

        # ------- node-level event totals, accumulated in task order ----------
        instr_cols = np.stack(
            [timing_cols[k].instructions for k in kernel_names])
        l1_cols = np.stack([timing_cols[k].l1_accesses for k in kernel_names])
        l2_cols = np.stack([timing_cols[k].l2_accesses for k in kernel_names])
        l3_cols = np.stack([timing_cols[k].l3_accesses for k in kernel_names])
        dram_cols = np.stack(
            [timing_cols[k].dram_accesses for k in kernel_names])
        bytes_cols = np.stack([timing_cols[k].dram_bytes for k in kernel_names])
        flops_per_kernel = [timing_cols[k].scalar_flops for k in kernel_names]
        # Scalar computes (sig.row_hit_rate * dram_bytes) * w and
        # (store/mem * l1_accesses) * w per task; hoist the per-kernel
        # left factor, keep the * w and the accumulation per task.
        rhb_cols = np.stack([
            detailed[k].row_hit_rate * timing_cols[k].dram_bytes
            for k in kernel_names])
        ratios = []
        for k in kernel_names:
            mix = detailed[k].mix
            ratios.append(mix.store / mix.mem if mix.mem > 0 else 0.0)
        sw_cols = np.stack(
            [ratios[j] * l1_cols[j] for j in range(len(kernel_names))])

        tot_instr = np.zeros(n_configs)
        tot_l1 = np.zeros(n_configs)
        tot_l2 = np.zeros(n_configs)
        tot_l3 = np.zeros(n_configs)
        tot_dram = np.zeros(n_configs)
        tot_bytes = np.zeros(n_configs)
        row_hit_w = np.zeros(n_configs)
        store_w = np.zeros(n_configs)
        tot_flops = 0.0  # config-invariant: same accumulation, computed once
        for t_i in range(inv.n_tasks):
            j = kidx[t_i]
            w = inv.work[t_i]
            tot_instr = tot_instr + instr_cols[j] * w
            tot_flops += flops_per_kernel[j] * w
            tot_l1 = tot_l1 + l1_cols[j] * w
            tot_l2 = tot_l2 + l2_cols[j] * w
            tot_l3 = tot_l3 + l3_cols[j] * w
            tot_dram = tot_dram + dram_cols[j] * w
            tot_bytes = tot_bytes + bytes_cols[j] * w
            row_hit_w = row_hit_w + rhb_cols[j] * w
            store_w = store_w + sw_cols[j] * w

        with np.errstate(divide="ignore", invalid="ignore"):
            row_hit_col = np.where(tot_bytes != 0.0, row_hit_w / tot_bytes, 0.0)
            store_col = np.where(tot_l1 != 0.0, store_w / tot_l1, 0.0)

        out = []
        for i in range(n_configs):
            sched = scheds[i]
            assert sched is not None
            out.append(PhaseDetail(
                makespan_ns=sched.makespan_ns,
                busy_core_ns=float(sched.busy_ns.sum()),
                n_busy_cores=float(n_busy[i]),
                schedule=sched,
                instructions=float(tot_instr[i]),
                scalar_flops=tot_flops,
                l1_accesses=float(tot_l1[i]),
                l2_accesses=float(tot_l2[i]),
                l3_accesses=float(tot_l3[i]),
                dram_accesses=float(tot_dram[i]),
                dram_bytes=float(tot_bytes[i]),
                store_fraction=float(store_col[i]),
                row_hit_rate=float(row_hit_col[i]),
                bw_utilization=float(util_col[i]),
                core_dynamic_j=0.0,
                timings=tuple(timing_cols[k].at(i) for k in kernel_names),
            ))
        return out
