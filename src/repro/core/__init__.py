"""MUSA core: multi-scale orchestration, sweeps, metrics, normalization."""

from .batch import BatchEvaluator
from .canon import canonical_dumps, canonical_loads, content_digest
from .checkpoint import (
    Journal,
    JournalReplay,
    load_checkpoint,
    merge_journal,
    replay_journal,
    run_sweep_checkpointed,
    task_key,
)
from .compare import AppDelta, NodeComparison, compare_nodes
from .metrics import (
    energy_delay_product,
    energy_delay_squared,
    geo_mean,
    normalized_energy,
    parallel_efficiency,
    speedup,
)
from .musa import Musa, RunResult
from .normalize import AxisBar, axis_table, normalize_axis
from .phase_sim import PhaseDetail, simulate_phase_detailed
from .results import CONFIG_KEYS, ResultSet
from .store import ResultStore, store_key
from .sweep import (
    FailNTimes,
    InjectedFault,
    SweepAbort,
    TaskTimeout,
    run_sweep,
    sweep_configs,
)

__all__ = [
    "AppDelta",
    "AxisBar",
    "BatchEvaluator",
    "CONFIG_KEYS",
    "FailNTimes",
    "InjectedFault",
    "Journal",
    "JournalReplay",
    "Musa",
    "SweepAbort",
    "TaskTimeout",
    "NodeComparison",
    "PhaseDetail",
    "ResultSet",
    "ResultStore",
    "RunResult",
    "axis_table",
    "canonical_dumps",
    "canonical_loads",
    "compare_nodes",
    "content_digest",
    "energy_delay_product",
    "energy_delay_squared",
    "geo_mean",
    "load_checkpoint",
    "merge_journal",
    "normalize_axis",
    "normalized_energy",
    "parallel_efficiency",
    "replay_journal",
    "run_sweep",
    "run_sweep_checkpointed",
    "simulate_phase_detailed",
    "speedup",
    "store_key",
    "sweep_configs",
    "task_key",
]
