"""Event records of the coarse-grain (burst) trace.

A burst trace captures, per MPI rank, the alternation of compute phases
and MPI communication events over the whole application run — the same
information Extrae records for MUSA.  Compute phases carry the runtime
system events (task creation, task execution, barriers, critical
sections) needed to re-simulate scheduling for any core count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = [
    "TaskRecord",
    "ComputePhase",
    "MpiCall",
    "P2P_KINDS",
    "COLLECTIVE_KINDS",
    "RankEvent",
]


@dataclass(frozen=True)
class TaskRecord:
    """One runtime-system task instance inside a compute phase.

    ``duration_ns`` is the task's execution time measured in the native
    (reference) run; detailed simulation later replaces it.  ``deps``
    are intra-phase indices of tasks that must complete first (OmpSs
    input dependencies); an empty tuple means the task is immediately
    ready once created.
    """

    kernel: str
    duration_ns: float
    deps: Tuple[int, ...] = ()
    #: work units (e.g. grid cells) — used to rescale durations when the
    #: detailed model re-times the kernel.  Zero is allowed: irregular
    #: decompositions produce empty partitions whose tasks exist in the
    #: trace but carry no re-timeable work.
    work_units: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        if self.work_units < 0:
            raise ValueError("work_units must be non-negative")
        if any(d < 0 for d in self.deps):
            raise ValueError("dependency indices must be non-negative")


@dataclass(frozen=True)
class ComputePhase:
    """A parallel compute region delimited by MPI events.

    Attributes
    ----------
    phase_id:
        Index of the phase within its rank's trace.
    tasks:
        Task instances created in this phase (creation order).
    serial_ns:
        Sequential work executed by the master thread before tasks can
        start (e.g. loop setup, non-parallelized code).
    creation_ns:
        Runtime overhead, in wall-clock ns, paid by the creating thread
        *per task*.  Wall-clock because runtime event timings come from
        the native trace and do not scale with simulated frequency
        (Sec. V-B5).
    barrier_after:
        Whether the phase ends with a thread barrier (taskwait / implicit
        ``parallel for`` barrier).
    critical_ns:
        Total time inside ``omp critical`` sections, serialized across
        threads.
    """

    phase_id: int
    tasks: Tuple[TaskRecord, ...]
    serial_ns: float = 0.0
    creation_ns: float = 0.0
    barrier_after: bool = True
    critical_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.serial_ns < 0 or self.creation_ns < 0 or self.critical_ns < 0:
            raise ValueError("phase overheads must be non-negative")
        n = len(self.tasks)
        for i, t in enumerate(self.tasks):
            for d in t.deps:
                if d >= i:
                    raise ValueError(
                        f"task {i} depends on {d}, but dependencies must "
                        "reference earlier tasks (creation order)"
                    )
                if d >= n:
                    raise ValueError("dependency index out of range")

    @property
    def total_task_ns(self) -> float:
        """Sum of reference task durations (perfect-parallelism work)."""
        return sum(t.duration_ns for t in self.tasks)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)


P2P_KINDS = frozenset({"send", "recv", "isend", "irecv", "wait"})
COLLECTIVE_KINDS = frozenset(
    {"barrier", "allreduce", "reduce", "bcast", "alltoall", "allgather"}
)


@dataclass(frozen=True)
class MpiCall:
    """One MPI call in a rank's event stream.

    ``peer`` is the remote rank for point-to-point calls (``None`` for
    collectives), ``size_bytes`` the message payload (0 for barrier),
    and ``request`` a rank-local id linking isend/irecv to their wait.
    """

    kind: str
    peer: Optional[int] = None
    size_bytes: int = 0
    tag: int = 0
    request: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in P2P_KINDS and self.kind not in COLLECTIVE_KINDS:
            raise ValueError(f"unknown MPI call kind {self.kind!r}")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.kind in {"send", "recv", "isend", "irecv"} and self.peer is None:
            raise ValueError(f"{self.kind} requires a peer rank")
        if self.kind in {"isend", "irecv"} and self.request is None:
            raise ValueError(f"{self.kind} requires a request id")
        if self.kind == "wait" and self.request is None:
            raise ValueError("wait requires a request id")

    @property
    def is_collective(self) -> bool:
        return self.kind in COLLECTIVE_KINDS


#: A rank's trace is a sequence of these.
RankEvent = Union[ComputePhase, MpiCall]
