"""Synthesize address streams matching a target reuse profile.

The analytic path condenses detailed traces into
:class:`~repro.trace.kernel.ReuseProfile` objects; this module solves
the *inverse* problem — generate a concrete byte-address stream whose
measured stack-distance profile approximates a target profile — so the
event-level substrates (exact caches, the DRAM controller, DRAMPower)
can be driven with streams statistically equivalent to an application
kernel's.

Construction: each finite profile component ``(distance d, weight w)``
becomes a circular sweep over a private region.  When components are
interleaved, the *realized* stack distance of a component exceeds its
region size (other components' lines intervene), so region sizes are
calibrated by a short fixed-point loop: synthesize, profile, rescale.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .kernel import ReuseProfile
from .reuse import profile_stream

__all__ = ["synthesize_stream", "SynthesisReport", "synthesize_calibrated"]

_LINE = 64


def _mixture_from_profile(profile: ReuseProfile,
                          max_components: int = 6
                          ) -> List[Tuple[float, float]]:
    """Collapse a profile's histogram into a few (distance, weight)
    components (log-space clustering of adjacent buckets)."""
    edges, weights = profile.edges, profile.weights
    mids = np.sqrt(np.maximum(edges[:-1], 0.5) * edges[1:])
    nz = weights > 0
    mids, weights = mids[nz], weights[nz]
    if len(mids) == 0:
        return []
    # Greedy merge into log-spaced groups.
    order = np.argsort(mids)
    mids, weights = mids[order], weights[order]
    groups: List[Tuple[float, float]] = []
    cur_d, cur_w = mids[0], weights[0]
    for d, w in zip(mids[1:], weights[1:]):
        if d < cur_d * 4 and len(groups) < max_components - 1:
            cur_d = (cur_d * cur_w + d * w) / (cur_w + w)
            cur_w += w
        else:
            groups.append((cur_d, cur_w))
            cur_d, cur_w = d, w
    groups.append((cur_d, cur_w))
    while len(groups) > max_components:
        # merge the two lightest neighbours
        i = int(np.argmin([g[1] for g in groups[:-1]]))
        d1, w1 = groups[i]
        d2, w2 = groups[i + 1]
        groups[i: i + 2] = [((d1 * w1 + d2 * w2) / (w1 + w2), w1 + w2)]
    return groups


def synthesize_stream(
    mixture: Sequence[Tuple[float, float]],
    n_accesses: int,
    cold_fraction: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Interleave circular sweeps per component into one byte stream.

    ``mixture`` is a list of (region size in lines, access weight);
    ``cold_fraction`` of accesses touch never-reused fresh lines.
    """
    if n_accesses <= 0:
        raise ValueError("n_accesses must be positive")
    if not 0.0 <= cold_fraction <= 1.0:
        raise ValueError("cold_fraction must be in [0, 1]")
    if not mixture and cold_fraction <= 0.0:
        raise ValueError("need at least one component or cold traffic")
    rng = np.random.default_rng(seed)
    sizes = np.array([max(1, int(round(d))) for d, _ in mixture],
                     dtype=np.int64)
    ws = np.array([w for _, w in mixture], dtype=np.float64)
    probs = np.zeros(len(mixture) + 1)
    if ws.sum() > 0:
        probs[:-1] = ws / ws.sum() * (1.0 - cold_fraction)
    probs[-1] = 1.0 - probs[:-1].sum()

    choices = rng.choice(len(probs), size=n_accesses, p=probs)
    out = np.empty(n_accesses, dtype=np.int64)
    # Disjoint address regions: component i starts at base_i; cold region
    # sits past everything.
    bases = np.concatenate([[0], np.cumsum(sizes)]) * _LINE
    cursors = np.zeros(len(mixture), dtype=np.int64)
    cold_cursor = 0
    cold_base = int(bases[-1]) + _LINE
    for i, c in enumerate(choices):
        if c == len(mixture):
            out[i] = cold_base + cold_cursor * _LINE
            cold_cursor += 1
        else:
            out[i] = bases[c] + (cursors[c] % sizes[c]) * _LINE
            cursors[c] += 1
    return out


class SynthesisReport:
    """Outcome of calibrated synthesis: the stream plus fit quality."""

    def __init__(self, stream: np.ndarray, target: ReuseProfile,
                 capacities: Sequence[float],
                 representable_lines: float) -> None:
        self.stream = stream
        self.target = target
        self.measured = profile_stream(stream, max_samples=len(stream))
        #: reuse beyond this capacity cannot be represented with this
        #: stream length (components that large were folded into cold)
        self.representable_lines = representable_lines
        self.capacities = tuple(c for c in capacities
                                if c <= representable_lines)

    def miss_ratio_errors(self) -> List[float]:
        """Absolute miss-ratio error at each representable capacity."""
        return [
            abs(self.measured.miss_ratio(c) - self.target.miss_ratio(c))
            for c in self.capacities
        ]

    @property
    def max_error(self) -> float:
        errors = self.miss_ratio_errors()
        return max(errors) if errors else 0.0


def _calibrate_sizes(targets: Sequence[float], weights: Sequence[float],
                     cold_fraction: float,
                     n_iterations: int = 12) -> List[float]:
    """Solve region sizes so realized stack distances hit the targets.

    Between two visits to one line of component i there are ~s_i/w_i
    stream accesses; the distinct lines they touch are s_i of its own,
    min(s_j, window * w_j) of each other component, and the window's
    cold lines.  A damped fixed point inverts this inflation.
    """
    sizes = [max(1.0, t) for t in targets]
    for _ in range(n_iterations):
        new_sizes = []
        for i, (d_target, w_i) in enumerate(zip(targets, weights)):
            s_i = sizes[i]
            window = s_i / max(w_i, 1e-9)
            realized = s_i + cold_fraction * window
            for j, (s_j, w_j) in enumerate(zip(sizes, weights)):
                if j != i:
                    realized += min(s_j, window * w_j)
            scale = d_target / max(realized, 1e-9)
            new_sizes.append(max(1.0, s_i * (0.5 + 0.5 * scale)))
        sizes = new_sizes
    return sizes


def synthesize_calibrated(
    profile: ReuseProfile,
    n_accesses: int = 60_000,
    capacities: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> SynthesisReport:
    """Generate a stream whose stack-distance behaviour matches
    ``profile`` at the given cache capacities (defaults to the paper's
    L1/L2 sizes in lines).

    Components too deep to be reused within ``n_accesses`` (a region is
    only re-swept if it receives at least ~3x its size in accesses) are
    folded into cold traffic; ``SynthesisReport.representable_lines``
    records the resulting validity horizon.
    """
    if capacities is None:
        capacities = (512.0, 4096.0, 8192.0, 16384.0)
    mixture = _mixture_from_profile(profile)
    cold = profile.cold_fraction

    # Fold unrepresentable components into cold traffic.
    kept: List[Tuple[float, float]] = []
    representable = float(n_accesses)
    for d, w in mixture:
        if n_accesses * w >= 3.0 * d:
            kept.append((d, w))
        else:
            cold += w
            representable = min(representable, d)
    representable = representable if cold > profile.cold_fraction \
        else float(n_accesses)

    if not kept:
        stream = synthesize_stream([], n_accesses,
                                   cold_fraction=max(cold, 0.01), seed=seed)
        return SynthesisReport(stream, profile, capacities, representable)

    targets = [d for d, _ in kept]
    weights_norm = np.array([w for _, w in kept])
    weights_norm = weights_norm / (weights_norm.sum() + cold) \
        * (1.0 - cold / (weights_norm.sum() + cold))
    sizes = _calibrate_sizes(targets, list(weights_norm), cold)
    stream = synthesize_stream(
        list(zip(sizes, (w for _, w in kept))), n_accesses,
        cold_fraction=cold, seed=seed)
    return SynthesisReport(stream, profile, capacities, representable)
