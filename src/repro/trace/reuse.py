"""Exact LRU stack-distance (reuse-distance) profiling.

Implements Mattson's stack-distance analysis with the standard
Bennett/Kruskal algorithm: keep the last access time of every line and a
Fenwick (binary indexed) tree over trace positions marking lines whose
most recent access is at that position.  The stack distance of an access
is the number of marked positions after the line's previous access —
i.e. the number of *distinct* lines touched in between.

Complexity is O(N log N); streams are profiled once per application
model and the resulting :class:`~repro.trace.kernel.ReuseProfile` is
reused across all 864 design points, mirroring how MUSA amortizes one
detailed trace over the whole sweep.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .kernel import ReuseProfile

__all__ = ["FenwickTree", "stack_distances", "profile_stream"]


class FenwickTree:
    """Binary indexed tree over ``n`` positions supporting point update
    and prefix-sum query in O(log n)."""

    __slots__ = ("_tree", "_n")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("size must be positive")
        self._n = n
        self._tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        """Add ``delta`` at position ``i`` (0-based)."""
        if not 0 <= i < self._n:
            raise IndexError(f"position {i} out of range [0, {self._n})")
        i += 1
        tree = self._tree
        while i <= self._n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of positions [0, i] (0-based, inclusive)."""
        if i < 0:
            return 0
        i = min(i, self._n - 1) + 1
        s = 0
        tree = self._tree
        while i > 0:
            s += int(tree[i])
            i -= i & (-i)
        return s

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of positions [lo, hi] inclusive."""
        return self.prefix_sum(hi) - self.prefix_sum(lo - 1)

    def total(self) -> int:
        return self.prefix_sum(self._n - 1)


def stack_distances(addresses: np.ndarray,
                    line_bytes: int = 64) -> Tuple[np.ndarray, int]:
    """Exact LRU stack distances of a byte-address stream.

    Returns ``(distances, n_cold)`` where ``distances`` holds one entry
    per *reuse* access (distance = distinct lines touched since the
    previous access to the same line, 0 for back-to-back reuse) and
    ``n_cold`` counts compulsory first-touch accesses.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if addresses.ndim != 1:
        raise ValueError("address stream must be 1-D")
    if line_bytes <= 0:
        raise ValueError("line_bytes must be positive")
    n = len(addresses)
    if n == 0:
        return np.empty(0, dtype=np.int64), 0

    lines = addresses // line_bytes
    tree = FenwickTree(n)
    last_pos: dict = {}
    distances = np.empty(n, dtype=np.int64)
    n_dist = 0
    n_cold = 0
    for t in range(n):
        line = int(lines[t])
        prev = last_pos.get(line)
        if prev is None:
            n_cold += 1
        else:
            # Distinct lines touched strictly between prev and t ==
            # marked positions in (prev, t).
            distances[n_dist] = tree.range_sum(prev + 1, t - 1)
            n_dist += 1
            tree.add(prev, -1)
        tree.add(t, 1)
        last_pos[line] = t
    return distances[:n_dist].copy(), n_cold


def profile_stream(addresses: np.ndarray, line_bytes: int = 64,
                   n_buckets: int = 48,
                   max_samples: int = 200_000,
                   seed: int = 0) -> ReuseProfile:
    """Profile a byte-address stream into a :class:`ReuseProfile`.

    Streams longer than ``max_samples`` are profiled on a contiguous
    random window — stack-distance profiles of stationary streams are
    insensitive to the window position, and windowing keeps the O(N log N)
    pass bounded.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    if len(addresses) > max_samples:
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, len(addresses) - max_samples + 1))
        addresses = addresses[start:start + max_samples]
    distances, n_cold = stack_distances(addresses, line_bytes=line_bytes)
    return ReuseProfile.from_distances(distances, n_cold=n_cold,
                                       n_buckets=n_buckets)
