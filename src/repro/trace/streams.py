"""Synthetic memory address stream generators.

These stand in for the address streams DynamoRIO records from real
binaries.  Each generator returns a 1-D ``int64`` array of *byte*
addresses; :func:`repro.trace.reuse.profile_stream` converts a stream
into a :class:`~repro.trace.kernel.ReuseProfile`, and the exact cache
simulator in :mod:`repro.uarch.cache` can replay it directly.

All generators are deterministic given a seed, vectorized with numpy,
and sized so profiling stays cheap (guides: vectorize, avoid Python
loops over elements).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "sequential_sweep",
    "strided",
    "random_uniform",
    "zipf",
    "stencil1d",
    "multi_array",
    "interleave",
]

_DOUBLE = 8  # bytes per double-precision element


def _check_positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


def sequential_sweep(ws_bytes: int, n_sweeps: int = 2,
                     elem_bytes: int = _DOUBLE, base: int = 0) -> np.ndarray:
    """Unit-stride sweeps over a working set, repeated ``n_sweeps`` times.

    The classic streaming-kernel pattern: every line is reused once per
    sweep at a stack distance equal to the working-set size in lines.
    """
    _check_positive(ws_bytes=ws_bytes, n_sweeps=n_sweeps, elem_bytes=elem_bytes)
    n_elems = max(1, ws_bytes // elem_bytes)
    one = base + np.arange(n_elems, dtype=np.int64) * elem_bytes
    return np.tile(one, n_sweeps)


def strided(ws_bytes: int, stride_bytes: int, n_accesses: int,
            base: int = 0) -> np.ndarray:
    """Fixed-stride accesses wrapping around a working set.

    Strides >= one cache line defeat spatial locality (one miss per
    access on the first sweep), the pattern of column-major traversals.
    """
    _check_positive(ws_bytes=ws_bytes, stride_bytes=stride_bytes,
                    n_accesses=n_accesses)
    offsets = (np.arange(n_accesses, dtype=np.int64) * stride_bytes) % ws_bytes
    return base + offsets


def random_uniform(ws_bytes: int, n_accesses: int, seed: int = 0,
                   elem_bytes: int = _DOUBLE, base: int = 0) -> np.ndarray:
    """Uniformly random element accesses within a working set.

    Models pointer-chasing / indirect (gather) access with no temporal
    structure beyond the working-set size.
    """
    _check_positive(ws_bytes=ws_bytes, n_accesses=n_accesses,
                    elem_bytes=elem_bytes)
    rng = np.random.default_rng(seed)
    n_elems = max(1, ws_bytes // elem_bytes)
    idx = rng.integers(0, n_elems, size=n_accesses, dtype=np.int64)
    return base + idx * elem_bytes


def zipf(ws_bytes: int, n_accesses: int, alpha: float = 1.2, seed: int = 0,
         elem_bytes: int = _DOUBLE, base: int = 0) -> np.ndarray:
    """Zipf-distributed accesses: hot-cold locality within a working set.

    Models codes with skewed reuse (lookup tables, unstructured meshes
    with popular nodes) — a small hot set absorbs most accesses.
    """
    _check_positive(ws_bytes=ws_bytes, n_accesses=n_accesses,
                    elem_bytes=elem_bytes)
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    n_elems = max(1, ws_bytes // elem_bytes)
    ranks = np.arange(1, n_elems + 1, dtype=np.float64)
    probs = ranks ** (-alpha)
    probs /= probs.sum()
    # Shuffle rank->address so hot elements are spread across the array.
    perm = rng.permutation(n_elems)
    idx = rng.choice(n_elems, size=n_accesses, p=probs)
    return base + perm[idx].astype(np.int64) * elem_bytes


def stencil1d(n_points: int, radius: int = 1, n_arrays: int = 2,
              n_iters: int = 2, elem_bytes: int = _DOUBLE) -> np.ndarray:
    """1-D stencil: read ``2*radius+1`` neighbours of array 0, write array 1.

    The dominant pattern of structured-grid hydrodynamics kernels:
    strong spatial locality plus whole-array reuse across iterations.
    """
    _check_positive(n_points=n_points, n_iters=n_iters, elem_bytes=elem_bytes)
    if radius < 0:
        raise ValueError("radius must be non-negative")
    if n_arrays < 2:
        raise ValueError("need at least read + write arrays")
    array_stride = (n_points + 2 * radius) * elem_bytes
    i = np.arange(radius, n_points + radius, dtype=np.int64)
    reads = [(i + off) * elem_bytes for off in range(-radius, radius + 1)]
    write = array_stride + i * elem_bytes
    per_point = np.stack(reads + [write], axis=1).reshape(-1)
    return np.tile(per_point, n_iters)


def multi_array(n_points: int, n_arrays: int, n_iters: int = 2,
                elem_bytes: int = _DOUBLE) -> np.ndarray:
    """Point-wise traversal of many coupled field arrays (LULESH-like).

    Each grid point touches one element of each of ``n_arrays`` distinct
    arrays; the aggregate working set is ``n_arrays`` times the grid.
    """
    _check_positive(n_points=n_points, n_arrays=n_arrays, n_iters=n_iters,
                    elem_bytes=elem_bytes)
    stride = n_points * elem_bytes
    i = np.arange(n_points, dtype=np.int64) * elem_bytes
    per_point = np.stack([i + a * stride for a in range(n_arrays)], axis=1)
    return np.tile(per_point.reshape(-1), n_iters)


def interleave(streams: Sequence[np.ndarray], seed: Optional[int] = 0,
               address_disjoint: bool = True) -> np.ndarray:
    """Randomly interleave several streams into one, preserving each
    stream's internal order (models concurrent access phases).

    With ``address_disjoint`` each stream is relocated to a private
    address region so streams do not alias.
    """
    if not streams:
        raise ValueError("need at least one stream")
    streams = [np.asarray(s, dtype=np.int64) for s in streams]
    if address_disjoint:
        offset = 0
        shifted = []
        for s in streams:
            span = int(s.max()) + 64 if len(s) else 64
            shifted.append(s + offset)
            offset += span
        streams = shifted
    total = sum(len(s) for s in streams)
    owner = np.repeat(np.arange(len(streams)), [len(s) for s in streams])
    rng = np.random.default_rng(seed)
    rng.shuffle(owner)
    out = np.empty(total, dtype=np.int64)
    for k, s in enumerate(streams):
        out[owner == k] = s
    return out
