"""Detailed-trace kernel signatures.

MUSA's detailed traces record instruction-level information for each
compute kernel (opcode, PC, registers, memory addresses).  Replaying
hundreds of millions of instructions per design point is what makes the
native toolchain expensive; our substitute condenses a kernel's detailed
trace into a :class:`KernelSignature`:

* a dynamic **instruction mix** (fp / int / load / store / branch),
* an intrinsic **ILP** bound (dependency-limited IPC),
* **vectorization structure** (fusable fraction and loop trip counts),
* a **reuse-distance profile** of its memory accesses, and
* an inherent **memory-level parallelism** bound.

These are exactly the statistics the interval-analysis timing model and
the stack-distance cache model consume, so nothing is lost for the
sweep; the raw-stream path (:mod:`repro.trace.streams` +
:mod:`repro.trace.reuse`) can regenerate a profile from synthetic
address streams for validation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from ..util import LruDict

__all__ = ["InstructionMix", "ReuseProfile", "KernelSignature"]


@dataclass(frozen=True)
class InstructionMix:
    """Fractions of dynamic instructions per class; must sum to 1."""

    fp: float
    int_alu: float
    load: float
    store: float
    branch: float
    other: float = 0.0

    def __post_init__(self) -> None:
        vals = (self.fp, self.int_alu, self.load, self.store, self.branch,
                self.other)
        if any(v < 0 for v in vals):
            raise ValueError("mix fractions must be non-negative")
        total = sum(vals)
        if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
            raise ValueError(f"mix fractions must sum to 1, got {total}")

    @property
    def mem(self) -> float:
        """Fraction of instructions that access memory."""
        return self.load + self.store


class ReuseProfile:
    """LRU stack-distance histogram of a kernel's memory accesses.

    Distances are measured in *distinct cache lines* touched between two
    accesses to the same line (Mattson stack distance).  The profile is
    stored as logarithmic buckets plus a ``cold_fraction`` of compulsory
    (first-touch) accesses with infinite distance.

    Miss ratios follow from the profile: a fully-associative LRU cache of
    ``C`` lines misses exactly the accesses with distance >= C; for a
    set-associative cache the Hill/Smith binomial approximation is used
    (an access at distance ``d`` hits iff fewer than ``assoc`` of the
    ``d`` intervening lines fall in its set).
    """

    __slots__ = ("_edges", "_weights", "cold_fraction")

    def __init__(self, edges: Sequence[float], weights: Sequence[float],
                 cold_fraction: float = 0.0) -> None:
        edges_arr = np.asarray(edges, dtype=np.float64)
        weights_arr = np.asarray(weights, dtype=np.float64)
        if edges_arr.ndim != 1 or weights_arr.ndim != 1:
            raise ValueError("edges and weights must be 1-D")
        if len(edges_arr) != len(weights_arr) + 1:
            raise ValueError("need len(edges) == len(weights) + 1")
        if np.any(np.diff(edges_arr) <= 0):
            raise ValueError("edges must be strictly increasing")
        if edges_arr[0] < 0:
            raise ValueError("distances are non-negative")
        if np.any(weights_arr < 0):
            raise ValueError("weights must be non-negative")
        if not 0.0 <= cold_fraction <= 1.0:
            raise ValueError("cold_fraction must be in [0, 1]")
        total = weights_arr.sum() + cold_fraction
        if total <= 0:
            raise ValueError("profile is empty")
        # Normalize so that bucket weights + cold_fraction == 1.
        scale = (1.0 - cold_fraction) / weights_arr.sum() if weights_arr.sum() else 0.0
        self._edges = edges_arr
        self._weights = weights_arr * scale
        self.cold_fraction = float(cold_fraction)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_distances(cls, distances: np.ndarray, n_cold: int = 0,
                       n_buckets: int = 48) -> "ReuseProfile":
        """Build a profile from raw stack distances (see trace.reuse)."""
        distances = np.asarray(distances, dtype=np.float64)
        n_total = len(distances) + n_cold
        if n_total == 0:
            raise ValueError("no accesses")
        if len(distances) == 0:
            return cls([0.0, 1.0], [0.0], cold_fraction=1.0)
        dmax = max(distances.max(), 1.0)
        edges = np.concatenate(
            [[0.0], np.logspace(0, np.log2(dmax) + 1e-9, n_buckets, base=2.0)]
        )
        hist, _ = np.histogram(distances, bins=edges)
        return cls(edges, hist / n_total, cold_fraction=n_cold / n_total)

    @classmethod
    def from_components(cls, components: Sequence[Tuple[float, float]],
                        cold_fraction: float = 0.0) -> "ReuseProfile":
        """Build from ``(distance, weight)`` pairs.

        This is the analytic constructor the application models use: each
        component states "``weight`` of accesses reuse a line last touched
        ``distance`` distinct lines ago".  Weights need not be normalized.
        """
        if not components:
            raise ValueError("need at least one component")
        dists = np.array([max(0.0, d) for d, _ in components])
        ws = np.array([w for _, w in components], dtype=np.float64)
        if np.any(ws < 0):
            raise ValueError("weights must be non-negative")
        if ws.sum() <= 0 and cold_fraction <= 0:
            raise ValueError("profile is empty")
        order = np.argsort(dists)
        dists, ws = dists[order], ws[order]
        # Spread each point over a narrow log bucket so miss curves are
        # smooth rather than step functions across the design space.
        edges_list = [0.0]
        weights_list = []
        for d, w in zip(dists, ws):
            lo = max(edges_list[-1], d * 0.75)
            hi = max(lo * 1.5, lo + 1.0)
            if lo > edges_list[-1]:
                edges_list.append(lo)
                weights_list.append(0.0)
            edges_list.append(hi)
            weights_list.append(w)
        total = ws.sum()
        weights_arr = np.array(weights_list) / total * (1.0 - cold_fraction) \
            if total else np.array(weights_list)
        return cls(np.array(edges_list), weights_arr, cold_fraction)

    # -- queries ------------------------------------------------------------

    @property
    def edges(self) -> np.ndarray:
        return self._edges.copy()

    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    def mean_distance(self) -> float:
        """Weighted mean stack distance of the finite-distance accesses."""
        mids = np.sqrt(np.maximum(self._edges[:-1], 0.5) * self._edges[1:])
        w = self._weights.sum()
        if w == 0:
            return math.inf
        return float((mids * self._weights).sum() / w)

    def miss_ratio(self, capacity_lines: float, associativity: int = 0,
                   n_sets: int = 0) -> float:
        """Miss ratio of an LRU cache with the given geometry.

        With ``associativity == 0`` the cache is treated as fully
        associative (miss iff distance >= capacity).  Otherwise the
        Hill/Smith set-associative correction is applied using
        ``n_sets`` (defaults to capacity/assoc).
        """
        if capacity_lines <= 0:
            return 1.0
        mids = np.sqrt(np.maximum(self._edges[:-1], 0.25) * self._edges[1:])
        if associativity <= 0:
            p_miss = (mids >= capacity_lines).astype(np.float64)
            # log-linear interpolation inside the straddling bucket
            lo, hi = self._edges[:-1], self._edges[1:]
            straddle = (lo < capacity_lines) & (hi >= capacity_lines)
            if straddle.any():
                lo_s = np.maximum(lo[straddle], 0.5)
                frac = (np.log(capacity_lines) - np.log(lo_s)) / (
                    np.log(hi[straddle]) - np.log(lo_s)
                )
                p_miss[straddle] = 1.0 - np.clip(frac, 0.0, 1.0)
        else:
            sets = n_sets if n_sets > 0 else max(1, int(capacity_lines) // associativity)
            p_miss = _setassoc_miss_prob(mids, associativity, sets)
        return float(np.clip((p_miss * self._weights).sum() + self.cold_fraction,
                             0.0, 1.0))

    def miss_ratio_batch(self, capacities: Sequence[float],
                         associativities: Sequence[int],
                         n_sets: Sequence[int]) -> np.ndarray:
        """:meth:`miss_ratio` over a batch of cache geometries.

        All ``G`` geometries are evaluated against the ``B`` reuse
        buckets in one ``(G, B)`` NumPy pass and reduced row-wise.
        Bitwise-identical to ``G`` scalar :meth:`miss_ratio` calls: each
        element sees the same float64 operation sequence on the same
        operands (ufuncs are shape-invariant), and the row reduction is
        a 1-D-length pairwise sum over a C-contiguous row, exactly the
        reduction order of the scalar ``(p_miss * weights).sum()``.
        """
        caps = np.asarray(capacities, dtype=np.float64)
        assocs = np.asarray(associativities, dtype=np.int64)
        sets = np.asarray(n_sets, dtype=np.int64)
        if not (caps.shape == assocs.shape == sets.shape) or caps.ndim != 1:
            raise ValueError("geometry arrays must be 1-D and aligned")
        n_geom = len(caps)
        n_buckets = len(self._weights)
        out = np.empty(n_geom, dtype=np.float64)
        empty = caps <= 0
        out[empty] = 1.0
        live = ~empty
        if not live.any():
            return out
        mids = np.sqrt(np.maximum(self._edges[:-1], 0.25) * self._edges[1:])
        p_miss = np.empty((int(live.sum()), n_buckets), dtype=np.float64)
        caps_l, assocs_l, sets_l = caps[live], assocs[live], sets[live]

        fa = assocs_l <= 0
        if fa.any():
            caps_fa = caps_l[fa]
            pm = (mids[None, :] >= caps_fa[:, None]).astype(np.float64)
            lo, hi = self._edges[:-1], self._edges[1:]
            straddle = ((lo[None, :] < caps_fa[:, None])
                        & (hi[None, :] >= caps_fa[:, None]))
            if straddle.any():
                lo_s = np.maximum(lo, 0.5)
                with np.errstate(divide="ignore", invalid="ignore"):
                    frac = (np.log(caps_fa)[:, None] - np.log(lo_s)[None, :]) / (
                        np.log(hi)[None, :] - np.log(lo_s)[None, :]
                    )
                    pm[straddle] = (1.0 - np.clip(frac, 0.0, 1.0))[straddle]
            p_miss[fa] = pm

        sa = ~fa
        if sa.any():
            # sets <= 0 defaults to capacity/assoc, as in the scalar path
            sets_eff = np.where(
                sets_l[sa] > 0, sets_l[sa],
                np.maximum(1, caps_l[sa].astype(np.int64) // assocs_l[sa]))
            p_miss[sa] = _setassoc_miss_prob_batch(mids, assocs_l[sa], sets_eff)

        out[live] = np.clip(
            np.sum(p_miss * self._weights, axis=1) + self.cold_fraction,
            0.0, 1.0)
        return out

    def scaled(self, factor: float) -> "ReuseProfile":
        """Profile with all distances multiplied by ``factor``.

        Models working sets growing/shrinking (e.g. larger inputs or
        cache-line-level false sharing) without rebuilding components.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return ReuseProfile(self._edges * factor, self._weights,
                            self.cold_fraction)


#: Largest stack distance priced with the exact binomial tail; beyond it
#: the normal approximation takes over (same threshold scipy-era code used).
_SMALL_D_MAX = 256

#: Survival tables keyed ``(assoc, n_sets)``.  The design space only has a
#: handful of associativities x set counts (plus L3 set counts divided by
#: the few occupancy values), so these are computed once per process.
_SURVIVAL_TABLES: LruDict = LruDict(512, eviction_counter="miss.table.evictions")

_SQRT1_2 = 1.0 / math.sqrt(2.0)


def _binom_survival_table(assoc: int, n_sets: int) -> np.ndarray:
    """``tab[d] = P(Binom(d, 1/n_sets) >= assoc)`` for d = 0.._SMALL_D_MAX.

    Built from the exact one-more-trial pmf recurrence
    ``pmf_{d+1}[k] = pmf_d[k]*q + pmf_d[k-1]*p`` and summed over the
    upper tail directly, so no scipy is needed and small tail values are
    not lost to a ``1 - cdf`` cancellation.
    """
    key = (int(assoc), int(n_sets))
    tab = _SURVIVAL_TABLES.get(key)
    if tab is None:
        p = 1.0 / key[1]
        q = 1.0 - p
        a = max(0, key[0])
        pmf = np.zeros(_SMALL_D_MAX + 1, dtype=np.float64)
        pmf[0] = 1.0
        tab = np.empty(_SMALL_D_MAX + 1, dtype=np.float64)
        tab[0] = float(pmf[a:].sum())
        for d in range(1, _SMALL_D_MAX + 1):
            pmf[1:d + 1] = pmf[1:d + 1] * q + pmf[:d] * p
            pmf[0] *= q
            tab[d] = float(pmf[a:d + 1].sum())
        _SURVIVAL_TABLES[key] = tab
    return tab


def _norm_sf(x: np.ndarray) -> np.ndarray:
    """Standard normal survival function, ``0.5 * erfc(x / sqrt(2))``.

    NumPy has no ``erfc`` ufunc and scipy is banned from the hot path;
    ``math.erfc`` per element is fine because the large-d branch only
    runs on the handful of reuse buckets past ``_SMALL_D_MAX``.
    """
    flat = np.asarray(x, dtype=np.float64).ravel()
    out = np.fromiter((math.erfc(v * _SQRT1_2) for v in flat),
                      dtype=np.float64, count=flat.size)
    return 0.5 * out.reshape(np.shape(x))


def _setassoc_miss_prob(distances: np.ndarray, assoc: int,
                        n_sets: int) -> np.ndarray:
    """P(miss | stack distance d) for an A-way cache with S sets.

    An access hits iff fewer than A of the d distinct intervening lines
    map to its set; intervening lines are assumed uniformly spread
    (Hill & Smith, 1989).  A normal approximation is used for large d to
    keep the sweep fast; the exact binomial tail (precomputed survival
    table) is used when d is small.  scipy-free: cross-checked against
    ``scipy.stats`` by :func:`_setassoc_miss_prob_scipy` in the tests.
    """
    d = np.asarray(distances, dtype=np.float64)
    p = 1.0 / n_sets
    mean = d * p
    out = np.empty_like(d)
    small = d <= _SMALL_D_MAX
    if small.any():
        tab = _binom_survival_table(assoc, n_sets)
        out[small] = tab[np.maximum(d[small], 0).astype(int)]
    big = ~small
    if big.any():
        sd = np.sqrt(np.maximum(d[big] * p * (1 - p), 1e-12))
        # continuity-corrected P(X >= assoc)
        out[big] = _norm_sf((assoc - 0.5 - mean[big]) / sd)
    return np.clip(out, 0.0, 1.0)


def _setassoc_miss_prob_batch(distances: np.ndarray, assocs: np.ndarray,
                              n_sets: np.ndarray) -> np.ndarray:
    """:func:`_setassoc_miss_prob` for G geometries at once -> ``(G, B)``.

    Bitwise-identical to stacking G scalar calls: the small-d branch
    gathers from the same survival tables, and the large-d branch runs
    the same elementwise float64 sequence with the per-geometry scalars
    broadcast along the rows.
    """
    d = np.asarray(distances, dtype=np.float64)
    assocs = np.asarray(assocs, dtype=np.int64)
    sets = np.asarray(n_sets, dtype=np.int64)
    p = 1.0 / sets.astype(np.float64)
    mean = d[None, :] * p[:, None]
    out = np.empty((len(assocs), len(d)), dtype=np.float64)
    small = d <= _SMALL_D_MAX
    if small.any():
        idx = np.maximum(d[small], 0).astype(int)
        tabs = np.stack([_binom_survival_table(a, s)
                         for a, s in zip(assocs, sets)])
        out[:, small] = tabs[:, idx]
    big = ~small
    if big.any():
        sd = np.sqrt(np.maximum((d[None, big] * p[:, None]) * (1 - p)[:, None],
                                1e-12))
        out[:, big] = _norm_sf(
            ((assocs.astype(np.float64) - 0.5)[:, None] - mean[:, big]) / sd)
    return np.clip(out, 0.0, 1.0)


def _setassoc_miss_prob_scipy(distances: np.ndarray, assoc: int,
                              n_sets: int) -> np.ndarray:
    """The scipy-based reference implementation, kept for cross-checks.

    Not called by any hot path — only by the test suite (when scipy is
    installed) to validate the table/erfc rewrite above.
    """
    d = np.asarray(distances, dtype=np.float64)
    p = 1.0 / n_sets
    mean = d * p
    out = np.empty_like(d)
    small = d <= _SMALL_D_MAX
    if small.any():
        from scipy.stats import binom

        out[small] = binom.sf(assoc - 1, np.maximum(d[small], 0).astype(int), p)
    big = ~small
    if big.any():
        from scipy.stats import norm

        sd = np.sqrt(np.maximum(d[big] * p * (1 - p), 1e-12))
        out[big] = norm.sf((assoc - 0.5 - mean[big]) / sd)
    return np.clip(out, 0.0, 1.0)


@dataclass(frozen=True)
class KernelSignature:
    """Condensed detailed trace of one compute kernel (task type).

    Attributes
    ----------
    name:
        Kernel identifier, matching :class:`~repro.trace.events.TaskRecord`
        ``kernel`` fields.
    instr_per_unit:
        Dynamic *scalar-equivalent* instructions per work unit (the trace
        is scalarized exactly as MUSA's decoder does, so SIMD fusion can
        re-vectorize it at any width).
    mix:
        Dynamic instruction mix.
    ilp:
        Dependency-limited IPC ceiling of the kernel's dataflow (what an
        infinitely wide machine with perfect caches would sustain).
    vec_fraction:
        Fraction of instructions inside vectorizable innermost loops
        (candidates for SIMD fusion).
    trip_count:
        Typical innermost-loop trip count; fusion to ``L`` lanes requires
        the same static instruction to repeat ``L`` times consecutively,
        so the trip count caps the effective width (Sec. III).
    mlp:
        Inherent memory-level parallelism: independent in-flight misses
        the dataflow allows (ROB size may further limit it).
    reuse:
        Stack-distance profile of memory accesses.
    bytes_per_access:
        Payload bytes per scalar memory instruction (8 for double).
    row_hit_rate:
        DRAM row-buffer hit probability of the kernel's miss stream
        (high for streaming kernels, low for irregular/gather access);
        consumed by the DRAM power model to estimate ACT/PRE counts.
    """

    name: str
    instr_per_unit: float
    mix: InstructionMix
    ilp: float
    vec_fraction: float
    trip_count: float
    mlp: float
    reuse: ReuseProfile
    bytes_per_access: float = 8.0
    row_hit_rate: float = 0.6

    def __post_init__(self) -> None:
        if self.instr_per_unit <= 0:
            raise ValueError("instr_per_unit must be positive")
        if self.ilp <= 0:
            raise ValueError("ilp must be positive")
        if not 0.0 <= self.vec_fraction <= 1.0:
            raise ValueError("vec_fraction must be in [0, 1]")
        if self.trip_count < 1:
            raise ValueError("trip_count must be >= 1")
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")
        if self.bytes_per_access <= 0:
            raise ValueError("bytes_per_access must be positive")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be in [0, 1]")

    def instructions(self, work_units: float) -> float:
        """Dynamic scalar instruction count for ``work_units`` of work."""
        if work_units <= 0:
            raise ValueError("work_units must be positive")
        return self.instr_per_unit * work_units
