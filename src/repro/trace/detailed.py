"""Detailed (instruction-level) trace container.

MUSA traces one representative iteration of one rank in detailed mode
and reuses it for every architectural configuration.  Our substitute
stores one :class:`~repro.trace.kernel.KernelSignature` per kernel
(task type) plus the sampling metadata, which is all the detailed
timing model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Tuple

from .kernel import KernelSignature

__all__ = ["DetailedTrace"]


@dataclass(frozen=True)
class DetailedTrace:
    """Per-kernel detailed signatures for one application.

    Attributes
    ----------
    app:
        Application name.
    kernels:
        Mapping from kernel name to its signature.
    sampled_rank:
        Which rank the detailed sample was taken from (MUSA typically
        traces rank 0).
    sampled_iteration:
        Which iteration was sampled (usually the second, past warm-up).
    """

    app: str
    kernels: Mapping[str, KernelSignature]
    sampled_rank: int = 0
    sampled_iteration: int = 1

    def __post_init__(self) -> None:
        if not self.kernels:
            raise ValueError("detailed trace needs at least one kernel")
        if self.sampled_rank < 0 or self.sampled_iteration < 0:
            raise ValueError("sample metadata must be non-negative")
        for name, sig in self.kernels.items():
            if not isinstance(sig, KernelSignature):
                raise TypeError(f"kernel {name!r} is not a KernelSignature")
            if sig.name != name:
                raise ValueError(
                    f"kernel key {name!r} does not match signature name "
                    f"{sig.name!r}"
                )
        # Freeze the mapping so the trace is safely shareable across the
        # sweep's worker processes.
        object.__setattr__(self, "kernels", dict(self.kernels))

    def __getitem__(self, kernel: str) -> KernelSignature:
        try:
            return self.kernels[kernel]
        except KeyError:
            raise KeyError(
                f"app {self.app!r} has no kernel {kernel!r}; "
                f"known: {sorted(self.kernels)}"
            ) from None

    def __contains__(self, kernel: str) -> bool:
        return kernel in self.kernels

    def __iter__(self) -> Iterator[str]:
        return iter(self.kernels)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.kernels))

    def covers(self, kernel_names) -> bool:
        """True if every name in ``kernel_names`` has a signature."""
        return all(name in self.kernels for name in kernel_names)
