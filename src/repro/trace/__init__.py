"""Multi-level trace substrate (replaces Extrae + DynamoRIO output)."""

from .burst import BurstTrace, RankTrace
from .detailed import DetailedTrace
from .events import (
    COLLECTIVE_KINDS,
    P2P_KINDS,
    ComputePhase,
    MpiCall,
    TaskRecord,
)
from .kernel import InstructionMix, KernelSignature, ReuseProfile
from .reuse import FenwickTree, profile_stream, stack_distances
from .synthesize import SynthesisReport, synthesize_calibrated, synthesize_stream
from .serialize import (
    burst_from_dict,
    burst_to_dict,
    detailed_from_dict,
    detailed_to_dict,
    load_burst,
    load_detailed,
    save_burst,
    save_detailed,
)

__all__ = [
    "COLLECTIVE_KINDS",
    "P2P_KINDS",
    "BurstTrace",
    "ComputePhase",
    "DetailedTrace",
    "FenwickTree",
    "InstructionMix",
    "KernelSignature",
    "MpiCall",
    "RankTrace",
    "ReuseProfile",
    "SynthesisReport",
    "TaskRecord",
    "burst_from_dict",
    "burst_to_dict",
    "detailed_from_dict",
    "detailed_to_dict",
    "load_burst",
    "load_detailed",
    "profile_stream",
    "save_burst",
    "save_detailed",
    "stack_distances",
    "synthesize_calibrated",
    "synthesize_stream",
]
