"""JSON serialization for traces.

MUSA stores traces on disk so one tracing run drives the whole design
space.  We provide a compact JSON round-trip for :class:`BurstTrace` and
:class:`DetailedTrace` (reuse-profile arrays included), so expensive
trace generation can be cached between sweep runs.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, Dict, Union

from .burst import BurstTrace, RankTrace
from .detailed import DetailedTrace
from .events import ComputePhase, MpiCall, TaskRecord
from .kernel import InstructionMix, KernelSignature, ReuseProfile

__all__ = [
    "burst_to_dict", "burst_from_dict", "save_burst", "load_burst",
    "detailed_to_dict", "detailed_from_dict", "save_detailed", "load_detailed",
]

_FORMAT_VERSION = 1


# -- burst traces -------------------------------------------------------------

def burst_to_dict(trace: BurstTrace) -> Dict[str, Any]:
    def event(ev) -> Dict[str, Any]:
        if isinstance(ev, ComputePhase):
            return {
                "t": "phase",
                "id": ev.phase_id,
                "tasks": [
                    [t.kernel, t.duration_ns, list(t.deps), t.work_units]
                    for t in ev.tasks
                ],
                "serial_ns": ev.serial_ns,
                "creation_ns": ev.creation_ns,
                "barrier_after": ev.barrier_after,
                "critical_ns": ev.critical_ns,
            }
        return {
            "t": "mpi", "kind": ev.kind, "peer": ev.peer,
            "size": ev.size_bytes, "tag": ev.tag, "req": ev.request,
        }

    return {
        "version": _FORMAT_VERSION,
        "type": "burst",
        "app": trace.app,
        "n_iterations": trace.n_iterations,
        "ranks": [
            {"rank": rt.rank, "events": [event(e) for e in rt.events]}
            for rt in trace.ranks
        ],
    }


def burst_from_dict(data: Dict[str, Any]) -> BurstTrace:
    _check_header(data, "burst")

    def event(d: Dict[str, Any]):
        if d["t"] == "phase":
            return ComputePhase(
                phase_id=d["id"],
                tasks=tuple(
                    TaskRecord(kernel=k, duration_ns=dur, deps=tuple(deps),
                               work_units=wu)
                    for k, dur, deps, wu in d["tasks"]
                ),
                serial_ns=d["serial_ns"],
                creation_ns=d["creation_ns"],
                barrier_after=d["barrier_after"],
                critical_ns=d["critical_ns"],
            )
        return MpiCall(kind=d["kind"], peer=d["peer"], size_bytes=d["size"],
                       tag=d["tag"], request=d["req"])

    ranks = tuple(
        RankTrace(rank=r["rank"], events=tuple(event(e) for e in r["events"]))
        for r in data["ranks"]
    )
    return BurstTrace(app=data["app"], ranks=ranks,
                      n_iterations=data["n_iterations"])


# -- detailed traces ----------------------------------------------------------

def detailed_to_dict(trace: DetailedTrace) -> Dict[str, Any]:
    def kernel(sig: KernelSignature) -> Dict[str, Any]:
        m = sig.mix
        return {
            "instr_per_unit": sig.instr_per_unit,
            "mix": [m.fp, m.int_alu, m.load, m.store, m.branch, m.other],
            "ilp": sig.ilp,
            "vec_fraction": sig.vec_fraction,
            "trip_count": sig.trip_count,
            "mlp": sig.mlp,
            "bytes_per_access": sig.bytes_per_access,
            "row_hit_rate": sig.row_hit_rate,
            "reuse": {
                "edges": sig.reuse.edges.tolist(),
                "weights": sig.reuse.weights.tolist(),
                "cold": sig.reuse.cold_fraction,
            },
        }

    return {
        "version": _FORMAT_VERSION,
        "type": "detailed",
        "app": trace.app,
        "sampled_rank": trace.sampled_rank,
        "sampled_iteration": trace.sampled_iteration,
        "kernels": {name: kernel(sig) for name, sig in trace.kernels.items()},
    }


def detailed_from_dict(data: Dict[str, Any]) -> DetailedTrace:
    _check_header(data, "detailed")

    def kernel(name: str, d: Dict[str, Any]) -> KernelSignature:
        fp, int_alu, load, store, branch, other = d["mix"]
        return KernelSignature(
            name=name,
            instr_per_unit=d["instr_per_unit"],
            mix=InstructionMix(fp=fp, int_alu=int_alu, load=load, store=store,
                               branch=branch, other=other),
            ilp=d["ilp"],
            vec_fraction=d["vec_fraction"],
            trip_count=d["trip_count"],
            mlp=d["mlp"],
            bytes_per_access=d["bytes_per_access"],
            row_hit_rate=d.get("row_hit_rate", 0.6),
            reuse=ReuseProfile(d["reuse"]["edges"], d["reuse"]["weights"],
                               d["reuse"]["cold"]),
        )

    return DetailedTrace(
        app=data["app"],
        kernels={name: kernel(name, kd) for name, kd in data["kernels"].items()},
        sampled_rank=data["sampled_rank"],
        sampled_iteration=data["sampled_iteration"],
    )


# -- file I/O -----------------------------------------------------------------

def _check_header(data: Dict[str, Any], expected: str) -> None:
    if data.get("type") != expected:
        raise ValueError(
            f"expected a {expected!r} trace, got type={data.get('type')!r}"
        )
    if data.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version {data.get('version')!r}"
        )


def _write(path: Path, payload: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(payload, separators=(",", ":"))
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            fh.write(text)
    else:
        path.write_text(text, encoding="utf-8")


def _read(path: Path) -> Dict[str, Any]:
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return json.load(fh)
    return json.loads(path.read_text(encoding="utf-8"))


def save_burst(trace: BurstTrace, path: Union[str, Path]) -> None:
    """Write a burst trace to ``path`` (gzip if it ends in .gz)."""
    _write(Path(path), burst_to_dict(trace))


def load_burst(path: Union[str, Path]) -> BurstTrace:
    return burst_from_dict(_read(Path(path)))


def save_detailed(trace: DetailedTrace, path: Union[str, Path]) -> None:
    """Write a detailed trace to ``path`` (gzip if it ends in .gz)."""
    _write(Path(path), detailed_to_dict(trace))


def load_detailed(path: Union[str, Path]) -> DetailedTrace:
    return detailed_from_dict(_read(Path(path)))
