"""Burst (coarse-grain) trace containers.

A :class:`BurstTrace` is the whole-application, per-rank event stream
MUSA obtains with Extrae: compute phases carrying runtime-system events,
interleaved with MPI calls.  It is the input to both burst-mode
(hardware-agnostic) simulation and the communication replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .events import ComputePhase, MpiCall, RankEvent

__all__ = ["RankTrace", "BurstTrace"]


@dataclass(frozen=True)
class RankTrace:
    """Event stream of one MPI rank."""

    rank: int
    events: Tuple[RankEvent, ...]

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError("rank must be non-negative")
        for ev in self.events:
            if not isinstance(ev, (ComputePhase, MpiCall)):
                raise TypeError(f"unexpected event type {type(ev).__name__}")
        seen_requests = set()
        pending = set()
        for ev in self.events:
            if isinstance(ev, MpiCall):
                if ev.kind in {"isend", "irecv"}:
                    if ev.request in pending:
                        raise ValueError(
                            f"rank {self.rank}: request {ev.request} reused "
                            "before being waited on"
                        )
                    pending.add(ev.request)
                    seen_requests.add(ev.request)
                elif ev.kind == "wait":
                    if ev.request not in pending:
                        raise ValueError(
                            f"rank {self.rank}: wait on unknown request "
                            f"{ev.request}"
                        )
                    pending.discard(ev.request)
        if pending:
            raise ValueError(
                f"rank {self.rank}: unwaited requests {sorted(pending)}"
            )

    def compute_phases(self) -> List[ComputePhase]:
        return [e for e in self.events if isinstance(e, ComputePhase)]

    def mpi_calls(self) -> List[MpiCall]:
        return [e for e in self.events if isinstance(e, MpiCall)]

    @property
    def total_compute_ns(self) -> float:
        """Reference (native-trace) compute time, perfectly parallel."""
        return sum(p.total_task_ns + p.serial_ns for p in self.compute_phases())

    @property
    def total_mpi_bytes(self) -> int:
        return sum(c.size_bytes for c in self.mpi_calls()
                   if c.kind in {"send", "isend"})


@dataclass(frozen=True)
class BurstTrace:
    """Whole-application coarse trace: one :class:`RankTrace` per rank."""

    app: str
    ranks: Tuple[RankTrace, ...]
    #: iterations the traced region covers (for per-iteration metrics)
    n_iterations: int = 1

    def __post_init__(self) -> None:
        if not self.ranks:
            raise ValueError("trace needs at least one rank")
        if self.n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        got = [r.rank for r in self.ranks]
        if got != list(range(len(self.ranks))):
            raise ValueError(f"ranks must be dense 0..N-1, got {got[:8]}...")
        n = len(self.ranks)
        for rt in self.ranks:
            for ev in rt.mpi_calls():
                if ev.peer is not None and not 0 <= ev.peer < n:
                    raise ValueError(
                        f"rank {rt.rank}: peer {ev.peer} out of range 0..{n-1}"
                    )

    @property
    def n_ranks(self) -> int:
        return len(self.ranks)

    def __iter__(self) -> Iterator[RankTrace]:
        return iter(self.ranks)

    def kernel_names(self) -> List[str]:
        """All kernel names referenced by any task, sorted."""
        names = {
            t.kernel
            for rt in self.ranks
            for ph in rt.compute_phases()
            for t in ph.tasks
        }
        return sorted(names)

    def phase_counts(self) -> Tuple[int, int]:
        """(total compute phases, total MPI calls) across ranks."""
        n_phase = sum(len(rt.compute_phases()) for rt in self.ranks)
        n_mpi = sum(len(rt.mpi_calls()) for rt in self.ranks)
        return n_phase, n_mpi
