"""``repro`` command-line interface.

Subcommands mirror the paper's workflow:

* ``repro characterize <app>`` — Fig. 1-style runtime statistics;
* ``repro simulate <app> [--core ... --cache ...]`` — one design point;
* ``repro sweep [--apps ...] [--out results.json]`` — the campaign;
* ``repro figure <axis> --results results.json`` — a paper figure
  (text, optionally ``--svg out.svg``);
* ``repro scaling <app>`` — Fig. 2-style scaling study;
* ``repro timeline <app>`` — Fig. 3/4-style ASCII timelines;
* ``repro serve`` — HTTP query API over a persistent content-addressed
  result store;
* ``repro query (sweep|best|delta|...)`` — client for a running server;
* ``repro sweep --shard K/N`` + ``repro merge-journal`` — split one
  campaign across processes or hosts and union the partial journals
  into one resumable, byte-stable file;
* ``repro search <app>`` — active Pareto-front search instead of an
  exhaustive sweep (range spaces with 10^5+ points).

Every subcommand prints to stdout; sweeps persist a JSON
:class:`~repro.core.results.ResultSet` consumable by ``figure``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis import (
    compute_region_scaling,
    format_rows,
    full_app_scaling,
    occupancy_stats,
    rank_activity_stats,
    render_core_timeline,
    render_rank_timeline,
)
from ..apps import APP_NAMES, get_app
from ..config import (
    CACHE_LABELS,
    CORE_LABELS,
    DesignSpace,
    MEMORY_LABELS,
    baseline_node,
    full_design_space,
    smoke_design_space,
)
from ..core import Musa, ResultSet, run_sweep

#: Axis name -> (baseline value, value list) for the `figure` command.
FIGURE_AXES = {
    "vector": (128, (128, 256, 512)),
    "cache": ("32M:256K", CACHE_LABELS),
    "core": ("aggressive", ("aggressive", "lowend", "high", "medium")),
    "memory": ("4chDDR4", MEMORY_LABELS),
    "frequency": (1.5, (1.5, 2.0, 2.5, 3.0)),
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="MUSA reproduction: design-space exploration of "
                    "next-generation HPC machines (IPDPS 2019)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("characterize", help="Fig. 1 runtime statistics")
    c.add_argument("app", choices=APP_NAMES)
    c.add_argument("--cores", type=int, default=32)

    s = sub.add_parser("simulate", help="simulate one design point")
    s.add_argument("app", choices=APP_NAMES)
    _add_node_args(s)

    w = sub.add_parser("sweep", help="run a design-space sweep")
    w.add_argument("--apps", nargs="+", default=list(APP_NAMES),
                   choices=APP_NAMES)
    w.add_argument("--out", default="results.json")
    w.add_argument("--processes", type=int, default=None)
    w.add_argument("--mode", default="fast", choices=("fast", "replay"),
                   help="per-point integration: 'fast' analytic critical "
                        "path, or 'replay' event-driven MPI trace replay "
                        "(paper Sec. II; slower, models communication "
                        "overlap and bus contention)")
    w.add_argument("--ranks", type=int, default=256,
                   help="MPI ranks per simulated run (default 256)")
    w.add_argument("--plane", action="store_true",
                   help="only the 2 GHz / {32,64}-core plane (faster)")
    w.add_argument("--smoke", action="store_true",
                   help="tiny 8-configuration smoke space (CI)")
    w.add_argument("--resume", default=None, metavar="JOURNAL",
                   help="journal completed tasks here and skip any "
                        "already journaled (crash-safe resume)")
    w.add_argument("--metrics-json", default=None, metavar="PATH",
                   help="write execution metrics (throughput, retries, "
                        "memo hit rate) as JSON")
    w.add_argument("--timeout", type=float, default=None, metavar="S",
                   help="per-task wall-clock budget in seconds")
    w.add_argument("--retries", type=int, default=2,
                   help="retry attempts per failing task (default 2)")
    w.add_argument("--chunk-size", type=int, default=None,
                   help="tasks per worker dispatch")
    w.add_argument("--batch-size", type=int, default=256,
                   help="configs per batched evaluation (default 256)")
    w.add_argument("--no-batch", action="store_true",
                   help="disable the batched evaluator (one simulation "
                        "per task; results are identical, just slower)")
    w.add_argument("--profile", type=int, default=None, metavar="N",
                   help="profile the sweep with cProfile and print the "
                        "top-N cumulative hotspots; the raw stats are "
                        "written as a .prof next to --metrics-json (or "
                        "--out)")
    w.add_argument("--shard", default=None, metavar="K/N",
                   help="evaluate only every N-th task starting at K "
                        "(0-based); run one shard per process or host, "
                        "then union the journals with `repro "
                        "merge-journal`")

    mj = sub.add_parser(
        "merge-journal",
        help="union sharded sweep journals into one resumable journal")
    mj.add_argument("journals", nargs="+", metavar="JOURNAL",
                    help="partial journal files (any order)")
    mj.add_argument("--out", required=True, metavar="JOURNAL",
                    help="merged journal path (byte-stable: independent "
                         "of input order)")
    mj.add_argument("--results", default=None, metavar="JSON",
                    help="also write the merged successful records as a "
                         "ResultSet JSON")

    se = sub.add_parser(
        "search",
        help="active Pareto-front search (evaluates a fraction of the "
             "space instead of sweeping it)")
    se.add_argument("app", choices=APP_NAMES)
    se.add_argument("--range", action="store_true",
                    help="search the range-generated space (31 "
                         "frequencies x 4..252 cores, 140616 points) "
                         "instead of the 864-point paper space")
    se.add_argument("--x-metric", default="time_ns")
    se.add_argument("--y-metric", default="power_total_w")
    se.add_argument("--ranks", type=int, default=256)
    se.add_argument("--mode", default="fast", choices=("fast", "replay"))
    se.add_argument("--max-evals", type=int, default=None,
                    help="hard evaluation budget (default: 20%% of the "
                         "space)")
    se.add_argument("--budget-frac", type=float, default=0.2)
    se.add_argument("--batch-size", type=int, default=64)
    se.add_argument("--epsilon", type=float, default=0.15)
    se.add_argument("--seed", type=int, default=0)
    se.add_argument("--surrogate", action="store_true",
                    help="rank candidates with the quadratic surrogate")
    se.add_argument("--store", default=None, metavar="JSONL",
                    help="stream evaluated points into this content-"
                         "addressed store (reused on later searches and "
                         "by `repro serve`)")
    se.add_argument("--out", default=None, metavar="JSON",
                    help="write every evaluated record as a ResultSet "
                         "JSON")

    f = sub.add_parser("figure", help="render a paper figure from a sweep")
    f.add_argument("axis", choices=sorted(FIGURE_AXES))
    f.add_argument("--results", default="results.json")
    f.add_argument("--metric", default="time_ns",
                   choices=("time_ns", "power_total_w", "power_core_l1_w",
                            "energy_j"))
    f.add_argument("--cores", type=int, default=64)
    f.add_argument("--svg", default=None,
                   help="also write an SVG bar chart to this path")

    g = sub.add_parser("scaling", help="Fig. 2 scaling study")
    g.add_argument("app", choices=APP_NAMES)
    g.add_argument("--ranks", type=int, default=64)

    t = sub.add_parser("timeline", help="Fig. 3/4 ASCII timelines")
    t.add_argument("app", choices=APP_NAMES)
    t.add_argument("--cores", type=int, default=64)
    t.add_argument("--ranks", type=int, default=16)
    t.add_argument("--width", type=int, default=72)

    r = sub.add_parser("recommend",
                       help="derive co-design guidelines from a sweep")
    r.add_argument("--results", default="results.json")
    r.add_argument("--cores", type=int, default=64)

    v = sub.add_parser("validate",
                       help="cross-check the analytic models against the "
                            "event-level substrates")
    v.add_argument("--apps", nargs="+", default=list(APP_NAMES),
                   choices=APP_NAMES)
    v.add_argument("--accesses", type=int, default=40_000)

    e = sub.add_parser("explain",
                       help="CPI-stack breakdown of one kernel on one node")
    e.add_argument("app", choices=APP_NAMES)
    e.add_argument("kernel", nargs="?", default=None,
                   help="kernel name (default: the app's first kernel)")
    _add_node_args(e)
    e.add_argument("--share", type=int, default=32,
                   help="cores sharing the L3 (default 32)")

    cp = sub.add_parser(
        "compare",
        help="A/B-compare two node specs across all applications")
    cp.add_argument("node_a", help='e.g. "medium/64M:512K/4chDDR4/2GHz"')
    cp.add_argument("node_b", help='e.g. "high/96M:1M/8chDDR4/512b"')
    cp.add_argument("--apps", nargs="+", default=list(APP_NAMES),
                    choices=APP_NAMES)

    rf = sub.add_parser("roofline",
                        help="roofline placement of an app's kernels")
    rf.add_argument("app", choices=APP_NAMES)
    _add_node_args(rf)

    tn = sub.add_parser("tornado",
                        help="one-factor axis sensitivity around a baseline")
    tn.add_argument("app", choices=APP_NAMES)
    tn.add_argument("--metric", default="time_ns",
                    choices=("time_ns", "power_total_w", "energy_j"))
    tn.add_argument("--cores", type=int, default=64)

    rp = sub.add_parser("report",
                        help="self-contained HTML report from a sweep")
    rp.add_argument("--results", default="results.json")
    rp.add_argument("--out", default="report.html")
    rp.add_argument("--cores", type=int, default=64)

    b = sub.add_parser(
        "bench",
        help="pinned benchmark suite: identity oracles, trend ledger, "
             "regression gate")
    b.add_argument("--smoke", action="store_true",
                   help="CI-sized workloads (seconds, identity still "
                        "asserted)")
    b.add_argument("--only", nargs="+", metavar="ID",
                   help="run a subset: exact ids, 'micro'/'macro', or a "
                        "'micro.' prefix")
    b.add_argument("--list", action="store_true",
                   help="list registered benchmarks and exit")
    b.add_argument("--ledger", default="BENCH_LEDGER.jsonl", metavar="JSONL",
                   help="trend ledger path (default BENCH_LEDGER.jsonl)")
    b.add_argument("--check", action="store_true",
                   help="regression gate: exit nonzero when any benchmark "
                        "regresses past --threshold vs its ledger baseline "
                        "or any identity oracle fails")
    b.add_argument("--threshold", type=float, default=0.10,
                   help="allowed normalized-cost regression fraction "
                        "(default 0.10 = 10%%)")
    b.add_argument("--append", action="store_true",
                   help="append this run's entries to the ledger")
    b.add_argument("--report", nargs="?", const="bench_trend.html",
                   default=None, metavar="HTML",
                   help="render the ledger trend report; alone (without "
                        "--check/--append) renders without running")
    b.add_argument("--json", default=None, metavar="PATH",
                   help="write this run's results and verdicts as JSON")
    b.add_argument("--repeats", type=int, default=None,
                   help="timed samples per benchmark (default: protocol "
                        "per kind/tier)")
    b.add_argument("--warmup", type=int, default=None,
                   help="untimed warmup runs per benchmark")
    b.add_argument("--retries", type=int, default=2,
                   help="independent re-measurements a suspected "
                        "regression must survive before the gate fails "
                        "it (default 2; 0 disables arbitration)")
    b.add_argument("--inject-slowdown", type=float, default=1.0,
                   metavar="FACTOR",
                   help="multiply measured samples by FACTOR (gate "
                        "self-test aid; recorded in the entry and never "
                        "used as a baseline)")
    b.add_argument("--seed-from-snapshots", action="store_true",
                   help="convert the historical BENCH_*.json snapshots "
                        "into seed ledger entries and exit")
    b.add_argument("--merge", nargs="+", metavar="JSONL",
                   help="merge these ledgers into --ledger (content-"
                        "deduplicated) and exit")

    sv = sub.add_parser(
        "serve",
        help="serve design-space queries over HTTP from a persistent "
             "content-addressed result store")
    sv.add_argument("--store", default="serve_store.jsonl", metavar="JSONL",
                    help="content-addressed store path "
                         "(default serve_store.jsonl)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8787)
    sv.add_argument("--invalidate-stale", action="store_true",
                    help="on startup, drop store entries produced by a "
                         "different code version")

    q = sub.add_parser(
        "query",
        help="query a running `repro serve` instance")
    q.add_argument("kind", choices=("sweep", "best", "delta", "health",
                                    "metrics", "invalidate"))
    q.add_argument("--host", default="127.0.0.1")
    q.add_argument("--port", type=int, default=8787)
    q.add_argument("--apps", nargs="+", default=None, choices=APP_NAMES)
    q.add_argument("--smoke", action="store_true",
                   help="query over the 8-configuration smoke space")
    q.add_argument("--set", dest="subset", nargs="+", default=[],
                   metavar="AXIS=VALUE",
                   help="pin axes, e.g. --set frequency=2.0 cores=64 "
                        "(repeatable values: cores=32,64)")
    q.add_argument("--mode", default="fast", choices=("fast", "replay"))
    q.add_argument("--ranks", type=int, default=256)
    q.add_argument("--objective", default="time_ns",
                   choices=("time_ns", "energy_j", "power_total_w", "edp"),
                   help="best-query objective (geomean across apps)")
    q.add_argument("--power-cap", type=float, default=None, metavar="W")
    q.add_argument("--area-cap", type=float, default=None, metavar="MM2")
    q.add_argument("--energy-cap", type=float, default=None, metavar="J")
    q.add_argument("--min-frequency", type=float, default=None,
                   metavar="GHZ")
    q.add_argument("--axis", default=None,
                   help="delta-query axis (e.g. cache, memory)")
    q.add_argument("--a", dest="val_a", default=None,
                   help="delta-query first axis value")
    q.add_argument("--b", dest="val_b", default=None,
                   help="delta-query second axis value")
    q.add_argument("--app", default=None,
                   help="invalidate: restrict to one app")
    q.add_argument("--stale", action="store_true",
                   help="invalidate: drop entries from other code versions")
    q.add_argument("--all", dest="inv_all", action="store_true",
                   help="invalidate: drop everything")
    q.add_argument("--out", default=None, metavar="PATH",
                   help="write sweep-query records as a ResultSet JSON "
                        "consumable by `repro figure`")
    return p


def _add_node_args(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--core", default="medium", choices=CORE_LABELS)
    sp.add_argument("--cache", default="64M:512K", choices=CACHE_LABELS)
    sp.add_argument("--memory", default="4chDDR4",
                    choices=("4chDDR4", "8chDDR4", "16chDDR4", "16chHBM"))
    sp.add_argument("--frequency", type=float, default=2.0)
    sp.add_argument("--vector", type=int, default=128)
    sp.add_argument("--cores", type=int, default=64)


def _node_from_args(args) -> "NodeConfig":
    return baseline_node(args.cores).with_(
        core=args.core, cache=args.cache, memory=args.memory,
        frequency_ghz=args.frequency, vector_bits=args.vector,
    )


def cmd_characterize(args) -> int:
    r = Musa(get_app(args.app)).simulate_node(baseline_node(args.cores))
    print(format_rows(
        f"{args.app} @ {args.cores} cores (baseline node)",
        ["metric", "value"],
        [
            ["runtime [ms]", r.time_ns / 1e6],
            ["L1 MPKI", r.mpki_l1],
            ["L2 MPKI", r.mpki_l2],
            ["L3 MPKI", r.mpki_l3],
            ["DRAM requests [G/s]", r.gmem_req_per_s],
            ["bandwidth utilization", r.bw_utilization],
            ["core occupancy", r.occupancy],
            ["node power [W]", r.power.total_w],
            ["energy/node [J]", r.energy_j],
        ]))
    return 0


def cmd_simulate(args) -> int:
    node = _node_from_args(args)
    r = Musa(get_app(args.app)).simulate_node(node)
    p = r.power
    print(format_rows(
        f"{args.app} on {node.label}",
        ["metric", "value"],
        [
            ["runtime [ms]", r.time_ns / 1e6],
            ["Core+L1 power [W]", p.core_l1_w],
            ["L2+L3 power [W]", p.l2_l3_w],
            ["Memory power [W]", p.memory_w],
            ["node power [W]", p.total_w],
            ["energy/node [J]", r.energy_j],
            ["bandwidth utilization", r.bw_utilization],
        ]))
    return 0


def _profiled_sweep(run, args) -> "ResultSet":
    """Run ``run()`` under cProfile, print the top-N cumulative
    hotspots and dump the raw stats next to ``--metrics-json`` (or, when
    no metrics path was given, next to ``--out``)."""
    import cProfile
    import pstats
    from pathlib import Path

    if args.profile < 1:
        raise SystemExit("error: --profile must be >= 1")
    prof = cProfile.Profile()
    prof.enable()
    try:
        results = run()
    finally:
        prof.disable()
    anchor = Path(args.metrics_json or args.out)
    prof_path = anchor.with_suffix(".prof")
    prof.dump_stats(prof_path)
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.sort_stats("cumulative")
    print(f"\ntop {args.profile} hotspots by cumulative time "
          f"(full stats: {prof_path})")
    stats.print_stats(args.profile)
    return results


def cmd_sweep(args) -> int:
    import json

    from ..analysis import format_metrics_summary
    from ..obs import get_metrics, summarize

    if args.smoke:
        space = smoke_design_space()
    elif args.plane:
        space = DesignSpace(frequencies=(2.0,), core_counts=(32, 64))
    else:
        space = full_design_space()
    total = len(space) * len(args.apps)
    shard_note = ""
    if args.shard:
        if not args.resume:
            print("warning: --shard without --resume produces partial "
                  "results that cannot be merged; pass --resume "
                  "JOURNAL so `repro merge-journal` can union the "
                  "shards", file=sys.stderr)
        shard_note = f" (shard {args.shard})"
    print(f"sweeping {len(space)} configurations x {len(args.apps)} apps "
          f"({total} simulations){shard_note}...", flush=True)
    reg = get_metrics()
    reg.reset()

    def _run():
        return run_sweep(args.apps, space, n_ranks=args.ranks,
                         processes=args.processes,
                         progress=True, resume=args.resume,
                         timeout_s=args.timeout, max_retries=args.retries,
                         chunk_size=args.chunk_size,
                         batch=not args.no_batch,
                         batch_size=args.batch_size,
                         mode=args.mode, shard=args.shard)

    if args.profile is not None:
        results = _profiled_sweep(_run, args)
    else:
        results = _run()
    results.save(args.out)
    print(f"wrote {len(results)} records to {args.out}")
    n_failed = len(results.failures())
    if n_failed:
        print(f"warning: {n_failed} task(s) exhausted retries and were "
              "recorded as failed stubs", file=sys.stderr)
    summary = summarize(reg.snapshot())
    print(format_metrics_summary(summary))
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        print(f"wrote metrics to {args.metrics_json}")
    return 0


def cmd_merge_journal(args) -> int:
    from ..core import merge_journal

    try:
        replay = merge_journal(args.journals, args.out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    n_ok = len(replay.results)
    n_failed = len(replay.failed)
    print(f"merged {len(args.journals)} journal(s) into {args.out}: "
          f"{n_ok} completed task(s), {n_failed} failed stub(s)")
    if args.results:
        replay.results.save(args.results)
        print(f"wrote {n_ok} records to {args.results}")
    return 0


def cmd_search(args) -> int:
    from ..analysis import format_metrics_summary, search_front
    from ..bench import code_version
    from ..config import range_design_space
    from ..core.store import ResultStore
    from ..obs import get_metrics, summarize

    space = range_design_space() if args.range else full_design_space()
    reg = get_metrics()
    reg.reset()
    store = ResultStore(args.store) if args.store else None
    try:
        r = search_front(
            args.app, space, x_metric=args.x_metric, y_metric=args.y_metric,
            n_ranks=args.ranks, mode=args.mode, max_evals=args.max_evals,
            budget_frac=args.budget_frac, batch_size=args.batch_size,
            epsilon=args.epsilon, seed=args.seed, surrogate=args.surrogate,
            store=store, code_version=code_version())
    finally:
        if store is not None:
            store.close()
    status = "converged" if r.converged else "budget exhausted"
    print(f"{args.app}: searched {len(space)} points, evaluated "
          f"{r.n_evaluated} ({r.evaluated_fraction:.1%}) in {r.rounds} "
          f"rounds — {status}")
    print(format_rows(
        f"Pareto front ({args.x_metric} vs {args.y_metric}, "
        f"{len(r.front)} points)",
        ["config", "cores", args.x_metric, args.y_metric],
        [[p.label, p.config["cores"], p.x, p.y] for p in r.front]))
    if args.out:
        r.results.save(args.out)
        print(f"wrote {r.n_evaluated} records to {args.out}")
    print(format_metrics_summary(summarize(reg.snapshot())))
    return 0


def cmd_figure(args) -> int:
    from ..core import normalize_axis

    try:
        results = ResultSet.load(args.results)
    except FileNotFoundError:
        print(f"error: no sweep results at {args.results!r} — run "
              "`repro sweep` first", file=sys.stderr)
        return 1
    baseline, values = FIGURE_AXES[args.axis]
    bars = normalize_axis(results, args.axis, baseline, args.metric)
    rows = []
    table = {}
    for b in bars:
        if b.cores != args.cores:
            continue
        rows.append([b.app, b.value, b.mean, b.std, b.n_samples])
        table.setdefault(b.app, {})[b.value] = b.mean
    if not rows:
        print(f"error: no records for --cores {args.cores}",
              file=sys.stderr)
        return 1
    print(format_rows(
        f"{args.metric} vs {args.axis} (normalized to {baseline}), "
        f"{args.cores} cores",
        ["app", args.axis, "mean", "std", "n"], rows))
    if args.svg:
        from ..analysis.svgchart import grouped_bar_chart

        svg = grouped_bar_chart(
            table, groups=list(table), values=list(values),
            title=f"{args.metric} vs {args.axis} ({args.cores} cores)",
        )
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(svg)
        print(f"wrote {args.svg}")
    return 0


def cmd_scaling(args) -> int:
    musa = Musa(get_app(args.app))
    region = compute_region_scaling(musa)
    full = full_app_scaling(musa, n_ranks=args.ranks, n_iterations=2)
    rows = []
    for n in region.core_counts:
        i = region.core_counts.index(n)
        rows.append([n, region.speedups[i], region.efficiency(n),
                     full.speedups[i], full.efficiency(n)])
    print(format_rows(
        f"{args.app} scaling ({args.ranks} ranks for the full app)",
        ["cores", "region speedup", "region eff", "full speedup",
         "full eff"], rows))
    return 0


def cmd_timeline(args) -> int:
    musa = Musa(get_app(args.app))
    sched = musa.burst_phase(musa.app.representative_phase(), args.cores,
                             collect_spans=True)
    stats = occupancy_stats(sched)
    print(f"{args.app}: representative phase on {args.cores} cores — "
          f"occupancy {stats.busy_fraction:.0%}, "
          f"{stats.active_cores}/{args.cores} cores active")
    print(render_core_timeline(sched.spans, args.cores, sched.makespan_ns,
                               width=args.width, max_cores=24))
    res = musa.simulate_burst_full(n_cores=args.cores, n_ranks=args.ranks,
                                   n_iterations=2, collect_segments=True)
    rstats = rank_activity_stats(res)
    print(f"\nfull-app replay, {args.ranks} ranks — "
          f"{rstats.mean_collective_fraction:.0%} of rank-time in "
          "collectives ('#' compute, 'B' collective, '-' p2p, 'w' wait)")
    print(render_rank_timeline(res.segments, args.ranks, res.total_ns,
                               width=args.width, max_ranks=16))
    return 0


def cmd_recommend(args) -> int:
    from ..analysis import recommend

    try:
        results = ResultSet.load(args.results)
    except FileNotFoundError:
        print(f"error: no sweep results at {args.results!r} — run "
              "`repro sweep` first", file=sys.stderr)
        return 1
    print(recommend(results, cores=args.cores).render())
    return 0


def cmd_validate(args) -> int:
    from ..config import cache_preset
    from ..uarch import validate_kernel

    rows = []
    all_passed = True
    for app in args.apps:
        detailed = get_app(app).detailed_trace()
        for kernel in detailed.names():
            v = validate_kernel(detailed[kernel], cache_preset("64M:512K"),
                                l3_share_cores=32,
                                n_accesses=args.accesses)
            ok = v.passed()
            all_passed &= ok
            eff = ("n/a" if v.efficiency_error is None
                   else f"{v.efficiency_error:.3f}")
            rows.append([app, kernel, v.max_miss_error, eff,
                         "PASS" if ok else "FAIL"])
    print(format_rows(
        "Analytic models vs event-level substrates (64M:512K, 32-way L3 share)",
        ["app", "kernel", "max miss-ratio err", "DRAM eff err", "verdict"],
        rows))
    return 0 if all_passed else 1


def cmd_explain(args) -> int:
    from ..uarch import explain_kernel

    detailed = get_app(args.app).detailed_trace()
    kernel = args.kernel or detailed.names()[0]
    if kernel not in detailed:
        print(f"error: {args.app} has no kernel {kernel!r}; "
              f"choose from {detailed.names()}", file=sys.stderr)
        return 1
    node = _node_from_args(args)
    print(explain_kernel(detailed[kernel], node,
                         l3_share_cores=args.share).render())
    return 0


def cmd_roofline(args) -> int:
    from ..uarch import render_roofline, roofline_point

    node = _node_from_args(args)
    detailed = get_app(args.app).detailed_trace()
    points = [roofline_point(detailed[k], node) for k in detailed.names()]
    print(render_roofline(points))
    return 0


def cmd_tornado(args) -> int:
    from ..analysis import render_tornado, tornado

    musa = Musa(get_app(args.app))
    swings = tornado(musa, baseline_node(args.cores), metric=args.metric)
    print(render_tornado(swings, args.metric))
    return 0


def cmd_report(args) -> int:
    from ..analysis import build_html_report

    try:
        results = ResultSet.load(args.results)
    except FileNotFoundError:
        print(f"error: no sweep results at {args.results!r} — run "
              "`repro sweep` first", file=sys.stderr)
        return 1
    try:
        html_text = build_html_report(results, cores=args.cores)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html_text)
    print(f"wrote {args.out}")
    return 0


def cmd_compare(args) -> int:
    from ..config import parse_node
    from ..core import compare_nodes

    try:
        node_a = parse_node(args.node_a)
        node_b = parse_node(args.node_b)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    apps = [get_app(a) for a in args.apps]
    try:
        print(compare_nodes(node_a, node_b, apps=apps).render())
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    import json as _json
    from dataclasses import asdict
    from pathlib import Path

    from .. import bench as B

    if args.threshold < 0:
        print("error: --threshold must be non-negative", file=sys.stderr)
        return 2
    if args.inject_slowdown <= 0:
        print("error: --inject-slowdown must be positive", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("error: --retries must be non-negative", file=sys.stderr)
        return 2

    if args.list:
        for b in B.REGISTRY.values():
            print(f"{b.id:24s} [{b.kind}] {b.description}")
        return 0

    if args.merge:
        merged = B.Ledger.load(args.ledger)
        for other in args.merge:
            merged = merged.merge(B.Ledger.load(other))
        merged.save(args.ledger)
        print(f"merged {len(args.merge)} ledger(s) into {args.ledger} "
              f"({len(merged)} entries)")
        return 0

    host = B.host_fingerprint()

    if args.seed_from_snapshots:
        calib = B.calibration_s()
        existing = B.Ledger.load(args.ledger)
        have = {e.get("source") for e in existing.entries if e.get("seed")}
        entries = [e for e in B.seed_entries_from_snapshots(
            Path.cwd(), calib, host) if e["source"] not in have]
        B.Ledger.append_to(args.ledger, entries)
        print(f"seeded {len(entries)} snapshot entr{'y' if len(entries) == 1 else 'ies'} "
              f"into {args.ledger} ({len(have)} already present)")
        return 0

    report_only = args.report is not None and not (args.check or args.append)
    if not report_only:
        tier = "smoke" if args.smoke else "full"
        benches = B.get_benchmarks(args.only)
        print(f"calibrating reference kernel...", flush=True)
        calib = B.calibration_s()
        print(f"  calib_s = {calib * 1e3:.2f} ms  host={host['id']}")
        ledger = B.Ledger.load(args.ledger)

        def _progress(bid, r):
            norm = B.normalized(r.min_s, r.calib_min_s or calib)
            oracle = "ok" if r.oracle_ok else "ORACLE-FAILED"
            print(f"  {bid:24s} [{tier}] min {r.min_s:8.4f} s  "
                  f"median {r.median_s:8.4f} s  norm {norm:8.2f}  "
                  f"{oracle}", flush=True)
            if not r.oracle_ok:
                print(f"    {r.oracle_detail}", flush=True)

        results = B.run_suite(benches, tier=tier, repeats=args.repeats,
                              warmup=args.warmup,
                              inject_slowdown=args.inject_slowdown,
                              progress=_progress)

        verdicts = []
        failed = any(not r.oracle_ok for r in results)
        if args.check:
            verdicts = B.check(results, ledger, args.threshold, calib,
                               host_id=host["id"])
            # Retry arbitration: a suspected regression must hold up
            # across independent re-measurements.  The final statistic
            # is the *best* attempt, so a transient contention burst on
            # a shared runner cannot fail the gate, while a genuine
            # slowdown — present in every attempt — still does.
            suspects = [v for v in verdicts if v.status == "regression"]
            if args.retries > 0 and suspects:
                by_id = {b.id: b for b in benches}
                print(f"re-measuring {len(suspects)} suspected "
                      f"regression(s), up to {args.retries} more "
                      f"attempt(s) each...", flush=True)
                for v in suspects:
                    best = v
                    for _ in range(args.retries):
                        r2 = B.run_case(
                            by_id[v.bench], tier=tier,
                            repeats=args.repeats, warmup=args.warmup,
                            inject_slowdown=args.inject_slowdown)
                        results.append(r2)
                        v2 = B.check([r2], ledger, args.threshold,
                                     calib, host_id=host["id"])[0]
                        if v2.ratio is not None and (
                                best.ratio is None or v2.ratio < best.ratio):
                            best = v2
                        if not v2.failed:
                            break
                    verdicts[verdicts.index(v)] = best
            print("regression gate:")
            for v in verdicts:
                line = f"  {v.bench:24s} {v.status:14s}"
                if v.ratio is not None:
                    line += (f" {v.ratio:+7.1%} (norm {v.current_norm:.2f} "
                             f"vs baseline {v.baseline_norm:.2f})")
                if v.detail and v.failed:
                    line += f"  {v.detail}"
                print(line)
            failed = failed or any(v.failed for v in verdicts)

        if args.append:
            entries = [B.make_entry(r, calib, host, B.code_version())
                       for r in results]
            B.Ledger.append_to(args.ledger, entries)
            print(f"appended {len(entries)} entr"
                  f"{'y' if len(entries) == 1 else 'ies'} to {args.ledger}")

        if args.json:
            payload = {
                "calib_s": calib,
                "host": host,
                "code_version": B.code_version(),
                "tier": tier,
                "results": [asdict(r) for r in results],
                "verdicts": [asdict(v) for v in verdicts],
            }
            with open(args.json, "w", encoding="utf-8") as fh:
                _json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"wrote {args.json}")

    if args.report is not None:
        ledger = B.Ledger.load(args.ledger)
        if not len(ledger):
            print(f"error: no ledger entries at {args.ledger!r} — run "
                  "`repro bench --append` first", file=sys.stderr)
            return 1
        html_text = B.build_trend_report(ledger, host_id=host["id"])
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(html_text)
        print(f"wrote {args.report}")

    if report_only:
        return 0
    if failed:
        print("bench: FAILED (regression or identity-oracle failure)",
              file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    from ..bench import code_version
    from ..core.store import ResultStore
    from ..serve import ServeState, serve_forever

    store = ResultStore(args.store)
    state = ServeState(store, code_version=code_version())
    if args.invalidate_stale:
        dropped = store.invalidate_stale(state.code_version)
        if dropped:
            print(f"invalidated {dropped} stale entr"
                  f"{'y' if dropped == 1 else 'ies'} "
                  f"(code version != {state.code_version})")
    try:
        serve_forever(state, host=args.host, port=args.port)
    finally:
        store.close()
    return 0


def _axis_value(axis: str, text: str):
    """Coerce a CLI axis value to the type the design space uses."""
    if axis == "frequency":
        return float(text)
    if axis in ("vector", "cores"):
        return int(text)
    return text


def cmd_query(args) -> int:
    import json

    from ..serve import ServeClient

    client = ServeClient(host=args.host, port=args.port)

    try:
        if args.kind == "health":
            print(json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
        if args.kind == "metrics":
            derived = client.metrics().get("derived", {})
            print(json.dumps(derived, indent=2, sort_keys=True))
            return 0
        if args.kind == "invalidate":
            criteria = {}
            if args.app:
                criteria["app"] = args.app
            if args.stale:
                criteria["stale"] = True
            if args.inv_all:
                criteria["all"] = True
            n = client.invalidate(criteria)
            print(f"invalidated {n} entr{'y' if n == 1 else 'ies'}")
            return 0

        subset = {}
        for item in args.subset:
            axis, _, value = item.partition("=")
            if not value:
                print(f"error: --set expects AXIS=VALUE, got {item!r}",
                      file=sys.stderr)
                return 2
            parts = value.split(",")
            vals = [_axis_value(axis, v) for v in parts]
            subset[axis] = vals[0] if len(vals) == 1 else vals
        query = {"kind": args.kind, "mode": args.mode, "ranks": args.ranks,
                 "space": "smoke" if args.smoke else "full"}
        if args.apps:
            query["apps"] = args.apps
        if subset:
            query["subset"] = subset
        if args.kind == "best":
            query["objective"] = args.objective
            query["power_cap_w"] = args.power_cap
            query["area_cap_mm2"] = args.area_cap
            query["energy_cap_j"] = args.energy_cap
            query["min_frequency_ghz"] = args.min_frequency
        elif args.kind == "delta":
            if not (args.axis and args.val_a and args.val_b):
                print("error: delta queries need --axis, --a and --b",
                      file=sys.stderr)
                return 2
            query["axis"] = args.axis
            query["a"] = _axis_value(args.axis, args.val_a)
            query["b"] = _axis_value(args.axis, args.val_b)

        response = client.query(query)
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach repro serve at "
              f"{args.host}:{args.port} ({exc})", file=sys.stderr)
        return 1
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    served = response.get("served", {})
    result = response.get("result", {})
    if args.kind == "sweep":
        records = result.get("records", [])
        print(f"{len(records)} records "
              f"({served.get('store_hits', 0)} from store, "
              f"{served.get('evaluated', 0)} evaluated)")
        if args.out:
            ResultSet(records).save(args.out)
            print(f"wrote {args.out}")
    elif args.kind == "best":
        print(format_rows(
            f"best config ({result.get('objective')}, geomean across apps)",
            ["field", "value"],
            [["config", result.get("label")],
             ["score", result.get("score")],
             ["feasible configs", result.get("n_feasible")]]
            + [[f"  {app}", v]
               for app, v in sorted(result.get("per_app", {}).items())]))
    elif args.kind == "delta":
        rows = [[app, g] for app, g in
                sorted(result.get("geomean_speedup_by_app", {}).items())]
        print(format_rows(
            f"delta {result.get('axis')}: {result.get('a')} -> "
            f"{result.get('b')} (speedup b over a, geomean)",
            ["app", "geomean speedup"], rows))
        print(f"{len(result.get('pairs', []))} paired points "
              f"({served.get('store_hits', 0)} from store, "
              f"{served.get('evaluated', 0)} evaluated)")
    return 0


_COMMANDS = {
    "characterize": cmd_characterize,
    "simulate": cmd_simulate,
    "sweep": cmd_sweep,
    "merge-journal": cmd_merge_journal,
    "search": cmd_search,
    "figure": cmd_figure,
    "scaling": cmd_scaling,
    "timeline": cmd_timeline,
    "recommend": cmd_recommend,
    "validate": cmd_validate,
    "explain": cmd_explain,
    "compare": cmd_compare,
    "roofline": cmd_roofline,
    "tornado": cmd_tornado,
    "report": cmd_report,
    "bench": cmd_bench,
    "serve": cmd_serve,
    "query": cmd_query,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
