"""Always-on benchmark/regression harness with a machine-normalized
trend ledger.

``repro bench`` runs the pinned micro/macro benchmark registry
(:mod:`~repro.bench.registry`), each workload gated by a bit-identity
oracle against its retained scalar path, appends machine-normalized
results to an append-only JSONL trend ledger
(:mod:`~repro.bench.ledger`), fails the regression gate when a
benchmark's normalized cost regresses past a threshold, and renders the
trajectory as a self-contained HTML report
(:mod:`~repro.bench.report`).  See EXPERIMENTS.md for usage and the
ledger format.
"""

from .calibrate import calibration_s, measure_calibration, reference_kernel
from .harness import (
    BenchCase,
    Benchmark,
    BenchResult,
    TIERS,
    code_version,
    host_fingerprint,
    run_case,
    run_suite,
)
from .ledger import (
    Ledger,
    Verdict,
    check,
    make_entry,
    normalized,
    seed_entries_from_snapshots,
)
from .registry import (
    REGISTRY,
    REQUIRED_COUNTERS,
    SMOKE_SPACE,
    get_benchmarks,
)
from .report import build_trend_report

__all__ = [
    "BenchCase",
    "Benchmark",
    "BenchResult",
    "Ledger",
    "REGISTRY",
    "REQUIRED_COUNTERS",
    "SMOKE_SPACE",
    "TIERS",
    "Verdict",
    "build_trend_report",
    "calibration_s",
    "check",
    "code_version",
    "get_benchmarks",
    "host_fingerprint",
    "make_entry",
    "measure_calibration",
    "normalized",
    "reference_kernel",
    "run_case",
    "run_suite",
    "seed_entries_from_snapshots",
]
