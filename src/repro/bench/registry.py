"""The pinned benchmark registry.

Micro benchmarks time one vectorized hot path in isolation; macro
benchmarks time the integrated engine at paper scale.  Every benchmark
carries an **identity oracle** against the retained scalar path it
replaced — bit-identity, not tolerance — so the regression gate can
never trade correctness for speed, and declares the :mod:`repro.obs`
counters its hot path must move, so an instrumentation rename is caught
by the same gate.

Workloads are pinned (fixed app, trace, design space, rank count, and
deterministic per-config scale vectors) so a ledger trend line measures
the *code*, not the workload.  The ``smoke`` tier shrinks spaces and
rank counts for CI; identity oracles stay exhaustive there precisely
because the workloads are small.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..apps import APP_NAMES, get_app
from ..config import (
    CACHE_LABELS,
    DesignSpace,
    axis_linspace,
    axis_range,
    cache_preset,
    range_design_space,
    smoke_design_space,
)
from ..core import merge_journal, run_sweep
from ..core.batch import BatchEvaluator
from ..core.musa import Musa
from ..network.model import NetworkConfig
from ..network.replay import replay
from ..network.replay_batch import replay_batch
from ..obs import get_metrics
from ..runtime.scheduler import simulate_phase, simulate_phase_batch
from ..uarch.hierarchy import (
    hierarchy_miss_profile,
    hierarchy_miss_profile_batch,
)
from .harness import Benchmark, BenchCase

__all__ = ["REGISTRY", "get_benchmarks", "SMOKE_SPACE", "REQUIRED_COUNTERS"]

#: The CI smoke design space (8 configurations), shared by the smoke
#: tiers and the CLI smoke sweeps.
SMOKE_SPACE = smoke_design_space()

#: Every obs counter some benchmark's harness contract pins.  A rename
#: of any of these is a breaking change: the bench gate, the CLI metrics
#: summary and the CI assertions all read them by name.
REQUIRED_COUNTERS = (
    "miss.batch.geometries",
    "sched.batch.fast",
    "replay.batch.array_events",
    "replay.batch.driver.array",
    "replay.batch.worklist_events",
    "replay.batch.lockstep_events",
    "replay.batch.driver.lockstep",
    "replay.batch.peeled_configs",
    "replay.events",
    "sweep.batch.configs",
    "sweep.shards",
    "search.evaluated",
    "store.block.put",
    "store.block.records",
)


def _replay_results_equal(a, b) -> Optional[str]:
    """Bit-identity check between two ``ReplayResult``s."""
    if a.n_messages != b.n_messages or a.bytes_sent != b.bytes_sent:
        return (f"message accounting differs: {a.n_messages}/{a.bytes_sent}"
                f" vs {b.n_messages}/{b.bytes_sent}")
    if float(a.total_ns) != float(b.total_ns):
        return f"total_ns differs: {a.total_ns!r} vs {b.total_ns!r}"
    for field in ("compute_ns", "p2p_ns", "collective_ns"):
        if not np.array_equal(np.asarray(getattr(a, field), dtype=float),
                              np.asarray(getattr(b, field), dtype=float)):
            return f"{field} columns differ"
    return None


def _records_equal(batched, scalar, what: str) -> Optional[str]:
    for i, (b, s) in enumerate(zip(batched, scalar)):
        if b.record() != s.record():
            return f"{what}: config {i} differs from the scalar path"
    if len(batched) != len(scalar):
        return f"{what}: length mismatch"
    return None


def _sample_indices(n: int, k: int) -> List[int]:
    stride = max(1, n // k)
    return list(range(0, n, stride))[:k]


def _finite_net(net: NetworkConfig, n_buses: int) -> NetworkConfig:
    return NetworkConfig(
        latency_us=net.latency_us, bandwidth_gbs=net.bandwidth_gbs,
        cpu_overhead_us=net.cpu_overhead_us, n_buses=n_buses,
        eager_threshold_bytes=net.eager_threshold_bytes)


def _cfg_scales(n: int) -> np.ndarray:
    """Deterministic per-config duration perturbation (pinned workload)."""
    return 1.0 + (np.arange(n, dtype=np.float64) % 97) * 1e-3


# -- micro benchmarks --------------------------------------------------------


def _build_miss_model(tier: str) -> BenchCase:
    detailed = get_app("lulesh").detailed_trace()
    sigs = [detailed[k] for k in detailed.names()]
    if tier == "smoke":
        shares = (1, 8, 32, 64)
    else:
        shares = tuple(range(1, 65))
    presets = [cache_preset(lbl) for lbl in CACHE_LABELS]
    hierarchies = [h for h in presets for _ in shares]
    share_col = [s for _ in presets for s in shares]
    # Inner repetition lifts one timed sample well above timer noise
    # (a single pass over the pairs is ~0.5 ms).
    inner = 10

    def run():
        out = None
        for _ in range(inner):
            out = [hierarchy_miss_profile_batch(sig, hierarchies, share_col)
                   for sig in sigs]
        return out

    def oracle() -> Optional[str]:
        for sig in sigs:
            batched = hierarchy_miss_profile_batch(sig, hierarchies,
                                                   share_col)
            for i, (h, s) in enumerate(zip(hierarchies, share_col)):
                ref = hierarchy_miss_profile(sig, h, l3_share_cores=s)
                got = batched[i]
                if (got.miss_l1, got.miss_l2, got.miss_l3) != \
                        (ref.miss_l1, ref.miss_l2, ref.miss_l3):
                    return (f"kernel {sig.name!r} pair ({i}) differs from "
                            f"scalar hierarchy_miss_profile")
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_kernels": len(sigs),
              "n_pairs": len(hierarchies), "inner": inner},
        required_counters=("miss.batch.geometries",))


def _build_phase_sched(tier: str) -> BenchCase:
    musa = Musa(get_app("lulesh"))
    phase = musa.app.representative_phase()
    n_cfg = 32 if tier == "smoke" else 864
    n_cores = np.where(np.arange(n_cfg) % 2 == 0, 32, 64).astype(np.int64)
    scales = _cfg_scales(n_cfg)
    inner = 4 if tier == "smoke" else 3

    def run():
        out = None
        for _ in range(inner):
            out = simulate_phase_batch(phase, n_cores, scales, scales)
        return out

    def oracle() -> Optional[str]:
        batched = simulate_phase_batch(phase, n_cores, scales, scales)
        sample = (range(n_cfg) if tier == "smoke"
                  else _sample_indices(n_cfg, 32))
        for i in sample:
            ref = simulate_phase(phase, int(n_cores[i]), float(scales[i]),
                                 float(scales[i]))
            got = batched[i]
            if (got.makespan_ns != ref.makespan_ns
                    or got.serial_ns != ref.serial_ns
                    or not np.array_equal(got.busy_ns, ref.busy_ns)):
                return f"config {i} differs from scalar simulate_phase"
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_configs": n_cfg,
              "n_tasks": len(phase.tasks), "inner": inner},
        required_counters=("sched.batch.fast",))


def _replay_workload(tier: str, n_ranks_full: int, n_cfg_full: int,
                     n_ranks_smoke: int, n_cfg_smoke: int):
    """Shared pinned workload for the replay micro benchmarks."""
    musa = Musa(get_app("lulesh"))
    if tier == "smoke":
        n_ranks, n_cfg = n_ranks_smoke, n_cfg_smoke
    else:
        n_ranks, n_cfg = n_ranks_full, n_cfg_full
    trace = musa._burst_trace(n_ranks, 1)
    rank_scales = musa.app.rank_scales(n_ranks)
    phase_ns = {id(p): musa.burst_phase(p, 64).makespan_ns
                for p in musa.phases}
    cfg = _cfg_scales(n_cfg)

    def dur_batch(rank, phase):
        return phase_ns[id(phase)] * rank_scales[rank] * cfg

    def dur_scalar(c):
        return lambda rank, phase, _c=c: (
            phase_ns[id(phase)] * rank_scales[rank] * cfg[_c])

    return musa, trace, n_ranks, n_cfg, dur_batch, dur_scalar


def _build_tape_replay(tier: str) -> BenchCase:
    musa, trace, n_ranks, n_cfg, dur_batch, dur_scalar = _replay_workload(
        tier, 256, 864, 16, 24)
    net = musa.network  # unlimited bus pool: the order-free array path
    # The smoke workload is sub-millisecond; repeat it so timer noise
    # can't swamp a real regression at the gate's 10% threshold.
    inner = 8 if tier == "smoke" else 1

    def run():
        out = None
        for _ in range(inner):
            out = replay_batch(trace, net, dur_batch, n_cfg)
        return out

    def oracle() -> Optional[str]:
        array = replay_batch(trace, net, dur_batch, n_cfg)
        worklist = replay_batch(trace, net, dur_batch, n_cfg,
                                array_driver=False)
        for i, (a, w) in enumerate(zip(array, worklist)):
            err = _replay_results_equal(a, w)
            if err:
                return f"array vs worklist driver, config {i}: {err}"
        for i in _sample_indices(n_cfg, 4):
            ref = replay(trace, net, dur_scalar(i), engine="event")
            err = _replay_results_equal(array[i], ref)
            if err:
                return f"array vs scalar replay, config {i}: {err}"
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_ranks": n_ranks, "n_configs": n_cfg,
              "n_events": sum(len(rt.events) for rt in trace.ranks)},
        # driver.array must move: a silent tape bail-out runs the
        # worklist driver instead, and may not time the path this
        # benchmark claims to measure (worklist_events moves in the
        # oracle's cross-check run).
        required_counters=("replay.batch.array_events",
                           "replay.batch.driver.array",
                           "replay.batch.worklist_events"),
        record_counters=("replay.batch.driver.array",
                         "replay.batch.driver.worklist",
                         "replay.batch.array_fallbacks"))


def _build_bus_arbitration(tier: str) -> BenchCase:
    musa, trace, n_ranks, n_cfg, dur_batch, dur_scalar = _replay_workload(
        tier, 16, 32, 8, 8)
    net = _finite_net(musa.network, n_buses=8)

    def run():
        return replay_batch(trace, net, dur_batch, n_cfg)

    def oracle() -> Optional[str]:
        obs = get_metrics()
        peeled0 = obs.counter("replay.batch.peeled_configs")
        batched = replay_batch(trace, net, dur_batch, n_cfg)
        peeled = obs.counter("replay.batch.peeled_configs") - peeled0
        if peeled > 2:
            return (f"peel storm: {peeled}/{n_cfg} configs left the "
                    f"vectorized lockstep path (bound is 2)")
        for i in range(n_cfg):
            ref = replay(trace, net, dur_scalar(i), engine="event")
            err = _replay_results_equal(batched[i], ref)
            if err:
                return f"fork-lockstep vs scalar replay, config {i}: {err}"
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_ranks": n_ranks, "n_configs": n_cfg,
              "n_buses": 8},
        required_counters=("replay.batch.lockstep_events",
                           "replay.batch.driver.lockstep"),
        record_counters=("replay.batch.driver.lockstep",
                         "replay.batch.forked_groups",
                         "replay.batch.peeled_configs"))


def _build_bus_lockstep(tier: str) -> BenchCase:
    # Uniform per-config scales: every column shares one (clock, rank)
    # step order, so the whole batch runs as a single zero-divergence
    # lockstep group — this pins the cost of the pure vectorized
    # finite-bus arbitration machinery (key-matrix argmin + batched
    # step), with no forking in the measurement.
    musa, trace, n_ranks, n_cfg, _, _ = _replay_workload(
        tier, 16, 32, 8, 8)
    net = _finite_net(musa.network, n_buses=8)
    rank_scales = musa.app.rank_scales(n_ranks)
    phase_ns = {id(p): musa.burst_phase(p, 64).makespan_ns
                for p in musa.phases}
    ones = np.ones(n_cfg)

    def dur_batch(rank, phase):
        return phase_ns[id(phase)] * rank_scales[rank] * ones

    def run():
        return replay_batch(trace, net, dur_batch, n_cfg)

    def oracle() -> Optional[str]:
        obs = get_metrics()
        forked0 = obs.counter("replay.batch.forked_groups")
        peeled0 = obs.counter("replay.batch.peeled_configs")
        batched = replay_batch(trace, net, dur_batch, n_cfg)
        if obs.counter("replay.batch.forked_groups") != forked0:
            return "uniform-scale batch diverged: lockstep group forked"
        if obs.counter("replay.batch.peeled_configs") != peeled0:
            return "uniform-scale batch peeled configs to the scalar engine"
        ref = replay(trace, net,
                     lambda r, p: phase_ns[id(p)] * rank_scales[r],
                     engine="event")
        for i in (0, n_cfg - 1):
            err = _replay_results_equal(batched[i], ref)
            if err:
                return f"lockstep vs scalar replay, config {i}: {err}"
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_ranks": n_ranks, "n_configs": n_cfg,
              "n_buses": 8, "uniform_scales": True},
        required_counters=("replay.batch.lockstep_events",
                           "replay.batch.driver.lockstep"),
        record_counters=("replay.batch.driver.lockstep",
                         "replay.batch.forked_groups",
                         "replay.batch.peeled_configs"))


def _build_event_engine(tier: str) -> BenchCase:
    musa, trace, n_ranks, _, _, dur_scalar = _replay_workload(
        tier, 256, 1, 32, 1)
    net = musa.network
    duration = dur_scalar(0)

    def run():
        return replay(trace, net, duration, engine="event")

    def oracle() -> Optional[str]:
        event = replay(trace, net, duration, engine="event")
        polling = replay(trace, net, duration, engine="polling")
        return _replay_results_equal(event, polling)

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_ranks": n_ranks,
              "n_events": sum(len(rt.events) for rt in trace.ranks)},
        required_counters=("replay.events",))


# -- macro benchmarks --------------------------------------------------------


def _build_fast_sweep(tier: str) -> BenchCase:
    space = SMOKE_SPACE if tier == "smoke" else DesignSpace()
    nodes = list(space)
    ev = BatchEvaluator(Musa(get_app("lulesh")))
    ev.evaluate(nodes)  # cold pass: memos warm before timing

    def run():
        return ev.evaluate(nodes)

    def oracle() -> Optional[str]:
        batched = ev.evaluate(nodes)
        sample = (range(len(nodes)) if tier == "smoke"
                  else _sample_indices(len(nodes), 12))
        scalar_musa = Musa(get_app("lulesh"))
        scalar = [scalar_musa.simulate_node(nodes[i]) for i in sample]
        return _records_equal([batched[i] for i in sample], scalar,
                              "fast-mode eval")

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_configs": len(nodes)},
        required_counters=("miss.batch.geometries", "sched.batch.fast"))


def _build_replay_sweep(tier: str) -> BenchCase:
    if tier == "smoke":
        space, n_ranks, n_sample = SMOKE_SPACE, 16, 4
    else:
        space, n_ranks, n_sample = DesignSpace(), 256, 3
    nodes = list(space)
    ev = BatchEvaluator(Musa(get_app("lulesh")))
    ev.evaluate(nodes, n_ranks=n_ranks, mode="replay")  # cold pass

    def run():
        return ev.evaluate(nodes, n_ranks=n_ranks, mode="replay")

    def oracle() -> Optional[str]:
        batched = ev.evaluate(nodes, n_ranks=n_ranks, mode="replay")
        sample = _sample_indices(len(nodes), n_sample)
        scalar_musa = Musa(get_app("lulesh"))
        scalar = [scalar_musa.simulate_node(nodes[i], n_ranks=n_ranks,
                                            mode="replay") for i in sample]
        return _records_equal([batched[i] for i in sample], scalar,
                              "replay-mode eval")

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_configs": len(nodes), "n_ranks": n_ranks},
        required_counters=("replay.batch.array_events",
                           "replay.batch.driver.array"),
        record_counters=("replay.batch.driver.array",
                         "replay.batch.driver.worklist",
                         "replay.batch.array_fallbacks"))


def _build_serve_query(tier: str) -> BenchCase:
    import tempfile
    import time as _time
    from pathlib import Path

    from ..core.canon import canonical_dumps
    from ..core.store import ResultStore
    from ..serve import ServeState

    space = SMOKE_SPACE if tier == "smoke" else DesignSpace()
    store = ResultStore(Path(tempfile.mkdtemp()) / "bench_store.jsonl")
    state = ServeState(store, code_version="bench")
    query = {"kind": "sweep", "apps": ["lulesh"],
             "space": "smoke" if tier == "smoke" else "full"}
    t0 = _time.perf_counter()
    cold = state.handle(query)  # fills the store; timed runs are warm
    cold_s = _time.perf_counter() - t0

    def run():
        return state.handle(query)

    def oracle() -> Optional[str]:
        warm = state.handle(query)
        if warm["served"]["evaluated"] != 0:
            return (f"warm query touched the engine "
                    f"({warm['served']['evaluated']} evaluations)")
        if warm["served"]["store_hits"] != len(space):
            return (f"warm query hit {warm['served']['store_hits']} of "
                    f"{len(space)} points in the store")
        if canonical_dumps(warm["result"]) != canonical_dumps(cold["result"]):
            return "warm store-assembled result differs from the cold run"
        direct = run_sweep(["lulesh"], space, processes=1)
        if warm["result"]["records"] != list(direct):
            return "served records differ from a direct run_sweep"
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_configs": len(space), "cold_s": cold_s},
        required_counters=("store.hit", "serve.requests"),
        record_counters=("store.hit", "store.miss", "store.put",
                         "serve.singleflight.coalesced"))


def _build_campaign(tier: str) -> BenchCase:
    if tier == "smoke":
        apps, space = ["spmz", "hydro"], SMOKE_SPACE
    else:
        apps, space = list(APP_NAMES), DesignSpace()

    def run():
        return run_sweep(apps, space, processes=1)

    def oracle() -> Optional[str]:
        batched = run_sweep(apps, space, processes=1)
        scalar = run_sweep(apps, space, processes=1, batch=False)
        if json.dumps(list(batched), sort_keys=True) != \
                json.dumps(list(scalar), sort_keys=True):
            return "batched campaign differs from the scalar sweep"
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"apps": list(apps), "n_configs": len(space)},
        required_counters=("sweep.batch.configs",))


def _build_sharded_sweep(tier: str) -> BenchCase:
    import tempfile
    import time as _time
    from pathlib import Path

    from ..core.canon import canonical_dumps

    if tier == "smoke":
        apps, space, processes, chunk_size = ["lulesh"], SMOKE_SPACE, 2, 1
    else:
        # Range-generated space: 4608 lazily-indexed configurations —
        # big enough that worker startup amortizes and the shard
        # scheduler's scaling is what the trend line measures.
        apps = ["lulesh"]
        space = range_design_space(
            frequencies=axis_linspace(1.0, 4.0, 8),
            core_counts=axis_range(8, 64, 8))
        processes, chunk_size = 4, None
    t0 = _time.perf_counter()
    inline = run_sweep(apps, space, processes=1)
    inline_s = _time.perf_counter() - t0
    inline_text = canonical_dumps(list(inline))

    def run():
        return run_sweep(apps, space, processes=processes,
                         chunk_size=chunk_size)

    def oracle() -> Optional[str]:
        pooled = run_sweep(apps, space, processes=processes,
                           chunk_size=chunk_size)
        if canonical_dumps(list(pooled)) != inline_text:
            return "work-stealing pooled sweep differs from inline"
        # Shard invariance: two disjoint shard journals, merged, must
        # resume into the canonical ResultSet byte-for-byte with zero
        # re-evaluation.
        with tempfile.TemporaryDirectory() as d:
            paths = [Path(d) / f"s{k}.jsonl" for k in range(2)]
            for k, p in enumerate(paths):
                run_sweep(apps, space, processes=1, resume=p,
                          shard=f"{k}/2")
            merged = Path(d) / "merged.jsonl"
            merge_journal(paths, merged)
            obs = get_metrics()
            done0 = obs.counter("sweep.tasks.completed")
            resumed = run_sweep(apps, space, processes=1, resume=merged)
            if obs.counter("sweep.tasks.completed") != done0:
                return "resume from merged shards re-evaluated tasks"
            if canonical_dumps(list(resumed)) != inline_text:
                return ("merged 2-shard journals did not reproduce the "
                        "canonical ResultSet byte-for-byte")
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"apps": list(apps), "n_configs": len(space),
              "processes": processes, "inline_s": inline_s},
        required_counters=("sweep.shards",),
        record_counters=("sweep.steals", "sweep.worker.lost",
                         "sweep.ctx.spawn"))


def _build_result_plane(tier: str) -> BenchCase:
    import tempfile
    import time as _time
    from pathlib import Path

    from ..core.canon import canonical_dumps
    from ..core.checkpoint import Journal
    from ..core.results import ResultSet
    from ..core.store import ResultStore, store_key

    space = SMOKE_SPACE if tier == "smoke" else DesignSpace()
    nodes = list(space)
    mode, n_ranks, cv = "fast", 256, "bench"
    prov = {"engine": "bench"}
    ev = BatchEvaluator(Musa(get_app("lulesh")))
    ev.evaluate_frame(nodes)  # cold pass: memos warm before timing
    d = Path(tempfile.mkdtemp())
    seq = [0]

    def columnar():
        """One end-to-end pass of the columnar data plane: evaluate as
        a frame, journal it as one block line, content-address it into
        the store as one block line, serve it as a lazy ResultSet."""
        seq[0] += 1
        frame = ev.evaluate_frame(nodes)
        with Journal(d / f"col{seq[0]}.jsonl") as j:
            j.append_frame(frame)
        with ResultStore(d / f"col_store{seq[0]}.jsonl") as store:
            keys = store.put_frame(frame, mode, n_ranks, cv, prov)
        served = ResultSet()
        served.add_frame(frame)
        return keys, served.canonical_text(), seq[0]

    def dict_plane():
        """The retained per-record oracle plane: one dict, one journal
        line, one store_key digest and one store line per config."""
        seq[0] += 1
        records = [r.record() for r in ev.evaluate(nodes)]
        keys = []
        with Journal(d / f"dict{seq[0]}.jsonl") as j:
            for r in records:
                j.append(r)
        with ResultStore(d / f"dict_store{seq[0]}.jsonl") as store:
            for node, r in zip(nodes, records):
                cfg = node.axis_values()
                key = store_key("lulesh", cfg, mode, n_ranks, cv)
                keys.append(key)
                store.put(key, r, {"app": "lulesh", "config": cfg,
                                   "mode": mode, "ranks": n_ranks,
                                   "code_version": cv}, prov)
        served = ResultSet()
        for r in records:
            served.add(r, copy=False)
        return keys, served.canonical_text(), seq[0]

    t0 = _time.perf_counter()
    dict_keys, dict_text, dict_run = dict_plane()
    dict_s = _time.perf_counter() - t0

    def run():
        return columnar()

    def oracle() -> Optional[str]:
        t0 = _time.perf_counter()
        col_keys, col_text, col_run = columnar()
        col_s = _time.perf_counter() - t0
        if list(col_keys) != dict_keys:
            return "columnar store keys differ from per-record store_key"
        if col_text != dict_text:
            return ("columnar served ResultSet differs byte-for-byte "
                    "from the dict plane")
        col_store = ResultStore(d / f"col_store{col_run}.jsonl")
        dict_store = ResultStore(d / f"dict_store{dict_run}.jsonl")
        for k in dict_keys:
            if canonical_dumps(col_store.get(k)) != \
                    canonical_dumps(dict_store.get(k)):
                return (f"store entry {k[:12]} differs between the "
                        f"columnar and dict planes")
        # Cross-resume identity: the one-block journal and the
        # per-record journal must canonicalize to the same bytes.
        merged = []
        for src in (d / f"col{col_run}.jsonl", d / f"dict{dict_run}.jsonl"):
            out = src.with_suffix(".merged")
            merge_journal([src], out, collect=False)
            merged.append(out.read_bytes())
        if merged[0] != merged[1]:
            return ("block journal and per-record journal merge to "
                    "different canonical bytes")
        if tier == "full" and dict_s < 3.0 * col_s:
            return (f"columnar result plane only {dict_s / col_s:.2f}x "
                    f"over the dict plane (acceptance floor is 3x)")
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_configs": len(nodes), "mode": mode,
              "n_ranks": n_ranks, "dict_s": dict_s},
        required_counters=("store.block.put", "store.block.records"),
        record_counters=("store.block.put", "store.block.records",
                         "store.put"))


def _build_search_dse(tier: str) -> BenchCase:
    from ..analysis.pareto import pareto_front
    from ..analysis.search import search_front
    from ..core.results import ResultSet

    if tier == "smoke":
        rec_space = DesignSpace(frequencies=(1.5, 2.5),
                                core_counts=(32, 64))       # 288 points
        big_space = range_design_space(
            frequencies=axis_linspace(1.0, 4.0, 16),
            core_counts=axis_range(4, 128, 4))              # 36 864
    else:
        rec_space = DesignSpace()                           # 864 points
        big_space = range_design_space()                    # 140 616
    ev = BatchEvaluator(Musa(get_app("lulesh")))
    exhaustive = [r.record() for r in ev.evaluate(list(rec_space))]
    ref_front = pareto_front(ResultSet(exhaustive), "lulesh", cores=None)
    ref_key = [(p.x, p.y) for p in ref_front]

    def run():
        return search_front("lulesh", big_space, evaluator=ev, seed=0)

    def oracle() -> Optional[str]:
        # (a) Exact front recovery where the exhaustive answer exists.
        r = search_front("lulesh", rec_space, evaluator=ev, seed=0,
                         max_evals=len(rec_space), patience=2)
        if [(p.x, p.y) for p in r.front] != ref_key:
            return (f"search front ({len(r.front)} pts) differs from the "
                    f"exhaustive front ({len(ref_front)} pts) on the "
                    f"{len(rec_space)}-point space")
        # (b) Budget: the range space must converge within 20%.
        big = search_front("lulesh", big_space, evaluator=ev, seed=0)
        if big.evaluated_fraction > 0.2:
            return (f"range-space search used "
                    f"{big.evaluated_fraction:.1%} of {len(big_space)} "
                    f"points (budget is 20%)")
        if not big.converged:
            return "range-space search hit the budget without converging"
        if not big.front:
            return "range-space search returned an empty front"
        return None

    return BenchCase(
        run=run, oracle=oracle,
        meta={"app": "lulesh", "n_rec_space": len(rec_space),
              "n_big_space": len(big_space)},
        required_counters=("search.evaluated",),
        record_counters=("search.rounds", "search.front_size",
                         "search.surrogate_rank_calls"))


REGISTRY: Dict[str, Benchmark] = {b.id: b for b in (
    Benchmark("micro.miss_model", "micro",
              "batched set-associative miss model vs scalar "
              "hierarchy_miss_profile", _build_miss_model),
    Benchmark("micro.phase_sched", "micro",
              "config-vectorized phase scheduler vs scalar simulate_phase",
              _build_phase_sched),
    Benchmark("micro.tape_replay", "micro",
              "level-batched array replay driver vs worklist driver and "
              "scalar replay", _build_tape_replay),
    Benchmark("micro.bus_arbitration", "micro",
              "finite-bus fork-on-divergence lockstep batch replay vs "
              "scalar replay", _build_bus_arbitration),
    Benchmark("micro.bus_lockstep", "micro",
              "finite-bus zero-divergence lockstep batch replay "
              "(uniform scales) vs scalar replay", _build_bus_lockstep),
    Benchmark("micro.event_engine", "micro",
              "event-driven replay engine vs the polling reference",
              _build_event_engine),
    Benchmark("macro.fast_sweep", "macro",
              "full-space fast-mode batched evaluation (864 configs, warm)",
              _build_fast_sweep),
    Benchmark("macro.replay_sweep", "macro",
              "full-space replay-mode batched evaluation (864x256 ranks)",
              _build_replay_sweep),
    Benchmark("macro.campaign", "macro",
              "all-apps full-space batched campaign through run_sweep",
              _build_campaign),
    Benchmark("macro.serve_query", "macro",
              "warm store-backed serve query (pure store assembly) vs "
              "cold evaluation", _build_serve_query),
    Benchmark("macro.result_plane", "macro",
              "columnar evaluate->journal->store->serve result plane vs "
              "the retained per-record dict plane (bit-identity)",
              _build_result_plane),
    Benchmark("macro.sharded_sweep", "macro",
              "work-stealing pooled sweep over a range-generated space "
              "vs inline, plus 2-shard journal-merge invariance",
              _build_sharded_sweep),
    Benchmark("macro.search_dse", "macro",
              "active Pareto search: exact front recovery vs exhaustive, "
              "<=20% budget on the range space", _build_search_dse),
)}


def get_benchmarks(ids: Optional[Sequence[str]] = None) -> List[Benchmark]:
    """Resolve benchmark ids (exact, or ``micro``/``macro`` kind, or a
    prefix ending in ``.``) to registry entries, preserving registry
    order and erroring on unknown names."""
    if not ids:
        return list(REGISTRY.values())
    picked: List[Benchmark] = []
    for want in ids:
        matches = [b for b in REGISTRY.values()
                   if b.id == want or b.kind == want
                   or (want.endswith(".") and b.id.startswith(want))]
        if not matches:
            known = ", ".join(REGISTRY)
            raise KeyError(f"unknown benchmark {want!r}; known: {known}")
        for b in matches:
            if b not in picked:
                picked.append(b)
    return picked
