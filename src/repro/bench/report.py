"""Self-contained HTML trend report for the benchmark ledger.

One section per benchmark: an SVG trajectory of normalized cost over
run sequence (same-host entries highlighted via series split), the
current baseline as a dashed guide, and a provenance table of the
underlying entries.  Shares the dependency-free SVG layer with the
paper figures (:mod:`repro.analysis.svgchart`).
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Tuple

from ..analysis.svgchart import line_chart
from .ledger import Ledger

__all__ = ["build_trend_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       max-width: 70em; color: #222; }
h1 { border-bottom: 2px solid #4878a8; padding-bottom: 0.2em; }
h2 { color: #30506e; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.85em; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.7em; text-align: right; }
th { background: #eef3f8; }
td:first-child, th:first-child { text-align: left; }
.note { color: #666; font-size: 0.9em; }
.bad { color: #a33; font-weight: bold; }
figure { margin: 1em 0; }
"""


def _bench_section(ledger: Ledger, bench: str,
                   host_id: Optional[str]) -> str:
    parts: List[str] = [f"<h2>{html.escape(bench)}</h2>"]
    entries = ledger.for_bench(bench)
    series: Dict[str, List[Tuple[float, float]]] = {}
    rows: List[str] = []
    for seq, e in enumerate(entries):
        norm = e.get("norm")
        if not isinstance(norm, (int, float)):
            continue
        tier = str(e.get("tier", "full"))
        label = tier if not e.get("seed") else f"{tier} (seed)"
        series.setdefault(label, []).append((float(seq), float(norm)))
        oracle = "ok" if e.get("oracle_ok") else "FAILED"
        rows.append(
            "<tr><td>{}</td><td>{}</td><td>{:.4g}</td><td>{:.4g}</td>"
            "<td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>".format(
                html.escape(str(e.get("ts", "?"))),
                html.escape(tier),
                float(e.get("raw_min_s", float("nan"))),
                float(norm),
                html.escape(str(e.get("code_version", "?"))),
                html.escape(str(e.get("host", {}).get("id", "?"))),
                (oracle if oracle == "ok"
                 else f'<span class="bad">{oracle}</span>'),
                html.escape(str(e.get("source", ""))),
            ))
    if not series:
        parts.append('<p class="note">no usable entries</p>')
        return "\n".join(parts)
    baseline = (ledger.baseline(bench, "full", host_id=host_id)
                or ledger.baseline(bench, "smoke", host_id=host_id))
    svg = line_chart(
        series, title=f"{bench} — normalized cost trend",
        y_label="raw_s / calib_s", x_label="ledger entry sequence",
        reference_line=baseline)
    parts.append(f"<figure>{svg}</figure>")
    parts.append(
        "<table><tr><th>timestamp</th><th>tier</th><th>raw min [s]</th>"
        "<th>norm</th><th>code</th><th>host</th><th>oracle</th>"
        "<th>source</th></tr>" + "".join(rows) + "</table>")
    return "\n".join(parts)


def build_trend_report(ledger: Ledger,
                       host_id: Optional[str] = None) -> str:
    """Render the full ledger as one self-contained HTML document."""
    led = ledger.canonical()
    benches = led.bench_ids()
    body = [
        "<h1>repro bench — performance trend ledger</h1>",
        f'<p class="note">{len(led)} entries across {len(benches)} '
        "benchmarks. Normalized cost is wall time divided by the "
        "reference-kernel calibration measured in the same process; "
        "the dashed guide is the current regression-gate baseline "
        "(best prior oracle-clean entry).</p>",
    ]
    for bench in benches:
        body.append(_bench_section(led, bench, host_id))
    return ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>repro bench trends</title><style>{_STYLE}</style>"
            "</head><body>" + "\n".join(body) + "</body></html>")
