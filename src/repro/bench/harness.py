"""Benchmark harness: workloads, timing protocol, identity oracles.

A :class:`Benchmark` is a *pinned* workload — the same trace, design
space and rank count every run — built lazily per tier (``full`` or the
CI-sized ``smoke``).  Building yields a :class:`BenchCase` holding

* ``run`` — the timed callable (warm: expensive one-time setup happens
  in the builder, so samples measure the steady-state hot path);
* ``oracle`` — an *identity* check against the retained scalar path
  (bit-identity, not tolerance), run once after timing;
* ``required_counters`` — :mod:`repro.obs` counters the workload must
  have incremented, so a counter rename cannot quietly blind the
  harness or the dashboards built on it.

The timing protocol is fixed: ``warmup`` untimed runs, then ``repeats``
timed samples; the ledger records the **min** (the gate statistic —
least noise-sensitive) and the **median**.  One reference-kernel sample
is interleaved immediately before each workload sample, so the
calibration sees the *same* contention window as the measurement it
normalizes — on a busy shared host this pairing is what makes the
normalized cost stable (process-start calibration drifts by tens of
percent between invocations; the paired ratio of minima does not).
``inject_slowdown`` multiplies the measured workload samples after the
fact; it exists purely so the regression gate can be exercised
end-to-end (see ``--inject-slowdown`` and the regression-injection
tests) and is recorded in the result.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_metrics
from .calibrate import reference_kernel

__all__ = [
    "Benchmark",
    "BenchCase",
    "BenchResult",
    "TIERS",
    "host_fingerprint",
    "code_version",
    "run_case",
    "run_suite",
]

TIERS = ("full", "smoke")

#: Default timing protocol per (kind, tier): (warmup, repeats).  The
#: gate compares *minima*, which converge to the contention-free floor
#: as repeats grow; smoke workloads are small enough that the extra
#: repeats cost little and buy most of the noise immunity.
_PROTOCOL = {
    ("micro", "full"): (1, 7),
    ("micro", "smoke"): (2, 11),
    ("macro", "full"): (1, 3),
    ("macro", "smoke"): (1, 7),
}


@dataclass
class BenchCase:
    """One built workload: a timed callable plus its identity oracle."""

    run: Callable[[], Any]
    #: Returns ``None`` when the timed path matches the retained scalar
    #: path bit-for-bit, else a human-readable mismatch description.
    oracle: Callable[[], Optional[str]]
    meta: Dict[str, Any] = field(default_factory=dict)
    required_counters: Tuple[str, ...] = ()
    #: Counters whose run-over-run *delta* is recorded into the result's
    #: ``meta["counters"]`` — the ledger keeps them, so a measurement
    #: can prove which driver actually ran (a silent tape bail-out
    #: increments ``replay.batch.driver.worklist``, not ``.array``, and
    #: can no longer masquerade as an array-driver number).
    record_counters: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Benchmark:
    """A registered benchmark: id, kind, and a per-tier case builder."""

    id: str
    kind: str  # "micro" | "macro"
    description: str
    build: Callable[[str], BenchCase]

    def __post_init__(self) -> None:
        if self.kind not in ("micro", "macro"):
            raise ValueError(f"kind must be micro|macro, got {self.kind!r}")
        if not self.id or any(c.isspace() for c in self.id):
            raise ValueError(f"benchmark id must be non-empty, no spaces: "
                             f"{self.id!r}")


@dataclass
class BenchResult:
    """Outcome of one timed benchmark run (pre-ledger)."""

    bench: str
    kind: str
    tier: str
    samples_s: List[float]
    min_s: float
    median_s: float
    oracle_ok: bool
    oracle_detail: Optional[str]
    meta: Dict[str, Any]
    inject_slowdown: float = 1.0
    #: Reference-kernel samples interleaved with the workload samples;
    #: ``calib_min_s`` is the paired calibration the ledger normalizes
    #: against (``None`` only for hand-built results, e.g. in tests).
    calib_samples_s: List[float] = field(default_factory=list)
    calib_min_s: Optional[float] = None


def host_fingerprint() -> Dict[str, Any]:
    """Environment-class identity attached to every ledger entry.

    Deliberately excludes the hostname: two CI runners of the same
    image/class should fingerprint identically so their entries pool
    into one baseline population.
    """
    info = {
        "python": platform.python_version(),
        "impl": platform.python_implementation(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count() or 0,
    }
    digest = hashlib.sha256(
        json.dumps(info, sort_keys=True).encode()).hexdigest()[:12]
    return {"id": digest, **info}


def code_version(root: Optional[Path] = None) -> str:
    """Short git revision of the working tree (or ``unknown``)."""
    env = os.environ.get("REPRO_CODE_VERSION")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root or Path(__file__).resolve().parents[3],
            capture_output=True, text=True, timeout=5)
        if out.returncode == 0:
            return out.stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def run_case(
    bench: Benchmark,
    tier: str = "full",
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
    inject_slowdown: float = 1.0,
) -> BenchResult:
    """Build and time one benchmark under the fixed protocol."""
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    if inject_slowdown <= 0:
        raise ValueError("inject_slowdown must be positive")
    d_warmup, d_repeats = _PROTOCOL[(bench.kind, tier)]
    warmup = d_warmup if warmup is None else warmup
    repeats = d_repeats if repeats is None else repeats
    if repeats < 1:
        raise ValueError("repeats must be >= 1")

    obs = get_metrics()
    # Snapshot before build: one-time cold-path counters (tape builds,
    # memoized miss geometries) legitimately increment during setup
    # rather than in the timed steady-state runs.
    counters_before = dict(obs.snapshot()["counters"])
    case = bench.build(tier)
    reference_kernel()  # warm alongside the workload warmups
    for _ in range(warmup):
        case.run()
    samples: List[float] = []
    calib_samples: List[float] = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        reference_kernel()
        calib_samples.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        case.run()
        samples.append((time.perf_counter() - t0) * inject_slowdown)

    oracle_detail = case.oracle()
    if oracle_detail is None:
        # The harness's own contract: the workload must have exercised
        # the counters it claims to pin, else the instrumentation the
        # trend dashboards rely on has silently gone dark.
        stale = [name for name in case.required_counters
                 if obs.counter(name) <= counters_before.get(name, 0)]
        if stale:
            oracle_detail = (f"required obs counters never incremented: "
                             f"{', '.join(stale)}")
    meta = dict(case.meta)
    if case.record_counters:
        meta["counters"] = {
            name: obs.counter(name) - counters_before.get(name, 0)
            for name in case.record_counters}
    return BenchResult(
        bench=bench.id, kind=bench.kind, tier=tier,
        samples_s=samples, min_s=min(samples),
        median_s=float(statistics.median(samples)),
        oracle_ok=oracle_detail is None, oracle_detail=oracle_detail,
        meta=meta, inject_slowdown=inject_slowdown,
        calib_samples_s=calib_samples, calib_min_s=min(calib_samples),
    )


def run_suite(
    benchmarks: Sequence[Benchmark],
    tier: str = "full",
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
    inject_slowdown: float = 1.0,
    progress: Optional[Callable[[str, "BenchResult"], None]] = None,
) -> List[BenchResult]:
    """Run every benchmark; never aborts mid-suite on an oracle failure."""
    results: List[BenchResult] = []
    for bench in benchmarks:
        res = run_case(bench, tier=tier, repeats=repeats, warmup=warmup,
                       inject_slowdown=inject_slowdown)
        results.append(res)
        if progress is not None:
            progress(bench.id, res)
    return results
