"""Machine calibration for the trend ledger.

Raw wall-clock times are not comparable across machines, so every
ledger entry carries a *calibration*: the measured runtime of a fixed
reference kernel on the machine that produced the entry.  Normalized
benchmark cost is ``raw_s / calib_s`` — dimensionless "reference-kernel
units" that factor out uniform machine-speed differences (a machine
twice as fast runs both the benchmark and the reference kernel twice
as fast, leaving the ratio unchanged; see the scale-invariance property
in ``tests/bench/test_ledger_properties.py``).

The reference kernel deliberately mixes the two cost regimes the real
benchmarks live in — NumPy array passes (the vectorized hot paths) and
Python interpreter work (the event engines' residual scalar loops) — so
the normalization tracks the blend a typical benchmark sees rather than
pure FLOP throughput.
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

__all__ = ["reference_kernel", "measure_calibration", "calibration_s"]

#: Array length / loop count of the reference kernel.  Sized so one run
#: takes a few milliseconds on a typical machine: long enough to dwarf
#: timer resolution, short enough that calibration costs well under a
#: second.
_N_ARRAY = 200_000
_N_LOOP = 25_000


def reference_kernel() -> float:
    """One run of the fixed calibration workload (deterministic)."""
    x = np.arange(1, _N_ARRAY + 1, dtype=np.float64)
    total = 0.0
    for _ in range(3):
        y = np.sqrt(x) * 1.0000001 + np.log(x)
        total += float(y.sum())
    acc = 0.0
    for i in range(_N_LOOP):
        acc += math.sin(i & 1023) * 0.5
    return total + acc


def measure_calibration(repeats: int = 7, warmup: int = 2) -> float:
    """Best-of-``repeats`` reference-kernel time in seconds."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        reference_kernel()
    best: Optional[float] = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        reference_kernel()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return float(best)


_CACHED: Optional[float] = None


def calibration_s(refresh: bool = False) -> float:
    """Process-cached calibration (measured on first use)."""
    global _CACHED
    if _CACHED is None or refresh:
        _CACHED = measure_calibration()
    return _CACHED
