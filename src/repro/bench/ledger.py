"""Append-only, machine-normalized benchmark trend ledger.

One JSONL line per benchmark run.  Every entry carries the raw timing,
the machine calibration (the minimum of the reference-kernel samples
the harness interleaves with the workload samples — see
:mod:`repro.bench.calibrate` and :func:`repro.bench.harness.run_case`),
the normalized cost ``norm = raw_min_s / calib_s``, the host
fingerprint, the code version and the oracle verdict — enough to
compare runs across machines and to audit where a baseline came from.

Merging is content-based: two ledgers merge to the deduplicated union
of their entries in a canonical order, so merge is idempotent,
commutative and associative (the hypothesis property suite pins this).
The file itself is only ever appended to; rewrites happen through
:meth:`Ledger.save` on an explicitly merged ledger.

The regression gate (:func:`check`) compares a fresh run's normalized
cost against the *baseline*: the **median** normalized cost among prior
oracle-clean entries for the same benchmark and tier, preferring
entries from the same host fingerprint when any exist (same-host
comparisons are exact; cross-host ones lean on the calibration).  The
median — not the minimum — is deliberate: with a min-baseline every
entry appended during a quiet window permanently tightens the gate, and
ordinary scheduling noise then reads as a regression.
"""

from __future__ import annotations

import hashlib
import json
import math
import statistics
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .harness import BenchResult

__all__ = [
    "Ledger",
    "Verdict",
    "make_entry",
    "normalized",
    "check",
    "seed_entries_from_snapshots",
    "SNAPSHOT_SOURCES",
]

#: Regression-gate statuses in severity order.
_STATUSES = ("ok", "no-baseline", "regression", "oracle-failed")


def normalized(raw_s: float, calib_s: float) -> float:
    """Machine-normalized cost: reference-kernel units.

    Scale-invariant: a machine uniformly ``k`` times slower multiplies
    both operands by ``k`` and leaves the ratio unchanged.
    """
    if raw_s < 0:
        raise ValueError("raw_s must be non-negative")
    if calib_s <= 0:
        raise ValueError("calib_s must be positive")
    return raw_s / calib_s


def _entry_digest(entry: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(entry, sort_keys=True).encode()).hexdigest()


def make_entry(
    result: BenchResult,
    calib_s: float,
    host: Dict[str, Any],
    code_version: str,
    ts: Optional[str] = None,
    seed: bool = False,
    source: str = "run",
) -> Dict[str, Any]:
    """Ledger entry for one :class:`~repro.bench.harness.BenchResult`.

    The result's own paired calibration (interleaved with its samples)
    takes precedence over the process-level ``calib_s`` fallback.
    """
    ts = ts or datetime.now(timezone.utc).isoformat(timespec="seconds")
    paired = getattr(result, "calib_min_s", None)
    calib = paired if paired else calib_s
    return {
        "bench": result.bench,
        "kind": result.kind,
        "tier": result.tier,
        "raw_min_s": result.min_s,
        "raw_median_s": result.median_s,
        "samples_s": list(result.samples_s),
        "calib_s": calib,
        "norm": normalized(result.min_s, calib),
        "oracle_ok": result.oracle_ok,
        "oracle_detail": result.oracle_detail,
        "inject_slowdown": result.inject_slowdown,
        "host": dict(host),
        "code_version": code_version,
        "ts": ts,
        "seed": seed,
        "source": source,
        "meta": dict(result.meta),
    }


class Ledger:
    """In-memory view of a JSONL trend ledger."""

    def __init__(self, entries: Iterable[Dict[str, Any]] = ()) -> None:
        self.entries: List[Dict[str, Any]] = [dict(e) for e in entries]

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Ledger":
        """Read a JSONL ledger, tolerating blank and torn lines."""
        entries: List[Dict[str, Any]] = []
        p = Path(path)
        if not p.exists():
            return cls()
        for line in p.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crashed append
            if isinstance(obj, dict) and "bench" in obj:
                entries.append(obj)
        return cls(entries)

    def save(self, path: Union[str, Path]) -> None:
        """Rewrite ``path`` with this ledger's entries (canonical order)."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        text = "".join(json.dumps(e, sort_keys=True) + "\n"
                       for e in self.canonical().entries)
        p.write_text(text, encoding="utf-8")

    @staticmethod
    def append_to(path: Union[str, Path],
                  entries: Sequence[Dict[str, Any]]) -> None:
        """Append entries to the JSONL file (the only mutating file op)."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        with p.open("a", encoding="utf-8") as fh:
            for e in entries:
                fh.write(json.dumps(e, sort_keys=True) + "\n")

    # -- set semantics ------------------------------------------------------

    def canonical(self) -> "Ledger":
        """Deduplicated copy in canonical order (bench, ts, digest)."""
        seen: Dict[str, Dict[str, Any]] = {}
        for e in self.entries:
            seen.setdefault(_entry_digest(e), e)
        ordered = sorted(
            seen.values(),
            key=lambda e: (str(e.get("bench", "")), str(e.get("ts", "")),
                           _entry_digest(e)))
        return Ledger(ordered)

    def merge(self, other: "Ledger") -> "Ledger":
        """Content-deduplicated union, canonically ordered."""
        return Ledger(self.entries + other.entries).canonical()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ledger):
            return NotImplemented
        return ([_entry_digest(e) for e in self.canonical().entries]
                == [_entry_digest(e) for e in other.canonical().entries])

    def __len__(self) -> int:
        return len(self.entries)

    # -- queries ------------------------------------------------------------

    def for_bench(self, bench: str,
                  tier: Optional[str] = None) -> List[Dict[str, Any]]:
        out = [e for e in self.entries if e.get("bench") == bench
               and (tier is None or e.get("tier") == tier)]
        out.sort(key=lambda e: (str(e.get("ts", "")), _entry_digest(e)))
        return out

    def bench_ids(self) -> List[str]:
        seen: List[str] = []
        for e in self.entries:
            b = e.get("bench")
            if b and b not in seen:
                seen.append(b)
        return sorted(seen)

    def baseline(self, bench: str, tier: str,
                 host_id: Optional[str] = None) -> Optional[float]:
        """Median normalized cost among prior clean entries (module doc).

        Entries produced with an injected slowdown never become
        baselines — they exist to exercise the gate, not to move it.
        """
        pool = [e for e in self.for_bench(bench, tier)
                if e.get("oracle_ok") and not e.get("failed")
                and isinstance(e.get("norm"), (int, float))
                and math.isfinite(e["norm"]) and e["norm"] > 0
                and float(e.get("inject_slowdown", 1.0)) == 1.0]
        if not pool:
            return None
        if host_id is not None:
            same = [e for e in pool
                    if e.get("host", {}).get("id") == host_id]
            if same:
                pool = same
        return float(statistics.median(float(e["norm"]) for e in pool))


@dataclass(frozen=True)
class Verdict:
    """Gate outcome for one benchmark of a fresh run."""

    bench: str
    tier: str
    status: str  # ok | no-baseline | regression | oracle-failed
    current_norm: Optional[float] = None
    baseline_norm: Optional[float] = None
    ratio: Optional[float] = None  # current/baseline - 1 (signed)
    detail: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "oracle-failed")


def check(
    results: Sequence[BenchResult],
    ledger: Ledger,
    threshold: float,
    calib_s: float,
    host_id: Optional[str] = None,
) -> List[Verdict]:
    """Gate a fresh run against the ledger baselines.

    Pure function of its inputs: for a fixed ledger, threshold and
    result set the verdicts are deterministic (property-tested).  A
    benchmark with no usable baseline passes with ``no-baseline`` so a
    newly registered benchmark cannot break CI before its first append.
    Each result's paired calibration is preferred over the process-level
    ``calib_s`` fallback, mirroring :func:`make_entry`.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    verdicts: List[Verdict] = []
    for r in sorted(results, key=lambda r: r.bench):
        if not r.oracle_ok:
            verdicts.append(Verdict(
                bench=r.bench, tier=r.tier, status="oracle-failed",
                detail=r.oracle_detail))
            continue
        paired = getattr(r, "calib_min_s", None)
        cur = normalized(r.min_s, paired if paired else calib_s)
        base = ledger.baseline(r.bench, r.tier, host_id=host_id)
        if base is None:
            verdicts.append(Verdict(
                bench=r.bench, tier=r.tier, status="no-baseline",
                current_norm=cur,
                detail="no prior oracle-clean ledger entry"))
            continue
        ratio = cur / base - 1.0
        status = "regression" if ratio > threshold else "ok"
        verdicts.append(Verdict(
            bench=r.bench, tier=r.tier, status=status,
            current_norm=cur, baseline_norm=base, ratio=ratio,
            detail=(f"{ratio:+.1%} vs baseline (threshold "
                    f"{threshold:.0%})") if status == "regression" else None))
    return verdicts


# -- BENCH_*.json snapshot migration ----------------------------------------

#: snapshot file -> list of (benchmark id, JSON path to the raw seconds,
#: meta note).  These are the PR2-PR5 one-off measurements, preserved as
#: the ledger's opening baselines.
SNAPSHOT_SOURCES: Dict[str, List[Dict[str, Any]]] = {
    "BENCH_hotpaths.json": [
        {"bench": "macro.fast_sweep", "kind": "macro",
         "path": ("fast_mode", "batched_warm_s"),
         "note": "PR5 batched warm fast-mode eval, 864 configs"},
        {"bench": "macro.replay_sweep", "kind": "macro",
         "path": ("replay_mode", "array_warm_s"),
         "note": "PR5 array-driver warm replay eval, 864x256"},
        {"bench": "macro.campaign", "kind": "macro",
         "path": ("campaign", "batched_s"),
         "note": "PR5 batched 5-app full-space campaign"},
    ],
    "BENCH_replay.json": [
        {"bench": "micro.event_engine", "kind": "micro",
         "path": ("unlimited_buses", "event_wall_s"),
         "note": "PR3 event-driven 256-rank replay, unlimited buses"},
    ],
    "BENCH_replay_batch.json": [
        {"bench": "micro.tape_replay", "kind": "micro",
         "path": ("unlimited_buses", "batched_wall_s"),
         "note": "PR4 config-vectorized replay pass, 864x256"},
        {"bench": "micro.bus_arbitration", "kind": "micro",
         "path": ("finite_buses_lockstep", "batched_wall_s"),
         "note": "PR4 lockstep-peel finite-bus batch, 32x16, 8 buses"},
    ],
    "BENCH_batch_sweep.json": [
        {"bench": "macro.fast_sweep", "kind": "macro",
         "path": ("batched", "wall_s"),
         "note": "PR2 batched single-app run_sweep (includes scheduler "
                 "overhead; superseded workload, kept as a slow bound)"},
    ],
}


def seed_entries_from_snapshots(
    root: Union[str, Path],
    calib_s: float,
    host: Optional[Dict[str, Any]] = None,
) -> List[Dict[str, Any]]:
    """Seed ledger entries from the retired ``BENCH_*.json`` snapshots.

    The snapshots predate calibration, so they are normalized with the
    *current* machine's ``calib_s`` under the recorded assumption that
    they were produced on the same container class (``seed: true`` and
    the source pointer make the provenance auditable; same-host baseline
    preference means a genuinely different machine's fresh entries
    outrank them anyway).
    """
    root = Path(root)
    host = dict(host or {})
    entries: List[Dict[str, Any]] = []
    for fname, specs in SNAPSHOT_SOURCES.items():
        p = root / fname
        if not p.exists():
            continue
        snap = json.loads(p.read_text(encoding="utf-8"))
        for spec in specs:
            node: Any = snap
            for key in spec["path"]:
                if not isinstance(node, dict) or key not in node:
                    node = None
                    break
                node = node[key]
            if not isinstance(node, (int, float)) or node <= 0:
                continue
            raw = float(node)
            entries.append({
                "bench": spec["bench"],
                "kind": spec["kind"],
                "tier": "full",
                "raw_min_s": raw,
                "raw_median_s": raw,
                "samples_s": [raw],
                "calib_s": calib_s,
                "norm": normalized(raw, calib_s),
                "oracle_ok": True,  # every snapshot asserted bit-identity
                "oracle_detail": None,
                "inject_slowdown": 1.0,
                "host": host,
                "code_version": "pre-ledger",
                "ts": datetime.now(timezone.utc).isoformat(
                    timespec="seconds"),
                "seed": True,
                "source": f"{fname}:{'.'.join(spec['path'])}",
                "meta": {"note": spec["note"],
                         "snapshot_python": snap.get("python"),
                         "snapshot_machine": snap.get("machine")},
            })
    return entries
