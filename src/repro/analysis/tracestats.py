"""Trace-level statistics (the paper's Sec. V-A inspection, quantified).

The authors analyse task-execution and MPI traces "with visualization
tools" to find the scaling limiters: task granularity, available
parallelism, serialized segments, message sizes.  This module computes
those statistics directly from a burst trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..trace.burst import BurstTrace
from ..trace.events import ComputePhase

__all__ = [
    "TaskGranularity",
    "task_granularity",
    "parallelism_profile",
    "message_stats",
    "trace_summary",
]


@dataclass(frozen=True)
class TaskGranularity:
    """Task-duration distribution of one phase (or a whole trace)."""

    n_tasks: int
    mean_ns: float
    p50_ns: float
    p95_ns: float
    max_over_mean: float      # the imbalance metric used throughout

    @classmethod
    def from_durations(cls, durations_ns) -> "TaskGranularity":
        d = np.asarray(list(durations_ns), dtype=np.float64)
        if len(d) == 0:
            raise ValueError("no tasks")
        return cls(
            n_tasks=len(d),
            mean_ns=float(d.mean()),
            p50_ns=float(np.percentile(d, 50)),
            p95_ns=float(np.percentile(d, 95)),
            max_over_mean=float(d.max() / d.mean()) if d.mean() > 0 else 0.0,
        )


def task_granularity(phase: ComputePhase) -> TaskGranularity:
    """Granularity statistics of one compute phase."""
    return TaskGranularity.from_durations(
        t.duration_ns for t in phase.tasks)


def parallelism_profile(phase: ComputePhase,
                        n_points: int = 64) -> np.ndarray:
    """Available parallelism over (virtual) time for one phase.

    Executes the phase on infinitely many cores with zero overheads and
    samples how many tasks run concurrently — the trace's *intrinsic*
    parallelism, independent of any machine (what caps Fig. 2a).
    """
    if n_points <= 0:
        raise ValueError("n_points must be positive")
    tasks = phase.tasks
    if not tasks:
        return np.zeros(n_points)
    # Infinite-core schedule: start = max over deps' finishes.
    start = [0.0] * len(tasks)
    finish = [0.0] * len(tasks)
    for i, t in enumerate(tasks):
        s = max((finish[d] for d in t.deps), default=0.0)
        start[i] = s
        finish[i] = s + t.duration_ns
    horizon = max(finish)
    if horizon <= 0:
        return np.zeros(n_points)
    times = np.linspace(0.0, horizon, n_points, endpoint=False)
    s_arr = np.asarray(start)
    f_arr = np.asarray(finish)
    return ((s_arr[None, :] <= times[:, None])
            & (times[:, None] < f_arr[None, :])).sum(axis=1).astype(float)


@dataclass(frozen=True)
class MessageStats:
    """Point-to-point and collective statistics of a trace."""

    n_p2p: int
    n_collectives: int
    total_bytes: int
    mean_message_bytes: float
    max_message_bytes: int


def message_stats(trace: BurstTrace) -> MessageStats:
    sizes: List[int] = []
    n_coll = 0
    for rt in trace.ranks:
        for call in rt.mpi_calls():
            if call.is_collective:
                n_coll += 1
            elif call.kind in ("send", "isend"):
                sizes.append(call.size_bytes)
    return MessageStats(
        n_p2p=len(sizes),
        n_collectives=n_coll,
        total_bytes=int(sum(sizes)),
        mean_message_bytes=float(np.mean(sizes)) if sizes else 0.0,
        max_message_bytes=max(sizes) if sizes else 0,
    )


def trace_summary(trace: BurstTrace) -> Dict[str, object]:
    """One-stop trace characterization (Sec. V-A's table of limiters)."""
    phases = [p for rt in trace.ranks[:1] for p in rt.compute_phases()]
    grans = [task_granularity(p) for p in phases if p.n_tasks]
    profiles = [parallelism_profile(p) for p in phases if p.n_tasks]
    mean_par = float(np.mean([p.mean() for p in profiles])) if profiles else 0.0
    peak_par = float(max((p.max() for p in profiles), default=0.0))
    msgs = message_stats(trace)
    return {
        "app": trace.app,
        "n_ranks": trace.n_ranks,
        "phases_per_rank": len(phases),
        "mean_task_us": float(np.mean([g.mean_ns for g in grans])) / 1e3
        if grans else 0.0,
        "worst_imbalance": max((g.max_over_mean for g in grans),
                               default=0.0),
        "mean_parallelism": mean_par,
        "peak_parallelism": peak_par,
        "p2p_messages": msgs.n_p2p,
        "collectives": msgs.n_collectives,
        "mpi_gbytes": msgs.total_bytes / 1e9,
    }
