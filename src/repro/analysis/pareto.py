"""Pareto-front analysis of the design space.

The paper's Table II picks each application's "DSE-Best" configuration
by execution time; architects usually want the whole performance-power
trade-off curve instead.  This module extracts per-application Pareto
fronts over arbitrary (minimize, minimize) metric pairs and locates the
paper-style best points under several objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.results import CONFIG_KEYS, ResultSet

__all__ = ["ParetoPoint", "front_indices", "pareto_front", "best_configs"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design point."""

    config: Dict[str, object]
    x: float
    y: float

    @property
    def label(self) -> str:
        c = self.config
        return (f"{c['core']}/{c['cache']}/{c['memory']}/"
                f"{c['vector']}b/{c['frequency']}GHz")


def front_indices(xs: Sequence[float], ys: Sequence[float]) -> List[int]:
    """Indices of the non-dominated (minimize x, minimize y) points.

    The shared dominance kernel of :func:`pareto_front` and the active
    search layer (:mod:`repro.analysis.search`): points are visited in
    ``(x, y)`` order and kept only when they strictly improve the best
    ``y`` seen so far (beyond a 1e-12 tolerance, so float noise cannot
    manufacture front points).  Returned in ``x``-ascending order; ties
    in ``(x, y)`` keep the lowest input index, making the selection
    deterministic for any input order.
    """
    order = sorted(range(len(xs)), key=lambda i: (xs[i], ys[i], i))
    front: List[int] = []
    best_y = float("inf")
    for i in order:
        if ys[i] < best_y - 1e-12:
            best_y = ys[i]
            front.append(i)
    return front


def pareto_front(
    results: ResultSet,
    app: str,
    x_metric: str = "time_ns",
    y_metric: str = "power_total_w",
    cores: Optional[int] = 64,
) -> List[ParetoPoint]:
    """Non-dominated (minimize x, minimize y) points for one app.

    Records with missing metrics (HBM energy) are skipped.  The front is
    returned sorted by ``x`` ascending (so ``y`` descends along it).
    """
    sub = results.filter(app=app) if cores is None else \
        results.filter(app=app, cores=cores)
    points = []
    for rec in sub:
        x, y = rec.get(x_metric), rec.get(y_metric)
        if x is None or y is None:
            continue
        points.append((float(x), float(y), rec))
    if not points:
        raise ValueError(f"no records with {x_metric}/{y_metric} for {app}")
    return [
        ParetoPoint(config={k: points[i][2][k] for k in CONFIG_KEYS},
                    x=points[i][0], y=points[i][1])
        for i in front_indices([p[0] for p in points],
                               [p[1] for p in points])
    ]


def best_configs(
    results: ResultSet,
    app: str,
    cores: Optional[int] = 64,
) -> Dict[str, Dict[str, object]]:
    """Per-objective winners: performance, power, energy, EDP.

    ``performance`` reproduces the paper's DSE-Best selection rule.
    """
    sub = results.filter(app=app) if cores is None else \
        results.filter(app=app, cores=cores)
    records = list(sub)
    if not records:
        raise ValueError(f"no records for app {app!r}")

    def pick(key: Callable) -> Dict[str, object]:
        candidates = [r for r in records if key(r) is not None]
        if not candidates:
            raise ValueError("no records with the required metrics")
        winner = min(candidates, key=key)
        return {k: winner[k] for k in CONFIG_KEYS}

    return {
        "performance": pick(lambda r: r["time_ns"]),
        "power": pick(lambda r: r["power_total_w"]),
        "energy": pick(
            lambda r: r["energy_j"] if r["energy_j"] is not None else None),
        "edp": pick(
            lambda r: (r["energy_j"] * r["time_ns"])
            if r["energy_j"] is not None else None),
    }
