"""Pareto-front analysis of the design space.

The paper's Table II picks each application's "DSE-Best" configuration
by execution time; architects usually want the whole performance-power
trade-off curve instead.  This module extracts per-application Pareto
fronts over arbitrary (minimize, minimize) metric pairs and locates the
paper-style best points under several objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.results import CONFIG_KEYS, ResultSet

__all__ = ["ParetoPoint", "front_indices", "pareto_front", "best_configs"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design point."""

    config: Dict[str, object]
    x: float
    y: float

    @property
    def label(self) -> str:
        c = self.config
        return (f"{c['core']}/{c['cache']}/{c['memory']}/"
                f"{c['vector']}b/{c['frequency']}GHz")


def front_indices(xs: Sequence[float], ys: Sequence[float]) -> List[int]:
    """Indices of the non-dominated (minimize x, minimize y) points.

    The shared dominance kernel of :func:`pareto_front` and the active
    search layer (:mod:`repro.analysis.search`): points are visited in
    ``(x, y)`` order and kept only when they strictly improve the best
    ``y`` seen so far (beyond a 1e-12 tolerance, so float noise cannot
    manufacture front points).  Returned in ``x``-ascending order; ties
    in ``(x, y)`` keep the lowest input index, making the selection
    deterministic for any input order.  NaN coordinates sort last and
    can never join the front.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    # Stable sort by (x, y): equal pairs keep the lowest input index.
    order = np.lexsort((y, x))
    front: List[int] = []
    best_y = float("inf")
    for i in order.tolist():
        if y[i] < best_y - 1e-12:
            best_y = float(y[i])
            front.append(i)
    return front


def pareto_front(
    results: ResultSet,
    app: str,
    x_metric: str = "time_ns",
    y_metric: str = "power_total_w",
    cores: Optional[int] = 64,
) -> List[ParetoPoint]:
    """Non-dominated (minimize x, minimize y) points for one app.

    Records with missing metrics (HBM energy) are skipped.  The front is
    returned sorted by ``x`` ascending (so ``y`` descends along it).

    On the warm path the metric columns are read straight off the
    backing :class:`~repro.core.frame.ResultFrame`; only the handful of
    front members ever materialize a record.
    """
    sub = results.filter(app=app) if cores is None else \
        results.filter(app=app, cores=cores)
    xs, ys = sub.values(x_metric), sub.values(y_metric)
    valid = np.nonzero(~(np.isnan(xs) | np.isnan(ys)))[0]
    if len(valid) == 0:
        raise ValueError(f"no records with {x_metric}/{y_metric} for {app}")
    recs = list(sub.lazy())
    return [
        ParetoPoint(config={k: recs[j][k] for k in CONFIG_KEYS},
                    x=float(xs[j]), y=float(ys[j]))
        for i in front_indices(xs[valid], ys[valid])
        for j in (int(valid[i]),)
    ]


def best_configs(
    results: ResultSet,
    app: str,
    cores: Optional[int] = 64,
) -> Dict[str, Dict[str, object]]:
    """Per-objective winners: performance, power, energy, EDP.

    ``performance`` reproduces the paper's DSE-Best selection rule.

    Objectives are scanned column-wise (missing metrics read as NaN);
    ties keep the earliest record, matching the historical ``min`` over
    the record list.
    """
    sub = results.filter(app=app) if cores is None else \
        results.filter(app=app, cores=cores)
    recs = list(sub.lazy())
    if not recs:
        raise ValueError(f"no records for app {app!r}")
    time_ns = sub.values("time_ns")
    energy = sub.values("energy_j")

    def pick(arr: np.ndarray) -> Dict[str, object]:
        if np.isnan(arr).all():
            raise ValueError("no records with the required metrics")
        winner = recs[int(np.nanargmin(arr))]
        return {k: winner[k] for k in CONFIG_KEYS}

    return {
        "performance": pick(time_ns),
        "power": pick(sub.values("power_total_w")),
        "energy": pick(energy),
        "edp": pick(energy * time_ns),
    }
