"""Principal Component Analysis of sweep results (Sec. V-C / Fig. 10).

The paper runs PCA per application over five variables — OoO capacity,
memory channels, SIMD width, cache size, and total cycles — on the
64-core, 2 GHz subset of the sweep, and reads architectural
sensitivities from the loadings: variables that load onto the same
component as "Exec. time" but with opposite sign drive performance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config.cache import cache_preset
from ..config.core import core_preset
from ..config.memory import memory_preset
from ..core.results import ResultSet

__all__ = ["PcaResult", "pca", "app_pca", "PCA_VARIABLES"]

#: Variable order used in Fig. 10.
PCA_VARIABLES: Tuple[str, ...] = (
    "OoO struct.", "Cache size", "FPU", "Mem. BW", "Exec. time",
)


@dataclass(frozen=True)
class PcaResult:
    """Loadings and explained variance of a PCA decomposition."""

    variables: Tuple[str, ...]
    components: np.ndarray        # (n_components, n_variables) loadings
    explained_variance_ratio: np.ndarray

    def loading(self, variable: str, component: int) -> float:
        try:
            j = self.variables.index(variable)
        except ValueError:
            raise KeyError(f"unknown variable {variable!r}; "
                           f"have {self.variables}") from None
        return float(self.components[component, j])

    def correlated_with_time(self, component: int = 0,
                             threshold: float = 0.25) -> List[Tuple[str, float]]:
        """Variables loading against 'Exec. time' on a component:
        positive score = increasing the variable reduces execution time."""
        t = self.loading("Exec. time", component)
        out = []
        for v in self.variables:
            if v == "Exec. time":
                continue
            l = self.loading(v, component)
            score = -l * t  # opposite signs => performance driver
            if abs(l) >= threshold and abs(t) >= threshold:
                out.append((v, score))
        return sorted(out, key=lambda kv: -abs(kv[1]))


def pca(matrix: np.ndarray, variables: Sequence[str]) -> PcaResult:
    """Standardize columns and decompose with SVD.

    ``matrix`` is (n_samples, n_variables); constant columns are left
    centered (zero variance contributes nothing).
    """
    x = np.asarray(matrix, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if x.shape[1] != len(variables):
        raise ValueError("one name per column required")
    if x.shape[0] < 2:
        raise ValueError("need at least two samples")
    mu = x.mean(axis=0)
    sd = x.std(axis=0)
    sd[sd == 0] = 1.0
    z = (x - mu) / sd
    _, s, vt = np.linalg.svd(z, full_matrices=False)
    var = s ** 2
    return PcaResult(
        variables=tuple(variables),
        components=vt,
        explained_variance_ratio=var / var.sum(),
    )


def _numeric_axes(rec: Dict) -> Tuple[float, float, float, float]:
    """Map config labels to the numeric scales the paper's PCA uses."""
    ooo = core_preset(rec["core"]).window_capability
    cache = cache_preset(rec["cache"]).l3.size_bytes
    fpu = float(rec["vector"])
    bw = memory_preset(rec["memory"]).peak_bw_gbs
    return ooo, cache, fpu, bw


def app_pca(results: ResultSet, app: str, cores: int = 64,
            frequency: float = 2.0) -> PcaResult:
    """The paper's per-application PCA on the fixed-frequency subset."""
    sub = results.filter(app=app, cores=cores, frequency=frequency)
    if len(sub) == 0:
        raise ValueError(
            f"no records for app={app}, cores={cores}, freq={frequency}")
    rows = []
    for rec in sub:
        ooo, cache, fpu, bw = _numeric_axes(rec)
        cycles = rec["time_ns"] * rec["frequency"]
        rows.append((ooo, cache, fpu, bw, cycles))
    return pca(np.array(rows), PCA_VARIABLES)
