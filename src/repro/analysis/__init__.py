"""Analysis layer: PCA, timelines, scaling curves, figure rendering."""

from .htmlreport import build_html_report
from .optimize import Constraints, OptimalChoice, optimize_node
from .pareto import ParetoPoint, best_configs, front_indices, pareto_front
from .pca import PCA_VARIABLES, PcaResult, app_pca, pca
from .recommend import Recommendation, RecommendationReport, recommend
from .search import SearchResult, search_front, search_fronts
from .report import (format_metrics_summary, format_panel, format_rows,
                     format_stacked_power)
from .sensitivity import AxisSwing, render_tornado, tornado
from .scaling import ScalingCurve, compute_region_scaling, full_app_scaling
from .svgchart import grouped_bar_chart
from .tracestats import (
    MessageStats,
    TaskGranularity,
    message_stats,
    parallelism_profile,
    task_granularity,
    trace_summary,
)
from .timeline import (
    OccupancyStats,
    RankActivityStats,
    occupancy_stats,
    rank_activity_stats,
    render_core_timeline,
    render_rank_timeline,
)

__all__ = [
    "OccupancyStats",
    "PCA_VARIABLES",
    "PcaResult",
    "ParetoPoint",
    "SearchResult",
    "best_configs",
    "front_indices",
    "search_front",
    "search_fronts",
    "Constraints",
    "OptimalChoice",
    "build_html_report",
    "optimize_node",
    "pareto_front",
    "RankActivityStats",
    "Recommendation",
    "RecommendationReport",
    "ScalingCurve",
    "app_pca",
    "compute_region_scaling",
    "AxisSwing",
    "format_metrics_summary",
    "format_panel",
    "format_rows",
    "format_stacked_power",
    "MessageStats",
    "TaskGranularity",
    "message_stats",
    "parallelism_profile",
    "task_granularity",
    "trace_summary",
    "render_tornado",
    "tornado",
    "full_app_scaling",
    "grouped_bar_chart",
    "occupancy_stats",
    "pca",
    "rank_activity_stats",
    "recommend",
    "render_core_timeline",
    "render_rank_timeline",
]
