"""Dependency-free SVG charts (grouped bars, trend lines).

The paper's figures are grouped bar charts (apps on the x-axis, one bar
per axis value).  matplotlib is not available in this environment, so
this module emits standalone SVG directly — enough to eyeball a figure
in a browser next to the paper's plot.  :func:`line_chart` renders the
benchmark ledger's trend trajectories the same way.
"""

from __future__ import annotations

import html
from typing import Mapping, Optional, Sequence, Tuple

__all__ = ["grouped_bar_chart", "line_chart"]

_PALETTE = ("#4878a8", "#e49444", "#5ba053", "#bf5b50", "#8268a8",
            "#99755a", "#d684bd", "#7f7f7f")


def _fmt(x: float) -> str:
    return f"{x:.6g}"


def grouped_bar_chart(
    data: Mapping[str, Mapping[object, float]],
    groups: Sequence[str],
    values: Sequence[object],
    title: str = "",
    width: int = 720,
    height: int = 360,
    y_label: str = "normalized",
    reference_line: Optional[float] = 1.0,
) -> str:
    """Render ``data[group][value]`` as a grouped bar chart.

    Parameters
    ----------
    data:
        Nested mapping: outer keys are groups (applications), inner keys
        the series (axis values).  Missing cells are skipped.
    reference_line:
        Horizontal guide (the paper draws the 1.0 baseline); ``None``
        disables it.
    """
    if not groups or not values:
        raise ValueError("need at least one group and one value")
    margin_l, margin_r, margin_t, margin_b = 56, 16, 36, 72
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    if plot_w <= 0 or plot_h <= 0:
        raise ValueError("chart too small for its margins")

    cells = [data.get(g, {}).get(v) for g in groups for v in values]
    present = [c for c in cells if c is not None]
    if not present:
        raise ValueError("no data cells present")
    y_max = max(max(present), reference_line or 0.0) * 1.12
    if y_max <= 0:
        raise ValueError("all values non-positive")

    group_w = plot_w / len(groups)
    bar_w = group_w * 0.8 / len(values)

    def x_of(gi: int, vi: int) -> float:
        return margin_l + gi * group_w + group_w * 0.1 + vi * bar_w

    def y_of(val: float) -> float:
        return margin_t + plot_h * (1.0 - val / y_max)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-size="13">{html.escape(title)}</text>')

    # y axis: 5 ticks.
    for i in range(6):
        val = y_max * i / 5
        y = y_of(val)
        parts.append(
            f'<line x1="{margin_l}" y1="{_fmt(y)}" '
            f'x2="{width - margin_r}" y2="{_fmt(y)}" stroke="#e0e0e0"/>')
        parts.append(
            f'<text x="{margin_l - 6}" y="{_fmt(y + 4)}" '
            f'text-anchor="end">{val:.2f}</text>')
    parts.append(
        f'<text x="14" y="{margin_t + plot_h / 2}" text-anchor="middle" '
        f'transform="rotate(-90 14 {margin_t + plot_h / 2})">'
        f'{html.escape(y_label)}</text>')

    if reference_line is not None and reference_line <= y_max:
        y = y_of(reference_line)
        parts.append(
            f'<line x1="{margin_l}" y1="{_fmt(y)}" '
            f'x2="{width - margin_r}" y2="{_fmt(y)}" '
            'stroke="#555" stroke-dasharray="4 3"/>')

    # bars
    for gi, g in enumerate(groups):
        for vi, v in enumerate(values):
            val = data.get(g, {}).get(v)
            if val is None:
                continue
            color = _PALETTE[vi % len(_PALETTE)]
            x = x_of(gi, vi)
            y = y_of(max(val, 0.0))
            h = margin_t + plot_h - y
            parts.append(
                f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(bar_w * 0.92)}" '
                f'height="{_fmt(h)}" fill="{color}">'
                f'<title>{html.escape(str(g))} {html.escape(str(v))}: '
                f'{val:.3f}</title></rect>')
        parts.append(
            f'<text x="{_fmt(margin_l + gi * group_w + group_w / 2)}" '
            f'y="{height - margin_b + 16}" text-anchor="middle">'
            f'{html.escape(str(g))}</text>')

    # legend
    lx = margin_l
    ly = height - margin_b + 34
    for vi, v in enumerate(values):
        color = _PALETTE[vi % len(_PALETTE)]
        parts.append(f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" '
                     f'fill="{color}"/>')
        label = html.escape(str(v))
        parts.append(f'<text x="{lx + 14}" y="{ly}">{label}</text>')
        lx += 14 + 7 * max(3, len(str(v))) + 16

    # axes
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="#333"/>')
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{width - margin_r}" y2="{margin_t + plot_h}" stroke="#333"/>')
    parts.append("</svg>")
    return "\n".join(parts)


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 720,
    height: int = 300,
    y_label: str = "",
    x_label: str = "",
    reference_line: Optional[float] = None,
) -> str:
    """Render ``series[name] = [(x, y), ...]`` as a multi-line chart.

    Used for benchmark trend trajectories (x = run sequence, y =
    normalized cost).  Points are drawn as markers so single-entry
    series remain visible; ``reference_line`` draws a dashed horizontal
    guide (e.g. the regression-gate baseline).
    """
    named = {k: [(float(x), float(y)) for x, y in pts]
             for k, pts in series.items() if pts}
    if not named:
        raise ValueError("need at least one non-empty series")
    margin_l, margin_r, margin_t, margin_b = 64, 16, 36, 56
    plot_w = width - margin_l - margin_r
    plot_h = height - margin_t - margin_b
    if plot_w <= 0 or plot_h <= 0:
        raise ValueError("chart too small for its margins")

    xs = [x for pts in named.values() for x, _ in pts]
    ys = [y for pts in named.values() for _, y in pts]
    if reference_line is not None:
        ys = ys + [reference_line]
    x_lo, x_hi = min(xs), max(xs)
    y_hi = max(max(ys), 0.0) * 1.12 or 1.0
    x_span = (x_hi - x_lo) or 1.0

    def x_of(x: float) -> float:
        return margin_l + plot_w * (x - x_lo) / x_span

    def y_of(y: float) -> float:
        return margin_t + plot_h * (1.0 - y / y_hi)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        'font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2}" y="18" text-anchor="middle" '
            f'font-size="13">{html.escape(title)}</text>')
    for i in range(6):
        val = y_hi * i / 5
        y = y_of(val)
        parts.append(
            f'<line x1="{margin_l}" y1="{_fmt(y)}" '
            f'x2="{width - margin_r}" y2="{_fmt(y)}" stroke="#e0e0e0"/>')
        parts.append(
            f'<text x="{margin_l - 6}" y="{_fmt(y + 4)}" '
            f'text-anchor="end">{val:.3g}</text>')
    if y_label:
        parts.append(
            f'<text x="14" y="{margin_t + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 14 {margin_t + plot_h / 2})">'
            f'{html.escape(y_label)}</text>')
    if x_label:
        parts.append(
            f'<text x="{margin_l + plot_w / 2}" y="{height - margin_b + 30}" '
            f'text-anchor="middle">{html.escape(x_label)}</text>')
    if reference_line is not None and 0 <= reference_line <= y_hi:
        y = y_of(reference_line)
        parts.append(
            f'<line x1="{margin_l}" y1="{_fmt(y)}" '
            f'x2="{width - margin_r}" y2="{_fmt(y)}" '
            'stroke="#555" stroke-dasharray="4 3"/>')

    lx = margin_l
    ly = height - margin_b + 44
    for si, (name, pts) in enumerate(named.items()):
        color = _PALETTE[si % len(_PALETTE)]
        pts = sorted(pts)
        coords = " ".join(f"{_fmt(x_of(x))},{_fmt(y_of(y))}"
                          for x, y in pts)
        if len(pts) > 1:
            parts.append(f'<polyline points="{coords}" fill="none" '
                         f'stroke="{color}" stroke-width="1.6"/>')
        for x, y in pts:
            parts.append(
                f'<circle cx="{_fmt(x_of(x))}" cy="{_fmt(y_of(y))}" r="3" '
                f'fill="{color}"><title>{html.escape(name)}: '
                f'({x:g}, {y:.4g})</title></circle>')
        parts.append(f'<rect x="{lx}" y="{ly - 9}" width="10" height="10" '
                     f'fill="{color}"/>')
        parts.append(f'<text x="{lx + 14}" y="{ly}">'
                     f'{html.escape(name)}</text>')
        lx += 14 + 7 * max(3, len(name)) + 16

    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t}" x2="{margin_l}" '
        f'y2="{margin_t + plot_h}" stroke="#333"/>')
    parts.append(
        f'<line x1="{margin_l}" y1="{margin_t + plot_h}" '
        f'x2="{width - margin_r}" y2="{margin_t + plot_h}" stroke="#333"/>')
    parts.append("</svg>")
    return "\n".join(parts)
