"""Scaling-study helpers (Fig. 2 of the paper).

Fig. 2a: hardware-agnostic speedup of a single representative compute
region on 1/32/64 cores.  Fig. 2b: the same for the whole parallel
region including MPI overheads, at 256 ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..core.musa import Musa

__all__ = ["ScalingCurve", "compute_region_scaling", "full_app_scaling"]


@dataclass(frozen=True)
class ScalingCurve:
    """Speedups over the 1-core point for a set of core counts."""

    app: str
    core_counts: Tuple[int, ...]
    speedups: Tuple[float, ...]

    def efficiency(self, n_cores: int) -> float:
        """Parallel efficiency at a given core count."""
        try:
            i = self.core_counts.index(n_cores)
        except ValueError:
            raise KeyError(f"{n_cores} not in {self.core_counts}") from None
        return self.speedups[i] / n_cores


def compute_region_scaling(musa: Musa,
                           core_counts: Sequence[int] = (1, 32, 64),
                           ) -> ScalingCurve:
    """Fig. 2a: single-region, hardware-agnostic scaling."""
    if 1 not in core_counts:
        raise ValueError("core_counts must include the 1-core baseline")
    base = musa.compute_region_makespan(1)
    speeds = tuple(base / musa.compute_region_makespan(n)
                   for n in core_counts)
    return ScalingCurve(app=musa.app.name, core_counts=tuple(core_counts),
                        speedups=speeds)


def full_app_scaling(musa: Musa,
                     core_counts: Sequence[int] = (1, 32, 64),
                     n_ranks: int = 256,
                     n_iterations: Optional[int] = None) -> ScalingCurve:
    """Fig. 2b: whole parallel region including MPI overheads.

    The 1-core baseline uses the same rank count: the paper scales
    cores per node, not nodes.
    """
    if 1 not in core_counts:
        raise ValueError("core_counts must include the 1-core baseline")
    times = {
        n: musa.simulate_burst_full(n_cores=n, n_ranks=n_ranks,
                                    n_iterations=n_iterations).total_ns
        for n in core_counts
    }
    base = times[1]
    return ScalingCurve(
        app=musa.app.name,
        core_counts=tuple(core_counts),
        speedups=tuple(base / times[n] for n in core_counts),
    )
