"""Tornado (one-factor swing) sensitivity analysis.

PCA (Fig. 10) shows which variables co-move with execution time;
a tornado chart answers the blunter procurement question: holding a
baseline configuration fixed, how much does swinging each single axis
across its full range move the metric?  Complements the paired
normalization (which averages over the whole space) with a local view
around one design point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config.node import NodeConfig
from ..config.space import DesignSpace
from .report import format_rows

__all__ = ["AxisSwing", "tornado", "render_tornado"]

_AXIS_SETTERS = {
    "core": lambda node, v: node.with_(core=v),
    "cache": lambda node, v: node.with_(cache=v),
    "memory": lambda node, v: node.with_(memory=v),
    "frequency": lambda node, v: node.with_(frequency_ghz=v),
    "vector": lambda node, v: node.with_(vector_bits=v),
}


@dataclass(frozen=True)
class AxisSwing:
    """Impact of swinging one axis around the baseline point."""

    axis: str
    low_value: object
    high_value: object
    low_metric: float       # metric at the worst axis value
    high_metric: float      # metric at the best axis value
    baseline_metric: float

    @property
    def swing(self) -> float:
        """Full-range relative impact (max/min of the metric)."""
        return self.low_metric / self.high_metric if self.high_metric > 0 \
            else float("inf")


def tornado(
    musa,
    baseline: NodeConfig,
    metric: str = "time_ns",
    space: Optional[DesignSpace] = None,
) -> List[AxisSwing]:
    """One-factor sensitivity of ``metric`` around ``baseline``.

    For each axis, every value from the design space is simulated with
    all other parameters pinned to the baseline; axes are returned
    sorted by swing, largest first (the tornado ordering).
    """
    space = space or DesignSpace()
    axis_values = {
        "core": space.core_labels,
        "cache": space.cache_labels,
        "memory": space.memory_labels,
        "frequency": space.frequencies,
        "vector": space.vector_widths,
    }
    base_record = musa.simulate_node(baseline).record()
    base_metric = base_record[metric]
    if base_metric is None:
        raise ValueError(f"baseline has no {metric} (HBM energy?)")

    swings: List[AxisSwing] = []
    for axis, values in axis_values.items():
        outcomes: List[Tuple[float, object]] = []
        for v in values:
            node = _AXIS_SETTERS[axis](baseline, v)
            rec = musa.simulate_node(node).record()
            m = rec[metric]
            if m is None:
                continue
            outcomes.append((float(m), v))
        if len(outcomes) < 2:
            continue
        worst = max(outcomes)
        best = min(outcomes)
        swings.append(AxisSwing(
            axis=axis, low_value=worst[1], high_value=best[1],
            low_metric=worst[0], high_metric=best[0],
            baseline_metric=float(base_metric),
        ))
    swings.sort(key=lambda s: s.swing, reverse=True)
    return swings


def render_tornado(swings: Sequence[AxisSwing], metric: str,
                   width: int = 40) -> str:
    """Text tornado chart: one bar per axis, sorted by swing."""
    if not swings:
        raise ValueError("no swings to render")
    max_swing = max(s.swing for s in swings)
    rows = []
    for s in swings:
        bar_len = max(1, int(round((s.swing - 1.0)
                                   / max(max_swing - 1.0, 1e-9) * width)))
        rows.append([
            s.axis,
            f"{s.swing:.2f}x",
            f"{s.high_value} .. {s.low_value}",
            "#" * bar_len,
        ])
    return format_rows(
        f"Tornado — full-range swing of {metric} per axis "
        "(best .. worst value)",
        ["axis", "swing", "best..worst", ""], rows)
