"""Constrained design-point selection (the procurement optimizer).

Real system selection is constrained: a node power envelope, a die-area
budget, sometimes a minimum performance floor.  Given a sweep, this
module picks the best configuration per application — and for the whole
workload mix (geometric-mean objective across apps sharing one design,
since a machine is bought once) — subject to such constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.parse import parse_node
from ..core.results import CONFIG_KEYS, ResultSet
from ..power.area import AreaModel

__all__ = ["Constraints", "OptimalChoice", "optimize_node"]


@dataclass(frozen=True)
class Constraints:
    """Selection constraints; ``None`` disables a bound."""

    power_cap_w: Optional[float] = None
    area_cap_mm2: Optional[float] = None
    min_frequency_ghz: Optional[float] = None

    def __post_init__(self) -> None:
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ValueError("power cap must be positive")
        if self.area_cap_mm2 is not None and self.area_cap_mm2 <= 0:
            raise ValueError("area cap must be positive")


@dataclass(frozen=True)
class OptimalChoice:
    """The selected design point and its per-app outcomes."""

    config: Dict[str, object]
    objective: str
    score: float
    #: per-app objective values at the chosen configuration
    per_app: Dict[str, float]
    #: how many candidate configurations survived the constraints
    n_feasible: int

    @property
    def label(self) -> str:
        c = self.config
        return (f"{c['core']}/{c['cache']}/{c['memory']}/"
                f"{c['frequency']}GHz/{c['vector']}b/{c['cores']}c")


def _node_area(config: Dict[str, object], area_model: AreaModel) -> float:
    spec = (f"{config['core']}/{config['cache']}/{config['memory']}/"
            f"{config['frequency']}GHz/{config['vector']}b/"
            f"{config['cores']}c")
    return area_model.node_area(parse_node(spec)).total_mm2


def optimize_node(
    results: ResultSet,
    objective: str = "time_ns",
    constraints: Optional[Constraints] = None,
    apps: Optional[Sequence[str]] = None,
    area_model: Optional[AreaModel] = None,
) -> OptimalChoice:
    """Choose the single configuration minimizing the geometric mean of
    ``objective`` across ``apps`` (default: every app in the sweep),
    subject to the constraints holding for *every* application.

    ``objective`` may be any positive record metric (``time_ns``,
    ``energy_j``, ``power_total_w``) or ``"edp"``.
    """
    cons = constraints or Constraints()
    am = area_model or AreaModel()
    app_list = list(apps) if apps is not None else \
        sorted(results.unique("app"))
    if not app_list:
        raise ValueError("no applications in the result set")

    # Group records by hardware configuration (config keys minus app).
    hw_keys = [k for k in CONFIG_KEYS if k != "app"]
    by_config: Dict[Tuple, Dict[str, dict]] = {}
    for rec in results:
        if rec["app"] not in app_list:
            continue
        key = tuple(rec[k] for k in hw_keys)
        by_config.setdefault(key, {})[rec["app"]] = rec

    def metric(rec: dict) -> Optional[float]:
        if objective == "edp":
            if rec["energy_j"] is None:
                return None
            return rec["energy_j"] * rec["time_ns"]
        value = rec.get(objective)
        return None if value is None else float(value)

    best: Optional[OptimalChoice] = None
    n_feasible = 0
    for key, app_recs in by_config.items():
        if set(app_recs) != set(app_list):
            continue  # incomplete configuration
        config = dict(zip(hw_keys, key))
        if cons.min_frequency_ghz is not None and \
                config["frequency"] < cons.min_frequency_ghz:
            continue
        if cons.power_cap_w is not None and any(
                r["power_total_w"] is not None
                and r["power_total_w"] > cons.power_cap_w
                for r in app_recs.values()):
            continue
        if cons.area_cap_mm2 is not None and \
                _node_area(config, am) > cons.area_cap_mm2:
            continue
        values = {app: metric(r) for app, r in app_recs.items()}
        if any(v is None or v <= 0 for v in values.values()):
            continue
        n_feasible += 1
        score = float(np.exp(np.mean(np.log(list(values.values())))))
        if best is None or score < best.score:
            best = OptimalChoice(config=config, objective=objective,
                                 score=score, per_app=values,
                                 n_feasible=0)
    if best is None:
        raise ValueError("no feasible configuration under the constraints")
    return OptimalChoice(config=best.config, objective=best.objective,
                         score=best.score, per_app=best.per_app,
                         n_feasible=n_feasible)
