"""Co-design recommendation engine (the paper's Sec. VII as code).

The paper closes with evidence-based hardware/software co-design
guidelines extracted by eyeballing the sweep.  This module derives the
same kind of guidance programmatically from a
:class:`~repro.core.results.ResultSet`, so the conclusions update
automatically when the workload mix or the model changes:

* per-axis winners under a performance / energy / EDP objective;
* the cache "knee" (the capacity step past which marginal speedup per
  added watt collapses);
* the OoO class closest to aggressive performance at meaningfully less
  power;
* bandwidth-starved applications (the only ones that justify channels);
* software findings: occupancy (leakage waste) and vectorization gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.normalize import normalize_axis
from ..core.results import ResultSet

__all__ = ["Recommendation", "recommend", "RecommendationReport"]


@dataclass(frozen=True)
class Recommendation:
    """One guideline: an axis, the advised value, and its evidence."""

    axis: str
    advice: str
    value: object
    evidence: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.axis}] {self.advice} (evidence: {self.evidence})"


@dataclass(frozen=True)
class RecommendationReport:
    """All guidelines derived from one sweep."""

    recommendations: Tuple[Recommendation, ...]

    def by_axis(self, axis: str) -> List[Recommendation]:
        return [r for r in self.recommendations if r.axis == axis]

    def render(self) -> str:
        lines = ["Co-design recommendations (derived from the sweep):"]
        for r in self.recommendations:
            lines.append(f"  - [{r.axis}] {r.advice}")
            lines.append(f"      evidence: {r.evidence}")
        return "\n".join(lines)


def _bar_means(results: ResultSet, axis: str, baseline, metric: str,
               cores: int) -> Dict[object, float]:
    bars = normalize_axis(results, axis, baseline, metric)
    out: Dict[object, List[float]] = {}
    for b in bars:
        if b.cores == cores:
            out.setdefault(b.value, []).append(b.mean)
    return {v: float(np.mean(ms)) for v, ms in out.items()}


def recommend(results: ResultSet, cores: int = 64) -> RecommendationReport:
    """Derive co-design guidelines from a sweep at one core count.

    Axes absent from the sweep (their baseline value was not simulated)
    are skipped, so the engine also works on restricted sub-spaces.
    """
    recs: List[Recommendation] = []

    def axis_available(axis: str, baseline) -> bool:
        vals = results.unique(axis)
        return baseline in vals and len(vals) > 1

    # --- SIMD width: widest that still buys >5% average speedup ----------
    if not axis_available("vector", 128):
        speed = {}
    else:
        speed = _bar_means(results, "vector", 128, "time_ns", cores)
    energy = (_bar_means(results, "vector", 128, "energy_j", cores)
              if speed else {})
    widths = sorted(speed)
    best_w = widths[0] if widths else None
    for prev, cur in zip(widths, widths[1:]):
        if speed[cur] > speed[prev] * 1.05:
            best_w = cur
    if best_w is not None:
        recs.append(Recommendation(
            axis="vector", value=best_w,
            advice=f"provision {best_w}-bit FP units",
            evidence=f"avg speedup {speed[best_w]:.2f}x vs 128-bit at "
                     f"{energy.get(best_w, float('nan')):.2f}x energy; "
                     "codes must expose SIMD-level parallelism to benefit",
        ))

    # --- Cache: the knee of speedup per added L2+L3 power -----------------
    if axis_available("cache", "32M:256K"):
        cs = _bar_means(results, "cache", "32M:256K", "time_ns", cores)
        cpower = _bar_means(results, "cache", "32M:256K", "power_l2_l3_w",
                            cores)
        labels = [l for l in ("32M:256K", "64M:512K", "96M:1M") if l in cs]
        knee = labels[0]
        for prev, cur in zip(labels, labels[1:]):
            gain = cs[cur] - cs[prev]
            cost = cpower[cur] - cpower[prev]
            if cost <= 0 or gain / cost > 0.08:
                knee = cur
        recs.append(Recommendation(
            axis="cache", value=knee,
            advice=f"size caches at {knee}",
            evidence=f"speedups "
                     f"{', '.join(f'{l}:{cs[l]:.2f}x' for l in labels)}"
                     " with L2+L3 power roughly doubling per step",
        ))

    # --- OoO: cheapest class within 5% of aggressive ---------------------
    if axis_available("core", "aggressive"):
        os_ = _bar_means(results, "core", "aggressive", "time_ns", cores)
        opower = _bar_means(results, "core", "aggressive",
                            "power_core_l1_w", cores)
        candidates = [c for c in ("medium", "high") if os_.get(c, 0) > 0.95]
        pick = min(candidates, key=lambda c: opower[c]) if candidates \
            else "aggressive"
        recs.append(Recommendation(
            axis="core", value=pick,
            advice=f"use moderate ({pick}) out-of-order cores",
            evidence=f"{pick}: {os_.get(pick, 1.0):.2f}x of aggressive "
                     f"performance at {opower.get(pick, 1.0):.2f}x its "
                     "Core+L1 power",
        ))

    # --- Memory channels: which apps justify them -------------------------
    if axis_available("memory", "4chDDR4"):
        ms = normalize_axis(results, "memory", "4chDDR4", "time_ns")
        hungry = sorted({b.app for b in ms
                         if b.cores == cores and b.value != "4chDDR4"
                         and b.mean > 1.15})
        if hungry:
            advice = (f"provision extra memory channels for bandwidth-"
                      f"bound codes ({', '.join(hungry)})")
        else:
            advice = "four DDR4 channels suffice for this workload mix"
        mpower = _bar_means(results, "memory", "4chDDR4", "power_total_w",
                            cores)
        recs.append(Recommendation(
            axis="memory", value=tuple(hungry),
            advice=advice,
            evidence=f"8-channel node power "
                     f"{mpower.get('8chDDR4', 1.0):.2f}x; only saturated "
                     "nodes convert bandwidth into speedup",
        ))

    # --- Software: occupancy = leakage waste ------------------------------
    occ = results.group_mean(["app"], "occupancy")
    worst = min(occ, key=occ.get)
    recs.append(Recommendation(
        axis="software", value=worst[0],
        advice="fix node-level parallel efficiency before buying hardware",
        evidence="mean core occupancy per app: "
                 + ", ".join(f"{a[0]}:{v:.0%}" for a, v in sorted(occ.items()))
                 + f"; idle cores still burn leakage and spin power"
    ))
    return RecommendationReport(recommendations=tuple(recs))
