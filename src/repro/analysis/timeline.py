"""Timeline analysis: the quantitative content of Figs. 3 and 4.

Fig. 3 shows Specfem3D's task starvation (few busy threads, a gray idle
expanse); Fig. 4 shows LULESH ranks stuck in MPI barriers behind load
imbalance.  Paraver renders those as pixel timelines; we compute the
statistics they visualize (per-thread occupancy, idle fraction,
per-rank MPI share) and provide an ASCII rendering for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..network.replay import ReplayResult, TimelineSegment
from ..runtime.scheduler import PhaseResult, TaskSpan

__all__ = [
    "OccupancyStats",
    "occupancy_stats",
    "RankActivityStats",
    "rank_activity_stats",
    "render_core_timeline",
    "render_rank_timeline",
]


@dataclass(frozen=True)
class OccupancyStats:
    """Thread-level occupancy of one scheduled phase (Fig. 3 metrics)."""

    n_cores: int
    makespan_ns: float
    busy_fraction: float           # aggregate busy / (cores x makespan)
    active_cores: int              # cores that executed at least one task
    idle_core_fraction: float      # cores that never ran a task
    busy_per_core: np.ndarray

    @property
    def starved(self) -> bool:
        """True when most of the machine never gets a task — the Fig. 3
        signature."""
        return self.idle_core_fraction > 0.4 or self.busy_fraction < 0.5


def occupancy_stats(result: PhaseResult) -> OccupancyStats:
    """Occupancy statistics of a scheduled phase."""
    busy = result.busy_ns.copy()
    makespan = result.makespan_ns
    n = result.n_cores
    active = int((busy > 0).sum())
    return OccupancyStats(
        n_cores=n,
        makespan_ns=makespan,
        busy_fraction=result.occupancy,
        active_cores=active,
        idle_core_fraction=1.0 - active / n,
        busy_per_core=busy,
    )


@dataclass(frozen=True)
class RankActivityStats:
    """Rank-level activity shares of a replayed run (Fig. 4 metrics)."""

    n_ranks: int
    total_ns: float
    compute_fraction: np.ndarray     # per-rank
    collective_fraction: np.ndarray  # per-rank (barrier/allreduce incl. wait)
    p2p_fraction: np.ndarray

    @property
    def mean_collective_fraction(self) -> float:
        return float(self.collective_fraction.mean())

    @property
    def imbalance_wait_fraction(self) -> float:
        """Collective time is almost entirely waiting for slow ranks when
        the payload is tiny — the paper's Fig. 4 observation."""
        return self.mean_collective_fraction


def rank_activity_stats(result: ReplayResult) -> RankActivityStats:
    if result.total_ns <= 0:
        raise ValueError("replay has non-positive duration")
    t = result.total_ns
    return RankActivityStats(
        n_ranks=result.n_ranks,
        total_ns=t,
        compute_fraction=result.compute_ns / t,
        collective_fraction=result.collective_ns / t,
        p2p_fraction=result.p2p_ns / t,
    )


def render_core_timeline(spans: Sequence[TaskSpan], n_cores: int,
                         makespan_ns: float, width: int = 80,
                         max_cores: int = 32) -> str:
    """ASCII Fig. 3: one row per core, '#' where a task runs, '.' idle."""
    if width <= 0 or makespan_ns <= 0:
        raise ValueError("width and makespan must be positive")
    rows = min(n_cores, max_cores)
    grid = [["." for _ in range(width)] for _ in range(rows)]
    for span in spans:
        if span.core >= rows:
            continue
        a = int(span.start_ns / makespan_ns * width)
        b = max(a + 1, int(np.ceil(span.end_ns / makespan_ns * width)))
        for x in range(a, min(b, width)):
            grid[span.core][x] = "#"
    lines = [f"core {c:3d} |{''.join(grid[c])}|" for c in range(rows)]
    if n_cores > rows:
        lines.append(f"... ({n_cores - rows} more cores)")
    return "\n".join(lines)


_KIND_CHARS = {"compute": "#", "p2p": "-", "collective": "B", "wait": "w"}


def render_rank_timeline(segments: Sequence[TimelineSegment], n_ranks: int,
                         total_ns: float, width: int = 80,
                         max_ranks: int = 24) -> str:
    """ASCII Fig. 4: one row per rank; '#' compute, 'B' collective wait,
    '-' point-to-point, 'w' request wait."""
    if width <= 0 or total_ns <= 0:
        raise ValueError("width and total must be positive")
    rows = min(n_ranks, max_ranks)
    grid = [[" " for _ in range(width)] for _ in range(rows)]
    for seg in segments:
        if seg.rank >= rows:
            continue
        ch = _KIND_CHARS.get(seg.kind, "?")
        a = int(seg.start_ns / total_ns * width)
        b = max(a + 1, int(np.ceil(seg.end_ns / total_ns * width)))
        for x in range(a, min(b, width)):
            # Compute wins ties so thin waits don't mask work.
            if grid[seg.rank][x] == " " or ch == "#":
                grid[seg.rank][x] = ch
    lines = [f"rank {r:3d} |{''.join(grid[r])}|" for r in range(rows)]
    if n_ranks > rows:
        lines.append(f"... ({n_ranks - rows} more ranks)")
    return "\n".join(lines)
