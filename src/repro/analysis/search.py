"""Pareto-guided active design-space exploration.

Exhaustive sweeps stop scaling once range axes push the space past
10^5 points: even at ~10^4 configs/s, a million-point space per app is
minutes of compute spent mostly on dominated points.  This module
replaces exhaustion with an **active search loop** in the spirit of
gem5 Co-Pilot's guided DSE (see PAPERS.md), built from three parts the
engine already guarantees to be exact:

* the **batched evaluator** (:class:`repro.core.batch.BatchEvaluator`)
  as the inner loop — every evaluated point is bitwise-identical to
  what the exhaustive sweep would have produced, so a recovered front
  *is* the exhaustive front restricted to evaluated points;
* the **dominance kernel** (:func:`repro.analysis.pareto.front_indices`)
  shared with :func:`pareto_front`, so "front" means exactly the same
  thing here as in the exhaustive analysis;
* the **content-addressed store** (:class:`repro.core.store.ResultStore`)
  as the optional output sink — evaluated points stream into the same
  store the serve layer answers from, so a search warms the cache for
  later queries.

The loop itself is epsilon-greedy neighborhood descent over axis
coordinates:

1. **seed** with the space's corner points plus an axis cross through
   the center (every per-axis marginal through one interior point) —
   cheap, deterministic coverage of the monotone trade-off extremes
   where Pareto fronts live;
2. each round, propose the unevaluated **axis neighbors** (+-1 per
   axis) of the current front; with probability ``epsilon`` a batch
   slot takes a uniformly random unevaluated point instead
   (exploration, so a disconnected front component is still found);
3. optionally rank the neighbor pool with a **quadratic surrogate**
   (per-axis quadratic least squares on log metrics, NumPy ``lstsq``;
   ``search.surrogate_rank_calls`` counts fits) so likely-front
   candidates are evaluated first under a tight budget;
4. stop when the front has been stable for ``patience`` rounds *and*
   every neighbor of every front point has been evaluated (the
   neighborhood-closure certificate), or when the evaluation budget /
   the space is exhausted.

On spaces where the front's axis-coordinate graph is connected —
 which holds for the monotone performance/power trade-offs this model
produces — neighborhood closure recovers the exhaustive front exactly;
the property suite pins this on the full 864-point paper space and the
``macro.search_dse`` benchmark gates it in CI.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.registry import get_app
from ..config.space import DesignSpace
from ..core.batch import BatchEvaluator
from ..core.musa import Musa
from ..core.results import ResultSet
from ..core.store import ResultStore, store_key
from ..obs import MetricsRegistry, get_metrics, set_metrics
from .pareto import ParetoPoint, front_indices, pareto_front

__all__ = ["SearchResult", "search_front", "search_fronts"]


@dataclass
class SearchResult:
    """Outcome of one per-app active search."""

    app: str
    front: List[ParetoPoint]
    results: ResultSet            # every evaluated record, canonical order
    n_evaluated: int
    n_space: int
    rounds: int
    converged: bool               # neighborhood closure reached (vs budget)
    front_point_indices: List[int] = field(default_factory=list)

    @property
    def evaluated_fraction(self) -> float:
        return self.n_evaluated / self.n_space if self.n_space else 0.0


def _neighbors(space: DesignSpace, lengths: Tuple[int, ...],
               idx: int) -> List[int]:
    """Axis neighbors (+-1 along each axis, clamped) of a flat index."""
    coords = space.coords_at(idx)
    out: List[int] = []
    for d, length in enumerate(lengths):
        for step in (-1, 1):
            c = coords[d] + step
            if 0 <= c < length:
                out.append(space.index_of(
                    coords[:d] + (c,) + coords[d + 1:]))
    return out


def _seed_indices(space: DesignSpace, lengths: Tuple[int, ...]) -> List[int]:
    """Deterministic seed set: corners + axis cross through the center."""
    seeds: List[int] = []
    seen = set()

    def add(coords: Tuple[int, ...]) -> None:
        i = space.index_of(coords)
        if i not in seen:
            seen.add(i)
            seeds.append(i)

    for corner in product(*[(0, length - 1) for length in lengths]):
        add(tuple(corner))
    center = tuple(length // 2 for length in lengths)
    for d, length in enumerate(lengths):
        for v in range(length):
            add(center[:d] + (v,) + center[d + 1:])
    return seeds


def _fit_quadratic(coords: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Least-squares fit of ``y ~ 1 + z + z^2`` per axis (no cross
    terms: keeps the sample requirement at ``2 * d + 1``)."""
    X = np.hstack([np.ones((len(coords), 1)), coords, coords ** 2])
    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    return beta


def _predict(coords: np.ndarray, beta: np.ndarray) -> np.ndarray:
    X = np.hstack([np.ones((len(coords), 1)), coords, coords ** 2])
    return X @ beta


def search_front(
    app: str,
    space: Optional[DesignSpace] = None,
    *,
    x_metric: str = "time_ns",
    y_metric: str = "power_total_w",
    n_ranks: int = 256,
    mode: str = "fast",
    max_evals: Optional[int] = None,
    budget_frac: float = 0.2,
    batch_size: int = 64,
    epsilon: float = 0.15,
    patience: Optional[int] = 2,
    seed: int = 0,
    surrogate: bool = False,
    store: Optional[ResultStore] = None,
    code_version: str = "unknown",
    evaluator: Optional[BatchEvaluator] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> SearchResult:
    """Recover one app's Pareto front by active search.

    Parameters
    ----------
    space:
        Design space to explore (default: the full 864-point space; use
        :func:`repro.config.range_design_space` for >=10^5-point range
        spaces).
    max_evals / budget_frac:
        Evaluation budget: explicit point count, or a fraction of the
        space (default 20%).  The budget is a hard cap.
    batch_size:
        Points per batched-evaluator call (the engine's amortization
        unit).
    epsilon:
        Per-slot probability of exploring a uniformly random
        unevaluated point instead of a front neighbor.
    patience:
        Rounds the front must stay unchanged (with its whole
        neighborhood evaluated) before the search stops; ``None``
        disables convergence stopping and runs to the budget — use with
        ``max_evals=len(space)`` for a guaranteed-exhaustive pass.
    surrogate:
        Rank the candidate pool with the quadratic surrogate before
        evaluation (``search.surrogate_rank_calls``).
    store:
        Optional :class:`ResultStore`; every evaluated point is
        streamed in under ``(app, config, mode, ranks, code_version)``
        — the serve layer then answers those points without touching
        the engine.  Points already in the store are reused, not
        re-evaluated.
    evaluator:
        Share a warmed :class:`BatchEvaluator` across calls (e.g. the
        benchmark harness); by default one is built for ``app``.

    Counters: ``search.evaluated`` (points acquired),
    ``search.rounds``, ``search.front_size`` (final front),
    ``search.surrogate_rank_calls``, plus the usual store/engine
    counters.
    """
    if mode not in ("fast", "replay"):
        raise ValueError("mode must be 'fast' or 'replay'")
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("epsilon must be in [0, 1]")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    space = space or DesignSpace()
    lengths = space.axis_lengths()
    n_space = len(space)
    budget = (int(max_evals) if max_evals is not None
              else max(1, math.ceil(budget_frac * n_space)))
    budget = min(budget, n_space)
    if budget < 1:
        raise ValueError("evaluation budget must be >= 1")

    reg = metrics or get_metrics()
    prev_reg = set_metrics(reg) if reg is not get_metrics() else None
    if evaluator is None:
        evaluator = BatchEvaluator(Musa(get_app(app)))
    rng = random.Random(seed)

    evaluated: Dict[int, Dict] = {}
    # Parallel arrays over points that carry both metrics (front space).
    pts_idx: List[int] = []
    pts_x: List[float] = []
    pts_y: List[float] = []

    def acquire(indices: Sequence[int]) -> None:
        """Evaluate (or fetch from the store) a batch of space indices."""
        fresh = [i for i in indices if i not in evaluated]
        if not fresh:
            return
        nodes = {i: space.config_at(i) for i in fresh}
        misses: List[int] = []
        if store is not None:
            for i in fresh:
                entry = store.get(store_key(
                    app, nodes[i].axis_values(), mode, n_ranks,
                    code_version))
                if entry is not None:
                    evaluated[i] = entry["record"]
                else:
                    misses.append(i)
        else:
            misses = fresh
        if misses:
            before = reg.snapshot()
            results = evaluator.evaluate(
                [nodes[i] for i in misses], n_ranks=n_ranks, mode=mode)
            delta = reg.delta(before, reg.snapshot())["counters"]
            for i, res in zip(misses, results):
                rec = res.record()
                evaluated[i] = rec
                if store is not None:
                    store.put_point(app, nodes[i].axis_values(), mode,
                                    n_ranks, code_version, rec,
                                    engine="search", obs_delta=delta)
        reg.inc("search.evaluated", len(fresh))
        for i in fresh:
            rec = evaluated[i]
            x, y = rec.get(x_metric), rec.get(y_metric)
            if x is None or y is None:
                continue
            pts_idx.append(i)
            pts_x.append(float(x))
            pts_y.append(float(y))

    def current_front() -> List[int]:
        return [pts_idx[j] for j in front_indices(pts_x, pts_y)]

    rounds = 0
    converged = False
    try:
        seeds = _seed_indices(space, lengths)[:budget]
        acquire(seeds)

        stall = 0
        prev_front: Optional[Tuple[int, ...]] = None
        while True:
            room = budget - len(evaluated)
            if room <= 0 or len(evaluated) >= n_space:
                converged = len(evaluated) >= n_space
                break
            front = current_front()
            pool: List[int] = []
            pool_seen = set()
            for i in front:
                for j in _neighbors(space, lengths, i):
                    if j not in evaluated and j not in pool_seen:
                        pool_seen.add(j)
                        pool.append(j)
            if patience is not None and not pool and stall >= patience:
                converged = True
                break
            if surrogate and pool:
                pool = _rank_pool(space, lengths, pool, pts_idx, pts_x,
                                  pts_y, reg)
            batch: List[int] = []
            batch_seen = set()
            for _ in range(min(batch_size, room)):
                pick: Optional[int] = None
                if pool and rng.random() >= epsilon:
                    pick = pool.pop(0)
                else:
                    for _ in range(64):  # rejection-sample the space
                        j = rng.randrange(n_space)
                        if j not in evaluated and j not in batch_seen:
                            pick = j
                            break
                    if pick is None and pool:
                        pick = pool.pop(0)
                    elif pick is None and len(evaluated) + len(batch) < n_space:
                        # Rejection sampling starves when almost nothing
                        # is left; scan from a random start so a
                        # full-budget run really exhausts the space.
                        start = rng.randrange(n_space)
                        for off in range(n_space):
                            j = (start + off) % n_space
                            if j not in evaluated and j not in batch_seen:
                                pick = j
                                break
                if pick is None or pick in batch_seen:
                    continue
                batch_seen.add(pick)
                batch.append(pick)
            if not batch:
                break  # nothing proposable: space effectively exhausted
            acquire(batch)
            rounds += 1
            front_now = tuple(current_front())
            if front_now == prev_front:
                stall += 1
            else:
                stall = 0
            prev_front = front_now
    finally:
        if prev_reg is not None:
            set_metrics(prev_reg)

    results = ResultSet(evaluated[i] for i in sorted(evaluated))
    front_ids = current_front()
    front = pareto_front(results, app, x_metric=x_metric,
                         y_metric=y_metric, cores=None)
    reg.inc("search.rounds", rounds)
    reg.inc("search.front_size", len(front))
    return SearchResult(
        app=app, front=front, results=results,
        n_evaluated=len(evaluated), n_space=n_space, rounds=rounds,
        converged=converged, front_point_indices=sorted(front_ids),
    )


def _rank_pool(space: DesignSpace, lengths: Tuple[int, ...],
               pool: List[int], pts_idx: List[int], pts_x: List[float],
               pts_y: List[float], reg) -> List[int]:
    """Order the candidate pool by surrogate-predicted promise.

    Fits per-axis quadratics to ``log(x)``/``log(y)`` over the
    normalized coordinates of everything evaluated so far, then sorts
    candidates by the sum of their min-max-normalized predictions
    (low-left corner first).  Falls back to the unranked pool until
    there are enough samples for the 13-parameter fit.
    """
    d = len(lengths)
    if len(pts_idx) < 2 * (2 * d + 1):
        return pool

    def norm_coords(indices: Sequence[int]) -> np.ndarray:
        z = np.array([space.coords_at(i) for i in indices],
                     dtype=np.float64)
        scale = np.array([max(length - 1, 1) for length in lengths],
                         dtype=np.float64)
        return z / scale

    zs = norm_coords(pts_idx)
    log_x = np.log(np.maximum(np.array(pts_x), 1e-300))
    log_y = np.log(np.maximum(np.array(pts_y), 1e-300))
    beta_x = _fit_quadratic(zs, log_x)
    beta_y = _fit_quadratic(zs, log_y)
    zc = norm_coords(pool)
    px = _predict(zc, beta_x)
    py = _predict(zc, beta_y)

    def minmax(v: np.ndarray) -> np.ndarray:
        span = float(v.max() - v.min())
        return (v - v.min()) / span if span > 0 else np.zeros_like(v)

    score = minmax(px) + minmax(py)
    reg.inc("search.surrogate_rank_calls")
    order = sorted(range(len(pool)), key=lambda j: (score[j], pool[j]))
    return [pool[j] for j in order]


def search_fronts(
    apps: Sequence[str],
    space: Optional[DesignSpace] = None,
    **kwargs,
) -> Dict[str, SearchResult]:
    """Per-app :func:`search_front` over a list of applications."""
    return {app: search_front(app, space, **kwargs) for app in apps}
