"""Text rendering of paper-style figures and tables.

Every benchmark prints its figure through these helpers so the harness
output can be compared line-by-line with the paper's plots.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

__all__ = ["format_metrics_summary", "format_panel", "format_stacked_power",
           "format_rows"]


def format_rows(title: str, header: Sequence[str],
                rows: Sequence[Sequence[object]]) -> str:
    """Generic fixed-width table."""
    widths = [max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows
              else len(str(h)) for i, h in enumerate(header)]
    lines = [title]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if v is None:
        return "n/a"
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def format_metrics_summary(summary: Dict) -> str:
    """Human-readable campaign execution metrics.

    ``summary`` is :func:`repro.obs.summarize` output: a ``derived``
    block (throughput, retry/fault accounting, memoization hit rate)
    plus the raw counters and timer spans.  The memo hit rate reads as
    "fraction of per-(phase, node) detailed simulations avoided": a
    fresh single-worker full-space sweep of one app approaches
    ``(points - 1) / points`` per phase; more workers or a cold cache
    lower it because each worker process warms its own memo.
    """
    d = summary.get("derived", {})
    rows = [
        ["tasks completed", d.get("tasks_completed", 0)],
        ["tasks skipped (resume)", d.get("tasks_skipped", 0)],
        ["tasks failed", d.get("tasks_failed", 0)],
        ["retries", d.get("retries", 0)],
        ["faults observed", d.get("faults", 0)],
        ["journal duplicates dropped", d.get("duplicates_dropped", 0)],
        ["sweep wall time [s]", d.get("sweep_wall_s", 0.0)],
        ["throughput [tasks/s]", d.get("tasks_per_second")],
        ["memo hit rate (overall)", d.get("memo_hit_rate")],
        ["  phase-detail component", d.get("phase_memo_hit_rate")],
        ["  kernel-timing component", d.get("kernel_memo_hit_rate")],
    ]
    if d.get("replay_events", 0):
        rows += [
            ["replay events processed", d.get("replay_events", 0)],
            ["replay wakeups", d.get("replay_wakeups", 0)],
            ["replay messages", d.get("replay_messages", 0)],
            ["replay bus waits", d.get("replay_bus_waits", 0)],
            ["replay lockstep events", d.get("replay_lockstep_events", 0)],
            ["replay array events", d.get("replay_array_events", 0)],
            ["replay worklist events", d.get("replay_worklist_events", 0)],
            ["replay forked groups", d.get("replay_forked_groups", 0)],
            ["replay peeled configs", d.get("replay_peeled_configs", 0)],
        ]
    if d.get("miss_batch_geometries", 0):
        rows.append(["miss-model geometries evaluated",
                     d.get("miss_batch_geometries", 0)])
    if d.get("sched_batch_fast", 0) or d.get("sched_batch_fallbacks", 0):
        rows += [
            ["scheduler columns vectorized", d.get("sched_batch_fast", 0)],
            ["scheduler columns fallback", d.get("sched_batch_fallbacks", 0)],
        ]
    if d.get("memo_evictions", 0):
        rows.append(["memo evictions", d.get("memo_evictions", 0)])
    if d.get("batch_memo_evictions", 0):
        rows.append(["batch memo evictions",
                     d.get("batch_memo_evictions", 0)])
    if d.get("store_hits", 0) or d.get("store_misses", 0):
        rows += [
            ["result-store hits", d.get("store_hits", 0)],
            ["result-store misses", d.get("store_misses", 0)],
            ["result-store hit rate", d.get("store_hit_rate")],
        ]
    if d.get("serve_requests", 0):
        rows += [
            ["serve requests", d.get("serve_requests", 0)],
            ["serve queries coalesced", d.get("serve_coalesced", 0)],
        ]
    if d.get("timeout_unavailable", 0):
        rows.append(["timeouts unavailable", d.get("timeout_unavailable", 0)])
    if d.get("sweep_shards", 0):
        rows += [
            ["work shards dealt", d.get("sweep_shards", 0)],
            ["shards stolen", d.get("sweep_steals", 0)],
        ]
        if d.get("sweep_workers_lost", 0):
            rows.append(["workers lost", d.get("sweep_workers_lost", 0)])
        if d.get("sweep_ctx_spawn", 0):
            rows.append(["spawn-context fallbacks",
                         d.get("sweep_ctx_spawn", 0)])
    if d.get("search_evaluated", 0):
        rows += [
            ["search points evaluated", d.get("search_evaluated", 0)],
            ["search rounds", d.get("search_rounds", 0)],
            ["search front size", d.get("search_front_size", 0)],
        ]
        if d.get("search_surrogate_rank_calls", 0):
            rows.append(["surrogate ranking fits",
                         d.get("search_surrogate_rank_calls", 0)])
    if d.get("sched_jit_calls", 0):
        rows.append(["JIT-scheduled phases", d.get("sched_jit_calls", 0)])
    out = [format_rows("sweep execution metrics", ["metric", "value"], rows)]
    timers = summary.get("timers", {})
    if timers:
        trows = []
        for name in sorted(timers):
            t = timers[name]
            count = t.get("count", 0)
            mean_ms = (1e3 * t.get("total_s", 0.0) / count) if count else 0.0
            trows.append([name, int(count), t.get("total_s", 0.0), mean_ms,
                          1e3 * t.get("max_s", 0.0)])
        out.append(format_rows(
            "stage spans",
            ["span", "count", "total [s]", "mean [ms]", "max [ms]"], trows))
    return "\n\n".join(out)


def format_panel(
    title: str,
    table: Dict[str, Dict[object, Tuple[float, float]]],
    values: Sequence[object],
    value_label: str,
) -> str:
    """One figure panel: rows = apps, columns = axis values, cells =
    normalized mean (std)."""
    header = ["app"] + [f"{value_label}={v}" for v in values]
    rows = []
    for app, cells in table.items():
        row = [app]
        for v in values:
            mean, std = cells[v]
            row.append(f"{mean:.3f}±{std:.2f}")
        rows.append(row)
    return format_rows(title, header, rows)


def format_stacked_power(
    title: str,
    components: Dict[str, Dict[object, Dict[str, Optional[float]]]],
    values: Sequence[object],
) -> str:
    """Stacked power panel: per app and axis value, the Core+L1 /
    L2+L3Cache / Memory watt split (the paper's Figs. 5b-9b)."""
    header = ["app", "value", "Core+L1", "L2+L3", "Memory", "total"]
    rows = []
    for app, per_value in components.items():
        for v in values:
            cell = per_value[v]
            total = (
                None
                if cell.get("memory") is None
                else cell["core_l1"] + cell["l2_l3"] + cell["memory"]
            )
            rows.append([app, v, cell["core_l1"], cell["l2_l3"],
                         cell.get("memory"), total])
    return format_rows(title, header, rows)
