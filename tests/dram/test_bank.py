"""Tests for the DRAM bank state machine."""

import pytest

from repro.dram import Bank, dram_standard


@pytest.fixture
def bank():
    return Bank(dram_standard("DDR4-2400"))


class TestBank:
    def test_first_activate(self, bank):
        t = bank.timing
        col_ready = bank.prepare(row=5, now=0.0)
        assert col_ready == pytest.approx(t.trcd)
        assert bank.open_row == 5
        assert bank.n_acts == 1
        assert bank.n_pres == 0

    def test_row_hit_no_new_activate(self, bank):
        bank.prepare(row=5, now=0.0)
        acts = bank.n_acts
        col_ready = bank.prepare(row=5, now=100.0)
        assert bank.n_acts == acts
        assert col_ready == pytest.approx(100.0)

    def test_row_conflict_precharges(self, bank):
        t = bank.timing
        bank.prepare(row=5, now=0.0)
        col_ready = bank.prepare(row=9, now=t.tras + 1)
        assert bank.n_pres == 1
        assert bank.n_acts == 2
        assert bank.open_row == 9
        # precharge at tras+1, activate trp later, column trcd after that
        assert col_ready == pytest.approx(t.tras + 1 + t.trp + t.trcd)

    def test_tras_respected_on_early_precharge(self, bank):
        t = bank.timing
        bank.prepare(row=5, now=0.0)
        # Immediately switch rows: PRE cannot issue before tRAS.
        col_ready = bank.prepare(row=6, now=1.0)
        assert col_ready >= t.tras + t.trp + t.trcd - 1e-9

    def test_trc_spacing_between_activates(self, bank):
        t = bank.timing
        bank.prepare(row=1, now=0.0)
        bank.prepare(row=2, now=t.tras)   # forces PRE+ACT
        third = bank.prepare(row=3, now=t.tras)
        # Third activate must wait at least tRC after the second.
        assert third >= 2 * t.trp + t.tras + t.trcd - 1e-9

    def test_column_issue_spacing(self, bank):
        t = bank.timing
        bank.prepare(row=1, now=0.0)
        bank.column_issued(at=t.trcd)
        ready = bank.prepare(row=1, now=t.trcd)
        assert ready >= t.trcd + t.burst_cycles - 1e-9

    def test_rejects_negative_row(self, bank):
        with pytest.raises(ValueError):
            bank.prepare(row=-1, now=0.0)
