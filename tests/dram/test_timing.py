"""Tests for DRAM timing parameter sets."""

import pytest

from repro.dram import DRAM_STANDARDS, DramTiming, dram_standard


class TestStandards:
    def test_presets_exist(self):
        assert "DDR4-2400" in DRAM_STANDARDS
        assert "HBM2" in DRAM_STANDARDS

    def test_ddr4_peak_bandwidth(self):
        t = dram_standard("DDR4-2400")
        # 2400 MT/s x 8 B = 19.2 GB/s
        assert t.peak_bw_gbs == pytest.approx(19.2, rel=0.01)

    def test_hbm_wider_bus(self):
        hbm = dram_standard("HBM2")
        ddr = dram_standard("DDR4-2400")
        assert hbm.bus_bytes_per_cycle > ddr.bus_bytes_per_cycle
        assert hbm.n_banks > ddr.n_banks

    def test_burst_moves_one_line(self):
        for t in DRAM_STANDARDS.values():
            assert t.burst_bytes == 64

    def test_row_cycle_time(self):
        t = dram_standard("DDR4-2400")
        assert t.trc == t.tras + t.trp

    def test_ns_conversion(self):
        t = dram_standard("DDR4-2400")
        assert t.ns(t.cl) == pytest.approx(t.cl * t.tck_ns)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            dram_standard("DDR5-6400")

    def test_validation(self):
        with pytest.raises(ValueError):
            DramTiming(name="bad", tck_ns=0.0, cl=16, trcd=16, trp=16,
                       tras=39, burst_cycles=4, n_banks=16, row_bytes=8192,
                       bus_bytes_per_cycle=16)
