"""Tests for the closed-form DRAM envelopes, validated against the
event-level controller."""

import numpy as np
import pytest

from repro.dram import (
    DramSystem,
    dram_standard,
    efficiency,
    loaded_latency_ns,
    sustained_bandwidth_gbs,
)
from repro.uarch import dram_efficiency


class TestEfficiency:
    def test_monotone_in_row_hit(self):
        t = dram_standard("DDR4-2400")
        effs = [efficiency(t, r) for r in np.linspace(0, 1, 5)]
        assert effs == sorted(effs)

    def test_streaming_near_one(self):
        t = dram_standard("DDR4-2400")
        assert efficiency(t, 1.0) == pytest.approx(1.0)

    def test_matches_event_level_streaming(self):
        t = dram_standard("DDR4-2400")
        res = DramSystem(t, 1).run(np.arange(4000), write_fraction=0.0)
        model = efficiency(t, res.counts.row_hit_rate())
        measured = res.achieved_bw_gbs / t.peak_bw_gbs
        assert model == pytest.approx(measured, abs=0.2)

    def test_matches_event_level_random(self):
        t = dram_standard("DDR4-2400")
        rnd = np.random.default_rng(0).integers(0, 1 << 24, size=3000)
        res = DramSystem(t, 1).run(rnd, write_fraction=0.0)
        model = efficiency(t, res.counts.row_hit_rate())
        measured = res.achieved_bw_gbs / t.peak_bw_gbs
        assert model == pytest.approx(measured, abs=0.25)

    def test_node_model_curve_is_conservative(self):
        """The sweep's linear derating must lie at or below the timing-
        derived envelope (it folds in real-system overheads)."""
        t = dram_standard("DDR4-2400")
        for r in (0.0, 0.3, 0.6, 0.9):
            assert dram_efficiency(r) <= efficiency(t, r) + 0.05


class TestSustainedBandwidth:
    def test_scales_with_channels(self):
        t = dram_standard("DDR4-2400")
        one = sustained_bandwidth_gbs(t, 1, 0.6)
        eight = sustained_bandwidth_gbs(t, 8, 0.6)
        assert eight == pytest.approx(8 * one)

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            sustained_bandwidth_gbs(dram_standard("DDR4-2400"), 0, 0.5)


class TestLoadedLatency:
    def test_grows_with_utilization(self):
        t = dram_standard("DDR4-2400")
        lats = [loaded_latency_ns(t, u, 0.5) for u in (0.0, 0.5, 0.9)]
        assert lats == sorted(lats)

    def test_row_miss_latency_higher(self):
        t = dram_standard("DDR4-2400")
        assert loaded_latency_ns(t, 0.0, 0.0) > loaded_latency_ns(t, 0.0, 1.0)

    def test_idle_latency_magnitude(self):
        # Unloaded row-miss latency ~ tRP+tRCD+CL+burst in ns: tens of ns.
        t = dram_standard("DDR4-2400")
        lat = loaded_latency_ns(t, 0.0, 0.0)
        assert 20 < lat < 80

    def test_finite_at_saturation(self):
        t = dram_standard("DDR4-2400")
        assert np.isfinite(loaded_latency_ns(t, 2.0, 0.5))
