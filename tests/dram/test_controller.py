"""Tests for the FR-FCFS controller and multi-channel DRAM system."""

import numpy as np
import pytest

from repro.dram import CommandCounts, DramRequest, DramSystem, dram_standard


@pytest.fixture
def ddr4():
    return dram_standard("DDR4-2400")


def seq_lines(n):
    return np.arange(n, dtype=np.int64)


def random_lines(n, span, seed=0):
    return np.random.default_rng(seed).integers(0, span, size=n)


class TestCommandCounts:
    def test_row_hit_rate(self):
        c = CommandCounts(n_act=25, n_pre=24, n_rd=70, n_wr=30)
        assert c.row_hit_rate() == pytest.approx(0.75)
        assert c.n_col == 100

    def test_accumulate(self):
        a = CommandCounts(n_act=1, n_pre=1, n_rd=2, n_wr=3)
        a += CommandCounts(n_act=1, n_pre=0, n_rd=1, n_wr=0)
        assert (a.n_act, a.n_rd, a.n_wr) == (2, 3, 3)


class TestDramSystem:
    def test_sequential_stream_mostly_row_hits(self, ddr4):
        sys = DramSystem(ddr4, n_channels=1)
        res = sys.run(seq_lines(2000), write_fraction=0.0)
        assert res.counts.row_hit_rate() > 0.85

    def test_random_stream_mostly_row_misses(self, ddr4):
        sys = DramSystem(ddr4, n_channels=1)
        res = sys.run(random_lines(2000, span=1 << 22), write_fraction=0.0)
        assert res.counts.row_hit_rate() < 0.3

    def test_sequential_bandwidth_near_peak(self, ddr4):
        sys = DramSystem(ddr4, n_channels=1)
        res = sys.run(seq_lines(4000), write_fraction=0.0)
        assert res.achieved_bw_gbs > 0.75 * ddr4.peak_bw_gbs

    def test_random_bandwidth_degraded(self, ddr4):
        sys = DramSystem(ddr4, n_channels=1)
        seq = sys.run(seq_lines(3000)).achieved_bw_gbs
        rnd = DramSystem(ddr4, n_channels=1).run(
            random_lines(3000, span=1 << 24)).achieved_bw_gbs
        assert rnd < seq

    def test_channels_scale_bandwidth(self, ddr4):
        bw1 = DramSystem(ddr4, 1).run(seq_lines(4000)).achieved_bw_gbs
        bw4 = DramSystem(ddr4, 4).run(seq_lines(4000)).achieved_bw_gbs
        assert bw4 > 2.5 * bw1

    def test_request_conservation(self, ddr4):
        sys = DramSystem(ddr4, n_channels=2)
        res = sys.run(seq_lines(1000), write_fraction=0.3)
        assert res.counts.n_col == 1000
        assert sum(c.n_requests for c in res.per_channel) == 1000

    def test_write_fraction(self, ddr4):
        res = DramSystem(ddr4, 1).run(seq_lines(2000), write_fraction=0.25)
        frac = res.counts.n_wr / res.counts.n_col
        assert frac == pytest.approx(0.25, abs=0.05)

    def test_offered_load_spacing(self, ddr4):
        # At low offered load, elapsed time is set by arrivals, not bank
        # throughput.
        sys = DramSystem(ddr4, 1)
        res = sys.run(seq_lines(500), arrival_bw_gbs=1.0)
        assert res.achieved_bw_gbs == pytest.approx(1.0, rel=0.2)

    def test_channel_interleaving(self, ddr4):
        sys = DramSystem(ddr4, 4)
        assert sys.map_channel(0) == 0
        assert sys.map_channel(5) == 1
        per_ch = [0, 0, 0, 0]
        for line in range(100):
            per_ch[sys.map_channel(line)] += 1
        assert per_ch == [25, 25, 25, 25]

    def test_fr_fcfs_prefers_row_hits(self, ddr4):
        # Interleave two rows: FR-FCFS should still keep hit rate above
        # strict FCFS (which would alternate and precharge every time).
        lines_a = seq_lines(64)
        lines_b = seq_lines(64) + (1 << 20)
        mixed = np.empty(128, dtype=np.int64)
        mixed[0::2] = lines_a
        mixed[1::2] = lines_b
        res = DramSystem(ddr4, 1, window=16).run(mixed, write_fraction=0.0)
        assert res.counts.row_hit_rate() > 0.5

    def test_hbm_outruns_ddr4_on_random(self):
        hbm = dram_standard("HBM2")
        ddr = dram_standard("DDR4-2400")
        rnd = random_lines(2000, span=1 << 24)
        bw_hbm = DramSystem(hbm, 1).run(rnd).achieved_bw_gbs
        bw_ddr = DramSystem(ddr, 1).run(rnd).achieved_bw_gbs
        assert bw_hbm > bw_ddr

    def test_request_validation(self):
        with pytest.raises(ValueError):
            DramRequest(line=-1)
        with pytest.raises(ValueError):
            DramSystem(dram_standard("DDR4-2400"), 0)


class TestRefresh:
    def test_refresh_counted_on_long_runs(self, ddr4):
        sys = DramSystem(ddr4, 1)
        res = sys.run(seq_lines(50_000), write_fraction=0.0)
        # ~175 us of traffic at 7.8 us tREFI: ~20+ refreshes.
        assert res.counts.n_ref > 10

    def test_short_runs_no_refresh(self, ddr4):
        res = DramSystem(ddr4, 1).run(seq_lines(100), write_fraction=0.0)
        assert res.counts.n_ref == 0

    def test_refresh_costs_bandwidth(self, ddr4):
        import dataclasses

        no_refresh = dataclasses.replace(ddr4, trefi=10**9)
        bw_with = DramSystem(ddr4, 1).run(seq_lines(50_000)).achieved_bw_gbs
        bw_without = DramSystem(no_refresh, 1).run(
            seq_lines(50_000)).achieved_bw_gbs
        # tRFC/tREFI ~ 4.5%: refresh steals a few percent of bandwidth.
        assert bw_with < bw_without
        assert bw_with > 0.90 * bw_without

    def test_row_hit_rate_stays_clamped(self, ddr4):
        res = DramSystem(ddr4, 1).run(
            random_lines(30_000, span=1 << 26), write_fraction=0.0)
        assert 0.0 <= res.counts.row_hit_rate() <= 1.0
