"""Harness contract tests on a synthetic benchmark.

The fake workload is deterministic and cheap, so these pin the
protocol mechanics — sample counts, warmups, the injected-slowdown
multiplier, oracle propagation, the required-counter contract and the
paired calibration — without any timing sensitivity.
"""

import pytest

from repro.bench import BenchCase, Benchmark, TIERS, run_case, run_suite
from repro.bench.harness import _PROTOCOL
from repro.obs import get_metrics


def _fake_benchmark(oracle_detail=None, counters=(), work=None, calls=None):
    def build(tier):
        assert tier in TIERS

        def run():
            if calls is not None:
                calls.append(tier)
            if work is not None:
                work()
            return tier

        return BenchCase(run=run, oracle=lambda: oracle_detail,
                         meta={"tier_seen": tier},
                         required_counters=tuple(counters))

    return Benchmark("fake.unit", "micro", "synthetic harness probe", build)


def test_protocol_sample_counts():
    calls = []
    res = run_case(_fake_benchmark(calls=calls), tier="smoke")
    warmup, repeats = _PROTOCOL[("micro", "smoke")]
    # warmup runs + timed runs (the oracle does not call run()).
    assert len(calls) == warmup + repeats
    assert len(res.samples_s) == repeats
    assert len(res.calib_samples_s) == repeats
    assert res.min_s == min(res.samples_s)
    assert res.calib_min_s == min(res.calib_samples_s)
    assert res.tier == "smoke"
    assert res.meta == {"tier_seen": "smoke"}


def test_explicit_repeats_and_warmup_override_protocol():
    calls = []
    res = run_case(_fake_benchmark(calls=calls), tier="full",
                   repeats=4, warmup=0)
    assert len(calls) == 4
    assert len(res.samples_s) == 4


def test_inject_slowdown_multiplies_workload_samples_only():
    base = run_case(_fake_benchmark(), tier="smoke", repeats=3,
                    inject_slowdown=1.0)
    injected = run_case(_fake_benchmark(), tier="smoke", repeats=3,
                        inject_slowdown=100.0)
    assert injected.inject_slowdown == 100.0
    # A 100x multiplier dwarfs scheduling noise on a ~us workload.
    assert injected.min_s > base.min_s * 10
    # Calibration samples are never injected: both runs time the same
    # reference kernel, so they agree to well under the 100x factor.
    assert injected.calib_min_s < base.calib_min_s * 5


def test_oracle_failure_propagates():
    res = run_case(_fake_benchmark(oracle_detail="mismatch at index 3"),
                   tier="smoke", repeats=1)
    assert not res.oracle_ok
    assert res.oracle_detail == "mismatch at index 3"


def test_oracle_success_is_clean():
    res = run_case(_fake_benchmark(), tier="smoke", repeats=1)
    assert res.oracle_ok
    assert res.oracle_detail is None


def test_required_counter_never_incremented_fails_oracle():
    res = run_case(_fake_benchmark(counters=["bench.test.never_bumped"]),
                   tier="smoke", repeats=1)
    assert not res.oracle_ok
    assert "bench.test.never_bumped" in res.oracle_detail


def test_required_counter_incremented_in_run_passes():
    reg = get_metrics()
    res = run_case(
        _fake_benchmark(counters=["bench.test.bumped"],
                        work=lambda: reg.inc("bench.test.bumped")),
        tier="smoke", repeats=1)
    assert res.oracle_ok, res.oracle_detail


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        run_case(_fake_benchmark(), tier="nope")
    with pytest.raises(ValueError):
        run_case(_fake_benchmark(), tier="smoke", repeats=0)
    with pytest.raises(ValueError):
        run_case(_fake_benchmark(), tier="smoke", inject_slowdown=0.0)
    with pytest.raises(ValueError):
        Benchmark("bad id", "micro", "spaces", lambda tier: None)
    with pytest.raises(ValueError):
        Benchmark("ok.id", "mini", "bad kind", lambda tier: None)


def test_run_suite_continues_past_oracle_failure():
    bad = _fake_benchmark(oracle_detail="broken")
    good = _fake_benchmark()
    seen = []
    results = run_suite([bad, good], tier="smoke", repeats=1,
                        progress=lambda bid, r: seen.append(bid))
    assert len(results) == 2
    assert [r.oracle_ok for r in results] == [False, True]
    assert seen == ["fake.unit", "fake.unit"]
