"""End-to-end regression-gate tests through the ``repro bench`` CLI.

Uses only the two cheapest micro benchmarks and a throwaway ledger so
the full append -> check -> inject cycle stays test-suite fast.  The
injected factor is deliberately enormous (20x) so the verdict cannot
hinge on machine noise.
"""

import json

import pytest

from repro.bench import Ledger
from repro.cli.main import main as repro_main

BENCH = ["--only", "micro.tape_replay", "--smoke",
         "--repeats", "2", "--warmup", "0", "--retries", "0"]


@pytest.fixture(scope="module")
def seeded_ledger(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench") / "ledger.jsonl"
    rc = repro_main(["bench", *BENCH, "--append", "--ledger", str(path)])
    assert rc == 0
    led = Ledger.load(path)
    assert len(led) == 1
    entry = led.entries[0]
    assert entry["bench"] == "micro.tape_replay"
    assert entry["oracle_ok"] is True
    assert entry["inject_slowdown"] == 1.0
    return path


def test_check_passes_clean_with_loose_threshold(seeded_ledger):
    # A wide-open threshold isolates plumbing from machine noise.
    rc = repro_main(["bench", *BENCH, "--check", "--threshold", "10.0",
                     "--ledger", str(seeded_ledger)])
    assert rc == 0


def test_check_fails_on_injected_slowdown(seeded_ledger):
    rc = repro_main(["bench", *BENCH, "--check", "--threshold", "0.10",
                     "--inject-slowdown", "20.0",
                     "--ledger", str(seeded_ledger)])
    assert rc == 1


def test_injected_entries_never_become_baselines(seeded_ledger, tmp_path):
    path = tmp_path / "ledger.jsonl"
    rc = repro_main(["bench", *BENCH, "--append", "--inject-slowdown",
                     "20.0", "--ledger", str(path)])
    assert rc == 0
    led = Ledger.load(path)
    assert len(led) == 1
    assert led.baseline("micro.tape_replay", "smoke") is None


def test_json_report_written(seeded_ledger, tmp_path):
    out = tmp_path / "run.json"
    rc = repro_main(["bench", *BENCH, "--check", "--threshold", "10.0",
                     "--ledger", str(seeded_ledger), "--json", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["results"][0]["bench"] == "micro.tape_replay"
    assert payload["verdicts"][0]["status"] in ("ok", "no-baseline")
    assert payload["calib_s"] > 0


def test_trend_report_renders_from_ledger(seeded_ledger, tmp_path):
    out = tmp_path / "trend.html"
    rc = repro_main(["bench", "--report", str(out),
                     "--ledger", str(seeded_ledger)])
    assert rc == 0
    html = out.read_text()
    assert "micro.tape_replay" in html
    assert "<svg" in html


def test_merge_unions_ledgers(seeded_ledger, tmp_path):
    other = tmp_path / "other.jsonl"
    rc = repro_main(["bench", *BENCH, "--append", "--ledger", str(other)])
    assert rc == 0
    merged = tmp_path / "merged.jsonl"
    merged.write_text(seeded_ledger.read_text())
    rc = repro_main(["bench", "--merge", str(other),
                     "--ledger", str(merged)])
    assert rc == 0
    led = Ledger.load(merged)
    assert len(led) == 2
    # Merging again is a no-op (idempotent at the file level).
    rc = repro_main(["bench", "--merge", str(other),
                     "--ledger", str(merged)])
    assert rc == 0
    assert Ledger.load(merged) == led


def test_list_names_every_benchmark(capsys):
    rc = repro_main(["bench", "--list"])
    assert rc == 0
    out = capsys.readouterr().out
    for bid in ("micro.miss_model", "macro.campaign"):
        assert bid in out


def test_seed_from_snapshots_is_idempotent(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "BENCH_replay.json").write_text(json.dumps(
        {"unlimited_buses": {"event_wall_s": 0.063},
         "python": "3.11.7", "machine": "x86_64"}))
    ledger = tmp_path / "ledger.jsonl"
    assert repro_main(["bench", "--seed-from-snapshots",
                       "--ledger", str(ledger)]) == 0
    led = Ledger.load(ledger)
    assert len(led) == 1
    e = led.entries[0]
    assert e["bench"] == "micro.event_engine"
    assert e["seed"] is True
    assert e["raw_min_s"] == 0.063
    assert e["code_version"] == "pre-ledger"
    # Seeding twice adds nothing.
    assert repro_main(["bench", "--seed-from-snapshots",
                       "--ledger", str(ledger)]) == 0
    assert len(Ledger.load(ledger)) == 1


def test_invalid_flags_rejected():
    assert repro_main(["bench", "--check", "--threshold", "-1"]) == 2
    assert repro_main(["bench", "--inject-slowdown", "0"]) == 2
    assert repro_main(["bench", "--retries", "-1"]) == 2
