"""Property tests for the trend ledger (satellite: hypothesis suite).

Pins the algebra the ledger's durability story rests on:

* append + merge are idempotent, commutative, associative and
  order-insensitive (content-digest dedup in canonical order);
* save/load round-trips through JSONL, tolerating torn tails;
* normalization is scale-invariant — a uniformly k-times-slower
  machine reports the same normalized cost;
* the regression gate is a deterministic pure function of
  (results, ledger, threshold), with verdict math checked against
  hand-crafted entries.
"""

import json
import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import (
    BenchResult,
    Ledger,
    check,
    make_entry,
    normalized,
)

_SETTINGS = settings(max_examples=50, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_BENCH_IDS = ("micro.a", "micro.b", "macro.c")


def _entries():
    finite = st.floats(min_value=1e-6, max_value=1e3,
                       allow_nan=False, allow_infinity=False)
    return st.fixed_dictionaries({
        "bench": st.sampled_from(_BENCH_IDS),
        "kind": st.sampled_from(("micro", "macro")),
        "tier": st.sampled_from(("full", "smoke")),
        "raw_min_s": finite,
        "calib_s": finite,
        "norm": finite,
        "oracle_ok": st.booleans(),
        "inject_slowdown": st.sampled_from((1.0, 1.2, 2.0)),
        "host": st.fixed_dictionaries(
            {"id": st.sampled_from(("hostA", "hostB"))}),
        "ts": st.integers(min_value=0, max_value=10**6).map(
            lambda n: f"2026-01-01T00:00:{n:06d}"),
        "seed": st.booleans(),
    })


def _ledgers():
    return st.lists(_entries(), max_size=12).map(Ledger)


@given(_ledgers())
@_SETTINGS
def test_merge_idempotent(led):
    assert led.merge(led) == led


@given(_ledgers(), _ledgers())
@_SETTINGS
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(_ledgers(), _ledgers(), _ledgers())
@_SETTINGS
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(st.lists(_entries(), max_size=12), st.randoms())
@_SETTINGS
def test_entry_order_is_irrelevant(entries, rng):
    shuffled = list(entries)
    rng.shuffle(shuffled)
    assert Ledger(entries) == Ledger(shuffled)


@given(st.lists(_entries(), max_size=12))
@_SETTINGS
def test_save_load_roundtrip(entries):
    import tempfile
    from pathlib import Path
    led = Ledger(entries)
    with tempfile.TemporaryDirectory() as d:
        p = Path(d) / "ledger.jsonl"
        led.save(p)
        assert Ledger.load(p) == led
        # Append-only write path agrees with save/load too.
        p2 = Path(d) / "appended.jsonl"
        Ledger.append_to(p2, entries)
        assert Ledger.load(p2) == led
        # A torn tail (crashed append) is ignored, not fatal.
        with p2.open("a", encoding="utf-8") as fh:
            fh.write('{"bench": "micro.a", "tr')
        assert Ledger.load(p2) == led


@given(st.floats(min_value=1e-6, max_value=1e3),
       st.floats(min_value=1e-6, max_value=1e3),
       st.floats(min_value=1e-3, max_value=1e3))
@_SETTINGS
def test_normalization_scale_invariant(raw, calib, k):
    # A machine uniformly k times slower: same normalized cost.
    assert math.isclose(normalized(raw * k, calib * k),
                        normalized(raw, calib), rel_tol=1e-9)


def _result(bench="micro.a", tier="full", min_s=2.0, oracle_ok=True,
            calib=1.0, inject=1.0):
    return BenchResult(
        bench=bench, kind="micro", tier=tier, samples_s=[min_s],
        min_s=min_s, median_s=min_s, oracle_ok=oracle_ok,
        oracle_detail=None if oracle_ok else "mismatch", meta={},
        inject_slowdown=inject, calib_samples_s=[calib], calib_min_s=calib)


def _clean_entry(bench="micro.a", tier="full", norm=1.0, host="hostA",
                 **over):
    e = {"bench": bench, "kind": "micro", "tier": tier, "raw_min_s": norm,
         "calib_s": 1.0, "norm": norm, "oracle_ok": True,
         "inject_slowdown": 1.0, "host": {"id": host},
         "ts": "2026-01-01T00:00:00", "seed": False}
    e.update(over)
    return e


@given(st.lists(_entries(), max_size=12),
       st.floats(min_value=0.0, max_value=1.0))
@_SETTINGS
def test_check_is_deterministic(entries, threshold):
    led = Ledger(entries)
    results = [_result(b, t) for b in _BENCH_IDS for t in ("full", "smoke")]
    v1 = check(results, led, threshold, calib_s=1.0, host_id="hostA")
    v2 = check(results, led, threshold, calib_s=1.0, host_id="hostA")
    assert v1 == v2


def test_baseline_is_median_of_clean_entries():
    led = Ledger([_clean_entry(norm=n) for n in (1.0, 2.0, 9.0)])
    assert led.baseline("micro.a", "full") == 2.0


def test_baseline_ignores_injected_oracle_failed_and_bad_norms():
    led = Ledger([
        _clean_entry(norm=1.0),
        _clean_entry(norm=0.1, inject_slowdown=1.2),   # gate self-test
        _clean_entry(norm=0.1, oracle_ok=False),       # broken identity
        _clean_entry(norm=float("nan")),
        _clean_entry(norm=-1.0),
    ])
    assert led.baseline("micro.a", "full") == 1.0


def test_baseline_prefers_same_host():
    led = Ledger([_clean_entry(norm=1.0, host="hostA"),
                  _clean_entry(norm=5.0, host="hostB")])
    assert led.baseline("micro.a", "full", host_id="hostA") == 1.0
    assert led.baseline("micro.a", "full", host_id="hostB") == 5.0
    # Unknown host: falls back to the whole pool.
    assert led.baseline("micro.a", "full", host_id="hostZ") == 3.0


def test_verdict_math_regression_and_ok():
    led = Ledger([_clean_entry(norm=1.0)])
    # Paired calib 1.0 -> current norm == min_s.
    ok = check([_result(min_s=1.05)], led, threshold=0.10, calib_s=1.0)[0]
    assert ok.status == "ok" and not ok.failed
    assert math.isclose(ok.ratio, 0.05)
    bad = check([_result(min_s=1.25)], led, threshold=0.10, calib_s=1.0)[0]
    assert bad.status == "regression" and bad.failed
    assert math.isclose(bad.ratio, 0.25)
    assert bad.baseline_norm == 1.0


def test_verdict_no_baseline_passes():
    v = check([_result()], Ledger(), threshold=0.0, calib_s=1.0)[0]
    assert v.status == "no-baseline" and not v.failed


def test_verdict_oracle_failure_fails_regardless_of_speed():
    led = Ledger([_clean_entry(norm=100.0)])
    v = check([_result(min_s=0.001, oracle_ok=False)], led,
              threshold=0.10, calib_s=1.0)[0]
    assert v.status == "oracle-failed" and v.failed


def test_check_uses_paired_calibration():
    led = Ledger([_clean_entry(norm=1.0)])
    # min_s 4.0 with paired calib 4.0 -> norm 1.0, not 4.0.
    v = check([_result(min_s=4.0, calib=4.0)], led,
              threshold=0.10, calib_s=1.0)[0]
    assert v.status == "ok"
    assert math.isclose(v.current_norm, 1.0)


def test_make_entry_roundtrips_through_gate():
    r = _result(min_s=3.0, calib=1.5)
    e = make_entry(r, calib_s=99.0, host={"id": "hostA"},
                   code_version="abc1234")
    assert e["calib_s"] == 1.5  # paired calib wins over the fallback
    assert math.isclose(e["norm"], 2.0)
    assert e["bench"] == "micro.a" and e["code_version"] == "abc1234"
    json.dumps(e)  # JSONL-serializable
    led = Ledger([e])
    v = check([r], led, threshold=0.10, calib_s=99.0, host_id="hostA")[0]
    assert v.status == "ok" and math.isclose(v.ratio, 0.0)
