"""Registry contract: ids, selection, and smoke-tier identity oracles.

Runs the cheap benchmarks end-to-end at smoke tier with a single
repeat — the point is the oracle (bit-identity against the scalar
path), not the timing.
"""

import pytest

from repro.bench import REGISTRY, REQUIRED_COUNTERS, get_benchmarks, run_case
from repro.config import smoke_design_space
from repro.bench.registry import SMOKE_SPACE


def test_registry_ids_unique_and_kind_prefixed():
    ids = list(REGISTRY)
    assert len(ids) == len(set(ids))
    for bid, bench in REGISTRY.items():
        assert bid == bench.id
        assert bid.startswith(f"{bench.kind}.")


def test_registry_covers_the_issue_workloads():
    have = set(REGISTRY)
    assert {"micro.miss_model", "micro.phase_sched", "micro.tape_replay",
            "micro.bus_arbitration", "micro.event_engine",
            "macro.fast_sweep", "macro.replay_sweep",
            "macro.campaign", "macro.serve_query"} <= have


def test_get_benchmarks_selection():
    assert [b.id for b in get_benchmarks(None)] == list(REGISTRY)
    assert [b.id for b in get_benchmarks(["micro"])] == [
        bid for bid in REGISTRY if bid.startswith("micro.")]
    assert [b.id for b in get_benchmarks(["macro."])] == [
        bid for bid in REGISTRY if bid.startswith("macro.")]
    assert [b.id for b in get_benchmarks(["macro.campaign"])] \
        == ["macro.campaign"]
    with pytest.raises(KeyError):
        get_benchmarks(["micro.not_a_benchmark"])


def test_smoke_space_is_the_shared_preset():
    assert SMOKE_SPACE == smoke_design_space()
    assert len(SMOKE_SPACE) == 8


def test_required_counters_cover_the_pinned_families():
    assert "miss.batch.geometries" in REQUIRED_COUNTERS
    assert "sched.batch.fast" in REQUIRED_COUNTERS
    assert any(c.startswith("replay.batch.") for c in REQUIRED_COUNTERS)


@pytest.mark.parametrize("bid", ["micro.miss_model", "micro.phase_sched",
                                 "micro.tape_replay",
                                 "micro.bus_arbitration",
                                 "micro.event_engine"])
def test_micro_smoke_oracles_green(bid):
    bench = get_benchmarks([bid])[0]
    res = run_case(bench, tier="smoke", repeats=1, warmup=0)
    assert res.oracle_ok, f"{bid}: {res.oracle_detail}"
    assert res.min_s > 0
    assert res.calib_min_s and res.calib_min_s > 0


def test_macro_fast_sweep_smoke_oracle_green():
    bench = get_benchmarks(["macro.fast_sweep"])[0]
    res = run_case(bench, tier="smoke", repeats=1, warmup=0)
    assert res.oracle_ok, res.oracle_detail
    assert res.meta["n_configs"] == len(SMOKE_SPACE)


def test_macro_serve_query_smoke_oracle_green():
    bench = get_benchmarks(["macro.serve_query"])[0]
    res = run_case(bench, tier="smoke", repeats=1, warmup=0)
    assert res.oracle_ok, res.oracle_detail
    assert res.meta["n_configs"] == len(SMOKE_SPACE)
    # The timed path is pure store assembly; the builder's cold
    # evaluation time is recorded for the warm-vs-cold comparison.
    assert res.meta["cold_s"] > 0
    assert res.min_s < res.meta["cold_s"]
