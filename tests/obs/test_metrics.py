"""Unit tests for the execution-metrics registry and progress meter."""

import io

import pytest

from repro.obs import MetricsRegistry, ProgressMeter, summarize


class TestCounters:
    def test_inc_and_read(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a") == 5
        assert reg.counter("missing") == 0

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("t", 1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}}


class TestTimers:
    def test_observe_accumulates(self):
        reg = MetricsRegistry()
        reg.observe("t", 0.5)
        reg.observe("t", 1.5)
        t = reg.snapshot()["timers"]["t"]
        assert t["count"] == 2
        assert t["total_s"] == pytest.approx(2.0)
        assert t["max_s"] == pytest.approx(1.5)

    def test_span_times_block(self):
        reg = MetricsRegistry()
        with reg.span("s"):
            pass
        t = reg.snapshot()["timers"]["s"]
        assert t["count"] == 1
        assert t["total_s"] >= 0.0

    def test_span_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("s"):
                raise RuntimeError("boom")
        assert reg.snapshot()["timers"]["s"]["count"] == 1


class TestMergeDelta:
    def test_delta_then_merge_roundtrip(self):
        worker = MetricsRegistry()
        worker.inc("tasks", 2)
        worker.observe("sim", 1.0)
        before = worker.snapshot()
        worker.inc("tasks", 3)
        worker.observe("sim", 0.25)
        delta = MetricsRegistry.delta(before, worker.snapshot())
        assert delta["counters"] == {"tasks": 3}
        assert delta["timers"]["sim"]["count"] == 1
        assert delta["timers"]["sim"]["total_s"] == pytest.approx(0.25)

        parent = MetricsRegistry()
        parent.inc("tasks", 10)
        parent.merge(delta)
        assert parent.counter("tasks") == 13
        assert parent.snapshot()["timers"]["sim"]["count"] == 1

    def test_delta_omits_unchanged(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.observe("t", 1.0)
        snap = reg.snapshot()
        assert MetricsRegistry.delta(snap, snap) \
            == {"counters": {}, "timers": {}}


class TestDeltaIntervalMax:
    """``delta`` reports the interval's contribution to the running
    maximum, not the all-time maximum (which inflated parent-merged
    worker spans across resumed sweeps)."""

    def test_interval_without_new_max_reports_zero(self):
        reg = MetricsRegistry()
        reg.observe("sim", 10.0)
        before = reg.snapshot()
        reg.observe("sim", 1.0)
        d = MetricsRegistry.delta(before, reg.snapshot())
        assert d["timers"]["sim"]["count"] == 1
        assert d["timers"]["sim"]["total_s"] == pytest.approx(1.0)
        assert d["timers"]["sim"]["max_s"] == 0.0

    def test_interval_with_new_max_reports_it(self):
        reg = MetricsRegistry()
        reg.observe("sim", 1.0)
        before = reg.snapshot()
        reg.observe("sim", 5.0)
        d = MetricsRegistry.delta(before, reg.snapshot())
        assert d["timers"]["sim"]["max_s"] == pytest.approx(5.0)

    def test_merged_delta_does_not_inflate_parent_max(self):
        # A worker's slow first interval must not leak into the max of
        # a later interval merged on its own (the resumed-sweep case).
        worker = MetricsRegistry()
        worker.observe("sim", 10.0)         # interval 1 (discarded)
        before = worker.snapshot()
        worker.observe("sim", 1.0)          # interval 2
        worker.observe("sim", 2.0)
        parent = MetricsRegistry()
        parent.merge(MetricsRegistry.delta(before, worker.snapshot()))
        t = parent.snapshot()["timers"]["sim"]
        assert t["count"] == 2
        assert t["max_s"] == pytest.approx(0.0)  # 10.0 was pre-interval

    def test_merging_every_delta_reconstructs_true_max(self):
        worker = MetricsRegistry()
        parent = MetricsRegistry()
        snap = worker.snapshot()
        for interval in ([1.0, 7.0], [2.0], [3.0, 0.5]):
            for s in interval:
                worker.observe("sim", s)
            after = worker.snapshot()
            parent.merge(MetricsRegistry.delta(snap, after))
            snap = after
        t = parent.snapshot()["timers"]["sim"]
        assert t["count"] == 5
        assert t["total_s"] == pytest.approx(13.5)
        assert t["max_s"] == pytest.approx(7.0)


class TestSummarize:
    def test_derived_fields(self):
        reg = MetricsRegistry()
        reg.inc("sweep.tasks.completed", 8)
        reg.inc("sweep.retries", 2)
        reg.inc("musa.phase_detail.hit", 3)
        reg.inc("musa.phase_detail.miss", 1)
        reg.inc("phase_sim.kernel_memo.hit", 2)
        reg.inc("phase_sim.kernel_memo.miss", 2)
        reg.observe("sweep.run", 4.0)
        d = summarize(reg.snapshot())["derived"]
        assert d["tasks_completed"] == 8
        assert d["retries"] == 2
        assert d["tasks_per_second"] == pytest.approx(2.0)
        assert d["phase_memo_hit_rate"] == pytest.approx(0.75)
        assert d["kernel_memo_hit_rate"] == pytest.approx(0.5)
        assert d["memo_hit_rate"] == pytest.approx(5 / 8)

    def test_empty_rates_are_none(self):
        d = summarize(MetricsRegistry().snapshot())["derived"]
        assert d["memo_hit_rate"] is None
        assert d["tasks_per_second"] is None

    def test_replay_counters_surface(self):
        reg = MetricsRegistry()
        reg.inc("replay.events", 100)
        reg.inc("replay.wakeups", 7)
        reg.inc("replay.messages", 12)
        reg.inc("replay.bus_waits", 3)
        d = summarize(reg.snapshot())["derived"]
        assert d["replay_events"] == 100
        assert d["replay_wakeups"] == 7
        assert d["replay_messages"] == 12
        assert d["replay_bus_waits"] == 3


class TestProgressMeter:
    def test_rate_and_eta(self):
        clock = iter([0.0, 10.0, 10.0]).__next__
        stream = io.StringIO()
        meter = ProgressMeter(100, every_n=1, min_interval_s=0.0,
                              stream=stream, clock=clock)
        meter.update(20)
        out = stream.getvalue()
        assert "20/100" in out
        assert "2.0 tasks/s" in out
        assert "eta 0:40" in out

    def test_throttled_by_stride(self):
        stream = io.StringIO()
        meter = ProgressMeter(1000, every_n=200, min_interval_s=0.0,
                              stream=stream)
        for _ in range(199):
            meter.update()
        assert stream.getvalue() == ""
        meter.update()
        assert "200/1000" in stream.getvalue()

    def test_final_update_always_prints(self):
        stream = io.StringIO()
        meter = ProgressMeter(3, every_n=200, min_interval_s=60.0,
                              stream=stream)
        meter.update(3)
        assert "3/3" in stream.getvalue()
