"""Pin the observability counter names the bench harness contracts on.

The trend dashboards, the ``repro bench`` required-counter checks and
the CLI metrics summary all key on these exact strings.  Renaming one
must fail here first, not silently blind the instrumentation.
"""

import os
import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import search_front
from repro.apps import get_app
from repro.bench import REQUIRED_COUNTERS
from repro.config import DesignSpace, smoke_design_space
from repro.core import run_sweep
from repro.core import sweep as sweep_mod
from repro.core.musa import Musa
from repro.network.replay_batch import replay_batch
from repro.obs import MetricsRegistry, get_metrics, set_metrics, summarize
from repro.runtime import jit, simulate_phase
from repro.runtime.openmp import pipeline_deps
from repro.trace import ComputePhase, TaskRecord

#: 12-point space the fixture's active search explores: big enough
#: that the seed stage leaves points for at least one proposal round
#: (so ``search.rounds`` moves), small enough to stay smoke-cheap.
_SEARCH_SPACE = DesignSpace(
    core_labels=("medium",), cache_labels=("64M:512K",),
    memory_labels=("4chDDR4",), frequencies=(1.5, 2.0, 2.5, 3.0),
    vector_widths=(128,), core_counts=(1, 32, 64))


@pytest.fixture(scope="module")
def workload_counters():
    """One smoke-scale pass; shared because the miss-profile memo is
    per-evaluator (a second pass would hit the memo and skip the
    geometry computation whose counter this suite pins).  The sweep
    module caches evaluators per process, so evict the app's entry
    first — earlier suite tests may have warmed its memo."""
    sweep_mod._BATCH_EVALUATORS.pop("spmz", None)
    sweep_mod._MUSA_CACHE.pop("spmz", None)
    reg = MetricsRegistry()
    prev = get_metrics()
    set_metrics(reg)
    try:
        run_sweep(["spmz"], smoke_design_space(), processes=1, metrics=reg)
        run_sweep(["spmz"], smoke_design_space(), processes=1, metrics=reg,
                  mode="replay", n_ranks=8)
        # Pooled: workers ship frame blocks over the IPC transports.
        run_sweep(["spmz"], smoke_design_space(), processes=2,
                  chunk_size=4, metrics=reg)
        # Columnar store plane: one block line for the whole frame.
        from repro.core.store import ResultStore
        ev = sweep_mod._BATCH_EVALUATORS["spmz"]
        frame = ev.evaluate_frame(list(smoke_design_space()))
        with tempfile.TemporaryDirectory() as td:
            with ResultStore(Path(td) / "pins.jsonl") as store:
                store.put_frame(frame, "fast", 8, "pins",
                                {"engine": "pins"})
        musa = Musa(get_app("lulesh"))
        trace = musa._burst_trace(8, 1)
        scales = musa.app.rank_scales(8)
        phase_ns = {id(p): musa.burst_phase(p, 64).makespan_ns
                    for p in musa.phases}
        cfg = 1.0 + np.arange(4) * 1e-3

        def dur(rank, phase):
            return phase_ns[id(phase)] * scales[rank] * cfg

        replay_batch(trace, musa.network, dur, 4)

        search_front("spmz", _SEARCH_SPACE, max_evals=len(_SEARCH_SPACE),
                     patience=None, metrics=reg,
                     evaluator=sweep_mod._BATCH_EVALUATORS.get("spmz"))

        os.environ[jit.JIT_ENV_VAR] = "python"
        jit._reset_backend()
        try:
            deps = pipeline_deps(4, 4)
            tasks = tuple(TaskRecord(kernel="k", duration_ns=100.0 + i,
                                     deps=deps[i])
                          for i in range(len(deps)))
            simulate_phase(ComputePhase(phase_id=0, tasks=tasks,
                                        serial_ns=0.0, creation_ns=0.0,
                                        critical_ns=0.0), 4)
        finally:
            os.environ.pop(jit.JIT_ENV_VAR, None)
            jit._reset_backend()
    finally:
        set_metrics(prev)
    yield reg.snapshot()["counters"]


def test_pinned_counter_names_emitted(workload_counters):
    counters = workload_counters
    for name in ("miss.batch.geometries",
                 "sched.batch.fast",
                 "replay.batch.array_events",
                 "replay.events",
                 "sweep.batch.configs"):
        assert counters.get(name, 0) > 0, f"counter {name} never emitted"


def test_required_counters_are_real_emitted_names(workload_counters):
    counters = workload_counters
    # Every counter the bench registry contracts on must be one the
    # smoke-scale workloads actually emit (lockstep/fork/peel counters
    # come from the finite-bus path and the worklist counter from the
    # retained fallback driver, each exercised by its own benchmark).
    always = set(REQUIRED_COUNTERS) - {"replay.batch.worklist_events",
                                       "replay.batch.lockstep_events",
                                       "replay.batch.driver.lockstep",
                                       "replay.batch.peeled_configs"}
    for name in always:
        assert counters.get(name, 0) > 0, f"required counter {name} silent"


def test_data_plane_counters_emitted(workload_counters):
    counters = workload_counters
    # Columnar data plane (DESIGN §10): pooled shards ship whole frames
    # (one transport count per frame) and the store writes block lines.
    assert counters.get("sweep.ipc.pickle", 0) \
        + counters.get("sweep.ipc.shm", 0) > 0
    assert counters.get("store.block.put", 0) > 0
    assert counters.get("store.block.records", 0) > 0


def test_sweep_ipc_transport_counters():
    """Both IPC transports are counted by exact pinned name: small
    frames ride the queue pickle, large ones a shared-memory segment."""
    from repro.core.frame import ResultFrame

    reg = MetricsRegistry()
    prev = get_metrics()
    set_metrics(reg)
    try:
        small = ResultFrame.from_records([{"app": "a", "x": 1.0}])
        big = ResultFrame.from_records(
            [{"app": "a", "pad": "y" * 1024 + str(i)} for i in range(128)])
        for frame, transport in ((small, "pickle"), (big, "shm")):
            outcomes = [(i, 1, True, frame.row(i))
                        for i in range(len(frame))]
            wire, packed = sweep_mod._pack_outcomes(outcomes)
            assert len(packed) == 1, "one frame must pack once, not per row"
            assert packed[0][0] == transport
            out = sweep_mod._unpack_outcomes(wire, packed)
            assert [dict(p) for _, _, _, p in out] == frame.to_records()
        counters = reg.snapshot()["counters"]
        assert counters["sweep.ipc.pickle"] == 1
        assert counters["sweep.ipc.shm"] == 1
    finally:
        set_metrics(prev)


def test_array_driver_does_not_alias_other_drivers(workload_counters):
    counters = workload_counters
    # Regression pin for the PR5-era counter aliasing: a pure
    # array-driver workload double-reported every array event as a
    # lockstep event (BENCH_hotpaths.json showed 138,018,816 of each).
    # Each driver owns exactly one event counter now.
    assert counters.get("replay.batch.array_events", 0) > 0
    assert counters.get("replay.batch.driver.array", 0) > 0
    assert counters.get("replay.batch.lockstep_events", 0) == 0
    assert counters.get("replay.batch.worklist_events", 0) == 0
    assert counters.get("replay.batch.driver.lockstep", 0) == 0
    assert counters.get("replay.batch.driver.worklist", 0) == 0


def test_dse_counters_emitted(workload_counters):
    counters = workload_counters
    # Shard scheduler (inline sweeps still deal shards), active search
    # and the interpreted JIT backend all reported into the fixture run.
    for name in ("sweep.shards", "search.evaluated", "search.rounds",
                 "search.front_size", "sched.jit.calls",
                 "sched.jit.enabled"):
        assert counters.get(name, 0) > 0, f"counter {name} never emitted"


def test_summarize_maps_dse_counters():
    mapping = {
        "sweep.shards": "sweep_shards",
        "sweep.steals": "sweep_steals",
        "sweep.worker.lost": "sweep_workers_lost",
        "sweep.ctx.spawn": "sweep_ctx_spawn",
        "search.evaluated": "search_evaluated",
        "search.rounds": "search_rounds",
        "search.front_size": "search_front_size",
        "search.surrogate_rank_calls": "search_surrogate_rank_calls",
        "sched.jit.calls": "sched_jit_calls",
    }
    reg = MetricsRegistry()
    for i, name in enumerate(mapping, start=1):
        reg.inc(name, i)
    derived = summarize(reg.snapshot())["derived"]
    for i, (counter, key) in enumerate(mapping.items(), start=1):
        assert derived[key] == i, f"{counter} not surfaced as {key}"


def test_summarize_exposes_pinned_families(workload_counters):
    counters = workload_counters
    reg = MetricsRegistry()
    for k, v in counters.items():
        reg.inc(k, v)
    derived = summarize(reg.snapshot())["derived"]
    assert derived["batched_configs"] > 0
    assert derived["replay_array_events"] > 0
    assert derived["miss_batch_geometries"] > 0
    assert derived["sched_batch_fast"] > 0
    assert derived["replay_events"] > 0
