"""JIT scheduler backend: bit-identity with the heapq path.

``REPRO_JIT=python`` runs the *exact* kernel body ``REPRO_JIT=numba``
would compile, interpreted — so the bit-identity oracle here (and in
CI, where numba may be absent) exercises the compiled algorithm's
code.  When numba is importable, the compiled backend is held to the
same equality.
"""

import importlib.util

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, set_metrics
from repro.runtime import jit, simulate_phase
from repro.runtime.openmp import pipeline_deps, wavefront_deps
from repro.trace import ComputePhase, TaskRecord

_HAVE_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.fixture(autouse=True)
def fresh_backend(monkeypatch):
    """Isolate the per-process backend cache: every test resolves
    ``REPRO_JIT`` from its own (monkeypatched) environment, and no
    resolved backend leaks into other test modules."""
    monkeypatch.delenv(jit.JIT_ENV_VAR, raising=False)
    jit._reset_backend()
    yield
    jit._reset_backend()


def make_phase(durations, deps, serial=0.0, creation=0.0, critical=0.0):
    tasks = tuple(
        TaskRecord(kernel="k", duration_ns=float(d), deps=tuple(deps[i]))
        for i, d in enumerate(durations)
    )
    return ComputePhase(phase_id=0, tasks=tasks, serial_ns=serial,
                        creation_ns=creation, critical_ns=critical)


def _simulate(phase, n_cores, backend, monkeypatch):
    """Run one phase with the given backend, returning the result and
    the registry it reported into."""
    if backend is None:
        monkeypatch.delenv(jit.JIT_ENV_VAR, raising=False)
    else:
        monkeypatch.setenv(jit.JIT_ENV_VAR, backend)
    jit._reset_backend()
    reg = MetricsRegistry()
    prev = set_metrics(reg)
    try:
        result = simulate_phase(phase, n_cores)
    finally:
        set_metrics(prev)
        jit._reset_backend()
    return result, reg


@st.composite
def dag_phases(draw):
    n = draw(st.integers(2, 20))
    durations = draw(st.lists(
        st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
        min_size=n, max_size=n))
    deps = [()]
    for i in range(1, n):
        k = draw(st.integers(0, min(3, i)))
        deps.append(tuple(sorted(draw(
            st.sets(st.integers(0, i - 1), min_size=k, max_size=k)))))
    serial = draw(st.floats(0.0, 100.0))
    creation = draw(st.floats(0.0, 10.0))
    critical = draw(st.floats(0.0, 50.0))
    return make_phase(durations, deps, serial=serial, creation=creation,
                      critical=critical)


def _assert_identical(a, b):
    assert a.makespan_ns == b.makespan_ns  # exact, not approx
    assert np.array_equal(a.busy_ns, b.busy_ns)
    assert a.serial_ns == b.serial_ns
    assert a.creation_ns_total == b.creation_ns_total
    assert a.n_tasks == b.n_tasks


_BACKENDS = ["python"] + (["numba"] if _HAVE_NUMBA else [])


class TestBitIdentity:
    @pytest.mark.parametrize("backend", _BACKENDS)
    # monkeypatch is safe per-example here: _simulate sets/clears the
    # env var and the backend cache explicitly on every call, so no
    # state escapes one example into the next.
    @settings(max_examples=40, deadline=None, suppress_health_check=[
        HealthCheck.function_scoped_fixture])
    @given(phase=dag_phases(), n_cores=st.integers(1, 8))
    def test_random_dags_match_heapq(self, backend, monkeypatch, phase,
                                     n_cores):
        ref, _ = _simulate(phase, n_cores, None, monkeypatch)
        got, _ = _simulate(phase, n_cores, backend, monkeypatch)
        _assert_identical(got, ref)

    @pytest.mark.parametrize("backend", _BACKENDS)
    @pytest.mark.parametrize("deps,n", [
        (pipeline_deps(4, 6), 24),
        (wavefront_deps(5, 5), 25),
    ])
    def test_structured_dags_match_heapq(self, backend, monkeypatch,
                                         deps, n):
        rng = np.random.default_rng(7)
        durations = rng.uniform(10.0, 1e4, n)
        phase = make_phase(durations, deps, serial=12.5, creation=1.25)
        for cores in (1, 3, 8, 64):
            ref, _ = _simulate(phase, cores, None, monkeypatch)
            got, reg = _simulate(phase, cores, backend, monkeypatch)
            _assert_identical(got, ref)
            assert reg.counter("sched.jit.calls") == 1
            assert reg.counter("sched.jit.enabled") == 1

    def test_structured_fast_paths_bypass_jit(self, monkeypatch):
        # No-dependency phases stay on the structure-specialized fast
        # path; the JIT only owns the general-DAG fallback.
        phase = make_phase([10.0, 20.0, 30.0], [(), (), ()])
        got, reg = _simulate(phase, 4, "python", monkeypatch)
        assert reg.counter("sched.jit.calls") == 0


class TestDeadlockDetection:
    def test_cycle_reported_not_hung(self, monkeypatch):
        # ComputePhase validation rejects cycles at construction, so the
        # kernel's deadlock branch is driven directly: a dependency
        # graph where no task ever becomes ready must return ok=False
        # (the scheduler raises the same RuntimeError the heapq path
        # would), not spin forever.
        from types import SimpleNamespace
        monkeypatch.setenv(jit.JIT_ENV_VAR, "python")
        jit._reset_backend()
        kernel = jit.get_jit_kernel()
        assert kernel is not None
        tasks = [SimpleNamespace(deps=(1,)), SimpleNamespace(deps=(0,))]
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            makespan, ok = jit.run_jit_schedule(
                kernel, tasks, [1.0, 1.0], [0.0, 0.0], 0.0,
                np.zeros(2, np.float64))
        finally:
            set_metrics(prev)
        assert not ok
        assert reg.counter("sched.jit.calls") == 1


class TestBackendResolution:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(jit.JIT_ENV_VAR, raising=False)
        jit._reset_backend()
        assert jit.get_jit_kernel() is None

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF"])
    def test_explicit_off_values(self, monkeypatch, value):
        monkeypatch.setenv(jit.JIT_ENV_VAR, value)
        jit._reset_backend()
        assert jit.get_jit_kernel() is None

    def test_resolution_is_cached(self, monkeypatch):
        monkeypatch.setenv(jit.JIT_ENV_VAR, "python")
        jit._reset_backend()
        first = jit.get_jit_kernel()
        monkeypatch.setenv(jit.JIT_ENV_VAR, "off")
        assert jit.get_jit_kernel() is first  # resolved once per process

    def test_unknown_backend_warns_and_disables(self, monkeypatch):
        monkeypatch.setenv(jit.JIT_ENV_VAR, "cython")
        jit._reset_backend()
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            with pytest.warns(RuntimeWarning, match="unknown"):
                assert jit.get_jit_kernel() is None
        finally:
            set_metrics(prev)
        assert reg.counter("sched.jit.unavailable") == 1

    @pytest.mark.skipif(_HAVE_NUMBA, reason="numba is installed here")
    def test_missing_numba_soft_disables(self, monkeypatch):
        monkeypatch.setenv(jit.JIT_ENV_VAR, "numba")
        jit._reset_backend()
        reg = MetricsRegistry()
        prev = set_metrics(reg)
        try:
            with pytest.warns(RuntimeWarning, match="numba is not"):
                assert jit.get_jit_kernel() is None
        finally:
            set_metrics(prev)
        assert reg.counter("sched.jit.unavailable") == 1
        # Sweeps keep working with the backend soft-disabled.
        phase = make_phase([3.0, 4.0], [(), (0,)])
        result = simulate_phase(phase, 2)
        assert result.makespan_ns > 0
