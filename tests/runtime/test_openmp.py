"""Tests for OpenMP/OmpSs construct builders."""

import numpy as np
import pytest

from repro.runtime import (
    imbalanced_durations,
    parallel_for,
    pipeline_deps,
    simulate_phase,
    task_phase,
    wavefront_deps,
)


class TestImbalancedDurations:
    def test_zero_imbalance_uniform(self):
        d = imbalanced_durations(10, 5.0, 0.0, np.random.default_rng(0))
        np.testing.assert_allclose(d, 5.0)

    def test_target_max_over_mean(self):
        rng = np.random.default_rng(1)
        d = imbalanced_durations(200, 10.0, 0.5, rng)
        assert d.max() / d.mean() - 1 == pytest.approx(0.5, abs=0.08)
        assert d.mean() == pytest.approx(10.0, rel=1e-6)

    def test_all_positive(self):
        rng = np.random.default_rng(2)
        d = imbalanced_durations(100, 1.0, 2.0, rng)
        assert (d > 0).all()

    def test_rejects_negative_imbalance(self):
        with pytest.raises(ValueError):
            imbalanced_durations(4, 1.0, -0.1, np.random.default_rng(0))


class TestParallelFor:
    def test_default_chunking_uses_traced_threads(self):
        p = parallel_for(0, "k", n_iterations=480, iter_ns=10.0,
                         n_threads_traced=48)
        assert p.n_tasks == 48

    def test_explicit_chunk(self):
        p = parallel_for(0, "k", n_iterations=100, iter_ns=10.0, chunk=1)
        assert p.n_tasks == 100
        assert all(t.work_units == 1.0 for t in p.tasks)

    def test_remainder_chunk_smaller(self):
        p = parallel_for(0, "k", n_iterations=10, iter_ns=1.0, chunk=4)
        assert p.n_tasks == 3
        assert p.tasks[-1].work_units == 2.0

    def test_work_conserved(self):
        p = parallel_for(0, "k", n_iterations=77, iter_ns=3.0, chunk=5)
        assert sum(t.work_units for t in p.tasks) == 77

    def test_implicit_barrier(self):
        p = parallel_for(0, "k", n_iterations=8, iter_ns=1.0)
        assert p.barrier_after

    def test_deterministic_given_rng(self):
        a = parallel_for(0, "k", 100, 10.0, chunk=1, imbalance=0.3,
                         rng=np.random.default_rng(5))
        b = parallel_for(0, "k", 100, 10.0, chunk=1, imbalance=0.3,
                         rng=np.random.default_rng(5))
        assert [t.duration_ns for t in a.tasks] == \
               [t.duration_ns for t in b.tasks]


class TestTaskPhase:
    def test_plain(self):
        p = task_phase(0, "k", n_tasks=10, task_ns=100.0)
        assert p.n_tasks == 10

    def test_serial_task_prepended(self):
        p = task_phase(0, "k", n_tasks=4, task_ns=100.0,
                       serial_task_ns=50.0)
        assert p.n_tasks == 5
        assert p.tasks[0].duration_ns == pytest.approx(50.0)
        assert all(t.deps == (0,) for t in p.tasks[1:])

    def test_serial_task_gates_schedule(self):
        p = task_phase(0, "k", n_tasks=8, task_ns=100.0,
                       serial_task_ns=300.0, creation_ns=0.0)
        r = simulate_phase(p, n_cores=8)
        assert r.makespan_ns >= 400.0  # serial + one task wave

    def test_explicit_deps_shifted_past_serial_task(self):
        deps = [(), (0,)]
        p = task_phase(0, "k", n_tasks=2, task_ns=10.0, deps=deps,
                       serial_task_ns=5.0)
        # Task 2 (second real task) depends on task 1 (first real task).
        assert p.tasks[2].deps == (1,)

    def test_deps_length_check(self):
        with pytest.raises(ValueError):
            task_phase(0, "k", n_tasks=3, task_ns=1.0, deps=[()])


class TestDepTopologies:
    def test_pipeline(self):
        deps = pipeline_deps(n_stages=3, width=2)
        assert len(deps) == 6
        assert deps[0] == () and deps[1] == ()
        assert deps[2] == (0,) and deps[3] == (1,)
        assert deps[4] == (2,)

    def test_wavefront_parallelism_capped(self):
        deps = wavefront_deps(4, 4)
        p = task_phase(0, "k", n_tasks=16, task_ns=10.0, deps=list(deps),
                       creation_ns=0.0)
        r = simulate_phase(p, n_cores=16)
        # Critical path of a 4x4 wavefront = 7 anti-diagonals.
        assert r.makespan_ns == pytest.approx(70.0)

    def test_wavefront_corner_deps(self):
        deps = wavefront_deps(3, 3)
        assert deps[0] == ()
        assert deps[4] == (1, 3)  # (1,1) waits on (0,1) and (1,0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            wavefront_deps(0, 3)
        with pytest.raises(ValueError):
            pipeline_deps(2, 0)
